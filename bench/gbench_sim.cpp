// google-benchmark: discrete-event engine throughput — the substrate every
// experiment runs on. Measures raw event dispatch, the FIFO-resource
// service loop at several queue depths, and the end-to-end experiment
// driver with tracing off vs on (the observability overhead contract in
// docs/observability.md: disabled tracing must cost < 2%).
#include <benchmark/benchmark.h>

#include "driver/balancer_factory.h"
#include "driver/experiment.h"
#include "obs/trace_sink.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "workload/synthetic.h"

namespace {

using namespace anu::sim;

void BM_EventDispatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule_at(static_cast<double>(i), [] {});
    }
    benchmark::DoNotOptimize(sim.run_to_completion());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventDispatch)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_EventChurn(benchmark::State& state) {
  // Schedule-then-cancel-half: the timer-churn pattern of FifoResource
  // fail() and monitor re-arms. Exercises handle cancellation and slab
  // slot recycling under a clustered (97 distinct times) calendar.
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    std::vector<EventHandle> handles;
    handles.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      handles.push_back(sim.schedule_at(
          static_cast<double>(i % 97) + static_cast<double>(i) * 1e-4, [] {}));
    }
    for (std::size_t i = 0; i < batch; i += 2) handles[i].cancel();
    benchmark::DoNotOptimize(sim.run_to_completion());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventChurn)->Arg(16384);

void BM_EventScheduleInterleaved(benchmark::State& state) {
  // Each event schedules its successor: the arrival-cursor pattern the
  // experiment driver uses.
  const auto chain = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    std::size_t remaining = chain;
    std::function<void()> next = [&] {
      if (--remaining > 0) sim.schedule_after(1.0, next);
    };
    sim.schedule_after(1.0, next);
    benchmark::DoNotOptimize(sim.run_to_completion());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chain));
}
BENCHMARK(BM_EventScheduleInterleaved)->Arg(4096);

void BM_FifoServiceLoop(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    FifoResource resource(sim, 5.0);
    for (std::size_t i = 0; i < jobs; ++i) {
      resource.submit(Job{1.0, i, nullptr});
    }
    sim.run_to_completion();
    benchmark::DoNotOptimize(resource.jobs_completed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_FifoServiceLoop)->Arg(1024)->Arg(8192);

// End-to-end experiment run, tracing disabled vs enabled. The untraced
// variant is the regression guard for the instrumentation: every emit site
// is a single null-pointer branch, so it must stay within noise of the
// pre-observability driver.
void run_experiment_bench(benchmark::State& state, bool traced) {
  anu::workload::SyntheticConfig wconfig;
  wconfig.request_count = 8000;
  wconfig.file_set_count = 30;
  wconfig.duration = 1200.0;
  const auto workload = anu::workload::make_synthetic_workload(wconfig);
  anu::driver::ExperimentConfig config;
  config.tuning_interval = 60.0;
  for (auto _ : state) {
    anu::obs::TraceSink sink;
    config.trace = traced ? &sink : nullptr;
    auto balancer = anu::driver::make_balancer(
        anu::driver::SystemConfig{},
        config.cluster.server_speeds.size());
    const auto result =
        anu::driver::run_experiment(config, workload, *balancer);
    benchmark::DoNotOptimize(result.requests_completed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wconfig.request_count));
}

void BM_ExperimentUntraced(benchmark::State& state) {
  run_experiment_bench(state, /*traced=*/false);
}
BENCHMARK(BM_ExperimentUntraced);

void BM_ExperimentTraced(benchmark::State& state) {
  run_experiment_bench(state, /*traced=*/true);
}
BENCHMARK(BM_ExperimentTraced);

}  // namespace
