// google-benchmark: discrete-event engine throughput — the substrate every
// experiment runs on. Measures raw event dispatch and the FIFO-resource
// service loop at several queue depths.
#include <benchmark/benchmark.h>

#include "sim/resource.h"
#include "sim/simulation.h"

namespace {

using namespace anu::sim;

void BM_EventDispatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    for (std::size_t i = 0; i < batch; ++i) {
      sim.schedule_at(static_cast<double>(i), [] {});
    }
    benchmark::DoNotOptimize(sim.run_to_completion());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventDispatch)->Arg(1024)->Arg(16384);

void BM_EventScheduleInterleaved(benchmark::State& state) {
  // Each event schedules its successor: the arrival-cursor pattern the
  // experiment driver uses.
  const auto chain = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    std::size_t remaining = chain;
    std::function<void()> next = [&] {
      if (--remaining > 0) sim.schedule_after(1.0, next);
    };
    sim.schedule_after(1.0, next);
    benchmark::DoNotOptimize(sim.run_to_completion());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chain));
}
BENCHMARK(BM_EventScheduleInterleaved)->Arg(4096);

void BM_FifoServiceLoop(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Simulation sim;
    FifoResource resource(sim, 5.0);
    for (std::size_t i = 0; i < jobs; ++i) {
      resource.submit(Job{1.0, i, nullptr});
    }
    sim.run_to_completion();
    benchmark::DoNotOptimize(resource.jobs_completed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs));
}
BENCHMARK(BM_FifoServiceLoop)->Arg(1024)->Arg(8192);

}  // namespace
