// Scale study: ANU randomization as the cluster grows.
//
// §1/§5.4 position ANU for "large clusters consisting of tens of thousands
// of physical servers": the replicated state is one partition table entry
// per 2^(ceil(lg k)+1) partitions — O(k) — and the delegate round is
// O(k + m·probes). This harness grows the cluster through 10 240 servers
// (102 400 file sets) and measures replicated state, lookup probes,
// delegate-round wall time, and convergence quality of the tuner under a
// synthetic heterogeneous latency model.
//
// `--short` trims lookups, tuning rounds, and intermediate sizes for the
// CI bench-smoke lane; the largest (10 240-server) configuration always
// runs, so the smoke still covers the full scale span.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/anu_balancer.h"

using namespace anu;
using namespace anu::core;

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  bool short_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
  }

  const std::vector<std::size_t> sizes =
      short_mode
          ? std::vector<std::size_t>{40u, 320u, 2560u, 10240u}
          : std::vector<std::size_t>{5u,   10u,   20u,   40u,  80u,  160u,
                                     320u, 640u,  1280u, 2560u, 5120u,
                                     10240u};
  const int lookups = short_mode ? 2'000 : 20'000;
  const int rounds = short_mode ? 10 : 30;
  std::printf("Scale study: cluster sizes %zu .. %zu%s\n", sizes.front(),
              sizes.back(), short_mode ? " (short mode)" : "");

  std::uint64_t work_items = 0;
  Table table({"servers", "partitions", "state_bytes", "mean_probes",
               "tune_round_us", "imbalance_after_rounds"});
  for (const std::size_t k : sizes) {
    AnuBalancer balancer(AnuConfig{}, k);
    const std::size_t m = k * 10;
    std::vector<workload::FileSet> fs;
    fs.reserve(m);
    for (std::uint32_t i = 0; i < m; ++i) {
      fs.push_back({FileSetId(i), "scale/" + std::to_string(i), 1.0});
    }
    balancer.register_file_sets(fs);

    // Lookup probes.
    double probes = 0.0;
    for (int i = 0; i < lookups; ++i) {
      probes += balancer.locate("probe/" + std::to_string(i)).probes;
    }

    // Heterogeneous capacities: speed(s) = 1 + (s mod 10). The latency
    // model is load/speed with load proportional to share; run the tuning
    // rounds and measure residual normalized imbalance.
    std::vector<double> speed(k);
    for (std::size_t s = 0; s < k; ++s) {
      speed[s] = 1.0 + static_cast<double>(s % 10);
    }
    double round_us = 0.0;
    for (int round = 0; round < rounds; ++round) {
      const auto shares = balancer.region_map().shares();
      for (std::uint32_t s = 0; s < k; ++s) {
        const double latency =
            shares[s].to_double() / speed[s] * 1000.0 + 1e-6;
        balancer.report(ServerId(s), {latency, 100});
      }
      const auto start = std::chrono::steady_clock::now();
      balancer.tune();
      const auto stop = std::chrono::steady_clock::now();
      round_us += std::chrono::duration<double, std::micro>(stop - start)
                      .count();
    }
    // Residual imbalance: max/min of share/speed over servers.
    const auto shares = balancer.region_map().shares();
    double lo = 1e300, hi = 0.0;
    for (std::size_t s = 0; s < k; ++s) {
      const double norm = shares[s].to_double() / speed[s];
      lo = std::min(lo, norm);
      hi = std::max(hi, norm);
    }
    work_items += static_cast<std::uint64_t>(lookups) +
                  static_cast<std::uint64_t>(rounds) * k;
    table.add_row({std::to_string(k),
                   std::to_string(balancer.region_map().partition_count()),
                   std::to_string(balancer.shared_state_bytes()),
                   format_double(probes / lookups, 3),
                   format_double(round_us / rounds, 1),
                   format_double(hi / lo, 2)});
  }
  bench::section("scaling of state, addressing and the delegate round");
  table.print(std::cout);
  report.add_events(work_items);

  bench::note("\nShape checks: state grows linearly in servers (partition");
  bench::note("table), probes stay ~2 regardless of scale (half-occupancy),");
  bench::note("the delegate round grows near-linearly and stays sub-second");
  bench::note("even at 10k servers, and the tuner still converges shares");
  bench::note("toward capacity at every size.");
  return 0;
}
