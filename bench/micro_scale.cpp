// Scale study: ANU randomization as the cluster grows.
//
// §1/§5.4 position ANU for "large clusters consisting of tens of thousands
// of physical servers": the replicated state is one partition table entry
// per 2^(ceil(lg k)+1) partitions — O(k) — and the delegate round is
// O(k + m·probes). This harness grows the cluster and measures replicated
// state, lookup probes, delegate-round wall time, and convergence quality
// of the tuner under a synthetic heterogeneous latency model.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/anu_balancer.h"

using namespace anu;
using namespace anu::core;

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Scale study: cluster sizes 5 .. 320\n");

  Table table({"servers", "partitions", "state_bytes", "mean_probes",
               "tune_round_us", "imbalance_after_30_rounds"});
  for (std::size_t k : {5u, 10u, 20u, 40u, 80u, 160u, 320u}) {
    AnuBalancer balancer(AnuConfig{}, k);
    const std::size_t m = k * 10;
    std::vector<workload::FileSet> fs;
    for (std::uint32_t i = 0; i < m; ++i) {
      fs.push_back({FileSetId(i), "scale/" + std::to_string(i), 1.0});
    }
    balancer.register_file_sets(fs);

    // Lookup probes.
    double probes = 0.0;
    constexpr int kLookups = 20'000;
    for (int i = 0; i < kLookups; ++i) {
      probes += balancer.locate("probe/" + std::to_string(i)).probes;
    }

    // Heterogeneous capacities: speed(s) = 1 + (s mod 10). The latency
    // model is load/speed with load proportional to share; run 30 rounds
    // and measure residual normalized imbalance.
    Xoshiro256 rng(k);
    std::vector<double> speed(k);
    for (std::size_t s = 0; s < k; ++s) {
      speed[s] = 1.0 + static_cast<double>(s % 10);
    }
    double round_us = 0.0;
    for (int round = 0; round < 30; ++round) {
      const auto shares = balancer.region_map().shares();
      for (std::uint32_t s = 0; s < k; ++s) {
        const double latency =
            shares[s].to_double() / speed[s] * 1000.0 + 1e-6;
        balancer.report(ServerId(s), {latency, 100});
      }
      const auto start = std::chrono::steady_clock::now();
      balancer.tune();
      const auto stop = std::chrono::steady_clock::now();
      round_us += std::chrono::duration<double, std::micro>(stop - start)
                      .count();
    }
    // Residual imbalance: max/min of share/speed over servers.
    const auto shares = balancer.region_map().shares();
    double lo = 1e300, hi = 0.0;
    for (std::size_t s = 0; s < k; ++s) {
      const double norm = shares[s].to_double() / speed[s];
      lo = std::min(lo, norm);
      hi = std::max(hi, norm);
    }
    table.add_row({std::to_string(k),
                   std::to_string(balancer.region_map().partition_count()),
                   std::to_string(balancer.shared_state_bytes()),
                   format_double(probes / kLookups, 3),
                   format_double(round_us / 30.0, 1),
                   format_double(hi / lo, 2)});
  }
  bench::section("scaling of state, addressing and the delegate round");
  table.print(std::cout);

  bench::note("\nShape checks: state grows linearly in servers (partition");
  bench::note("table), probes stay ~2 regardless of scale (half-occupancy),");
  bench::note("the delegate round stays far below a millisecond per cluster");
  bench::note("of hundreds, and the tuner still converges shares toward");
  bench::note("capacity at every size.");
  return 0;
}
