// Figure 5: server latency for synthetic workloads.
//
// Paper §5.2.1: the synthetic workload (66,401 requests, 50 file sets, 200
// minutes, Pareto inter-arrivals) replayed against all four load-management
// systems on the 1/3/5/7/9 cluster. One latency-over-time panel per system.
//
// Shape to verify against the paper:
//   * simple randomization: the weakest server's latency keeps degrading,
//     faster servers sit underutilized;
//   * dynamic prescient and virtual processors: balanced from time 0;
//   * ANU: starts blind, converges after several tuning rounds; the weakest
//     server ends up (near-)idle.
#include <cstdio>
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"

using namespace anu;
using namespace anu::driver;

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Figure 5 reproduction: server latency, synthetic workload\n");
  std::printf("(66,401 requests / 50 file sets / 200 min; servers 1,3,5,7,9;"
              " 2-min tuning)\n");

  const auto workload = paper_synthetic_workload();
  const auto config = paper_experiment_config();

  for (SystemKind kind : kAllSystems) {
    SystemConfig system;
    system.kind = kind;
    auto balancer = make_balancer(system, config.cluster.server_speeds.size());
    const auto result = run_experiment(config, workload, *balancer);
    report.add_events(result.requests_completed);
    bench::print_latency_series(result, system_label(kind));
    std::printf("requests completed: %llu/%llu, aggregate latency %.3f s\n",
                static_cast<unsigned long long>(result.requests_completed),
                static_cast<unsigned long long>(result.requests_issued),
                result.aggregate.mean());

    if (kind == SystemKind::kAnu) {
      // The companion view: the delegate's share adaptation. Capacities are
      // 1/3/5/7/9 of 25 = 4/12/20/28/36% — watch the assigned shares walk
      // from 20% each toward those ratios within the first rounds.
      Table shares({"minute", "s0_share", "s1_share", "s2_share", "s3_share",
                    "s4_share"});
      for (std::size_t i = 0; i < result.shares_over_time.size(); i += 5) {
        const auto& sample = result.shares_over_time[i];
        std::vector<double> row{sample.when / 60.0};
        row.insert(row.end(), sample.share.begin(), sample.share.end());
        shares.add_numeric_row(row, 3);
      }
      bench::section("anu: assigned workload share per server over time "
                     "(capacity ratios: .04/.12/.20/.28/.36)");
      shares.print(std::cout);
    }
  }

  bench::note("\nShape checks (paper Fig. 5):");
  bench::note(" - simple-random: server 0 column grows without bound");
  bench::note(" - dyn-prescient / virtual-processor: flat from the start");
  bench::note(" - anu: high first windows, then converges; server 0 goes idle");
  return 0;
}
