// Machine-readable benchmark result emission (docs/ci.md).
//
// Every harness in bench/ — figure reproductions and google-benchmark
// micros alike — emits one `BENCH_<name>.json` per run so the perf
// trajectory is diffable across commits:
//
//   { "schema": "anu.bench", "schema_version": 1, "name": "gbench_sim",
//     "git": "<describe>", "wall_time_s": ..., "events": ...,
//     "events_per_sec": ..., "peak_rss_bytes": ... }
//
// `tools/bench_compare` diffs two of these (or two directories of them)
// against per-metric thresholds; CI gates on it.
//
// Usage: construct a BenchReport first thing in main. It strips a
// `--json-out <path>` argument from argv (so harnesses that don't parse
// arguments stay oblivious) and also honors the ANU_BENCH_JSON_DIR
// environment variable (writes $dir/BENCH_<name>.json), which is how
// scripts/check.sh arms a whole bench sweep without touching per-target
// flags. With neither set, the report is disarmed and costs nothing.
// Destruction writes the file; events are whatever the harness counted via
// add_events (0 when a harness has no natural unit).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace anu::bench {

inline constexpr int kBenchSchemaVersion = 1;

class BenchReport {
 public:
  /// `argv[0]`'s basename becomes the benchmark name. Removes any
  /// `--json-out <path>` pair from argc/argv.
  BenchReport(int* argc, char** argv);
  ~BenchReport();

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Whether a JSON destination was configured.
  [[nodiscard]] bool armed() const { return !path_.empty(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Accumulates the harness's work unit (requests replayed, benchmark
  /// iterations, ...) for the events_per_sec metric.
  void add_events(std::uint64_t n) {
    events_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Writes the document now (normally the destructor does). Returns false
  /// on I/O failure (also reported on stderr); disarmed reports succeed.
  bool write();

 private:
  std::string name_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> events_{0};
  bool written_ = false;
};

}  // namespace anu::bench
