// google-benchmark: delegate-round cost vs. cluster size.
// The delegate runs every two minutes; its cost must stay trivial even for
// large k (the tuner is O(k), the region relayout O(P) = O(k), and the
// placement re-resolution O(m * probes)).
#include <benchmark/benchmark.h>

#include <vector>

#include "core/anu_balancer.h"

namespace {

using namespace anu;
using namespace anu::core;

std::vector<workload::FileSet> make_file_sets(std::size_t n) {
  std::vector<workload::FileSet> fs;
  for (std::uint32_t i = 0; i < n; ++i) {
    fs.push_back({FileSetId(i), "tune/" + std::to_string(i), 1.0});
  }
  return fs;
}

void BM_DelegateRound(benchmark::State& state) {
  const auto servers = static_cast<std::size_t>(state.range(0));
  std::vector<TunerInput> inputs(servers);
  for (std::size_t s = 0; s < servers; ++s) {
    inputs[s] = {1.0 / static_cast<double>(servers),
                 balance::ServerReport{1.0 + 0.1 * static_cast<double>(s % 7),
                                       100}};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_delegate_round(inputs, TunerConfig{}));
  }
}
BENCHMARK(BM_DelegateRound)->Arg(5)->Arg(64)->Arg(1024);

void BM_FullTuneRound(benchmark::State& state) {
  // End-to-end tune(): delegate + region relayout + placement re-resolution
  // for the paper's 5-server / 50-file-set configuration and larger.
  const auto servers = static_cast<std::size_t>(state.range(0));
  const auto file_sets = servers * 10;
  AnuBalancer balancer(AnuConfig{}, servers);
  balancer.register_file_sets(make_file_sets(file_sets));
  std::uint64_t round = 0;
  for (auto _ : state) {
    for (std::uint32_t s = 0; s < servers; ++s) {
      // Rotating latencies so shares keep changing (avoid the dead band).
      const double latency = ((s + round) % servers) < servers / 2 ? 0.2 : 5.0;
      balancer.report(ServerId(s), {latency, 50});
    }
    benchmark::DoNotOptimize(balancer.tune());
    ++round;
  }
}
BENCHMARK(BM_FullTuneRound)->Arg(5)->Arg(32)->Arg(128);

void BM_MembershipFailRecover(benchmark::State& state) {
  AnuBalancer balancer(AnuConfig{}, 16);
  balancer.register_file_sets(make_file_sets(160));
  std::uint32_t victim = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(balancer.on_server_failed(ServerId(victim)));
    benchmark::DoNotOptimize(balancer.on_server_recovered(ServerId(victim)));
    victim = (victim + 1) % 16;
  }
}
BENCHMARK(BM_MembershipFailRecover);

}  // namespace
