// Figure 7: load movement during the synthetic workload simulation.
//
// Paper §5.3: both the number of file sets moved by ANU per tuning round
// over the 200-minute run (100 rounds) and the cumulative percentage of
// total workload moved. Shape: active movement in the first rounds while
// the system adapts to heterogeneity, then near-quiet; total on the order
// of a hundred file-set moves (the paper reports 112).
#include <cstdio>
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"

using namespace anu;
using namespace anu::driver;

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Figure 7 reproduction: ANU load movement, synthetic workload\n");
  std::printf("(100 two-minute tuning rounds over 200 minutes)\n");

  const auto workload = paper_synthetic_workload();
  const auto config = paper_experiment_config();

  SystemConfig system;
  system.kind = SystemKind::kAnu;
  auto balancer = make_balancer(system, config.cluster.server_speeds.size());
  const auto result = run_experiment(config, workload, *balancer);
  report.add_events(result.requests_completed);

  Table table({"round", "minute", "filesets_moved", "moved_weight_pct",
               "cumulative_moved", "cumulative_pct_workload"});
  double total_weight = 0.0;
  for (const auto& fs : workload.file_sets()) total_weight += fs.weight;
  std::size_t round = 0;
  for (const auto& r : result.movement) {
    ++round;
    table.add_row({std::to_string(round), format_double(r.when / 60.0, 0),
                   std::to_string(r.moved),
                   format_double(100.0 * r.moved_weight / total_weight, 2),
                   std::to_string(r.cumulative),
                   format_double(r.cumulative_pct, 2)});
  }
  bench::section("per-round movement");
  table.print(std::cout);

  std::size_t first_quarter = 0, rest = 0;
  for (std::size_t i = 0; i < result.movement.size(); ++i) {
    (i < result.movement.size() / 4 ? first_quarter : rest) +=
        result.movement[i].moved;
  }
  std::printf("\ntotal file-set moves over %zu rounds: %zu (paper: 112)\n",
              result.movement.size(), result.total_moved);
  std::printf("distinct file sets ever moved: %zu of %zu (%.1f%% of "
              "workload weight)\n",
              result.unique_moved, workload.file_set_count(),
              result.percent_unique_workload_moved);
  std::printf("cumulative moved weight (re-moves counted again): %.1f%%\n",
              result.percent_workload_moved);
  std::printf("moves in first quarter of rounds: %zu, in the rest: %zu\n",
              first_quarter, rest);
  bench::note("\nShape checks (paper Fig. 7): movement concentrated in the");
  bench::note("first rounds; order-100 total moves; small fraction of total");
  bench::note("workload moved.");
  return 0;
}
