// google-benchmark: end-to-end placement lookup for each system's
// addressing scheme, including concurrent readers on the ANU region map
// (the shared state is read-mostly: every node addresses through it while
// only delegate rounds write).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "balance/chord_ring.h"
#include "balance/simple_random.h"
#include "balance/virtual_processor.h"
#include "core/anu_balancer.h"

namespace {

using namespace anu;

std::vector<workload::FileSet> make_file_sets(std::size_t n) {
  std::vector<workload::FileSet> fs;
  for (std::uint32_t i = 0; i < n; ++i) {
    fs.push_back({FileSetId(i), "lkp/" + std::to_string(i), 1.0});
  }
  return fs;
}

std::vector<std::string> lookup_names(std::size_t n) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i) {
    names.push_back("lkp/" + std::to_string(i));
  }
  return names;
}

void BM_AnuLocate(benchmark::State& state) {
  // The balancer is shared across benchmark threads; locate() is const and
  // the region map is immutable during the measurement, modelling the
  // read-mostly addressing path on every cluster node.
  static core::AnuBalancer* balancer = [] {
    auto* b = new core::AnuBalancer(core::AnuConfig{},
                                    16);
    b->register_file_sets(make_file_sets(1024));
    return b;
  }();
  static const auto names = lookup_names(1024);
  std::size_t i = static_cast<std::size_t>(state.thread_index()) * 7919;
  for (auto _ : state) {
    benchmark::DoNotOptimize(balancer->locate(names[i % names.size()]));
    ++i;
  }
}
BENCHMARK(BM_AnuLocate)->Threads(1)->Threads(2)->Threads(4);

void BM_SimpleRandomLookup(benchmark::State& state) {
  balance::SimpleRandomBalancer balancer(16);
  balancer.register_file_sets(make_file_sets(1024));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        balancer.server_for(FileSetId(static_cast<std::uint32_t>(i % 1024))));
    ++i;
  }
}
BENCHMARK(BM_SimpleRandomLookup);

void BM_VirtualProcessorLookup(benchmark::State& state) {
  balance::VirtualProcessorConfig config;
  config.vp_per_server = static_cast<std::size_t>(state.range(0));
  balance::VirtualProcessorBalancer balancer(config, 16);
  balancer.register_file_sets(make_file_sets(1024));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        balancer.server_for(FileSetId(static_cast<std::uint32_t>(i % 1024))));
    ++i;
  }
}
BENCHMARK(BM_VirtualProcessorLookup)->Arg(1)->Arg(5)->Arg(10);

void BM_ChordRingLookup(benchmark::State& state) {
  // The §5.4 footnote alternative: O(log n) finger hops per lookup instead
  // of a replicated table. Simulated hops are pointer chases here; in a
  // deployment each is a network round-trip.
  const balance::ChordRing ring(static_cast<std::size_t>(state.range(0)));
  const auto names = lookup_names(1024);
  std::size_t i = 0;
  std::uint64_t hops = 0;
  for (auto _ : state) {
    const auto result = ring.lookup(names[i % names.size()]);
    benchmark::DoNotOptimize(result);
    hops += result.hops;
    ++i;
  }
  state.counters["hops/lookup"] =
      static_cast<double>(hops) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ChordRingLookup)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
