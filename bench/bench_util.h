// Shared output helpers for the figure harnesses.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "driver/experiment.h"

namespace anu::bench {

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("%s\n", text.c_str());
}

/// Prints a latency-over-time table: one row per window, one column per
/// server (the layout of the paper's Figs. 4 and 5, one panel per system).
inline void print_latency_series(const driver::ExperimentResult& result,
                                 const std::string& system) {
  std::vector<std::string> headers{"minute"};
  for (std::size_t s = 0; s < result.server_count; ++s) {
    headers.push_back("s" + std::to_string(s) + "_latency");
  }
  Table table(std::move(headers));
  const std::size_t windows = result.latency_over_time.empty()
                                  ? 0
                                  : result.latency_over_time[0].size();
  for (std::size_t w = 0; w < windows; ++w) {
    std::vector<double> row;
    row.push_back(result.latency_over_time[0][w].time / 60.0);
    for (std::size_t s = 0; s < result.server_count; ++s) {
      row.push_back(result.latency_over_time[s][w].value);
    }
    table.add_numeric_row(row, 3);
  }
  section(system + ": per-server latency over time (s)");
  table.print(std::cout);
}

/// One summary row per system (used by several harnesses).
inline std::vector<double> summary_row(
    const driver::ExperimentResult& result) {
  return {result.aggregate.mean(),       result.aggregate.stddev(),
          result.steady_state.mean(),    result.steady_state.stddev(),
          static_cast<double>(result.total_moved),
          static_cast<double>(result.shared_state_bytes)};
}

}  // namespace anu::bench
