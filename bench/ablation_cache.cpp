// Ablation: the cold-cache model (paper §5.3) instead of the one-shot move
// penalty.
//
// With the cache model on, EVERY request to a recently-acquired file set is
// slower until the acquiring server's cache warms; the shedding server's
// flush is modelled by evicting its entry. This prices movement the way
// §5.3 describes and shows the same ranking flip as the penalty ablation:
// per-round re-optimizers (prescient, VP) thrash caches, ANU preserves
// them ("load locality is maintained and caches of file sets are
// preserved", §4).
#include <cstdio>
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"
#include "driver/sweep.h"

using namespace anu;
using namespace anu::driver;

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Cold-cache ablation: latency vs cache-miss penalty factor\n");

  const auto workload = paper_synthetic_workload();
  // Factors beyond ~4 push the cold-phase offered load past total cluster
  // capacity at the paper operating point (0.55 x factor > 1), where every
  // system drowns and the comparison stops being informative.
  const std::vector<double> factors{1.0, 2.0, 3.0, 4.0};
  const SystemKind systems[] = {SystemKind::kAnu, SystemKind::kDynPrescient,
                                SystemKind::kVirtualProcessor};

  struct Cell {
    double mean = 0.0;
    std::size_t moves = 0;
  };
  const std::function<Cell(std::size_t)> job = [&](std::size_t index) {
    const double factor = factors[index / std::size(systems)];
    const SystemKind kind = systems[index % std::size(systems)];
    auto config = paper_experiment_config();
    config.cluster.cache.enabled = factor > 1.0;
    config.cluster.cache.cold_penalty_factor = factor;
    config.cluster.cache.warmup_requests = 20;
    SystemConfig system;
    system.kind = kind;
    auto balancer = make_balancer(system, config.cluster.server_speeds.size());
    const auto result = run_experiment(config, workload, *balancer);
    return Cell{result.aggregate.mean(), result.total_moved};
  };
  const auto cells =
      parallel_map<Cell>(factors.size() * std::size(systems), job);

  Table table({"cold_penalty_x", "anu_latency", "anu_moves",
               "prescient_latency", "prescient_moves", "vp_latency",
               "vp_moves"});
  for (std::size_t p = 0; p < factors.size(); ++p) {
    const Cell& anu = cells[p * std::size(systems) + 0];
    const Cell& prescient = cells[p * std::size(systems) + 1];
    const Cell& vp = cells[p * std::size(systems) + 2];
    table.add_row({format_double(factors[p], 0), format_double(anu.mean, 3),
                   std::to_string(anu.moves),
                   format_double(prescient.mean, 3),
                   std::to_string(prescient.moves),
                   format_double(vp.mean, 3), std::to_string(vp.moves)});
  }
  bench::section("aggregate latency vs cold-cache penalty");
  table.print(std::cout);

  bench::note("\nReading guide: every file set starts cold everywhere, so");
  bench::note("factor > 1 raises all systems' latency; the gap between the");
  bench::note("re-optimizers (thousands of cache flushes) and ANU (tens)");
  bench::note("widens with the penalty — section 4's cache-preservation");
  bench::note("claim, quantified. When movement is this expensive, raising");
  bench::note("the tuner dead band further trades balance for stability");
  bench::note("(see bench/ablation_tuner).");
  return 0;
}
