// Ablation: the tuning interval.
//
// Paper §5.1: "we use two minutes as the load placement tuning interval ...
// in order to avoid over-tuning while still providing responsiveness. It is
// possible to update load placement at any time scale." This sweep makes
// the tradeoff concrete: very short intervals react to burst noise (more
// movement, little latency gain — with few samples per interval the
// latency estimate is noisy); very long intervals leave imbalance standing
// (slow convergence from the blind start).
#include <cstdio>
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"
#include "driver/sweep.h"

using namespace anu;
using namespace anu::driver;

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Tuning-interval ablation (paper section 5.1: two minutes)\n");

  const auto workload = paper_synthetic_workload();
  const std::vector<double> intervals{15.0, 30.0, 60.0, 120.0, 300.0, 600.0,
                                      1200.0};

  const std::function<ExperimentResult(std::size_t)> job =
      [&](std::size_t i) {
        auto config = paper_experiment_config();
        config.tuning_interval = intervals[i];
        SystemConfig system;
        system.kind = SystemKind::kAnu;
        auto balancer =
            make_balancer(system, config.cluster.server_speeds.size());
        return run_experiment(config, workload, *balancer);
      };
  const auto results = parallel_map<ExperimentResult>(intervals.size(), job);

  Table table({"interval_s", "rounds", "mean_latency", "steady_mean",
               "filesets_moved", "moves_per_hour"});
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const auto& r = results[i];
    const double hours = r.horizon / 3600.0;
    table.add_row({format_double(intervals[i], 0),
                   std::to_string(r.tuning_rounds),
                   format_double(r.aggregate.mean(), 3),
                   format_double(r.steady_state.mean(), 3),
                   std::to_string(r.total_moved),
                   format_double(static_cast<double>(r.total_moved) / hours,
                                 1)});
  }
  bench::section("latency and movement vs tuning interval");
  table.print(std::cout);

  // --- control-plane pipeline latency at the default interval ------------
  const std::vector<double> delays{0.0, 1.0, 5.0, 15.0, 60.0};
  const std::function<ExperimentResult(std::size_t)> delay_job =
      [&](std::size_t i) {
        auto config = paper_experiment_config();
        config.control_delay = delays[i];
        SystemConfig system;
        system.kind = SystemKind::kAnu;
        auto balancer =
            make_balancer(system, config.cluster.server_speeds.size());
        return run_experiment(config, workload, *balancer);
      };
  const auto delay_results =
      parallel_map<ExperimentResult>(delays.size(), delay_job);
  Table delay_table({"control_delay_s", "mean_latency", "steady_mean",
                     "filesets_moved"});
  for (std::size_t i = 0; i < delays.size(); ++i) {
    const auto& r = delay_results[i];
    delay_table.add_row({format_double(delays[i], 0),
                         format_double(r.aggregate.mean(), 3),
                         format_double(r.steady_state.mean(), 3),
                         std::to_string(r.total_moved)});
  }
  bench::section("latency vs control-plane pipeline delay (120 s interval)");
  delay_table.print(std::cout);

  bench::note("\nReading guide: the sweet spot sits near the paper's two");
  bench::note("minutes — short intervals buy little latency for much more");
  bench::note("movement (over-tuning on burst noise); long intervals leave");
  bench::note("the blind start uncorrected for tens of minutes. Control-");
  bench::note("plane delay only matters once it rivals the interval itself.");
  return 0;
}
