// Control-plane study: the §4 protocol at message level.
//
// Two questions the paper's prose raises but never measures:
//   1. What does a tuning round cost on the wire? (reports in, one region
//      table out to everyone, shed notices) — and how does that scale with
//      cluster size? The table is O(servers), so a round's bytes are
//      O(servers^2) for the naive broadcast — still trivial for hundreds
//      of servers.
//   2. Does convergence survive slow control networks? The delegate's
//      grace window trades round completeness against reaction delay.
#include <cstdio>
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"
#include "driver/protocol_experiment.h"
#include "proto/network.h"
#include "proto/protocol.h"
#include "sim/sim_clock.h"

using namespace anu;
using namespace anu::proto;

namespace {

struct RunResult {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double share_ratio = 0.0;  // fastest/slowest share after the run
  bool agree = false;
};

RunResult run(std::size_t servers, double base_delay, double grace,
              std::uint64_t rounds) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  NetworkConfig net_config;
  net_config.base_delay = base_delay;
  Network net(clock, net_config, servers);
  ProtocolConfig config;
  config.report_grace = grace;
  std::vector<double> speeds(servers);
  for (std::size_t s = 0; s < servers; ++s) {
    speeds[s] = 1.0 + static_cast<double>(s % 9);
  }
  ProtocolCluster cluster(
      clock, net, config, servers, [&](std::uint32_t s, UnitPoint share) {
        return balance::ServerReport{
            share.to_double() / speeds[s] * 100.0 + 1e-6,
            static_cast<std::size_t>(share.to_double() * 1e4) + 1};
      });
  std::vector<std::string> names;
  for (std::size_t i = 0; i < servers * 10; ++i) {
    names.push_back("fs/" + std::to_string(i));
  }
  cluster.register_file_sets(names);
  sim.run_until(config.tuning_interval * static_cast<double>(rounds) + 30.0);

  RunResult result;
  result.rounds = cluster.updates_published();
  result.messages = net.messages_delivered();
  result.bytes = net.bytes_sent();
  result.agree = cluster.replicas_agree();
  double lo = 1e300, hi = 0.0;
  const auto& map = cluster.map_of(0);
  for (std::uint32_t s = 0; s < servers; ++s) {
    const double norm = map.share(ServerId(s)).to_double() / speeds[s];
    lo = std::min(lo, norm);
    hi = std::max(hi, norm);
  }
  result.share_ratio = hi / lo;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Control-plane protocol study (section 4 message flows)\n");

  Table scale({"servers", "rounds", "messages", "bytes_total",
               "bytes_per_round", "replicas_agree"});
  for (std::size_t servers : {5u, 10u, 20u, 40u, 80u}) {
    const auto r = run(servers, 0.001, 0.5, 30);
    scale.add_row({std::to_string(servers), std::to_string(r.rounds),
                   std::to_string(r.messages), std::to_string(r.bytes),
                   std::to_string(r.bytes / std::max<std::uint64_t>(r.rounds, 1)),
                   r.agree ? "yes" : "NO"});
  }
  bench::section("wire cost per tuning round vs cluster size (LAN, 1 ms)");
  scale.print(std::cout);

  Table delay({"one_way_delay_s", "grace_s", "rounds_done", "share_ratio",
               "replicas_agree"});
  for (double d : {0.001, 0.05, 0.5, 2.0}) {
    const auto r = run(5, d, std::max(0.5, 4.0 * d), 40);
    delay.add_row({format_double(d, 3), format_double(std::max(0.5, 4.0 * d), 1),
                   std::to_string(r.rounds), format_double(r.share_ratio, 2),
                   r.agree ? "yes" : "NO"});
  }
  bench::section("convergence vs control-network delay (5 servers)");
  delay.print(std::cout);

  // --- emergent membership: heartbeat detection latency -------------------
  {
    sim::Simulation sim;
    sim::SimClock clock(sim);
    Network net(clock, NetworkConfig{}, 5);
    ProtocolConfig config;
    config.use_heartbeats = true;
    const std::vector<double> speeds{1.0, 3.0, 5.0, 7.0, 9.0};
    ProtocolCluster cluster(
        clock, net, config, 5, [&](std::uint32_t s, UnitPoint share) {
          return balance::ServerReport{
              share.to_double() / speeds[s] * 100.0 + 1e-6,
              static_cast<std::size_t>(share.to_double() * 1e4) + 1};
        });
    std::vector<std::string> names;
    for (int i = 0; i < 40; ++i) names.push_back("hb/" + std::to_string(i));
    cluster.register_file_sets(names);
    sim.run_until(120.0 * 3 + 10.0);
    const double failed_at = sim.now();
    cluster.fail_server(0);  // no oracle: peers must detect via silence
    double detected_at = 0.0;
    while (sim.now() < failed_at + 30.0) {
      sim.run_until(sim.now() + 0.25);
      if (detected_at == 0.0 && !cluster.believed_up(1, 0)) {
        detected_at = sim.now();
      }
    }
    sim.run_until(120.0 * 6 + 10.0);
    bench::section("heartbeat membership (no oracle)");
    std::printf("delegate death detected by peers after %.2f s "
                "(suspect_after = %.1f s); region reclaimed at the next "
                "round; replicas agree: %s\n",
                detected_at - failed_at, config.heartbeat.suspect_after,
                cluster.replicas_agree() ? "yes" : "NO");
  }

  // --- full stack: queueing data plane through the message protocol ------
  {
    const auto workload = driver::paper_synthetic_workload();
    driver::ProtocolExperimentConfig protocol_config;
    protocol_config.cluster = cluster::paper_cluster();
    const auto through_protocol =
        driver::run_protocol_experiment(protocol_config, workload);

    driver::ExperimentConfig direct_config = driver::paper_experiment_config();
    driver::SystemConfig system;
    system.kind = driver::SystemKind::kAnu;
    auto balancer = driver::make_balancer(system, 5);
    const auto direct =
        driver::run_experiment(direct_config, workload, *balancer);

    Table check({"driver", "mean_latency", "steady_mean", "moves",
                 "weakest_served_pct"});
    auto row = [&](const char* label, const driver::ExperimentResult& r) {
      check.add_row({label, format_double(r.aggregate.mean(), 3),
                     format_double(r.steady_state.mean(), 3),
                     std::to_string(r.total_moved),
                     format_double(100.0 * static_cast<double>(r.served[0]) /
                                       static_cast<double>(
                                           r.requests_completed),
                                   2)});
    };
    row("direct (instant control)", direct);
    row("message protocol (LAN)", through_protocol);
    bench::section("validation: paper workload through both drivers");
    check.print(std::cout);
  }

  bench::note("\nShape checks: a round's wire cost is dominated by the");
  bench::note("O(servers) region table broadcast to O(servers) nodes;");
  bench::note("even two-second control delays only stretch the grace window");
  bench::note("— the protocol still completes every round and replicas");
  bench::note("agree, because versioned updates are idempotent.");
  return 0;
}
