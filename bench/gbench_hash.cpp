// google-benchmark: hash family and unit-interval mapping throughput.
// Addressing cost is the paper's efficiency argument (§1/§5.4): lookups are
// "one or a few hash computations", no I/O, no lookup table.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "hash/hash_family.h"

namespace {

std::vector<std::string> make_names(std::size_t count, std::size_t length) {
  std::vector<std::string> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string name = "fileset/path/" + std::to_string(i);
    while (name.size() < length) name.push_back('x');
    names.push_back(std::move(name));
  }
  return names;
}

void BM_Hash64(benchmark::State& state) {
  const auto names = make_names(1024, static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(anu::hash64(names[i % names.size()], 42));
    ++i;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Hash64)->Arg(8)->Arg(32)->Arg(128)->Arg(1024);

void BM_FamilyUnitPoint(benchmark::State& state) {
  const anu::HashFamily family;
  const auto names = make_names(1024, 32);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        family.unit_point(names[i % names.size()],
                          static_cast<std::uint32_t>(i & 3)));
    ++i;
  }
}
BENCHMARK(BM_FamilyUnitPoint);

void BM_FamilyProbeSequence(benchmark::State& state) {
  // Cost of a full expected lookup: two probes on average.
  const anu::HashFamily family;
  const auto names = make_names(1024, 32);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& name = names[i % names.size()];
    benchmark::DoNotOptimize(family.unit_point(name, 0));
    benchmark::DoNotOptimize(family.unit_point(name, 1));
    ++i;
  }
}
BENCHMARK(BM_FamilyProbeSequence);

}  // namespace
