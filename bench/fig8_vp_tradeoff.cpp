// Figure 8: performance of the virtual-processor system vs. number of VPs.
//
// Paper §5.4: vary the number of virtual processors from 5 to 50 (v = 1..10
// on 5 servers, 50 file sets). (a) latency falls sharply as VPs grow —
// coarse VPs cannot match load to capacity (a 4%-capacity server must hold
// 0 or 1 of 5 VPs, never 0.2); (b) close-up against ANU and dynamic
// prescient: parity with ANU requires a several-fold larger replicated
// address table, which keeps growing with the VP count while ANU's region
// table stays O(servers).
//
// Method notes (EXPERIMENTS.md discusses both):
//   * the VP curve is averaged over several file-set->VP hash seeds; with 5
//     VPs a single sharding is luck-dominated;
//   * the sweep runs at the paper operating point (55% offered load) and at
//     a hotter 65% where the granularity penalty is unambiguous — the paper
//     only says c was "tuned to avoid overload".
#include <cstdio>
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"
#include "driver/sweep.h"

using namespace anu;
using namespace anu::driver;

namespace {

constexpr std::size_t kSeeds = 6;

struct VpPoint {
  std::size_t vps = 0;
  double mean = 0.0;
  double stddev_of_means = 0.0;
  std::size_t state_bytes = 0;
};

void sweep_at(double utilization) {
  const auto workload = paper_synthetic_workload(utilization);
  const auto config = paper_experiment_config();
  const std::size_t servers = config.cluster.server_speeds.size();

  std::vector<std::size_t> factors;
  for (std::size_t v = 1; v <= 10; ++v) factors.push_back(v);

  // One job per (v, seed); all simulations are independent.
  const std::function<ExperimentResult(std::size_t)> job =
      [&](std::size_t index) {
        const std::size_t v = factors[index / kSeeds];
        const std::size_t seed = index % kSeeds;
        SystemConfig system;
        system.kind = SystemKind::kVirtualProcessor;
        system.vp.vp_per_server = v;
        system.vp.hash_seed = 0x1234 + seed * 1299827;
        auto balancer = make_balancer(system, servers);
        return run_experiment(config, workload, *balancer);
      };
  const auto runs =
      parallel_map<ExperimentResult>(factors.size() * kSeeds, job);

  std::vector<VpPoint> points;
  for (std::size_t f = 0; f < factors.size(); ++f) {
    VpPoint point;
    point.vps = factors[f] * servers;
    RunningStats means;
    for (std::size_t s = 0; s < kSeeds; ++s) {
      means.add(runs[f * kSeeds + s].aggregate.mean());
    }
    point.mean = means.mean();
    point.stddev_of_means = means.stddev();
    point.state_bytes = runs[f * kSeeds].shared_state_bytes;
    points.push_back(point);
  }

  SystemConfig anu_system;
  anu_system.kind = SystemKind::kAnu;
  auto anu_balancer = make_balancer(anu_system, servers);
  const auto anu = run_experiment(config, workload, *anu_balancer);
  SystemConfig prescient_system;
  prescient_system.kind = SystemKind::kDynPrescient;
  auto prescient_balancer = make_balancer(prescient_system, servers);
  const auto prescient = run_experiment(config, workload, *prescient_balancer);

  Table table({"system", "virtual_processors", "mean_latency",
               "stddev_over_seeds", "shared_state_bytes"});
  for (const auto& point : points) {
    table.add_row({"vp", std::to_string(point.vps),
                   format_double(point.mean, 3),
                   format_double(point.stddev_of_means, 3),
                   std::to_string(point.state_bytes)});
  }
  table.add_row({"anu", "-", format_double(anu.aggregate.mean(), 3), "-",
                 std::to_string(anu.shared_state_bytes)});
  table.add_row({"dyn-prescient", "-",
                 format_double(prescient.aggregate.mean(), 3), "-",
                 std::to_string(prescient.shared_state_bytes)});
  bench::section("latency vs #VPs at " +
                 format_double(utilization * 100.0, 0) + "% offered load" +
                 " (VP rows: mean over " + std::to_string(kSeeds) +
                 " shardings)");
  table.print(std::cout);

  std::size_t parity = 0;
  for (const auto& point : points) {
    if (point.mean <= anu.aggregate.mean()) {
      parity = point.vps;
      break;
    }
  }
  if (parity != 0) {
    std::printf("VP matches ANU from %zu VPs; replicated state there: VP %zu"
                " bytes vs ANU %zu bytes (VP state keeps growing, ANU's is"
                " fixed per cluster size)\n",
                parity, parity * 16, anu.shared_state_bytes);
  } else {
    std::printf("VP never matches ANU in this sweep\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Figure 8 reproduction: virtual-processor count tradeoff\n");
  sweep_at(0.55);
  sweep_at(0.65);
  bench::note("\nShape checks (paper Fig. 8): latency falls steeply from 5");
  bench::note("VPs as granularity refines; the VP address table grows");
  bench::note("linearly in the VP count while ANU's partition table is");
  bench::note("O(servers). The exact ANU/VP crossover depends on the VP");
  bench::note("mapper strength and offered load; see EXPERIMENTS.md.");
  return 0;
}
