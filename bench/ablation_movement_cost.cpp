// Ablation: what minimal movement is worth (paper §5.3).
//
// "It is very costly to move workload of a file set from one server to
// another in shared-disk clusters. The releasing server needs to flush its
// cache ... The acquiring server must initialize the file set [and] starts
// with a cold cache." The main figures charge no movement cost (matching
// the paper's simulator); this ablation prices each move as extra service
// demand on the file set's next request and sweeps that price. Dynamic
// prescient and the VP system re-optimize every round and move thousands
// of file sets; ANU moves two orders of magnitude less — so as movement
// cost grows, the oracle systems decay while ANU barely notices, and past
// a crossover ANU outperforms the "optimal" balancer.
#include <cstdio>
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"
#include "driver/sweep.h"

using namespace anu;
using namespace anu::driver;

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Movement-cost ablation: latency vs per-move cold-cache "
              "penalty\n");

  const auto workload = paper_synthetic_workload();
  const std::vector<double> penalties{0.0, 1.0, 5.0, 20.0, 60.0};
  const SystemKind systems[] = {SystemKind::kAnu, SystemKind::kDynPrescient,
                                SystemKind::kVirtualProcessor};

  struct Cell {
    double mean = 0.0;
    std::size_t moves = 0;
  };
  const std::size_t jobs = penalties.size() * std::size(systems);
  const std::function<Cell(std::size_t)> job = [&](std::size_t index) {
    const double penalty = penalties[index / std::size(systems)];
    const SystemKind kind = systems[index % std::size(systems)];
    auto config = paper_experiment_config();
    config.move_warmup_penalty = penalty;
    SystemConfig system;
    system.kind = kind;
    auto balancer = make_balancer(system, config.cluster.server_speeds.size());
    const auto result = run_experiment(config, workload, *balancer);
    return Cell{result.aggregate.mean(), result.total_moved};
  };
  const auto cells = parallel_map<Cell>(jobs, job);

  Table table({"penalty_s", "anu_latency", "anu_moves", "prescient_latency",
               "prescient_moves", "vp_latency", "vp_moves"});
  for (std::size_t p = 0; p < penalties.size(); ++p) {
    const Cell& anu = cells[p * std::size(systems) + 0];
    const Cell& prescient = cells[p * std::size(systems) + 1];
    const Cell& vp = cells[p * std::size(systems) + 2];
    table.add_row({format_double(penalties[p], 0),
                   format_double(anu.mean, 3), std::to_string(anu.moves),
                   format_double(prescient.mean, 3),
                   std::to_string(prescient.moves),
                   format_double(vp.mean, 3), std::to_string(vp.moves)});
  }
  bench::section("aggregate latency vs movement cost");
  table.print(std::cout);

  bench::note("\nReading guide: ANU's conservatism (dead-banded tuning,");
  bench::note("locality-preserving region scaling) keeps its move count two");
  bench::note("orders of magnitude below the per-round re-optimizers, so");
  bench::note("rising movement cost flips the ranking — the quantified form");
  bench::note("of the paper's section 5.3 argument.");
  return 0;
}
