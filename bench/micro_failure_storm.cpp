// Resilience under membership churn — quantifying §4's failure/recovery
// story at paper scale.
//
// The paper asserts ANU "performs well when servers fail or recover ...
// maintaining good load balance and preserving load locality" but shows no
// figure. This harness runs the synthetic workload while a randomized
// fail/recover storm takes servers down (one at a time, fixed downtime)
// and compares all four systems on: completed requests, mean latency, and
// movement — plus a no-storm baseline delta.
#include <cstdio>
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "cluster/failure_schedule.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"
#include "driver/sweep.h"

using namespace anu;
using namespace anu::driver;

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Failure-storm resilience (section 4 failure/recovery claims)\n");
  std::printf("(synthetic paper workload; 6 fail/recover rounds of 8 min "
              "downtime each)\n");

  const auto workload = paper_synthetic_workload();
  auto calm = paper_experiment_config();
  auto storm = paper_experiment_config();
  storm.failures = cluster::FailureSchedule::random_fail_recover(
      /*seed=*/11, /*server_count=*/5, /*rounds=*/6,
      /*horizon=*/workload.span(), /*downtime=*/480.0);

  struct Cell {
    ExperimentResult calm;
    ExperimentResult storm;
  };
  const std::function<Cell(std::size_t)> job = [&](std::size_t index) {
    const SystemKind kind = kAllSystems[index];
    Cell cell;
    {
      SystemConfig system;
      system.kind = kind;
      auto balancer = make_balancer(system, 5);
      cell.calm = run_experiment(calm, workload, *balancer);
    }
    {
      SystemConfig system;
      system.kind = kind;
      auto balancer = make_balancer(system, 5);
      cell.storm = run_experiment(storm, workload, *balancer);
    }
    return cell;
  };
  const auto cells = parallel_map<Cell>(4, job);

  Table table({"system", "calm_latency", "storm_latency", "latency_factor",
               "storm_completed_pct", "storm_moves"});
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& cell = cells[i];
    table.add_row(
        {system_label(kAllSystems[i]),
         format_double(cell.calm.aggregate.mean(), 3),
         format_double(cell.storm.aggregate.mean(), 3),
         format_double(cell.storm.aggregate.mean() /
                           cell.calm.aggregate.mean(),
                       2),
         format_double(100.0 *
                           static_cast<double>(cell.storm.requests_completed) /
                           static_cast<double>(cell.storm.requests_issued),
                       2),
         std::to_string(cell.storm.total_moved)});
  }
  bench::section("calm vs storm, all systems");
  table.print(std::cout);

  bench::note("\nShape checks: no adaptive system loses requests (flushed");
  bench::note("work re-dispatches through the updated placement); ANU");
  bench::note("absorbs the storm with a bounded latency factor and a move");
  bench::note("count that stays orders of magnitude below the per-round");
  bench::note("re-optimizers', because survivors absorb a failed share by");
  bench::note("region scaling rather than global reassignment.");
  return 0;
}
