// Event-kernel throughput: the queue-heavy scenario that gates the ladder
// queue + slab storage against regression.
//
// Unlike gbench_sim (whose BENCH json counts benchmark iterations across
// every scenario), this harness counts real simulation events, so its
// events_per_sec is the kernel's dispatch throughput and the checked-in
// baseline is a direct floor on it. Three workloads, weighted toward the
// patterns the experiment driver produces:
//
//   dispatch — pre-scheduled calendar drained to completion (arrival
//              bursts); exercises top transfer, rung scatter, bucket sort.
//   churn    — schedule, cancel half, drain (timer churn of FifoResource
//              fail() and monitor re-arms); exercises handle cancellation
//              and slab slot recycling.
//
// Deliberately queue-heavy only: the one-pending-event chain pattern is
// queue-light and lives in gbench_sim (BM_EventScheduleInterleaved).
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "sim/simulation.h"

using namespace anu;
using namespace anu::sim;

namespace {

std::uint64_t run_dispatch(std::size_t batch) {
  Simulation sim;
  for (std::size_t i = 0; i < batch; ++i) {
    sim.schedule_at(static_cast<double>(i), [] {});
  }
  return sim.run_to_completion();
}

std::uint64_t run_churn(std::size_t batch) {
  Simulation sim;
  std::vector<EventHandle> handles;
  handles.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    handles.push_back(sim.schedule_at(
        static_cast<double>(i % 97) + static_cast<double>(i) * 1e-4, [] {}));
  }
  for (std::size_t i = 0; i < batch; i += 2) handles[i].cancel();
  // Cancelled events still transit the queue; count them as kernel work.
  sim.run_to_completion();
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  bool short_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
  }
  const int passes = short_mode ? 2 : 6;
  const std::size_t batch = 1u << 16;  // 65 536 events per workload pass

  std::uint64_t events = 0;
  for (int pass = 0; pass < passes; ++pass) {
    events += run_dispatch(batch);
    events += run_churn(batch);
  }
  report.add_events(events);
  std::printf("event kernel: %llu events across %d passes "
              "(dispatch/churn)\n",
              static_cast<unsigned long long>(events), passes);
  bench::note("events_per_sec in the BENCH json is true kernel dispatch");
  bench::note("throughput; bench_compare gates it against the baseline.");
  return 0;
}
