// §4 addressing claims (not a numbered figure):
//   * "On average, the system requires two probes to assign a file set" —
//     successive probes succeed with probability 1/2 under half occupancy,
//     so probe counts are geometric(1/2) with mean 2 and tail 2^-r;
//   * load balance within a small constant of m/n for m file sets on n
//     servers (the paper cites the SIEVE bound ceil(m/n + 1) w.h.p. with
//     the multiple-choice heuristic; plain re-hash placement concentrates a
//     bit more but stays far below simple randomization's lg n / lg lg n
//     skew when shares are equal).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "core/anu_balancer.h"

using namespace anu;
using namespace anu::core;

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Addressing microbenchmark: probe counts and placement balance\n");

  // --- probe-count distribution -----------------------------------------
  AnuBalancer balancer(AnuConfig{}, 5);
  constexpr int kLookups = 200'000;
  std::vector<std::size_t> by_probes(12, 0);
  double total_probes = 0.0;
  for (int i = 0; i < kLookups; ++i) {
    const auto lookup = balancer.locate("probe/" + std::to_string(i));
    ++by_probes[std::min<std::size_t>(lookup.probes, by_probes.size() - 1)];
    total_probes += lookup.probes;
  }
  Table probes({"probes", "lookups", "fraction", "geometric(1/2)"});
  double expect = 0.5;
  for (std::size_t r = 1; r < by_probes.size() - 1; ++r) {
    probes.add_row({std::to_string(r), std::to_string(by_probes[r]),
                    format_double(static_cast<double>(by_probes[r]) / kLookups, 5),
                    format_double(expect, 5)});
    expect /= 2.0;
  }
  bench::section("probe-count distribution (expect 2^-r tail)");
  probes.print(std::cout);
  std::printf("mean probes per lookup: %.4f (paper: 2 on average)\n",
              total_probes / kLookups);

  // --- placement balance: m file sets on n equal servers -----------------
  bench::section("placement balance, m file sets on n equal-share servers");
  Table balance({"n_servers", "m_filesets", "m/n", "max_load", "min_load",
                 "max-m/n"});
  for (std::size_t n : {4u, 8u, 16u}) {
    for (std::size_t m : {64u, 256u, 1024u}) {
      AnuBalancer bal(AnuConfig{}, n);
      std::vector<workload::FileSet> fs;
      for (std::uint32_t i = 0; i < m; ++i) {
        fs.push_back({FileSetId(i), "bal/" + std::to_string(i), 1.0});
      }
      bal.register_file_sets(fs);
      std::vector<std::size_t> counts(n, 0);
      for (std::uint32_t i = 0; i < m; ++i) {
        ++counts[bal.server_for(FileSetId(i)).value()];
      }
      std::size_t lo = m, hi = 0;
      for (auto c : counts) {
        lo = std::min(lo, c);
        hi = std::max(hi, c);
      }
      balance.add_row(
          {std::to_string(n), std::to_string(m),
           format_double(static_cast<double>(m) / static_cast<double>(n), 1),
           std::to_string(hi), std::to_string(lo),
           format_double(static_cast<double>(hi) -
                             static_cast<double>(m) / static_cast<double>(n),
                         1)});
    }
  }
  balance.print(std::cout);

  // --- one-choice vs the SIEVE two-choice heuristic -----------------------
  bench::section("placement balance: single vs multiple choice (section 4)");
  Table choice_table({"choices", "n", "m", "max_load", "max-m/n",
                      "extra_state_bytes"});
  for (std::uint32_t choices : {1u, 2u, 4u}) {
    for (std::size_t m : {256u, 1024u}) {
      const std::size_t n = 8;
      AnuConfig config;
      config.placement_choices = choices;
      AnuBalancer bal(config, n);
      std::vector<workload::FileSet> fs;
      for (std::uint32_t i = 0; i < m; ++i) {
        fs.push_back({FileSetId(i), "mc/" + std::to_string(i), 1.0});
      }
      bal.register_file_sets(fs);
      std::vector<std::size_t> counts(n, 0);
      for (std::uint32_t i = 0; i < m; ++i) {
        ++counts[bal.server_for(FileSetId(i)).value()];
      }
      std::size_t hi = 0;
      for (auto c : counts) hi = std::max(hi, c);
      const std::size_t base = AnuBalancer(AnuConfig{}, n).shared_state_bytes();
      choice_table.add_row(
          {std::to_string(choices), std::to_string(n), std::to_string(m),
           std::to_string(hi),
           format_double(static_cast<double>(hi) -
                             static_cast<double>(m) / static_cast<double>(n),
                         1),
           std::to_string(bal.shared_state_bytes() - base)});
    }
  }
  choice_table.print(std::cout);

  bench::note("\nShape check: max load stays within a small additive band of");
  bench::note("m/n before any tuning; the delegate then removes residual");
  bench::note("hashing variance (paper (section 4): better balance than simple");
  bench::note("randomization even for homogeneous servers and file sets).");
  return 0;
}
