// §5.4 shared-state vs addressing-cost comparison, including the footnote's
// Chord-ring alternative.
//
// Four ways to resolve "which server holds file set X":
//   * ANU region table: replicate O(partitions) bytes everywhere, ~2 hash
//     probes, no network hops;
//   * VP full table: replicate O(#VPs) bytes everywhere, 1 hash + 1 table
//     lookup;
//   * VP on a Chord ring (footnote 1): keep O(log n) routing state per
//     node, pay O(log n) ring hops per lookup;
//   * simple hashing: membership list only, 1 probe — but cannot balance.
// This harness measures all four on the same file-set population.
#include <cstdio>
#include <iostream>

#include "bench_report.h"
#include "balance/chord_ring.h"
#include "balance/virtual_processor.h"
#include "bench_util.h"
#include "core/anu_balancer.h"

using namespace anu;

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Addressing-scheme comparison (section 5.4 + footnote 1)\n");

  constexpr std::size_t kServers = 5;
  constexpr std::size_t kFileSets = 50;
  std::vector<workload::FileSet> file_sets;
  for (std::uint32_t i = 0; i < kFileSets; ++i) {
    file_sets.push_back({FileSetId(i), "fs/" + std::to_string(i), 1.0});
  }

  Table table({"scheme", "replicated_bytes_per_node", "mean_probes_or_hops",
               "notes"});

  {
    core::AnuBalancer anu_bal(core::AnuConfig{}, kServers);
    anu_bal.register_file_sets(file_sets);
    double probes = 0.0;
    for (const auto& fs : file_sets) {
      probes += anu_bal.locate(fs.name).probes;
    }
    table.add_row({"anu-region-table",
                   std::to_string(anu_bal.shared_state_bytes()),
                   format_double(probes / kFileSets, 2),
                   "adaptive; O(servers) state"});
  }

  for (std::size_t v : {5ul, 10ul}) {
    balance::VirtualProcessorConfig config;
    config.vp_per_server = v;
    balance::VirtualProcessorBalancer vp_bal(config, kServers);
    vp_bal.register_file_sets(file_sets);
    table.add_row({"vp-full-table(" + std::to_string(v * kServers) + ")",
                   std::to_string(vp_bal.shared_state_bytes()), "1.00",
                   "grows with #VPs"});

    // Same VP population addressed through a Chord ring instead.
    balance::ChordRing ring(v * kServers);
    for (std::uint32_t node = 0; node < ring.node_count(); ++node) {
      ring.set_payload(node, ServerId(node % kServers));
    }
    double hops = 0.0;
    for (const auto& fs : file_sets) {
      hops += ring.lookup(fs.name).hops;
    }
    table.add_row({"vp-chord-ring(" + std::to_string(v * kServers) + ")",
                   std::to_string(ring.per_node_state_bytes()),
                   format_double(hops / kFileSets, 2),
                   "O(log n) state, O(log n) hops"});
  }

  table.add_row({"simple-hash", std::to_string(kServers * 4), "1.00",
                 "static; cannot balance"});
  bench::section("replicated state vs addressing cost");
  table.print(std::cout);

  bench::note("\nShape check (section 5.4): the full VP table's replicated");
  bench::note("state grows with the VP count; Chord trades that for log(n)");
  bench::note("hops per lookup (network round-trips in a real deployment);");
  bench::note("ANU keeps both probes (~2, local) and state (O(servers)) small.");
  return 0;
}
