// Custom google-benchmark main: identical to benchmark_main plus the
// machine-readable BENCH_<name>.json artifact (bench_report.h). Events are
// the summed benchmark iterations, so events_per_sec tracks aggregate
// micro-benchmark throughput across commits.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_report.h"

namespace {

/// Console output as usual, while summing iterations for the report.
class CountingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (!run.error_occurred) {
        iterations_ += static_cast<std::uint64_t>(run.iterations);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }

 private:
  std::uint64_t iterations_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CountingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  report.add_events(reporter.iterations());
  benchmark::Shutdown();
  return 0;
}
