// Figure 6: aggregated metrics comparison.
//
// (a) Aggregate average latency of all requests in the synthetic workload,
//     with standard deviation, for dynamic prescient, virtual processors
//     (v = 5) and ANU randomization (simple randomization included for
//     scale). Paper shape: prescient best; VP slightly worse (large
//     workload unit); ANU "fairly close" to prescient with no a-priori
//     knowledge.
// (b) Average latency of tasks served by each individual server. Paper
//     shape: consistent per-server latency under ANU except server 0 (the
//     weakest), which serves ~0.4% of requests, mostly pre-convergence.
#include <cstdio>
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"
#include "metrics/consistency.h"

using namespace anu;
using namespace anu::driver;

int main(int argc, char** argv) {
  anu::bench::BenchReport bench_report(&argc, argv);
  std::printf("Figure 6 reproduction: aggregated metrics, synthetic workload\n");

  const auto workload = paper_synthetic_workload();
  const auto config = paper_experiment_config();

  Table aggregate({"system", "mean_latency", "stddev", "steady_mean",
                   "steady_stddev", "p50", "p95", "p99"});
  Table consistency({"system", "latency_cv", "max_over_min",
                     "servers_counted", "near_idle_servers",
                     "near_idle_request_share_pct"});
  Table per_server({"system", "server", "speed", "mean_latency", "served",
                    "served_pct", "utilization"});

  for (SystemKind kind : kAllSystems) {
    SystemConfig system;
    system.kind = kind;
    auto balancer = make_balancer(system, config.cluster.server_speeds.size());
    const auto result = run_experiment(config, workload, *balancer);
    bench_report.add_events(result.requests_completed);

    aggregate.add_row({system_label(kind),
                       format_double(result.aggregate.mean(), 3),
                       format_double(result.aggregate.stddev(), 3),
                       format_double(result.steady_state.mean(), 3),
                       format_double(result.steady_state.stddev(), 3),
                       format_double(result.latency_histogram.quantile(0.50), 3),
                       format_double(result.latency_histogram.quantile(0.95), 3),
                       format_double(result.latency_histogram.quantile(0.99), 3)});

    // Servers below 2% of requests are reported as near-idle rather than
    // folded into the consistency statistic — the paper's own §5.2.2
    // analysis discounts the weakest server (0.37% of requests) the same
    // way: "the inconsistency of server 0 does not introduce significant
    // skew into system-wide performance consistency".
    const auto report =
        metrics::performance_consistency(result.per_server, 0.02);
    consistency.add_row({system_label(kind),
                         format_double(report.latency_cv, 3),
                         format_double(report.max_over_min, 2),
                         std::to_string(report.servers_counted),
                         std::to_string(report.servers_excluded),
                         format_double(100.0 * report.excluded_request_share,
                                       2)});

    for (std::size_t s = 0; s < result.server_count; ++s) {
      const double pct = 100.0 * static_cast<double>(result.served[s]) /
                         static_cast<double>(result.requests_completed);
      per_server.add_row(
          {system_label(kind), std::to_string(s),
           format_double(config.cluster.server_speeds[s], 0),
           format_double(result.per_server[s].mean(), 3),
           std::to_string(result.served[s]), format_double(pct, 2),
           format_double(result.utilization[s], 3)});
    }
  }

  bench::section("Fig. 6(a): aggregate average latency +- stddev");
  aggregate.print(std::cout);

  bench::section("Fig. 6(b): average latency per individual server");
  per_server.print(std::cout);

  bench::section("performance consistency (section 5.2.2 / SLA view)");
  consistency.print(std::cout);

  bench::note("\nShape checks (paper Fig. 6):");
  bench::note(" - prescient <= VP and prescient <= ANU <= simple (by far)");
  bench::note(" - ANU per-server means consistent except the weakest server,");
  bench::note("   which serves a sub-percent share of requests");
  return 0;
}
