// Ablation of the delegate's update rule (DESIGN.md substitution: the
// paper defers the exact "average"/scaling rule to ref [40]; we realize it
// as a damped multiplicative update with caps, an idle-growth nudge, a
// share floor and a dead band). This harness shows how each knob trades
// convergence speed, steady-state latency and load movement on the paper's
// synthetic workload.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_report.h"
#include "bench_util.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"
#include "driver/sweep.h"

using namespace anu;
using namespace anu::driver;

namespace {

struct Variant {
  std::string label;
  core::TunerConfig tuner;
};

ExperimentResult run_variant(const workload::Workload& workload,
                             const ExperimentConfig& config,
                             const core::TunerConfig& tuner) {
  SystemConfig system;
  system.kind = SystemKind::kAnu;
  system.anu.tuner = tuner;
  auto balancer = make_balancer(system, config.cluster.server_speeds.size());
  return run_experiment(config, workload, *balancer);
}

}  // namespace

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Tuner ablation: delegate update-rule knobs on the synthetic "
              "workload\n");

  const auto workload = paper_synthetic_workload();
  const auto config = paper_experiment_config();
  const core::TunerConfig defaults;

  std::vector<Variant> variants;
  variants.push_back({"default", defaults});
  for (double alpha : {0.1, 0.6, 1.0}) {
    auto t = defaults;
    t.alpha = alpha;
    variants.push_back({"alpha=" + format_double(alpha, 1), t});
  }
  for (double cap : {1.15, 2.0, 4.0}) {
    auto t = defaults;
    t.growth_cap = cap;
    t.shrink_cap = 2.0 * cap;
    t.idle_growth = cap;
    variants.push_back({"caps=" + format_double(cap, 2), t});
  }
  for (double band : {0.0, 1.0}) {
    auto t = defaults;
    t.dead_band = band;
    variants.push_back({"band=" + format_double(band, 1), t});
  }
  for (double floor_frac : {0.001, 0.5}) {
    auto t = defaults;
    t.min_share_fraction = floor_frac;
    variants.push_back({"floor=" + format_double(floor_frac, 3), t});
  }
  {
    auto t = defaults;
    t.idle_growth = 1.01;  // starved servers effectively never return
    variants.push_back({"idle_growth=1.01", t});
  }

  const std::function<ExperimentResult(std::size_t)> job =
      [&](std::size_t i) {
        return run_variant(workload, config, variants[i].tuner);
      };
  const auto results = parallel_map<ExperimentResult>(variants.size(), job);

  Table table({"variant", "mean_latency", "stddev", "steady_mean",
               "steady_stddev", "filesets_moved", "pct_workload_moved"});
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& r = results[i];
    table.add_row({variants[i].label, format_double(r.aggregate.mean(), 3),
                   format_double(r.aggregate.stddev(), 3),
                   format_double(r.steady_state.mean(), 3),
                   format_double(r.steady_state.stddev(), 3),
                   std::to_string(r.total_moved),
                   format_double(r.percent_workload_moved, 1)});
  }
  bench::section("ablation results");
  table.print(std::cout);

  bench::note("\nReading guide:");
  bench::note(" - alpha/caps too small: slow convergence (high whole-run mean)");
  bench::note(" - caps too large: steady-state oscillation (high stddev+moves)");
  bench::note(" - band=0: movement churn in steady state (Fig. 7 would not be");
  bench::note("   quiet after convergence)");
  bench::note(" - floor too small or idle_growth~1: starved servers cannot");
  bench::note("   climb back; load over-concentrates");
  return 0;
}
