#include "bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/build_info.h"
#include "obs/json.h"

namespace anu::bench {

namespace {

std::string basename_of(const char* path) {
  const std::string s = path ? path : "bench";
  const std::size_t slash = s.find_last_of('/');
  return slash == std::string::npos ? s : s.substr(slash + 1);
}

/// Peak resident set size in bytes; 0 where the platform has no getrusage.
std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // already bytes
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB
#endif
#else
  return 0;
#endif
}

}  // namespace

BenchReport::BenchReport(int* argc, char** argv)
    : name_(basename_of(*argc > 0 ? argv[0] : nullptr)),
      start_(std::chrono::steady_clock::now()) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < *argc) {
      path_ = argv[i + 1];
      // Close the two-argument gap so downstream parsers (google-benchmark's
      // Initialize) never see the flag.
      for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
      *argc -= 2;
      break;
    }
  }
  if (path_.empty()) {
    if (const char* dir = std::getenv("ANU_BENCH_JSON_DIR")) {
      path_ = std::string(dir) + "/BENCH_" + name_ + ".json";
    }
  }
}

BenchReport::~BenchReport() { write(); }

bool BenchReport::write() {
  if (path_.empty() || written_) return true;
  written_ = true;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const auto events = events_.load(std::memory_order_relaxed);
  obs::Json doc = obs::Json::object();
  doc.set("schema", "anu.bench");
  doc.set("schema_version", kBenchSchemaVersion);
  doc.set("name", name_);
  doc.set("git", obs::git_describe());
  doc.set("wall_time_s", wall);
  doc.set("events", events);
  doc.set("events_per_sec",
          wall > 0.0 ? static_cast<double>(events) / wall : 0.0);
  doc.set("peak_rss_bytes", peak_rss_bytes());
  std::ofstream os(path_);
  if (os) {
    doc.write_pretty(os);
    os << '\n';
  }
  if (!os) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path_.c_str());
    return false;
  }
  std::printf("wrote %s\n", path_.c_str());
  return true;
}

}  // namespace anu::bench
