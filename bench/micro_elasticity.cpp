// §4 elasticity narrative (Fig. 3 and the failure/recovery discussion):
//   * adding a fifth server to a four-server system re-partitions the unit
//     interval 8 -> 16 without moving any existing load;
//   * failure: the failed server's file sets re-hash to survivors (plus a
//     small measured collateral from survivor growth mapping fresh space);
//   * recovery: the server re-enters in a free partition with a small share.
// This harness quantifies movement for each membership event.
#include <cstdio>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_report.h"
#include "balance/linear_hashing.h"
#include "bench_util.h"
#include "core/anu_balancer.h"

using namespace anu;
using namespace anu::core;

namespace {

std::vector<workload::FileSet> make_file_sets(std::size_t n) {
  std::vector<workload::FileSet> fs;
  for (std::uint32_t i = 0; i < n; ++i) {
    fs.push_back({FileSetId(i), "els/" + std::to_string(i), 1.0});
  }
  return fs;
}

}  // namespace

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Elasticity microbenchmark: re-partitioning and membership\n");

  // --- Fig. 3: adding the fifth server re-partitions without moving load.
  bench::section("re-partitioning on add (paper Fig. 3)");
  {
    AnuBalancer bal(AnuConfig{}, 4);
    const auto fs = make_file_sets(50);
    bal.register_file_sets(fs);
    std::printf("4 servers: %zu partitions\n",
                bal.region_map().partition_count());
    const auto moves = bal.on_server_added(ServerId(4));
    std::printf("added server 4 -> %zu partitions; file sets moved: %zu "
                "(all to the newcomer or its displaced space)\n",
                bal.region_map().partition_count(), moves.moved_count());
    std::size_t to_newcomer = 0;
    for (const auto& m : moves.moves) to_newcomer += m.to == ServerId(4);
    std::printf("moves landing on the new server: %zu/%zu\n", to_newcomer,
                moves.moved_count());
  }

  // --- failure / recovery movement accounting over many trials.
  bench::section("failure movement: owned vs collateral (100 trials)");
  Table table({"event", "mean_moved", "mean_owned", "mean_collateral",
               "collateral_pct_of_filesets"});
  constexpr std::size_t kTrials = 100;
  constexpr std::size_t kSets = 50;
  double fail_moved = 0, fail_owned = 0, recover_moved = 0;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    AnuConfig config;
    config.hash_seed = 0x1000 + trial;  // vary hashing, same structure
    AnuBalancer bal(config, 5);
    bal.register_file_sets(make_file_sets(kSets));
    const auto victim = ServerId(static_cast<std::uint32_t>(trial % 5));
    std::set<std::uint32_t> owned;
    for (std::uint32_t i = 0; i < kSets; ++i) {
      if (bal.server_for(FileSetId(i)) == victim) owned.insert(i);
    }
    const auto fail = bal.on_server_failed(victim);
    fail_moved += static_cast<double>(fail.moved_count());
    for (const auto& m : fail.moves) {
      fail_owned += owned.count(m.file_set.value()) ? 1.0 : 0.0;
    }
    const auto recover = bal.on_server_recovered(victim);
    recover_moved += static_cast<double>(recover.moved_count());
  }
  const double collateral = (fail_moved - fail_owned) / kTrials;
  table.add_row({"fail", format_double(fail_moved / kTrials, 2),
                 format_double(fail_owned / kTrials, 2),
                 format_double(collateral, 2),
                 format_double(100.0 * collateral / kSets, 1)});
  table.add_row({"recover", format_double(recover_moved / kTrials, 2), "-",
                 "-", "-"});
  table.print(std::cout);

  // --- contrast with linear hashing on pure growth (§4's citation [20]) ---
  bench::section("growth movement: ANU re-partitioning vs linear hashing");
  {
    constexpr std::size_t kKeys = 50;
    Table growth({"scheme", "grow_step", "filesets_moved"});

    // ANU: add servers 4 -> 8; each addition re-partitions (when needed)
    // and seats the newcomer; count actual placement changes.
    AnuBalancer bal(AnuConfig{}, 4);
    bal.register_file_sets(make_file_sets(kKeys));
    for (std::uint32_t added = 4; added < 8; ++added) {
      const auto moves = bal.on_server_added(ServerId(added));
      growth.add_row({"anu", std::to_string(added) + "->" +
                                 std::to_string(added + 1),
                      std::to_string(moves.moved_count())});
    }

    // Linear hashing: same growth path; count keys whose bucket changed.
    balance::LinearHashing lh(4);
    std::vector<std::uint32_t> where(kKeys);
    const auto fs = make_file_sets(kKeys);
    for (std::size_t i = 0; i < kKeys; ++i) {
      where[i] = lh.bucket_of(fs[i].name);
    }
    for (std::uint32_t added = 4; added < 8; ++added) {
      lh.add_bucket();
      std::size_t moved = 0;
      for (std::size_t i = 0; i < kKeys; ++i) {
        const auto now = lh.bucket_of(fs[i].name);
        if (now != where[i]) {
          ++moved;
          where[i] = now;
        }
      }
      growth.add_row({"linear-hashing", std::to_string(added) + "->" +
                                            std::to_string(added + 1),
                      std::to_string(moved)});
    }
    growth.print(std::cout);
    bench::note("raw move counts are similar at this scale; the differences");
    bench::note("are what the moves buy. ANU's moves seat the newcomer with");
    bench::note("a tunable share (the delegate then adapts it to capacity),");
    bench::note("and the addressing-table refinement itself (8->16) moved");
    bench::note("zero file sets — section 4's contrast with linear hashing,");
    bench::note("whose splits are fixed-size rehash churn and whose");
    bench::note("mid-doubling state leaves split buckets holding half the");
    bench::note("load of unsplit ones (structural imbalance ANU never has).");
  }

  bench::note("\nShape checks (paper section 4): re-partitioning moves zero");
  bench::note("load; failure moves essentially the failed server's file sets");
  bench::note("(collateral capture stays a small fraction); recovery moves a");
  bench::note("partition-sized sliver to the returning server.");
  return 0;
}
