// Figure 4: server latency for file-system trace (DFSTrace) workloads.
//
// Paper §5.1/§5.2.1: a one-hour DFSTrace workload with 21 file sets and
// 112,590 requests drives the same four systems; the point of the figure is
// that trace-driven results show "the same scaling and tuning properties"
// as the synthetic workload, sanity-checking the synthetic generator.
//
// DFSTrace itself is not redistributable; per DESIGN.md we synthesize a
// trace with its published shape (21 file sets, 112,590 requests, one hour,
// Zipf-skewed file-set popularity, bursty non-stationary arrivals).
#include <cstdio>
#include <iostream>

#include "bench_report.h"
#include "bench_util.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"

using namespace anu;
using namespace anu::driver;

int main(int argc, char** argv) {
  anu::bench::BenchReport report(&argc, argv);
  std::printf("Figure 4 reproduction: server latency, DFSTrace-shaped trace\n");
  std::printf("(112,590 requests / 21 file sets / 60 min; servers 1,3,5,7,9;"
              " 2-min tuning)\n");

  const auto workload = paper_trace_workload();
  auto config = paper_experiment_config();
  config.series_window = 120.0;  // finer windows: the run is only an hour

  for (SystemKind kind : kAllSystems) {
    SystemConfig system;
    system.kind = kind;
    auto balancer = make_balancer(system, config.cluster.server_speeds.size());
    const auto result = run_experiment(config, workload, *balancer);
    report.add_events(result.requests_completed);
    bench::print_latency_series(result, system_label(kind));
    std::printf("requests completed: %llu/%llu, aggregate latency %.3f s\n",
                static_cast<unsigned long long>(result.requests_completed),
                static_cast<unsigned long long>(result.requests_issued),
                result.aggregate.mean());
  }

  bench::note("\nShape check (paper Fig. 4): same qualitative behaviour as");
  bench::note("Fig. 5 — ANU converges within a few rounds on trace input too,");
  bench::note("confirming the synthetic workload's sanity.");
  return 0;
}
