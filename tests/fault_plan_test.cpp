// Fault-plan unit tests plus the network integration contract: what gets
// dropped, what gets charged, and that every injection is deterministic
// and accounted by cause.
#include "faults/fault_plan.h"

#include <gtest/gtest.h>

#include "proto/network.h"
#include "sim/sim_clock.h"
#include "sim/simulation.h"

namespace anu::faults {
namespace {

TEST(FaultPlan, CleanPlanTouchesNothing) {
  FaultPlan plan(FaultPlanConfig{});
  for (int i = 0; i < 100; ++i) {
    const auto d = plan.decide(0, 1, static_cast<SimTime>(i));
    EXPECT_FALSE(d.drop);
    EXPECT_EQ(d.copies, 1u);
    EXPECT_DOUBLE_EQ(d.extra_delay, 0.0);
  }
  EXPECT_EQ(plan.injected_losses(), 0u);
  EXPECT_EQ(plan.duplications(), 0u);
  EXPECT_EQ(plan.delay_injections(), 0u);
}

TEST(FaultPlan, DecisionStreamIsDeterministic) {
  FaultPlanConfig config;
  config.loss = 0.2;
  config.duplicate = 0.1;
  config.delay_spike = 0.3;
  config.reorder = 0.1;
  config.seed = 99;
  FaultPlan a(config);
  FaultPlan b(config);
  for (int i = 0; i < 2000; ++i) {
    const auto da = a.decide(0, 1, 1.0);
    const auto db = b.decide(0, 1, 1.0);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.copies, db.copies);
    EXPECT_DOUBLE_EQ(da.extra_delay, db.extra_delay);
  }
  EXPECT_EQ(a.injected_losses(), b.injected_losses());
  EXPECT_EQ(a.duplications(), b.duplications());
  EXPECT_EQ(a.delay_injections(), b.delay_injections());
}

TEST(FaultPlan, LossRateRoughlyHonored) {
  FaultPlanConfig config;
  config.loss = 0.3;
  FaultPlan plan(config);
  const int n = 20'000;
  for (int i = 0; i < n; ++i) plan.decide(0, 1, 0.0);
  const double rate =
      static_cast<double>(plan.injected_losses()) / static_cast<double>(n);
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(FaultPlan, ActiveWindowConfinesProbabilisticFaults) {
  FaultPlanConfig config;
  config.loss = 0.9;
  config.start = 10.0;
  config.end = 20.0;
  config.seed = 7;
  FaultPlan plan(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(plan.decide(0, 1, 5.0).drop);   // before the window
    EXPECT_FALSE(plan.decide(0, 1, 25.0).drop);  // after the window
  }
  std::uint64_t drops = 0;
  for (int i = 0; i < 100; ++i) drops += plan.decide(0, 1, 15.0).drop;
  EXPECT_GT(drops, 50u);
  EXPECT_EQ(plan.injected_losses(), drops);
}

TEST(FaultPlan, DuplicationYieldsTwoCopies) {
  FaultPlanConfig config;
  config.duplicate = 0.99;
  FaultPlan plan(config);
  std::uint64_t copies = 0;
  for (int i = 0; i < 100; ++i) copies += plan.decide(0, 1, 0.0).copies;
  EXPECT_GT(copies, 150u);  // nearly every decision duplicated
  EXPECT_EQ(plan.duplications(), copies - 100u);
}

TEST(FaultPlan, DelaySpikesAreBounded) {
  FaultPlanConfig config;
  config.delay_spike = 0.99;
  config.spike_max = 0.05;
  config.reorder = 0.99;
  config.reorder_max = 0.01;
  FaultPlan plan(config);
  for (int i = 0; i < 1000; ++i) {
    const auto d = plan.decide(0, 1, 0.0);
    EXPECT_GE(d.extra_delay, 0.0);
    EXPECT_LT(d.extra_delay, config.spike_max + config.reorder_max);
  }
  EXPECT_GT(plan.delay_injections(), 0u);
}

TEST(FaultPlan, ManualPartitionIsSymmetricAndHeals) {
  FaultPlan plan(FaultPlanConfig{});
  plan.partition(1, 2);
  EXPECT_TRUE(plan.partitioned(1, 2, 0.0));
  EXPECT_TRUE(plan.partitioned(2, 1, 0.0));
  EXPECT_FALSE(plan.partitioned(1, 3, 0.0));
  EXPECT_TRUE(plan.decide(2, 1, 0.0).drop);
  EXPECT_TRUE(plan.decide(2, 1, 0.0).partitioned);
  plan.heal(1, 2);
  EXPECT_FALSE(plan.partitioned(1, 2, 0.0));
  plan.partition(0, 1);
  plan.partition(2, 3);
  plan.heal();
  EXPECT_FALSE(plan.partitioned(0, 1, 0.0));
  EXPECT_FALSE(plan.partitioned(2, 3, 0.0));
}

TEST(FaultPlan, ScriptedPartitionWindowCutsCrossTrafficOnly) {
  FaultPlanConfig config;
  PartitionWindow window;
  window.start = 10.0;
  window.end = 20.0;
  window.group_a = {0, 1};
  window.group_b = {2, 3};
  config.partitions.push_back(window);
  FaultPlan plan(config);
  // Cross-group traffic drops only while the window is open.
  EXPECT_FALSE(plan.partitioned(0, 2, 5.0));
  EXPECT_TRUE(plan.partitioned(0, 2, 15.0));
  EXPECT_TRUE(plan.partitioned(3, 1, 15.0));
  EXPECT_FALSE(plan.partitioned(0, 2, 20.0));
  // Intra-group traffic is never cut.
  EXPECT_FALSE(plan.partitioned(0, 1, 15.0));
  EXPECT_FALSE(plan.partitioned(2, 3, 15.0));
  EXPECT_TRUE(plan.decide(1, 3, 12.0).drop);
  EXPECT_EQ(plan.partition_drops(), 1u);
  EXPECT_EQ(plan.injected_losses(), 0u);
}

// --- network integration: drop causes and byte accounting ------------------

proto::NetworkConfig quiet_network() {
  proto::NetworkConfig config;
  config.jitter = 0.0;
  return config;
}

TEST(NetworkFaults, EndpointDownChargesNoBytes) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  proto::Network net(clock, quiet_network(), 2);
  net.attach(0, [](std::uint32_t, const proto::Message&) {});
  net.attach(1, [](std::uint32_t, const proto::Message&) {});
  net.set_node_up(1, false);
  net.send(0, 1, proto::Heartbeat{0});
  sim.run_to_completion();
  // Never transmitted: no bytes, no sent count, endpoint-cause drop.
  EXPECT_EQ(net.bytes_sent(), 0u);
  EXPECT_EQ(net.messages_sent(), 0u);
  EXPECT_EQ(net.drops_endpoint_down(), 1u);
  EXPECT_EQ(net.drops_injected(), 0u);
}

TEST(NetworkFaults, InjectedLossChargesBytes) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  proto::Network net(clock, quiet_network(), 2);
  net.attach(0, [](std::uint32_t, const proto::Message&) {});
  std::uint64_t received = 0;
  net.attach(1, [&](std::uint32_t, const proto::Message&) { ++received; });
  FaultPlanConfig config;
  config.loss = 0.5;
  FaultPlan plan(config);
  net.set_fault_plan(&plan);
  const int n = 200;
  for (int i = 0; i < n; ++i) net.send(0, 1, proto::Heartbeat{0});
  sim.run_to_completion();
  EXPECT_GT(plan.injected_losses(), 0u);
  EXPECT_EQ(net.drops_injected(), plan.injected_losses());
  EXPECT_EQ(net.drops_endpoint_down(), 0u);
  EXPECT_EQ(received + plan.injected_losses(), static_cast<std::uint64_t>(n));
  // A lost message still consumed bandwidth: every send was charged.
  EXPECT_EQ(net.bytes_sent(),
            static_cast<std::uint64_t>(n) * proto::Heartbeat{}.wire_size());
  EXPECT_EQ(net.messages_sent(), static_cast<std::uint64_t>(n));
}

TEST(NetworkFaults, PartitionDropChargesNothing) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  proto::Network net(clock, quiet_network(), 3);
  for (std::uint32_t n = 0; n < 3; ++n) {
    net.attach(n, [](std::uint32_t, const proto::Message&) {});
  }
  FaultPlan plan(FaultPlanConfig{});
  plan.partition(0, 1);
  net.set_fault_plan(&plan);
  net.send(0, 1, proto::Heartbeat{0});
  net.send(0, 2, proto::Heartbeat{0});
  sim.run_to_completion();
  // The cut link transmits nothing; the healthy link is unaffected.
  EXPECT_EQ(net.drops_injected(), 1u);
  EXPECT_EQ(plan.partition_drops(), 1u);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.bytes_sent(), proto::Heartbeat{}.wire_size());
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(NetworkFaults, DuplicationDeliversTwiceAndChargesTwice) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  proto::Network net(clock, quiet_network(), 2);
  net.attach(0, [](std::uint32_t, const proto::Message&) {});
  std::uint64_t received = 0;
  net.attach(1, [&](std::uint32_t, const proto::Message&) { ++received; });
  FaultPlanConfig config;
  config.duplicate = 0.99;
  config.loss = 0.0;
  FaultPlan plan(config);
  net.set_fault_plan(&plan);
  const int n = 50;
  for (int i = 0; i < n; ++i) net.send(0, 1, proto::Heartbeat{0});
  sim.run_to_completion();
  EXPECT_GT(plan.duplications(), 0u);
  EXPECT_EQ(net.duplicates_injected(), plan.duplications());
  EXPECT_EQ(received, n + plan.duplications());
  EXPECT_EQ(net.bytes_sent(),
            (n + plan.duplications()) * proto::Heartbeat{}.wire_size());
}

TEST(NetworkFaults, ReceiverFailingMidFlightIsEndpointDrop) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  proto::Network net(clock, quiet_network(), 2);
  net.attach(0, [](std::uint32_t, const proto::Message&) {});
  net.attach(1, [](std::uint32_t, const proto::Message&) {});
  net.send(0, 1, proto::Heartbeat{0});
  net.set_node_up(1, false);  // fails while the message is in flight
  sim.run_to_completion();
  EXPECT_EQ(net.messages_sent(), 1u);  // it did hit the wire
  EXPECT_GT(net.bytes_sent(), 0u);
  EXPECT_EQ(net.messages_delivered(), 0u);
  EXPECT_EQ(net.drops_endpoint_down(), 1u);
}

}  // namespace
}  // namespace anu::faults
