// Tests for the prescient min-latency assignment (LPT + local search).
#include "balance/assignment.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/rng.h"

namespace anu::balance {
namespace {

TEST(Assignment, SingleServerTakesAll) {
  const auto placement = assign_min_latency({1.0, 2.0, 3.0}, {2.0});
  for (const auto s : placement) EXPECT_EQ(s, ServerId(0));
}

TEST(Assignment, DownServersReceiveNothing) {
  const auto placement =
      assign_min_latency({1.0, 2.0, 3.0, 4.0}, {0.0, 1.0, 0.0, 1.0});
  for (const auto s : placement) {
    EXPECT_TRUE(s == ServerId(1) || s == ServerId(3));
  }
}

TEST(Assignment, EqualItemsEqualServersSplitEvenly) {
  const auto placement =
      assign_min_latency(std::vector<double>(8, 1.0), {1.0, 1.0});
  std::size_t on0 = 0;
  for (const auto s : placement) on0 += s == ServerId(0) ? 1u : 0u;
  EXPECT_EQ(on0, 4u);
}

TEST(Assignment, LoadProportionalToSpeed) {
  // Many small items on the paper's 1/3/5/7/9 cluster: normalized loads
  // should equalize, i.e. raw load tracks speed.
  const std::vector<double> speeds{1.0, 3.0, 5.0, 7.0, 9.0};
  std::vector<double> demands(500, 1.0);
  const auto placement = assign_min_latency(demands, speeds);
  std::vector<double> load(5, 0.0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    load[placement[i].value()] += demands[i];
  }
  const double total = 500.0;
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_NEAR(load[s] / total, speeds[s] / 25.0, 0.02) << "server " << s;
  }
}

TEST(Assignment, ObjectiveNoWorseThanRoundRobin) {
  Xoshiro256 rng(42);
  std::vector<double> demands(60);
  for (auto& d : demands) d = 1.0 + rng.next_double() * 9.0;
  const std::vector<double> speeds{1.0, 3.0, 5.0, 7.0, 9.0};
  const auto smart = assign_min_latency(demands, speeds);
  std::vector<ServerId> naive(demands.size());
  for (std::size_t i = 0; i < naive.size(); ++i) {
    naive[i] = ServerId(static_cast<std::uint32_t>(i % 5));
  }
  EXPECT_LE(max_normalized_load(smart, demands, speeds),
            max_normalized_load(naive, demands, speeds));
}

TEST(Assignment, NearLowerBound) {
  // max normalized load can never beat total/sum(speeds); LPT+polish should
  // land within 20% of that bound on a generic instance.
  Xoshiro256 rng(7);
  std::vector<double> demands(50);
  double total = 0.0;
  for (auto& d : demands) {
    d = 1.0 + rng.next_double() * 9.0;
    total += d;
  }
  const std::vector<double> speeds{1.0, 3.0, 5.0, 7.0, 9.0};
  const auto placement = assign_min_latency(demands, speeds);
  const double bound = total / 25.0;
  EXPECT_LE(max_normalized_load(placement, demands, speeds), bound * 1.2);
}

TEST(Assignment, Deterministic) {
  std::vector<double> demands{5.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0};
  const std::vector<double> speeds{1.0, 2.0, 3.0};
  EXPECT_EQ(assign_min_latency(demands, speeds),
            assign_min_latency(demands, speeds));
}

TEST(Assignment, ZeroDemandItemsPlacedOnUpServer) {
  const auto placement = assign_min_latency({0.0, 0.0}, {0.0, 5.0});
  for (const auto s : placement) EXPECT_EQ(s, ServerId(1));
}

TEST(Assignment, RefinementImprovesOrMatchesPureLpt) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> demands(30);
    for (auto& d : demands) d = rng.next_double() * 10.0;
    const std::vector<double> speeds{1.0, 3.0, 5.0, 7.0, 9.0};
    AssignmentConfig no_refine;
    no_refine.refine_passes = 0;
    const auto raw = assign_min_latency(demands, speeds, no_refine);
    const auto polished = assign_min_latency(demands, speeds);
    EXPECT_LE(max_normalized_load(polished, demands, speeds),
              max_normalized_load(raw, demands, speeds) + 1e-12);
  }
}

TEST(MaxNormalizedLoad, ComputesCorrectly) {
  const std::vector<ServerId> placement{ServerId(0), ServerId(1), ServerId(1)};
  const double worst =
      max_normalized_load(placement, {2.0, 3.0, 3.0}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(worst, 3.0);  // server 1: 6/2 = 3 > server 0: 2/1 = 2
}

}  // namespace
}  // namespace anu::balance
