// Tests for the cold-cache model (paper §5.3).
#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace anu::cluster {
namespace {

CacheConfig cache_on(std::uint32_t warmup = 4, double penalty = 3.0) {
  CacheConfig config;
  config.enabled = true;
  config.warmup_requests = warmup;
  config.cold_penalty_factor = penalty;
  return config;
}

TEST(CacheModel, DisabledIsAlwaysWarm) {
  sim::Simulation sim;
  Server server(sim, ServerId(0), 1.0);
  EXPECT_DOUBLE_EQ(server.warmth(FileSetId(0)), 1.0);
  double done = 0.0;
  server.on_complete = [&](const Completion& c) { done = c.latency(); };
  server.submit(FileSetId(0), 2.0);
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(done, 2.0);  // no penalty
}

TEST(CacheModel, ColdRequestsCostMore) {
  sim::Simulation sim;
  Server server(sim, ServerId(0), 1.0, cache_on(4, 3.0));
  EXPECT_DOUBLE_EQ(server.warmth(FileSetId(0)), 0.0);
  std::vector<double> latencies;
  server.on_complete = [&](const Completion& c) {
    latencies.push_back(c.latency());
  };
  // Sequential requests so queueing does not mix into latency: submit the
  // next only after the previous completes.
  std::function<void(int)> next = [&](int remaining) {
    if (remaining == 0) return;
    server.submit(FileSetId(0), 1.0);
    sim.schedule_after(100.0, [&, remaining] { next(remaining - 1); });
  };
  next(6);
  sim.run_to_completion();
  ASSERT_EQ(latencies.size(), 6u);
  EXPECT_DOUBLE_EQ(latencies[0], 3.0);   // fully cold: 3x
  EXPECT_GT(latencies[1], latencies[2]);  // decaying
  EXPECT_DOUBLE_EQ(latencies[4], 1.0);   // warm after 4 requests
  EXPECT_DOUBLE_EQ(latencies[5], 1.0);
}

TEST(CacheModel, WarmthIsPerFileSet) {
  sim::Simulation sim;
  Server server(sim, ServerId(0), 1.0, cache_on(2, 2.0));
  server.submit(FileSetId(0), 1.0);
  server.submit(FileSetId(0), 1.0);
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(server.warmth(FileSetId(0)), 1.0);
  EXPECT_DOUBLE_EQ(server.warmth(FileSetId(1)), 0.0);
}

TEST(CacheModel, EvictMakesColdAgain) {
  sim::Simulation sim;
  Server server(sim, ServerId(0), 1.0, cache_on(2, 2.0));
  server.submit(FileSetId(0), 1.0);
  server.submit(FileSetId(0), 1.0);
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(server.warmth(FileSetId(0)), 1.0);
  server.evict(FileSetId(0));
  EXPECT_DOUBLE_EQ(server.warmth(FileSetId(0)), 0.0);
}

TEST(CacheModel, FailureFlushesAllWarmth) {
  sim::Simulation sim;
  Server server(sim, ServerId(0), 1.0, cache_on(1, 2.0));
  server.submit(FileSetId(3), 1.0);
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(server.warmth(FileSetId(3)), 1.0);
  server.fail();
  server.recover();
  EXPECT_DOUBLE_EQ(server.warmth(FileSetId(3)), 0.0);
}

TEST(CacheModel, MigrationEvictsOnSheddingServer) {
  sim::Simulation sim;
  ClusterConfig config;
  config.server_speeds = {1.0, 1.0};
  config.cache = cache_on(1, 2.0);
  Cluster cluster(sim, config);
  cluster.submit(ServerId(0), FileSetId(0), 1.0);
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(cluster.server(ServerId(0)).warmth(FileSetId(0)), 1.0);
  cluster.migrate_queued(FileSetId(0), ServerId(0), ServerId(1));
  EXPECT_DOUBLE_EQ(cluster.server(ServerId(0)).warmth(FileSetId(0)), 0.0);
}

}  // namespace
}  // namespace anu::cluster
