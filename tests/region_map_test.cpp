// Tests for the ANU partition table: invariants, layout, re-partitioning.
#include "core/region_map.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "common/rng.h"

namespace anu::core {
namespace {

UnitPoint::raw_type total_share(const RegionMap& map) {
  UnitPoint::raw_type sum = 0;
  for (std::uint32_t s = 0; s < map.server_count(); ++s) {
    sum += map.share(ServerId(s)).raw();
  }
  return sum;
}

TEST(RegionMapStatics, RequiredPartitions) {
  EXPECT_EQ(RegionMap::required_partitions(1), 2u);
  EXPECT_EQ(RegionMap::required_partitions(2), 4u);
  EXPECT_EQ(RegionMap::required_partitions(3), 8u);
  EXPECT_EQ(RegionMap::required_partitions(4), 8u);
  EXPECT_EQ(RegionMap::required_partitions(5), 16u);  // paper's 5-server case
  EXPECT_EQ(RegionMap::required_partitions(8), 16u);
  EXPECT_EQ(RegionMap::required_partitions(9), 32u);
}

TEST(RegionMap, InitialEqualShares) {
  const RegionMap map(5);
  EXPECT_EQ(map.partition_count(), 16u);
  for (std::uint32_t s = 0; s < 5; ++s) {
    EXPECT_NEAR(map.share(ServerId(s)).to_double(), 0.1, 1e-9);
  }
  EXPECT_EQ(total_share(map), RegionMap::kHalfRaw);
}

TEST(RegionMap, OwnerAtMatchesSegments) {
  const RegionMap map(5);
  for (std::uint32_t s = 0; s < 5; ++s) {
    for (const UnitSegment& seg : map.segments_of(ServerId(s))) {
      EXPECT_EQ(map.owner_at(seg.begin), ServerId(s));
      EXPECT_EQ(map.owner_at(UnitPoint::from_raw(seg.end.raw() - 1)),
                ServerId(s));
      // The point just past a segment end belongs to someone else or nobody.
      if (seg.end < UnitPoint::one()) {
        const auto after = map.owner_at(seg.end);
        EXPECT_TRUE(!after.has_value() || *after != ServerId(s));
      }
    }
  }
}

TEST(RegionMap, SegmentsAreDisjointAcrossServers) {
  const RegionMap map(7);
  std::vector<UnitSegment> all;
  for (std::uint32_t s = 0; s < 7; ++s) {
    const auto segs = map.segments_of(ServerId(s));
    all.insert(all.end(), segs.begin(), segs.end());
  }
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_FALSE(all[i].overlaps(all[j]));
    }
  }
}

TEST(RegionMap, NormalizeSharesSumsExactly) {
  const auto shares = RegionMap::normalize_shares({1.0, 3.0, 5.0, 7.0, 9.0});
  const auto sum = std::accumulate(shares.begin(), shares.end(),
                                   UnitPoint::raw_type{0});
  EXPECT_EQ(sum, RegionMap::kHalfRaw);
  // Proportionality within rounding.
  EXPECT_NEAR(static_cast<double>(shares[4]) / static_cast<double>(shares[0]),
              9.0, 1e-6);
}

TEST(RegionMap, NormalizeSharesZeroWeightGetsZero) {
  const auto shares = RegionMap::normalize_shares({0.0, 1.0, 1.0});
  EXPECT_EQ(shares[0], 0u);
  EXPECT_EQ(shares[1] + shares[2], RegionMap::kHalfRaw);
}

TEST(RegionMap, NormalizeSharesEqualWeightsNearlyEqual) {
  const auto shares = RegionMap::normalize_shares(std::vector<double>(5, 1.0));
  for (auto s : shares) {
    // Double rounding keeps each share within ~a thousand raw 2^-63 units
    // of exact — immeasurably small relative to the share itself.
    EXPECT_NEAR(static_cast<double>(s),
                static_cast<double>(RegionMap::kHalfRaw) / 5.0, 4096.0);
  }
}

TEST(RegionMap, RebalanceHitsTargets) {
  RegionMap map(5);
  const auto targets = RegionMap::normalize_shares({1.0, 3.0, 5.0, 7.0, 9.0});
  map.rebalance(targets);
  for (std::uint32_t s = 0; s < 5; ++s) {
    EXPECT_EQ(map.share(ServerId(s)).raw(), targets[s]);
  }
  EXPECT_EQ(total_share(map), RegionMap::kHalfRaw);
}

TEST(RegionMap, RebalanceToZeroFreesServer) {
  RegionMap map(3);
  map.rebalance(RegionMap::normalize_shares({0.0, 1.0, 1.0}));
  EXPECT_EQ(map.share(ServerId(0)).raw(), 0u);
  EXPECT_TRUE(map.segments_of(ServerId(0)).empty());
}

TEST(RegionMap, RebalancePreservesUnchangedServers) {
  // A server whose target equals its current share keeps its exact region.
  RegionMap map(4);
  const auto before = map.segments_of(ServerId(2));
  auto targets = RegionMap::normalize_shares({1.0, 1.0, 1.0, 1.0});
  // Shift share from 0 to 1, leaving 2 and 3 untouched.
  const auto delta = targets[0] / 2;
  targets[0] -= delta;
  targets[1] += delta;
  map.rebalance(targets);
  EXPECT_EQ(map.segments_of(ServerId(2)), before);
}

TEST(RegionMap, ShrinkOnlyRemovesFromTheShrunkServer) {
  RegionMap map(4);
  const auto before1 = map.segments_of(ServerId(1));
  auto targets = RegionMap::normalize_shares({1.0, 1.0, 1.0, 1.0});
  const auto delta = targets[0] / 2;
  targets[0] -= delta;
  targets[3] += delta;
  map.rebalance(targets);
  // Server 1 untouched; server 0's region shrank to a subset of before.
  EXPECT_EQ(map.segments_of(ServerId(1)), before1);
}

TEST(RegionMap, GrowthReusesReleasedSpace) {
  // When one server releases a whole partition and another grows by the
  // same amount, the grown server should take over the released partition,
  // keeping the mapped point-set stable.
  RegionMap map(2);  // P = 4, each server owns exactly one partition
  const auto seg0_before = map.segments_of(ServerId(0));
  ASSERT_EQ(seg0_before.size(), 1u);
  auto targets = RegionMap::normalize_shares({0.0, 1.0});
  map.rebalance(targets);
  // Server 1 should now own server 0's former partition too.
  const auto seg1 = map.segments_of(ServerId(1));
  bool covered = false;
  for (const auto& seg : seg1) {
    if (seg.covers(seg0_before[0])) covered = true;
  }
  EXPECT_TRUE(covered);
}

TEST(RegionMap, AddServerSlotRepartitionsWithoutMovingLoad) {
  RegionMap map(4);
  map.rebalance(RegionMap::normalize_shares({4.0, 3.0, 2.0, 1.0}));
  std::vector<std::vector<UnitSegment>> before;
  for (std::uint32_t s = 0; s < 4; ++s) {
    before.push_back(map.segments_of(ServerId(s)));
  }
  EXPECT_EQ(map.partition_count(), 8u);
  const ServerId added = map.add_server_slot();  // k: 4 -> 5 forces P: 8 -> 16
  EXPECT_EQ(added, ServerId(4));
  EXPECT_EQ(map.partition_count(), 16u);
  // Paper Fig. 3: re-partitioning moves no existing load.
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(map.segments_of(ServerId(s)), before[s]);
  }
  EXPECT_EQ(map.share(ServerId(4)).raw(), 0u);
}

TEST(RegionMap, AddServerSlotNoRepartitionWhenRoomRemains) {
  RegionMap map(5);  // P = 16 covers up to k = 8
  map.add_server_slot();
  EXPECT_EQ(map.partition_count(), 16u);
  map.add_server_slot();
  map.add_server_slot();  // k = 8 still fits
  EXPECT_EQ(map.partition_count(), 16u);
  map.add_server_slot();  // k = 9 forces 32
  EXPECT_EQ(map.partition_count(), 32u);
}

TEST(RegionMap, LookupsOutsideMappedHalfReturnNothing) {
  const RegionMap map(5);
  std::size_t unmapped = 0;
  constexpr std::size_t kProbes = 4096;
  for (std::size_t i = 0; i < kProbes; ++i) {
    const auto p = UnitPoint::from_raw(
        (UnitPoint::kOneRaw / kProbes) * i);
    if (!map.owner_at(p)) ++unmapped;
  }
  // Exactly half the interval is mapped.
  EXPECT_NEAR(static_cast<double>(unmapped) / kProbes, 0.5, 0.01);
}

TEST(RegionMap, SharedStateScalesWithPartitions) {
  const RegionMap small(5);
  const RegionMap large(50);
  EXPECT_EQ(small.shared_state_bytes(), 16u * 12 + 8);
  EXPECT_EQ(large.shared_state_bytes(), 128u * 12 + 8);
}

// Property test: invariants survive long random rebalance sequences with
// server removals (zero targets), additions, and extreme skews.
class RegionMapChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegionMapChurnTest, InvariantsHoldUnderRandomChurn) {
  Xoshiro256 rng(GetParam());
  std::size_t servers = 1 + rng.next_below(8);
  RegionMap map(servers);
  for (int step = 0; step < 200; ++step) {
    const auto action = rng.next_below(10);
    if (action == 0 && servers < 40) {
      map.add_server_slot();
      ++servers;
    }
    std::vector<double> weights(servers);
    std::size_t alive = 0;
    for (auto& w : weights) {
      // ~15% of servers down; others with weights spaning 4 decades.
      if (rng.next_below(100) < 15) {
        w = 0.0;
      } else {
        w = std::pow(10.0, static_cast<double>(rng.next_below(5)) - 2.0);
        ++alive;
      }
    }
    if (alive == 0) weights[0] = 1.0;
    // rebalance() itself calls check_invariants() and aborts on violation.
    map.rebalance(RegionMap::normalize_shares(weights));
    EXPECT_EQ(total_share(map), RegionMap::kHalfRaw);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionMapChurnTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));


TEST(RegionMap, SegmentsMergeAcrossAdjacentFullPartitions) {
  // A server owning consecutive whole partitions reports one merged
  // segment, not one per partition.
  RegionMap map(2);  // P = 4, psize = 1/4, each owns one partition
  map.rebalance(RegionMap::normalize_shares({1.0, 0.0}));
  const auto segs = map.segments_of(ServerId(0));
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_NEAR(segs[0].length().to_double(), 0.5, 1e-12);
}

TEST(RegionMap, OwnerAtExactPartitionBoundaries) {
  const RegionMap map(4);  // P = 8, equal shares = exactly 1 partition each
  const auto psize = map.partition_size().raw();
  for (std::uint32_t s = 0; s < 4; ++s) {
    const auto segs = map.segments_of(ServerId(s));
    for (const auto& seg : segs) {
      // Start of an owned partition belongs to the owner; the raw point one
      // before the end does too; the end itself never does (half-open).
      EXPECT_EQ(map.owner_at(seg.begin), ServerId(s));
      EXPECT_EQ(map.owner_at(UnitPoint::from_raw(seg.end.raw() - 1)),
                ServerId(s));
    }
  }
  // Points in the unmapped half resolve to nothing.
  EXPECT_FALSE(map.owner_at(UnitPoint::from_raw(UnitPoint::kOneRaw - psize))
                   .has_value());
}

TEST(RegionMap, DoubleRepartitionPreservesSegments) {
  RegionMap map(4);
  map.rebalance(RegionMap::normalize_shares({5.0, 1.0, 1.0, 1.0}));
  std::vector<std::vector<UnitSegment>> before;
  for (std::uint32_t s = 0; s < 4; ++s) {
    before.push_back(map.segments_of(ServerId(s)));
  }
  map.add_server_slot();  // P: 8 -> 16
  for (std::size_t i = 0; i < 4; ++i) map.add_server_slot();  // k=9: P -> 32
  EXPECT_EQ(map.partition_count(), 32u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(map.segments_of(ServerId(s)), before[s]) << "server " << s;
  }
}

TEST(RegionMap, ZeroThenRestoreKeepsInvariants) {
  RegionMap map(3);
  const auto targets_a = RegionMap::normalize_shares({0.0, 1.0, 1.0});
  const auto targets_b = RegionMap::normalize_shares({1.0, 1.0, 1.0});
  for (int i = 0; i < 10; ++i) {
    map.rebalance(i % 2 ? targets_b : targets_a);
  }
  EXPECT_GT(map.share(ServerId(0)).raw(), 0u);
}

class NormalizeSharesPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NormalizeSharesPropertyTest, ExactSumAndProportionality) {
  Xoshiro256 rng(GetParam());
  const std::size_t n = 1 + rng.next_below(64);
  std::vector<double> weights(n);
  double sum = 0.0;
  for (auto& w : weights) {
    w = rng.next_below(5) == 0 ? 0.0 : std::pow(10.0, rng.next_double() * 4.0);
    sum += w;
  }
  if (sum == 0.0) weights[0] = sum = 1.0;
  const auto shares = RegionMap::normalize_shares(weights);
  UnitPoint::raw_type total = 0;
  for (auto s : shares) total += s;
  ASSERT_EQ(total, RegionMap::kHalfRaw);
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] == 0.0) {
      EXPECT_EQ(shares[i], 0u);
    } else {
      const double expect =
          weights[i] / sum * static_cast<double>(RegionMap::kHalfRaw);
      EXPECT_NEAR(static_cast<double>(shares[i]), expect,
                  expect * 1e-9 + 65.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizeSharesPropertyTest,
                         ::testing::Range<std::uint64_t>(100, 116));

}  // namespace
}  // namespace anu::core
