// Tests for the baseline balancers: simple randomization, dynamic
// prescient, and the virtual-processor system.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "balance/prescient.h"
#include "balance/simple_random.h"
#include "balance/virtual_processor.h"

namespace anu::balance {
namespace {

std::vector<workload::FileSet> make_file_sets(std::size_t n,
                                              double weight = 1.0) {
  std::vector<workload::FileSet> fs;
  for (std::uint32_t i = 0; i < n; ++i) {
    fs.push_back({FileSetId(i), "fs/" + std::to_string(i), weight});
  }
  return fs;
}

// --- simple randomization ------------------------------------------------

TEST(SimpleRandom, StaticPlacement) {
  SimpleRandomBalancer bal(5);
  bal.register_file_sets(make_file_sets(50));
  std::vector<ServerId> before(50);
  for (std::uint32_t i = 0; i < 50; ++i) before[i] = bal.server_for(FileSetId(i));
  EXPECT_EQ(bal.tune().moved_count(), 0u);  // never reacts to load
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(bal.server_for(FileSetId(i)), before[i]);
  }
}

TEST(SimpleRandom, RoughlyUniformOverServers) {
  SimpleRandomBalancer bal(5);
  const std::size_t kSets = 5000;
  bal.register_file_sets(make_file_sets(kSets));
  std::vector<std::size_t> counts(5, 0);
  for (std::uint32_t i = 0; i < kSets; ++i) {
    ++counts[bal.server_for(FileSetId(i)).value()];
  }
  for (auto c : counts) EXPECT_NEAR(static_cast<double>(c), kSets / 5.0, kSets / 5.0 * 0.15);
}

TEST(SimpleRandom, FailureMovesOnlyAffectedFileSets) {
  SimpleRandomBalancer bal(5);
  bal.register_file_sets(make_file_sets(100));
  std::set<std::uint32_t> on2;
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (bal.server_for(FileSetId(i)) == ServerId(2)) on2.insert(i);
  }
  const auto moves = bal.on_server_failed(ServerId(2));
  EXPECT_EQ(moves.moved_count(), on2.size());
  for (const auto& move : moves.moves) {
    EXPECT_TRUE(on2.count(move.file_set.value()));
    EXPECT_NE(move.to, ServerId(2));
  }
}

TEST(SimpleRandom, RecoveryRestoresOriginalPlacement) {
  SimpleRandomBalancer bal(5);
  bal.register_file_sets(make_file_sets(100));
  std::vector<ServerId> before(100);
  for (std::uint32_t i = 0; i < 100; ++i) before[i] = bal.server_for(FileSetId(i));
  bal.on_server_failed(ServerId(1));
  bal.on_server_recovered(ServerId(1));
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(bal.server_for(FileSetId(i)), before[i]);
  }
}

TEST(SimpleRandom, SharedStateTiny) {
  SimpleRandomBalancer bal(5);
  EXPECT_EQ(bal.shared_state_bytes(), 20u);
}

// --- dynamic prescient ----------------------------------------------------

TEST(Prescient, BalancedFromTimeZero) {
  PrescientBalancer bal(5);
  OracleView oracle;
  oracle.file_set_demand.assign(50, 1.0);
  oracle.server_speeds = {1.0, 3.0, 5.0, 7.0, 9.0};
  bal.set_oracle(oracle);
  bal.register_file_sets(make_file_sets(50));
  std::vector<double> load(5, 0.0);
  for (std::uint32_t i = 0; i < 50; ++i) {
    load[bal.server_for(FileSetId(i)).value()] += 1.0;
  }
  // Normalized loads close to each other right at registration (§5.2.1:
  // "keeps the system balanced from the very beginning, time 0").
  double lo = 1e18, hi = 0.0;
  for (std::size_t s = 0; s < 5; ++s) {
    const double norm = load[s] / oracle.server_speeds[s];
    lo = std::min(lo, norm);
    hi = std::max(hi, norm);
  }
  EXPECT_LT(hi - lo, 1.5);
}

TEST(Prescient, TracksOracleDemandChanges) {
  PrescientBalancer bal(2);
  OracleView oracle;
  oracle.file_set_demand = {10.0, 1.0, 1.0};
  oracle.server_speeds = {1.0, 1.0};
  bal.set_oracle(oracle);
  bal.register_file_sets(make_file_sets(3));
  // The heavy file set sits alone on one server.
  const ServerId heavy = bal.server_for(FileSetId(0));
  EXPECT_NE(bal.server_for(FileSetId(1)), heavy);
  EXPECT_NE(bal.server_for(FileSetId(2)), heavy);
  // Flip the weights: placement follows.
  oracle.file_set_demand = {1.0, 1.0, 10.0};
  bal.set_oracle(oracle);
  bal.tune();
  const ServerId heavy2 = bal.server_for(FileSetId(2));
  EXPECT_NE(bal.server_for(FileSetId(0)), heavy2);
  EXPECT_NE(bal.server_for(FileSetId(1)), heavy2);
}

TEST(Prescient, FailureExcludesServer) {
  PrescientBalancer bal(3);
  OracleView oracle;
  oracle.file_set_demand.assign(12, 1.0);
  oracle.server_speeds = {1.0, 1.0, 1.0};
  bal.set_oracle(oracle);
  bal.register_file_sets(make_file_sets(12));
  bal.on_server_failed(ServerId(0));
  for (std::uint32_t i = 0; i < 12; ++i) {
    EXPECT_NE(bal.server_for(FileSetId(i)), ServerId(0));
  }
}

TEST(Prescient, SharedStateGrowsWithFileSets) {
  PrescientBalancer bal(5);
  bal.register_file_sets(make_file_sets(50));
  EXPECT_EQ(bal.shared_state_bytes(), 50u * 4 + 5u * 8);
}

// --- virtual processors ---------------------------------------------------

TEST(VirtualProcessor, VpCountIsNTimesV) {
  VirtualProcessorConfig config;
  config.vp_per_server = 5;
  VirtualProcessorBalancer bal(config, 5);
  EXPECT_EQ(bal.vp_count(), 25u);
}

TEST(VirtualProcessor, FileSetToVpIsStable) {
  VirtualProcessorConfig config;
  VirtualProcessorBalancer bal(config, 5);
  const auto fs = make_file_sets(50);
  bal.register_file_sets(fs);
  std::vector<VpId> vp_before(50);
  for (std::uint32_t i = 0; i < 50; ++i) vp_before[i] = bal.vp_of(FileSetId(i));
  OracleView oracle;
  oracle.file_set_demand.assign(50, 2.0);
  oracle.server_speeds = {1.0, 3.0, 5.0, 7.0, 9.0};
  bal.set_oracle(oracle);
  bal.tune();
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(bal.vp_of(FileSetId(i)), vp_before[i]);  // VP membership fixed
  }
}

TEST(VirtualProcessor, FileSetsInSameVpMoveTogether) {
  VirtualProcessorConfig config;
  config.vp_per_server = 2;
  VirtualProcessorBalancer bal(config, 2);
  const auto fs = make_file_sets(40);
  bal.register_file_sets(fs);
  for (std::uint32_t i = 0; i < 40; ++i) {
    for (std::uint32_t j = 0; j < 40; ++j) {
      if (bal.vp_of(FileSetId(i)) == bal.vp_of(FileSetId(j))) {
        EXPECT_EQ(bal.server_for(FileSetId(i)), bal.server_for(FileSetId(j)));
      }
    }
  }
}

TEST(VirtualProcessor, MoreVpsGiveFinerBalance) {
  // The Fig. 8 tradeoff at its core: normalized-load imbalance shrinks as
  // the VP population grows.
  auto imbalance = [](std::size_t v) {
    VirtualProcessorConfig config;
    config.vp_per_server = v;
    VirtualProcessorBalancer bal(config, 5);
    const auto fs = make_file_sets(50);
    OracleView oracle;
    oracle.file_set_demand.assign(50, 1.0);
    oracle.server_speeds = {1.0, 3.0, 5.0, 7.0, 9.0};
    bal.set_oracle(oracle);
    bal.register_file_sets(fs);
    std::vector<double> load(5, 0.0);
    for (std::uint32_t i = 0; i < 50; ++i) {
      load[bal.server_for(FileSetId(i)).value()] += 1.0;
    }
    double lo = 1e18, hi = 0.0;
    for (std::size_t s = 0; s < 5; ++s) {
      const double norm = load[s] / oracle.server_speeds[s];
      lo = std::min(lo, norm);
      hi = std::max(hi, norm);
    }
    return hi - lo;
  };
  EXPECT_LE(imbalance(10), imbalance(1));
}

TEST(VirtualProcessor, SharedStateGrowsWithV) {
  VirtualProcessorConfig small;
  small.vp_per_server = 1;
  VirtualProcessorConfig large;
  large.vp_per_server = 10;
  VirtualProcessorBalancer a(small, 5), b(large, 5);
  EXPECT_LT(a.shared_state_bytes(), b.shared_state_bytes());
  EXPECT_EQ(b.shared_state_bytes(), 50u * large.bytes_per_vp);
}

TEST(VirtualProcessor, FailureExcludesServer) {
  VirtualProcessorConfig config;
  VirtualProcessorBalancer bal(config, 3);
  OracleView oracle;
  oracle.file_set_demand.assign(30, 1.0);
  oracle.server_speeds = {1.0, 1.0, 1.0};
  VirtualProcessorBalancer bal2(config, 3);
  bal2.set_oracle(oracle);
  bal2.register_file_sets(make_file_sets(30));
  bal2.on_server_failed(ServerId(1));
  for (std::uint32_t i = 0; i < 30; ++i) {
    EXPECT_NE(bal2.server_for(FileSetId(i)), ServerId(1));
  }
}

}  // namespace
}  // namespace anu::balance
