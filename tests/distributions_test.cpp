// Tests for the workload distributions.
#include "common/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace anu {
namespace {

TEST(UniformReal, StaysInRange) {
  Xoshiro256 rng(1);
  const UniformReal dist(1.0, 10.0);
  for (int i = 0; i < 50'000; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LT(x, 10.0);
  }
}

TEST(UniformReal, MeanMatches) {
  Xoshiro256 rng(2);
  const UniformReal dist(1.0, 10.0);
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += dist.sample(rng);
  EXPECT_NEAR(sum / kN, 5.5, 0.05);
}

TEST(Exponential, MeanMatchesRate) {
  Xoshiro256 rng(3);
  const Exponential dist(0.25);  // mean 4
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += dist.sample(rng);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Exponential, NonNegative) {
  Xoshiro256 rng(4);
  const Exponential dist(2.0);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(dist.sample(rng), 0.0);
}

TEST(BoundedPareto, StaysWithinBounds) {
  Xoshiro256 rng(5);
  const BoundedPareto dist(1.3, 1.0, 1e4);
  for (int i = 0; i < 100'000; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 1e4);
  }
}

TEST(BoundedPareto, EmpiricalMeanMatchesAnalytic) {
  Xoshiro256 rng(6);
  const BoundedPareto dist(1.5, 1.0, 1e3);
  double sum = 0.0;
  constexpr int kN = 500'000;
  for (int i = 0; i < kN; ++i) sum += dist.sample(rng);
  EXPECT_NEAR(sum / kN, dist.mean(), dist.mean() * 0.05);
}

TEST(BoundedPareto, IsHeavyTailedRelativeToExponential) {
  // The paper leans on heavy-tailed inter-arrivals; check that the sample
  // coefficient of variation is well above an exponential's (CV = 1).
  Xoshiro256 rng(7);
  const BoundedPareto dist(1.2, 1.0, 1e4);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 500'000;
  for (int i = 0; i < kN; ++i) {
    const double x = dist.sample(rng);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_GT(std::sqrt(var) / mean, 2.0);
}

TEST(BoundedPareto, ShapeOneMeanIsFinite) {
  const BoundedPareto dist(1.0, 1.0, 100.0);
  EXPECT_GT(dist.mean(), 1.0);
  EXPECT_LT(dist.mean(), 100.0);
}

TEST(Zipf, PmfSumsToOne) {
  const Zipf dist(21, 0.9);
  double sum = 0.0;
  for (std::size_t r = 0; r < dist.size(); ++r) sum += dist.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, RankZeroMostPopular) {
  const Zipf dist(50, 1.0);
  for (std::size_t r = 1; r < dist.size(); ++r) {
    EXPECT_GT(dist.pmf(r - 1), dist.pmf(r));
  }
}

TEST(Zipf, ExponentZeroIsUniform) {
  const Zipf dist(10, 0.0);
  for (std::size_t r = 0; r < dist.size(); ++r) {
    EXPECT_NEAR(dist.pmf(r), 0.1, 1e-12);
  }
}

TEST(Zipf, SamplingMatchesPmf) {
  Xoshiro256 rng(8);
  const Zipf dist(10, 1.0);
  std::vector<int> counts(10, 0);
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) ++counts[dist.sample(rng)];
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / kN, dist.pmf(r),
                0.01 + dist.pmf(r) * 0.05);
  }
}

TEST(Lognormal, MeanMatchesAnalytic) {
  Xoshiro256 rng(9);
  const Lognormal dist(-0.5 * 0.25 * 0.25, 0.25);  // unit mean
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += dist.sample(rng);
  EXPECT_NEAR(dist.mean(), 1.0, 1e-12);
  EXPECT_NEAR(sum / kN, 1.0, 0.01);
}

TEST(Lognormal, StrictlyPositive) {
  Xoshiro256 rng(10);
  const Lognormal dist(0.0, 1.0);
  for (int i = 0; i < 10'000; ++i) EXPECT_GT(dist.sample(rng), 0.0);
}

TEST(StandardNormal, MeanZeroVarianceOne) {
  Xoshiro256 rng(11);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double x = sample_standard_normal(rng);
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sq / kN, 1.0, 0.02);
}

// Property sweep: bounded Pareto respects bounds for a grid of shapes.
class ParetoShapeTest : public ::testing::TestWithParam<double> {};

TEST_P(ParetoShapeTest, BoundsAndMeanConsistent) {
  const double shape = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(shape * 1000));
  const BoundedPareto dist(shape, 2.0, 2000.0);
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GE(x, 2.0);
    ASSERT_LE(x, 2000.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, dist.mean(), dist.mean() * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ParetoShapeTest,
                         ::testing::Values(0.8, 1.0, 1.2, 1.5, 2.0, 3.0));

}  // namespace
}  // namespace anu
