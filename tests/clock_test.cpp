// Tests for the clock seam (common/clock.h): TimerHandle semantics,
// PeriodicTimer on either implementation, and the realtime timer wheel's
// sim-equivalent dispatch order (runtime/realtime_clock.h). The cross-
// implementation behavioural guarantee — same protocol decisions on either
// clock — is tests/clock_parity_test.cpp; this file pins the per-clock
// mechanics those guarantees rest on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "runtime/realtime_clock.h"
#include "runtime/time_source.h"
#include "sim/sim_clock.h"
#include "sim/simulation.h"

namespace anu {
namespace {

// --- TimerHandle ------------------------------------------------------------

TEST(TimerHandle, DefaultIsInvalidAndInert) {
  TimerHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(handle.cancelled());
  handle.cancel();  // no clock attached: must be a safe no-op
  EXPECT_FALSE(handle.cancelled());
}

TEST(TimerHandle, CopyCancelsTheSameTimer) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  int fired = 0;
  TimerHandle original = clock.schedule_at(1.0, [&] { ++fired; });
  TimerHandle copy = original;
  copy.cancel();
  // Both copies observe the cancellation while the timer is pending. (After
  // the run the storage is recycled and only the copy that issued cancel()
  // remembers — querying a never-cancelled copy then is unspecified.)
  EXPECT_TRUE(copy.cancelled());
  EXPECT_TRUE(original.cancelled());
  sim.run_to_completion();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(copy.cancelled());
}

// --- PeriodicTimer ----------------------------------------------------------

TEST(PeriodicTimer, FirstTickAtIntervalThenEveryInterval) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  std::vector<SimTime> ticks;
  PeriodicTimer timer(clock, 2.0, [&](SimTime now) { ticks.push_back(now); });
  sim.run_until(7.0);
  ASSERT_EQ(ticks.size(), 3u);
  EXPECT_DOUBLE_EQ(ticks[0], 2.0);
  EXPECT_DOUBLE_EQ(ticks[1], 4.0);
  EXPECT_DOUBLE_EQ(ticks[2], 6.0);
  EXPECT_EQ(timer.ticks_fired(), 3u);
}

TEST(PeriodicTimer, StopFromInsideTickWins) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  int fired = 0;
  PeriodicTimer timer(clock, 1.0, [&](SimTime) {
    ++fired;
    timer.stop();  // re-arm happened first, but stop must still win
  });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(PeriodicTimer, RunsOnRealtimeClock) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  std::vector<SimTime> ticks;
  PeriodicTimer timer(clock, 0.25, [&](SimTime now) { ticks.push_back(now); });
  source.advance_to(1.0);
  clock.pump();
  ASSERT_EQ(ticks.size(), 4u);
  EXPECT_DOUBLE_EQ(ticks[0], 0.25);
  EXPECT_DOUBLE_EQ(ticks[3], 1.0);
}

// --- RealtimeClock dispatch order -------------------------------------------

TEST(RealtimeClock, FiresInDeadlineOrderAcrossBuckets) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  std::vector<std::string> order;
  // Schedule out of order, spanning several wheel buckets.
  clock.schedule_at(0.030, [&] { order.push_back("c"); });
  clock.schedule_at(0.010, [&] { order.push_back("a"); });
  clock.schedule_at(0.020, [&] { order.push_back("b"); });
  source.advance_to(0.050);
  EXPECT_EQ(clock.pump(), 3u);
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(RealtimeClock, FifoAmongEqualDeadlines) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    clock.schedule_at(0.010, [&order, i] { order.push_back(i); });
  }
  source.advance_to(0.020);
  clock.pump();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RealtimeClock, CallbackSchedulingAtOwnTimeRunsAfterEarlierDue) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  std::vector<std::string> order;
  // a fires first and schedules c at its own deadline; b was scheduled
  // earlier than c, so the order must be a, b, c — exactly the simulator's
  // (time, seq) calendar semantics.
  clock.schedule_at(0.010, [&] {
    order.push_back("a");
    clock.schedule_at(0.010, [&] { order.push_back("c"); });
  });
  clock.schedule_at(0.010, [&] { order.push_back("b"); });
  source.advance_to(0.020);
  clock.pump();
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(RealtimeClock, NowInsideCallbackIsTheDeadline) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  SimTime observed = -1.0;
  clock.schedule_at(0.125, [&] { observed = clock.now(); });
  // The host thread wakes late — the callback must still see its deadline,
  // not the jittery wall instant.
  source.advance_to(0.500);
  clock.pump();
  EXPECT_DOUBLE_EQ(observed, 0.125);
  // Outside callbacks now() follows the source again.
  EXPECT_DOUBLE_EQ(clock.now(), 0.500);
}

TEST(RealtimeClock, PastDeadlineClampsAndFires) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  source.advance_to(1.0);
  SimTime observed = -1.0;
  clock.schedule_at(0.25, [&] { observed = clock.now(); });  // in the past
  clock.pump();
  EXPECT_DOUBLE_EQ(observed, 1.0);  // clamped to schedule-time now()
}

TEST(RealtimeClock, ScheduleAfterUsesLogicalNow) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  std::vector<SimTime> fired_at;
  clock.schedule_at(0.100, [&] {
    fired_at.push_back(clock.now());
    clock.schedule_after(0.050, [&] { fired_at.push_back(clock.now()); });
  });
  source.advance_to(0.400);
  clock.pump();
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_DOUBLE_EQ(fired_at[0], 0.100);
  // Chained from the deadline, not from the (late) wall instant.
  EXPECT_DOUBLE_EQ(fired_at[1], 0.150);
}

// --- RealtimeClock cancellation ---------------------------------------------

TEST(RealtimeClock, CancelPreventsFiring) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  int fired = 0;
  TimerHandle handle = clock.schedule_at(0.010, [&] { ++fired; });
  EXPECT_EQ(clock.armed_count(), 1u);
  handle.cancel();
  EXPECT_EQ(clock.armed_count(), 0u);
  source.advance_to(0.100);
  EXPECT_EQ(clock.pump(), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(handle.cancelled());
}

TEST(RealtimeClock, StaleHandleCannotCancelRecycledSlot) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  int first = 0, second = 0;
  TimerHandle old_handle = clock.schedule_at(0.010, [&] { ++first; });
  source.advance_to(0.020);
  clock.pump();
  EXPECT_EQ(first, 1);
  // The new timer reuses the freed slot; the stale handle's generation
  // no longer matches and must not cancel it.
  clock.schedule_at(0.030, [&] { ++second; });
  old_handle.cancel();
  source.advance_to(0.050);
  clock.pump();
  EXPECT_EQ(second, 1);
}

TEST(RealtimeClock, CancelFromCallbackStopsDueSibling) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  int cancelled_fired = 0;
  TimerHandle victim;
  clock.schedule_at(0.010, [&] { victim.cancel(); });
  victim = clock.schedule_at(0.010, [&] { ++cancelled_fired; });
  source.advance_to(0.020);
  clock.pump();
  EXPECT_EQ(cancelled_fired, 0);
}

// --- RealtimeClock wheel mechanics ------------------------------------------

TEST(RealtimeClock, OverflowTimersMigrateAndFire) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  // 2.0 s is ~2000 ticks: several wheel revolutions out, so it starts in
  // the overflow list and must migrate in as the cursor wraps.
  std::vector<std::string> order;
  clock.schedule_at(2.0, [&] { order.push_back("far"); });
  clock.schedule_at(0.1, [&] { order.push_back("near"); });
  source.advance_to(1.0);
  EXPECT_EQ(clock.pump(), 1u);
  EXPECT_EQ(clock.armed_count(), 1u);
  source.advance_to(3.0);
  EXPECT_EQ(clock.pump(), 1u);
  EXPECT_EQ(order, (std::vector<std::string>{"near", "far"}));
}

TEST(RealtimeClock, NextDeadlineTracksEarliestTimer) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  EXPECT_LT(clock.next_deadline(), 0.0);  // nothing armed
  clock.schedule_at(0.500, [] {});
  TimerHandle early = clock.schedule_at(0.100, [] {});
  EXPECT_DOUBLE_EQ(clock.next_deadline(), 0.100);
  early.cancel();
  EXPECT_DOUBLE_EQ(clock.next_deadline(), 0.500);
  source.advance_to(1.0);
  clock.pump();
  EXPECT_LT(clock.next_deadline(), 0.0);
}

TEST(RealtimeClock, IdlePumpAfterLongGapIsCheap) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  int fired = 0;
  clock.schedule_at(0.010, [&] { ++fired; });
  source.advance_to(0.020);
  clock.pump();
  // Hours of idle wall time: the armed_ == 0 fast path must jump the
  // cursor instead of walking millions of empty ticks.
  source.advance_to(3600.0);
  EXPECT_EQ(clock.pump(), 0u);
  // And a timer scheduled afterwards still fires normally.
  clock.schedule_at(3600.5, [&] { ++fired; });
  source.advance_to(3601.0);
  EXPECT_EQ(clock.pump(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(RealtimeClock, ManyTimersDenseAndSparse) {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock(source);
  std::vector<SimTime> fired;
  // A mix of deadlines inside one revolution and far beyond it.
  for (int i = 0; i < 100; ++i) {
    const SimTime when = 0.001 * (i % 7) + 0.3 * (i % 3) + 0.05;
    clock.schedule_at(when, [&fired, &clock] { fired.push_back(clock.now()); });
  }
  source.advance_to(2.0);
  EXPECT_EQ(clock.pump(), 100u);
  EXPECT_EQ(clock.armed_count(), 0u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1], fired[i]) << "out-of-order firing at " << i;
  }
}

// --- ManualTimeSource -------------------------------------------------------

TEST(ManualTimeSource, AdvancesMonotonically) {
  runtime::ManualTimeSource source;
  EXPECT_DOUBLE_EQ(source.now(), 0.0);
  source.advance_to(1.5);
  EXPECT_DOUBLE_EQ(source.now(), 1.5);
  source.advance_by(0.5);
  EXPECT_DOUBLE_EQ(source.now(), 2.0);
  source.advance_to(2.0);  // equal is allowed
  EXPECT_DOUBLE_EQ(source.now(), 2.0);
}

TEST(SteadyTimeSource, StartsNearZeroAndMovesForward) {
  runtime::SteadyTimeSource source;
  const SimTime a = source.now();
  const SimTime b = source.now();
  EXPECT_GE(a, 0.0);
  EXPECT_LE(a, b);
  EXPECT_LT(a, 60.0);  // zeroed at construction, not at boot
}

}  // namespace
}  // namespace anu
