// Tests for the linear hashing comparator (§4's contrast case).
#include "balance/linear_hashing.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace anu::balance {
namespace {

std::vector<std::string> keys(std::size_t n) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back("k/" + std::to_string(i));
  return out;
}

TEST(LinearHashing, AddressesWithinBucketCount) {
  LinearHashing lh(4);
  EXPECT_EQ(lh.bucket_count(), 4u);
  for (const auto& k : keys(1000)) EXPECT_LT(lh.bucket_of(k), 4u);
  lh.add_bucket();
  EXPECT_EQ(lh.bucket_count(), 5u);
  for (const auto& k : keys(1000)) EXPECT_LT(lh.bucket_of(k), 5u);
}

TEST(LinearHashing, SplitsRoundRobinAndLevelsUp) {
  LinearHashing lh(4);
  EXPECT_EQ(lh.add_bucket(), 0u);
  EXPECT_EQ(lh.add_bucket(), 1u);
  EXPECT_EQ(lh.add_bucket(), 2u);
  EXPECT_EQ(lh.level(), 0u);
  EXPECT_EQ(lh.add_bucket(), 3u);  // doubling complete
  EXPECT_EQ(lh.level(), 1u);
  EXPECT_EQ(lh.split_pointer(), 0u);
  EXPECT_EQ(lh.bucket_count(), 8u);
}

TEST(LinearHashing, SplitMovesOnlySplitBucketsKeys) {
  // The §4 contrast: a split rehashes keys of exactly one bucket; every
  // other key keeps its address.
  LinearHashing lh(4);
  const auto ks = keys(4000);
  std::vector<std::uint32_t> before(ks.size());
  for (std::size_t i = 0; i < ks.size(); ++i) before[i] = lh.bucket_of(ks[i]);
  const std::uint32_t split_bucket = lh.add_bucket();
  std::size_t moved = 0;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const auto after = lh.bucket_of(ks[i]);
    if (after != before[i]) {
      ++moved;
      EXPECT_EQ(before[i], split_bucket);   // movers come from the split
      EXPECT_EQ(after, 4u);                 // and land in the new bucket
    }
  }
  // Roughly half the split bucket's ~1000 keys move.
  EXPECT_GT(moved, 300u);
  EXPECT_LT(moved, 700u);
}

TEST(LinearHashing, GrowthMovesBoundedFraction) {
  // Across a full doubling, each key moves at most once.
  LinearHashing lh(4);
  const auto ks = keys(8000);
  std::vector<std::uint32_t> before(ks.size());
  for (std::size_t i = 0; i < ks.size(); ++i) before[i] = lh.bucket_of(ks[i]);
  for (int split = 0; split < 4; ++split) lh.add_bucket();  // 4 -> 8
  std::size_t moved = 0;
  for (std::size_t i = 0; i < ks.size(); ++i) {
    moved += lh.bucket_of(ks[i]) != before[i] ? 1u : 0u;
  }
  EXPECT_GT(moved, 8000u * 3 / 10);
  EXPECT_LT(moved, 8000u * 7 / 10);  // ~half move over a doubling
}

TEST(LinearHashing, RoughlyUniformAfterManySplits) {
  LinearHashing lh(4);
  for (int i = 0; i < 12; ++i) lh.add_bucket();  // 16 buckets, level 2
  ASSERT_EQ(lh.bucket_count(), 16u);
  std::vector<std::size_t> counts(16, 0);
  for (const auto& k : keys(32'000)) ++counts[lh.bucket_of(k)];
  for (auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 2000.0, 2000.0 * 0.15);
  }
}

TEST(LinearHashing, DeterministicAddressing) {
  LinearHashing a(4), b(4);
  a.add_bucket();
  b.add_bucket();
  for (const auto& k : keys(200)) EXPECT_EQ(a.bucket_of(k), b.bucket_of(k));
}

TEST(LinearHashing, MidSplitUniformityIsLumpy) {
  // The known linear-hashing weakness: between level boundaries, split
  // buckets hold ~half the keys of unsplit ones — ANU's equal partitions
  // avoid this shape entirely.
  LinearHashing lh(8);
  for (int i = 0; i < 4; ++i) lh.add_bucket();  // 12 buckets, half split
  std::vector<std::size_t> counts(lh.bucket_count(), 0);
  for (const auto& k : keys(24'000)) ++counts[lh.bucket_of(k)];
  // Unsplit buckets (4..7) carry roughly double the split ones (0..3).
  const double split_avg =
      static_cast<double>(counts[0] + counts[1] + counts[2] + counts[3]) / 4.0;
  const double unsplit_avg =
      static_cast<double>(counts[4] + counts[5] + counts[6] + counts[7]) / 4.0;
  EXPECT_GT(unsplit_avg, split_avg * 1.5);
}

}  // namespace
}  // namespace anu::balance
