// Tests for streaming statistics, histograms and time series.
#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace anu {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.sum(), 31.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSingleStream) {
  RunningStats a, b, whole;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStats, StableOnShiftedData) {
  // Welford should not lose precision on large-offset data.
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 1.0);
}

TEST(Histogram, OverflowBucket) {
  Histogram h(0.0, 1.0, 4);
  h.add(100.0);
  h.add(-5.0);  // clamps to first bucket
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(h.bucket_count() - 1), 1u);
}

TEST(Histogram, EmptyQuantileIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(TimeSeries, WindowedMeanBasic) {
  TimeSeries ts;
  ts.add(0.5, 2.0);
  ts.add(0.9, 4.0);
  ts.add(1.5, 10.0);
  const auto windows = ts.windowed_mean(1.0, 3.0);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_DOUBLE_EQ(windows[0].value, 3.0);   // mean(2, 4)
  EXPECT_DOUBLE_EQ(windows[1].value, 10.0);  // mean(10)
  EXPECT_DOUBLE_EQ(windows[2].value, 10.0);  // empty carries previous
}

TEST(TimeSeries, EmptyWindowsBeforeFirstSampleAreZero) {
  TimeSeries ts;
  ts.add(2.5, 7.0);
  const auto windows = ts.windowed_mean(1.0, 4.0);
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_DOUBLE_EQ(windows[0].value, 0.0);
  EXPECT_DOUBLE_EQ(windows[1].value, 0.0);
  EXPECT_DOUBLE_EQ(windows[2].value, 7.0);
  EXPECT_DOUBLE_EQ(windows[3].value, 7.0);
}

TEST(TimeSeries, WindowTimesAreWindowEnds) {
  TimeSeries ts;
  const auto windows = ts.windowed_mean(2.0, 6.0);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_DOUBLE_EQ(windows[0].time, 2.0);
  EXPECT_DOUBLE_EQ(windows[2].time, 6.0);
}


TEST(LogHistogram, EmptyQuantileIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, QuantilesWithinBucketResolution) {
  LogHistogram h(1e-3, 1e4, 50);
  // 1..1000 uniformly: p50 ~ 500, p99 ~ 990; log buckets give ~2.3%/bucket
  // relative resolution at 50/decade.
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.quantile(0.5), 500.0, 500.0 * 0.06);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 990.0 * 0.06);
  EXPECT_NEAR(h.quantile(0.001), 1.0, 0.2);
}

TEST(LogHistogram, HandlesWideDynamicRange) {
  LogHistogram h;
  h.add(1e-3);
  h.add(1.0);
  h.add(1e4);
  EXPECT_NEAR(h.quantile(0.5), 1.0, 0.15);
  EXPECT_GT(h.quantile(0.99), 1e3);
  EXPECT_LT(h.quantile(0.01), 1e-2);
}

TEST(LogHistogram, ClampsOutOfRangeValues) {
  LogHistogram h(0.1, 10.0, 10);
  h.add(1e-9);   // clamps to first bucket
  h.add(1e9);    // clamps to last bucket
  h.add(0.0);    // non-positive: first bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_GT(h.quantile(0.9), 1.0);
  EXPECT_LT(h.quantile(0.1), 0.2);
}

TEST(LogHistogram, MergeEqualsCombinedStream) {
  LogHistogram a, b, whole;
  for (int i = 1; i <= 100; ++i) {
    const double x = 0.01 * i * i;
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q));
  }
}

}  // namespace
}  // namespace anu
