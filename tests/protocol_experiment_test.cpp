// End-to-end tests: the queueing data plane driven by the real message
// protocol, and cross-validation against the balancer-level driver.
#include "driver/protocol_experiment.h"

#include <gtest/gtest.h>

#include "driver/balancer_factory.h"
#include "workload/synthetic.h"

namespace anu::driver {
namespace {

workload::Workload test_workload(std::uint64_t seed = 42) {
  workload::SyntheticConfig config;
  config.seed = seed;
  config.file_set_count = 30;
  config.request_count = 8'000;
  config.duration = 40.0 * 60.0;
  return make_synthetic_workload(config);
}

ProtocolExperimentConfig base_config() {
  ProtocolExperimentConfig config;
  config.cluster = cluster::paper_cluster();
  return config;
}

TEST(ProtocolExperiment, CompletesAndConverges) {
  const auto w = test_workload();
  const auto result = run_protocol_experiment(base_config(), w);
  EXPECT_EQ(result.requests_issued, w.request_count());
  EXPECT_GT(result.requests_completed, w.request_count() * 7 / 10);
  // The weakest server ends up near-idle, as under the direct driver.
  EXPECT_LT(static_cast<double>(result.served[0]) /
                static_cast<double>(result.requests_completed),
            0.15);
  EXPECT_GT(result.tuning_rounds, 15u);
}

TEST(ProtocolExperiment, MatchesBalancerDriverShape) {
  // The protocol adds messaging latency and transient replica skew; on a
  // LAN config its steady-state latency must land close to the direct
  // driver's (this validates the control_delay abstraction).
  const auto w = test_workload();
  const auto protocol_result = run_protocol_experiment(base_config(), w);

  ExperimentConfig direct;
  direct.cluster = cluster::paper_cluster();
  SystemConfig system;
  system.kind = SystemKind::kAnu;
  auto balancer = make_balancer(system, 5);
  const auto direct_result = run_experiment(direct, w, *balancer);

  EXPECT_LT(protocol_result.steady_state.mean(),
            direct_result.steady_state.mean() * 3.0 + 0.5);
  EXPECT_GT(protocol_result.steady_state.mean(),
            direct_result.steady_state.mean() * 0.3);
}

TEST(ProtocolExperiment, Deterministic) {
  const auto w = test_workload();
  const auto a = run_protocol_experiment(base_config(), w);
  const auto b = run_protocol_experiment(base_config(), w);
  EXPECT_DOUBLE_EQ(a.aggregate.mean(), b.aggregate.mean());
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.total_moved, b.total_moved);
}

TEST(ProtocolExperiment, SurvivesDelegateFailureMidRun) {
  const auto w = test_workload();
  auto config = base_config();
  cluster::FailureSchedule schedule;
  schedule.add({700.0, cluster::MembershipAction::kFail, ServerId(0), 0.0});
  schedule.add({1500.0, cluster::MembershipAction::kRecover, ServerId(0), 0.0});
  config.failures = schedule;
  const auto result = run_protocol_experiment(config, w);
  EXPECT_GT(result.requests_completed, w.request_count() * 6 / 10);
}

TEST(ProtocolExperiment, SlowControlNetworkStillWorks) {
  const auto w = test_workload();
  auto config = base_config();
  config.network.base_delay = 0.25;
  config.protocol.report_grace = 2.0;
  const auto result = run_protocol_experiment(config, w);
  EXPECT_GT(result.requests_completed, w.request_count() * 7 / 10);
  EXPECT_GT(result.tuning_rounds, 15u);
}

TEST(ProtocolExperiment, RecordsMovement) {
  const auto w = test_workload();
  const auto result = run_protocol_experiment(base_config(), w);
  EXPECT_GT(result.total_moved, 0u);
  EXPECT_LE(result.unique_moved, w.file_set_count());
}

}  // namespace
}  // namespace anu::driver
