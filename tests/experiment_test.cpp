// Integration tests: full simulated runs of all four load-management
// systems on the paper's cluster, scaled down for test runtime.
#include <gtest/gtest.h>

#include <memory>

#include "driver/balancer_factory.h"
#include "driver/experiment.h"
#include "workload/synthetic.h"

namespace anu::driver {
namespace {

workload::Workload small_workload(std::uint64_t seed = 42) {
  workload::SyntheticConfig config;
  config.seed = seed;
  config.file_set_count = 30;
  config.request_count = 8'000;
  config.duration = 40.0 * 60.0;  // 40 minutes
  return make_synthetic_workload(config);
}

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.cluster = cluster::paper_cluster();  // speeds 1,3,5,7,9
  config.tuning_interval = 120.0;
  return config;
}

ExperimentResult run_system(SystemKind kind, const workload::Workload& w,
                            const ExperimentConfig& config) {
  SystemConfig system;
  system.kind = kind;
  auto balancer = make_balancer(system, config.cluster.server_speeds.size());
  return run_experiment(config, w, *balancer);
}

TEST(Experiment, AllSystemsCompleteRequests) {
  const auto w = small_workload();
  const auto config = base_config();
  for (SystemKind kind : kAllSystems) {
    const auto result = run_system(kind, w, config);
    EXPECT_EQ(result.requests_issued, w.request_count())
        << system_label(kind);
    EXPECT_GT(result.requests_completed, w.request_count() * 7 / 10)
        << system_label(kind);
    EXPECT_LE(result.requests_completed, result.requests_issued);
  }
}

TEST(Experiment, DeterministicRuns) {
  const auto w = small_workload();
  const auto config = base_config();
  const auto a = run_system(SystemKind::kAnu, w, config);
  const auto b = run_system(SystemKind::kAnu, w, config);
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_DOUBLE_EQ(a.aggregate.mean(), b.aggregate.mean());
  EXPECT_EQ(a.total_moved, b.total_moved);
}

TEST(Experiment, AnuBeatsSimpleRandomization) {
  // The headline comparison (Figs. 5/6): ANU adapts to heterogeneity,
  // simple randomization cannot.
  const auto w = small_workload();
  const auto config = base_config();
  const auto anu = run_system(SystemKind::kAnu, w, config);
  const auto simple = run_system(SystemKind::kSimpleRandom, w, config);
  EXPECT_LT(anu.aggregate.mean(), simple.aggregate.mean());
}

TEST(Experiment, PrescientIsTheUpperBound) {
  const auto w = small_workload();
  const auto config = base_config();
  const auto prescient = run_system(SystemKind::kDynPrescient, w, config);
  const auto anu = run_system(SystemKind::kAnu, w, config);
  const auto simple = run_system(SystemKind::kSimpleRandom, w, config);
  EXPECT_LT(prescient.aggregate.mean(), simple.aggregate.mean());
  // ANU approaches the oracle but cannot beat it by much; allow slack for
  // the pre-convergence phase on this short run.
  EXPECT_LT(prescient.aggregate.mean(), anu.aggregate.mean() * 1.05);
}

TEST(Experiment, AnuConvergesCloseToPrescient) {
  // §5.2.2: "The latency of ANU randomization is fairly close to that of
  // dynamic prescient." Compare steady-state (second-half) latencies.
  const auto w = small_workload();
  const auto config = base_config();
  const auto anu = run_system(SystemKind::kAnu, w, config);
  const auto prescient = run_system(SystemKind::kDynPrescient, w, config);
  EXPECT_LT(anu.steady_state.mean(), prescient.steady_state.mean() * 3.0);
}

TEST(Experiment, SimpleRandomWeakestServerDegrades) {
  // Fig. 5 (simple randomization): "The weakest server's performance keeps
  // degrading during the simulation."
  const auto w = small_workload();
  const auto config = base_config();
  const auto result = run_system(SystemKind::kSimpleRandom, w, config);
  const auto& weakest = result.latency_over_time[0];  // server 0, speed 1
  ASSERT_GE(weakest.size(), 4u);
  // Latency in the last quarter far above the first quarter.
  EXPECT_GT(weakest[weakest.size() - 1].value,
            weakest[weakest.size() / 4].value * 2.0);
}

TEST(Experiment, AnuShedsLoadFromWeakestServer) {
  // §5.2.2: the weakest server ends up near-idle; it must not dominate.
  const auto w = small_workload();
  const auto config = base_config();
  const auto result = run_system(SystemKind::kAnu, w, config);
  const double share_of_weakest =
      static_cast<double>(result.served[0]) /
      static_cast<double>(result.requests_completed);
  EXPECT_LT(share_of_weakest, 0.10);
}

TEST(Experiment, AnuMovementConcentratedEarly) {
  // Fig. 7: active movement in the first rounds, little afterwards.
  const auto w = small_workload();
  const auto config = base_config();
  const auto result = run_system(SystemKind::kAnu, w, config);
  ASSERT_GE(result.movement.size(), 8u);
  std::size_t early = 0, late = 0;
  const std::size_t half = result.movement.size() / 2;
  for (std::size_t i = 0; i < result.movement.size(); ++i) {
    (i < half ? early : late) += result.movement[i].moved;
  }
  EXPECT_GE(early, late);
  EXPECT_GT(result.total_moved, 0u);
}

TEST(Experiment, MoreVirtualProcessorsHelp) {
  // The VP granularity tradeoff (Fig. 8) only bites when the cluster runs
  // hot enough that a lumpy VP->server mapping overloads someone.
  workload::SyntheticConfig wc;
  wc.seed = 42;
  wc.file_set_count = 30;
  wc.request_count = 8'000;
  wc.duration = 40.0 * 60.0;
  wc.target_utilization = 0.8;
  const auto w = make_synthetic_workload(wc);
  const auto config = base_config();
  SystemConfig coarse;
  coarse.kind = SystemKind::kVirtualProcessor;
  coarse.vp.vp_per_server = 1;
  SystemConfig fine = coarse;
  fine.vp.vp_per_server = 10;
  auto coarse_bal = make_balancer(coarse, 5);
  auto fine_bal = make_balancer(fine, 5);
  const auto coarse_result = run_experiment(config, w, *coarse_bal);
  const auto fine_result = run_experiment(config, w, *fine_bal);
  EXPECT_LT(fine_result.aggregate.mean(), coarse_result.aggregate.mean());
  EXPECT_GT(fine_bal->shared_state_bytes(), coarse_bal->shared_state_bytes());
}

TEST(Experiment, SharedStateOrdering) {
  // §5.4: ANU's replicated state is smaller than an equivalently-performing
  // VP system's table.
  const auto w = small_workload();
  const auto config = base_config();
  SystemConfig vp;
  vp.kind = SystemKind::kVirtualProcessor;
  vp.vp.vp_per_server = 6;  // 30 VPs: the paper's parity point
  auto vp_bal = make_balancer(vp, 5);
  SystemConfig anu;
  anu.kind = SystemKind::kAnu;
  auto anu_bal = make_balancer(anu, 5);
  (void)run_experiment(config, w, *vp_bal);
  (void)run_experiment(config, w, *anu_bal);
  EXPECT_LT(anu_bal->shared_state_bytes(), vp_bal->shared_state_bytes());
}

TEST(Experiment, FailureAndRecoveryMidRun) {
  const auto w = small_workload();
  auto config = base_config();
  cluster::FailureSchedule schedule;
  schedule.add({600.0, cluster::MembershipAction::kFail, ServerId(4), 0.0});
  schedule.add({1200.0, cluster::MembershipAction::kRecover, ServerId(4), 0.0});
  config.failures = schedule;
  for (SystemKind kind : kAllSystems) {
    const auto result = run_system(kind, w, config);
    // No request may be lost: everything issued either completed or sits in
    // a queue at the horizon; flushed requests were re-dispatched.
    EXPECT_GT(result.requests_completed, w.request_count() * 6 / 10)
        << system_label(kind);
  }
}

TEST(Experiment, ServerAdditionMidRun) {
  const auto w = small_workload();
  auto config = base_config();
  cluster::FailureSchedule schedule;
  schedule.add({600.0, cluster::MembershipAction::kAdd, ServerId(), 9.0});
  config.failures = schedule;
  const auto result = run_system(SystemKind::kAnu, w, config);
  EXPECT_EQ(result.server_count, 6u);
  EXPECT_GT(result.served[5], 0u);  // the newcomer ends up serving load
}

TEST(Experiment, UtilizationTracksSpeedUnderAnu) {
  // Once balanced, fast servers should be busier than the weakest one.
  const auto w = small_workload();
  const auto config = base_config();
  const auto result = run_system(SystemKind::kAnu, w, config);
  EXPECT_GT(result.utilization[4], result.utilization[0]);
}

TEST(Experiment, MoveWarmupPenaltyIncursCost) {
  // Prescient placement ignores latency feedback, so its move pattern is
  // identical with and without the cold-cache penalty — the penalized run
  // strictly adds work and must come out slower. (ANU's own decisions react
  // to the penalty, so no such monotonicity holds for it.)
  const auto w = small_workload();
  auto config = base_config();
  const auto cold = run_system(SystemKind::kDynPrescient, w, config);
  config.move_warmup_penalty = 5.0;  // heavy cold-cache cost
  const auto warm = run_system(SystemKind::kDynPrescient, w, config);
  EXPECT_GT(warm.aggregate.mean(), cold.aggregate.mean());
}

TEST(Experiment, OracleLookaheadCanBeDisabled) {
  const auto w = small_workload();
  auto config = base_config();
  config.oracle_lookahead = false;
  const auto result = run_system(SystemKind::kDynPrescient, w, config);
  EXPECT_GT(result.requests_completed, 0u);
}


TEST(Experiment, TwoChoicePlacementRunsEndToEnd) {
  const auto w = small_workload();
  const auto config = base_config();
  SystemConfig system;
  system.kind = SystemKind::kAnu;
  system.anu.placement_choices = 2;
  auto balancer = make_balancer(system, 5);
  const auto result = run_experiment(config, w, *balancer);
  EXPECT_GT(result.requests_completed, w.request_count() * 7 / 10);
  // Choice bits count toward the replicated state.
  EXPECT_EQ(result.shared_state_bytes,
            16u * 12 + 8 + (w.file_set_count() + 7) / 8);
}

TEST(Experiment, CacheModelEndToEnd) {
  const auto w = small_workload();
  auto config = base_config();
  const auto cold = run_system(SystemKind::kAnu, w, config);
  config.cluster.cache.enabled = true;
  config.cluster.cache.cold_penalty_factor = 2.0;
  config.cluster.cache.warmup_requests = 10;
  const auto warm = run_system(SystemKind::kAnu, w, config);
  // Warm-up work strictly adds demand somewhere; the run still completes.
  EXPECT_GT(warm.requests_completed, w.request_count() * 7 / 10);
  EXPECT_GT(warm.aggregate.mean(), cold.aggregate.mean() * 0.9);
}

TEST(Experiment, RandomFailureScheduleSurvivesAllSystems) {
  const auto w = small_workload();
  auto config = base_config();
  config.failures = cluster::FailureSchedule::random_fail_recover(
      /*seed=*/5, /*server_count=*/5, /*rounds=*/3, /*horizon=*/w.span(),
      /*downtime=*/120.0);
  for (SystemKind kind : kAllSystems) {
    const auto result = run_system(kind, w, config);
    EXPECT_GT(result.requests_completed, w.request_count() / 2)
        << system_label(kind);
  }
}

TEST(Experiment, LatencyQuantilesAreOrdered) {
  const auto w = small_workload();
  const auto config = base_config();
  const auto result = run_system(SystemKind::kAnu, w, config);
  const double p50 = result.latency_histogram.quantile(0.50);
  const double p95 = result.latency_histogram.quantile(0.95);
  const double p99 = result.latency_histogram.quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_EQ(result.latency_histogram.count(), result.requests_completed);
}

TEST(Experiment, MovementTrackerUniqueMetrics) {
  const auto w = small_workload();
  const auto config = base_config();
  const auto result = run_system(SystemKind::kAnu, w, config);
  EXPECT_LE(result.unique_moved, w.file_set_count());
  EXPECT_LE(result.unique_moved, result.total_moved);
  EXPECT_LE(result.percent_unique_workload_moved, 100.0 + 1e-9);
}

TEST(Experiment, VpMappingPolicyComparison) {
  // Both policies must run; the capacity-proportional default cannot leave
  // a fast server empty while the weak one has multiple VPs.
  workload::SyntheticConfig wc;
  wc.seed = 9;
  wc.file_set_count = 30;
  wc.request_count = 6'000;
  wc.duration = 30.0 * 60.0;
  wc.target_utilization = 0.7;
  const auto w = make_synthetic_workload(wc);
  const auto config = base_config();
  for (auto policy : {balance::VpMappingPolicy::kCapacityProportional,
                      balance::VpMappingPolicy::kMinLatency}) {
    SystemConfig system;
    system.kind = SystemKind::kVirtualProcessor;
    system.vp.policy = policy;
    auto balancer = make_balancer(system, 5);
    const auto result = run_experiment(config, w, *balancer);
    EXPECT_GT(result.requests_completed, w.request_count() * 7 / 10);
  }
}


TEST(Experiment, ControlDelayRunsAndConverges) {
  const auto w = small_workload();
  auto config = base_config();
  config.control_delay = 5.0;  // protocol round-trip + handoff
  const auto delayed = run_system(SystemKind::kAnu, w, config);
  config.control_delay = 0.0;
  const auto instant = run_system(SystemKind::kAnu, w, config);
  EXPECT_GT(delayed.requests_completed, w.request_count() * 7 / 10);
  // A 5-second pipeline on a 120-second interval barely matters.
  EXPECT_LT(delayed.steady_state.mean(), instant.steady_state.mean() * 3.0);
}

TEST(Experiment, ControlDelayWithFailureMidCommit) {
  // Failure lands between a tuning round and its delayed commit; routing
  // must never point at the dead server.
  const auto w = small_workload();
  auto config = base_config();
  config.control_delay = 30.0;
  cluster::FailureSchedule schedule;
  // Fail just after a tuning round fires (rounds at 120, 240, ...).
  schedule.add({125.0, cluster::MembershipAction::kFail, ServerId(4), 0.0});
  schedule.add({1000.0, cluster::MembershipAction::kRecover, ServerId(4), 0.0});
  config.failures = schedule;
  for (SystemKind kind : kAllSystems) {
    const auto result = run_system(kind, w, config);
    EXPECT_GT(result.requests_completed, w.request_count() / 2)
        << system_label(kind);
  }
}

TEST(Experiment, ControlDelayDeterministic) {
  const auto w = small_workload();
  auto config = base_config();
  config.control_delay = 10.0;
  const auto a = run_system(SystemKind::kAnu, w, config);
  const auto b = run_system(SystemKind::kAnu, w, config);
  EXPECT_DOUBLE_EQ(a.aggregate.mean(), b.aggregate.mean());
  EXPECT_EQ(a.requests_completed, b.requests_completed);
}


TEST(Experiment, ShareSamplesTrackAdaptation) {
  const auto w = small_workload();
  const auto config = base_config();
  const auto result = run_system(SystemKind::kAnu, w, config);
  ASSERT_GE(result.shares_over_time.size(), 10u);
  // Every sample sums to ~1 and has one entry per server.
  for (const auto& sample : result.shares_over_time) {
    ASSERT_EQ(sample.share.size(), 5u);
    double sum = 0.0;
    for (double s : sample.share) sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // Adaptation: by the end the fastest server carries more assigned weight
  // than the slowest, and more than it started with.
  const auto& first = result.shares_over_time.front();
  const auto& last = result.shares_over_time.back();
  EXPECT_GT(last.share[4], last.share[0]);
  EXPECT_GT(last.share[4], first.share[0] * 0.9);
}

TEST(Experiment, StaticSystemsHaveFlatShares) {
  const auto w = small_workload();
  const auto config = base_config();
  const auto result = run_system(SystemKind::kSimpleRandom, w, config);
  ASSERT_GE(result.shares_over_time.size(), 2u);
  EXPECT_EQ(result.shares_over_time.front().share,
            result.shares_over_time.back().share);
}

}  // namespace
}  // namespace anu::driver
