// Tests for the observability subsystem: the TraceSink ring buffer, the
// JSON document model, the JSONL / Chrome trace exporters, the telemetry
// manifest, and the schema documentation coverage contract.
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "driver/balancer_factory.h"
#include "driver/config_file.h"
#include "driver/experiment.h"
#include "driver/protocol_experiment.h"
#include "driver/telemetry.h"
#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/trace_sink.h"

namespace anu {
namespace {

using obs::EventType;
using obs::Json;
using obs::TraceSink;

// ---------------------------------------------------------------- TraceSink

TEST(TraceSink, StartsEmpty) {
  TraceSink sink(16);
  EXPECT_EQ(sink.capacity(), 16u);
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.emitted(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, RecordsInEmissionOrder) {
  TraceSink sink(16);
  for (std::uint32_t i = 0; i < 5; ++i) {
    sink.emit(static_cast<double>(i), EventType::kRequestIssue, i);
  }
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].a, i);
    EXPECT_DOUBLE_EQ(events[i].time, static_cast<double>(i));
  }
}

TEST(TraceSink, OverflowDropsOldestAndCounts) {
  TraceSink sink(8);
  for (std::uint32_t i = 0; i < 20; ++i) {
    sink.emit(static_cast<double>(i), EventType::kRequestComplete, i);
  }
  EXPECT_EQ(sink.size(), 8u);
  EXPECT_EQ(sink.emitted(), 20u);
  EXPECT_EQ(sink.dropped(), 12u);
  // The newest 8 events survive, still oldest-first.
  const auto events = sink.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(events[i].a, 12 + i);
  }
}

TEST(TraceSink, ClearResetsEverything) {
  TraceSink sink(4);
  for (int i = 0; i < 10; ++i) sink.emit(1.0, EventType::kServerFail, 0);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.emitted(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_TRUE(sink.snapshot().empty());
}

TEST(TraceSink, EventTypeNamesAreDistinctAndStable) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < obs::kEventTypeCount; ++i) {
    const char* name = obs::event_type_name(static_cast<EventType>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_FALSE(std::string(name).empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), obs::kEventTypeCount);
  EXPECT_EQ(obs::event_type_name(EventType::kRequestIssue),
            std::string("request_issue"));
  EXPECT_EQ(obs::event_type_name(EventType::kDelegateElected),
            std::string("delegate_elected"));
}

// --------------------------------------------------------------------- Json

TEST(Json, BuildsAndDumpsDeterministically) {
  Json o = Json::object();
  o.set("b", 2).set("a", 1).set("s", "x\"y");
  Json arr = Json::array();
  arr.push_back(true).push_back(Json()).push_back(0.5);
  o.set("arr", std::move(arr));
  // Insertion order is preserved (not sorted) so output is diffable.
  EXPECT_EQ(o.dump(), R"({"b":2,"a":1,"s":"x\"y","arr":[true,null,0.5]})");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      R"({"n":-3.25,"i":42,"s":"hi\nthere","a":[1,2,3],"o":{"k":false}})";
  std::string error;
  const auto parsed = Json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->dump(), text);
  EXPECT_DOUBLE_EQ(parsed->at("n")->as_number(), -3.25);
  EXPECT_EQ(parsed->at("o", "k")->as_bool(), false);
  EXPECT_EQ(parsed->at("a")->as_array().size(), 3u);
  EXPECT_EQ(parsed->at("missing"), nullptr);
}

TEST(Json, NumbersSurviveRoundTrip) {
  for (const double v : {0.1, 1e-9, 1.0 / 3.0, 123456789.123456789, 1e300}) {
    const std::string text = Json(v).dump();
    const auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_DOUBLE_EQ(parsed->as_number(), v) << text;
  }
  EXPECT_EQ(Json(7).dump(), "7");
  EXPECT_EQ(Json(std::uint64_t{1} << 40).dump(), "1099511627776");
}

TEST(Json, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Json::parse("{", &error).has_value());
  EXPECT_FALSE(Json::parse("[1,]", &error).has_value());
  EXPECT_FALSE(Json::parse("{} trailing", &error).has_value());
  EXPECT_FALSE(Json::parse("'single'", &error).has_value());
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------- Exporters

TraceSink make_golden_sink() {
  TraceSink sink(64);
  sink.emit(0.0, EventType::kServerAdd, 0, 0, 0, 2.5);
  sink.emit(0.5, EventType::kRequestIssue, 3, 1, 0, 2.0);
  sink.emit(1.5, EventType::kRequestComplete, 3, 1, 0, 1.0);
  sink.emit(2.0, EventType::kFileSetMove, 3, 1, 0);
  sink.emit(2.0, EventType::kRegionRetune, 1, 0, 0, 0.25);
  return sink;
}

TEST(Export, JsonlGolden) {
  const TraceSink sink = make_golden_sink();
  std::ostringstream os;
  obs::write_jsonl(sink, os);
  EXPECT_EQ(os.str(),
            "{\"t\":0,\"type\":\"server_add\",\"server\":0,\"speed\":2.5}\n"
            "{\"t\":0.5,\"type\":\"request_issue\",\"file_set\":3,"
            "\"server\":1,\"demand\":2}\n"
            "{\"t\":1.5,\"type\":\"request_complete\",\"file_set\":3,"
            "\"server\":1,\"latency_s\":1}\n"
            "{\"t\":2,\"type\":\"file_set_move\",\"file_set\":3,"
            "\"from\":1,\"to\":0}\n"
            "{\"t\":2,\"type\":\"region_retune\",\"server\":1,"
            "\"share\":0.25}\n");
}

TEST(Export, ChromeTraceIsValidJsonWithExpectedPhases) {
  const TraceSink sink = make_golden_sink();
  std::ostringstream os;
  obs::write_chrome_trace(sink, os);
  std::string error;
  const auto doc = Json::parse(os.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const Json* events = doc->at("traceEvents");
  ASSERT_NE(events, nullptr);
  // Metadata names every track that appears, then one entry per event.
  std::size_t metadata = 0, durations = 0, counters = 0, instants = 0;
  for (const Json& e : events->as_array()) {
    const std::string& ph = e.at("ph")->as_string();
    if (ph == "M") ++metadata;
    if (ph == "X") ++durations;
    if (ph == "C") ++counters;
    if (ph == "i") ++instants;
  }
  EXPECT_GE(metadata, 2u);  // control plane + at least one server track
  EXPECT_EQ(durations, 1u);
  EXPECT_EQ(counters, 1u);
  EXPECT_EQ(instants, 3u);
}

TEST(Export, ChromeDurationSpansIssueToCompletion) {
  TraceSink sink(8);
  sink.emit(5.0, EventType::kRequestComplete, 7, 2, 0, 1.5);
  std::ostringstream os;
  obs::write_chrome_trace(sink, os);
  const auto doc = Json::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  for (const Json& e : doc->at("traceEvents")->as_array()) {
    if (e.at("ph")->as_string() != "X") continue;
    // ts is microseconds; the span starts latency before completion.
    EXPECT_DOUBLE_EQ(e.at("ts")->as_number(), (5.0 - 1.5) * 1e6);
    EXPECT_DOUBLE_EQ(e.at("dur")->as_number(), 1.5 * 1e6);
    EXPECT_EQ(e.at("tid")->as_number(), 3);  // server 2 -> track 3
    return;
  }
  FAIL() << "no duration event found";
}

TEST(Export, FileExtensionSelectsFormat) {
  const TraceSink sink = make_golden_sink();
  const std::string dir = ::testing::TempDir();
  const std::string jsonl_path = dir + "/obs_test_trace.jsonl";
  const std::string chrome_path = dir + "/obs_test_trace.json";
  ASSERT_TRUE(obs::write_trace_file(sink, jsonl_path));
  ASSERT_TRUE(obs::write_trace_file(sink, chrome_path));
  std::ifstream jsonl(jsonl_path);
  std::string first_line;
  ASSERT_TRUE(std::getline(jsonl, first_line));
  EXPECT_NE(first_line.find("\"type\":\"server_add\""), std::string::npos);
  std::ifstream chrome(chrome_path);
  std::stringstream buf;
  buf << chrome.rdbuf();
  const auto doc = Json::parse(buf.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_NE(doc->at("traceEvents"), nullptr);
}

// ------------------------------------------------- experiment-level tracing

driver::SimSpec tiny_spec() {
  driver::SimSpec spec;
  spec.synthetic.seed = 11;
  spec.synthetic.file_set_count = 12;
  spec.synthetic.request_count = 600;
  spec.synthetic.duration = 600.0;
  spec.synthetic.cluster_capacity = 15.0;
  spec.experiment.cluster.server_speeds = {1.0, 2.0, 3.0, 4.0, 5.0};
  spec.experiment.tuning_interval = 60.0;
  spec.experiment.failures.add(
      {120.0, cluster::MembershipAction::kFail, ServerId(4), 0.0});
  spec.experiment.failures.add(
      {240.0, cluster::MembershipAction::kRecover, ServerId(4), 0.0});
  return spec;
}

struct TracedRun {
  driver::SimSpec spec;
  driver::ExperimentResult result;
  TraceSink sink;
};

TracedRun traced_tiny_run() {
  TracedRun run{tiny_spec(), {}, TraceSink(1 << 16)};
  run.spec.experiment.trace = &run.sink;
  const auto workload = driver::build_workload(run.spec);
  auto balancer = driver::make_balancer(
      run.spec.system, run.spec.experiment.cluster.server_speeds.size());
  run.result =
      driver::run_experiment(run.spec.experiment, *workload, *balancer);
  return run;
}

TEST(ExperimentTrace, EmitsExpectedEventTypes) {
  const TracedRun run = traced_tiny_run();
  std::set<EventType> seen;
  run.sink.for_each([&](const obs::TraceEvent& e) { seen.insert(e.type); });
  EXPECT_TRUE(seen.count(EventType::kServerAdd));  // initial roster
  EXPECT_TRUE(seen.count(EventType::kRequestIssue));
  EXPECT_TRUE(seen.count(EventType::kRequestComplete));
  EXPECT_TRUE(seen.count(EventType::kTuningRound));
  EXPECT_TRUE(seen.count(EventType::kRegionRetune));
  EXPECT_TRUE(seen.count(EventType::kServerFail));
  EXPECT_TRUE(seen.count(EventType::kServerRecover));
}

TEST(ExperimentTrace, TimesAreNonDecreasing) {
  const TracedRun run = traced_tiny_run();
  double last = 0.0;
  run.sink.for_each([&](const obs::TraceEvent& e) {
    EXPECT_GE(e.time, last);
    last = e.time;
  });
}

TEST(ExperimentTrace, CompletionEventsRecomputeSteadyStateMean) {
  // The acceptance bar for the trace: the printed steady-state mean must be
  // derivable from request_complete events alone.
  const TracedRun run = traced_tiny_run();
  RunningStats steady;
  run.sink.for_each([&](const obs::TraceEvent& e) {
    if (e.type != EventType::kRequestComplete) return;
    if (e.time >= run.result.horizon * 0.5) steady.add(e.x);
  });
  EXPECT_EQ(steady.count(), run.result.steady_state.count());
  EXPECT_NEAR(steady.mean(), run.result.steady_state.mean(), 1e-12);
}

TEST(ExperimentTrace, TuningRoundsRecomputePercentWorkloadMoved) {
  const TracedRun run = traced_tiny_run();
  double last_cumulative_pct = 0.0;
  std::uint64_t rounds = 0;
  run.sink.for_each([&](const obs::TraceEvent& e) {
    if (e.type != EventType::kTuningRound) return;
    ++rounds;
    last_cumulative_pct = e.y;
  });
  EXPECT_EQ(rounds, run.result.tuning_rounds);
  EXPECT_NEAR(last_cumulative_pct, run.result.percent_workload_moved, 1e-9);
}

TEST(ProtocolTrace, EmitsMessageAndDelegateEvents) {
  driver::ProtocolExperimentConfig config;
  config.cluster.server_speeds = {1.0, 2.0, 3.0};
  config.horizon = 400.0;
  config.protocol.tuning_interval = 60.0;
  TraceSink sink(1 << 16);
  config.trace = &sink;
  driver::SimSpec spec = tiny_spec();
  spec.synthetic.cluster_capacity = 6.0;
  spec.experiment.failures = {};
  const auto workload = driver::build_workload(spec);
  (void)driver::run_protocol_experiment(config, *workload);
  std::set<EventType> seen;
  sink.for_each([&](const obs::TraceEvent& e) { seen.insert(e.type); });
  EXPECT_TRUE(seen.count(EventType::kMessageSend));
  EXPECT_TRUE(seen.count(EventType::kMessageRecv));
  EXPECT_TRUE(seen.count(EventType::kDelegateRound));
  EXPECT_TRUE(seen.count(EventType::kMapApply));
}

// ----------------------------------------------------------------- manifest

TEST(Manifest, RoundTripPreservesSummaryNumbers) {
  const TracedRun run = traced_tiny_run();
  const Json manifest =
      driver::manifest_json(run.spec, run.result, &run.sink);
  std::ostringstream os;
  manifest.write_pretty(os);
  std::string error;
  const auto parsed = Json::parse(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  EXPECT_EQ(parsed->at("schema_version")->as_number(),
            driver::kManifestSchemaVersion);
  EXPECT_EQ(parsed->at("generator", "git")->as_string(),
            obs::git_describe());
  EXPECT_DOUBLE_EQ(parsed->at("result", "steady_state", "mean_s")->as_number(),
                   run.result.steady_state.mean());
  EXPECT_DOUBLE_EQ(
      parsed->at("result", "movement", "percent_workload_moved")->as_number(),
      run.result.percent_workload_moved);
  EXPECT_EQ(parsed->at("result", "requests_completed")->as_number(),
            static_cast<double>(run.result.requests_completed));
  EXPECT_EQ(parsed->at("trace", "emitted")->as_number(),
            static_cast<double>(run.sink.emitted()));
  EXPECT_EQ(parsed->at("config", "workload", "seed")->as_number(), 11);
  EXPECT_EQ(parsed->at("config", "system", "label")->as_string(), "anu");
  // Membership script round-trips with the config-format action names.
  const Json* membership = parsed->at("config", "membership");
  ASSERT_NE(membership, nullptr);
  ASSERT_EQ(membership->as_array().size(), 2u);
  EXPECT_EQ(membership->as_array()[0].at("action")->as_string(), "fail");
  EXPECT_EQ(membership->as_array()[1].at("action")->as_string(), "recover");
}

TEST(Manifest, HistogramBucketsSumToAggregateCount) {
  const TracedRun run = traced_tiny_run();
  const Json manifest = driver::manifest_json(run.spec, run.result);
  const Json* histogram = manifest.at("result", "latency_histogram");
  ASSERT_NE(histogram, nullptr);
  double sum = 0.0;
  double last_lower = 0.0;
  for (const Json& bucket : histogram->at("buckets")->as_array()) {
    sum += bucket.at("count")->as_number();
    const double lower = bucket.at("lower_s")->as_number();
    EXPECT_GT(lower, last_lower);  // buckets ascend in value space
    last_lower = lower;
  }
  EXPECT_EQ(sum, histogram->at("count")->as_number());
  EXPECT_EQ(sum, static_cast<double>(run.result.aggregate.count()));
}

TEST(Manifest, MovementRoundsRecomputeCumulativePercent) {
  const TracedRun run = traced_tiny_run();
  const Json manifest = driver::manifest_json(run.spec, run.result);
  const Json* rounds = manifest.at("result", "movement", "rounds");
  ASSERT_NE(rounds, nullptr);
  ASSERT_FALSE(rounds->as_array().empty());
  const Json& last = rounds->as_array().back();
  EXPECT_NEAR(last.at("cumulative_pct")->as_number(),
              run.result.percent_workload_moved, 1e-9);
}

TEST(Manifest, WriteFileProducesParsableJson) {
  const TracedRun run = traced_tiny_run();
  const std::string path = ::testing::TempDir() + "/obs_test_manifest.json";
  ASSERT_TRUE(
      driver::write_manifest_file(path, run.spec, run.result, &run.sink));
  std::ifstream f(path);
  std::stringstream buf;
  buf << f.rdbuf();
  std::string error;
  EXPECT_TRUE(Json::parse(buf.str(), &error).has_value()) << error;
}

// ----------------------------------------------------------- documentation

// Every event type must be documented in docs/observability.md. Adding an
// event type without a schema table entry fails here.
TEST(ObsDoc, EveryEventTypeDocumented) {
  const std::string path =
      std::string(ANU_SOURCE_DIR) + "/docs/observability.md";
  std::ifstream f(path);
  ASSERT_TRUE(f.is_open()) << "missing " << path;
  std::stringstream buf;
  buf << f.rdbuf();
  const std::string doc = buf.str();
  for (std::size_t i = 0; i < obs::kEventTypeCount; ++i) {
    const std::string name =
        obs::event_type_name(static_cast<EventType>(i));
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "docs/observability.md does not document event type `" << name
        << "`";
  }
}

}  // namespace
}  // namespace anu
