// Tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/monitor.h"
#include "sim/resource.h"
#include "sim/simulation.h"

namespace anu::sim {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, SimultaneousEventsFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(5.5, [&] { seen = sim.now(); });
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(seen, 5.5);
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_after(3.0, [&] { seen = sim.now(); });
  });
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  const auto ran = sim.run_until(5.0);
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulation, EventExactlyAtHorizonRuns) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  int fired = 0;
  auto handle = sim.schedule_at(1.0, [&] { ++fired; });
  handle.cancel();
  EXPECT_TRUE(handle.cancelled());
  sim.run_to_completion();
  EXPECT_EQ(fired, 0);
}

TEST(Simulation, CancelFromInsideEarlierEvent) {
  Simulation sim;
  int fired = 0;
  auto victim = sim.schedule_at(2.0, [&] { ++fired; });
  sim.schedule_at(1.0, [&] { victim.cancel(); });
  sim.run_to_completion();
  EXPECT_EQ(fired, 0);
}

TEST(Simulation, StopHaltsLoop) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run_to_completion();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulation, EventsExecutedCounter) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run_to_completion();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulation, PreRunStopIsHonored) {
  // Regression: a stop() issued outside a run used to be cleared silently
  // at the top of run_until, so the next run proceeded as if the request
  // never happened. It must instead halt that run before its first event.
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.stop();
  EXPECT_EQ(sim.run_until(5.0), 0u);
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);  // clock untouched by a stopped run
  EXPECT_EQ(sim.pending_events(), 1u);
  // The request is consumed: the next run proceeds normally.
  EXPECT_EQ(sim.run_until(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, SelfCancelDuringInvokeDoesNotLeakToNextTenant) {
  // An action cancelling its own handle while running marks a slot that is
  // recycled immediately afterwards; the flag must not carry over and
  // silently cancel the slot's next tenant.
  Simulation sim;
  EventHandle self;
  int fired = 0;
  self = sim.schedule_at(1.0, [&] { self.cancel(); });
  sim.run_to_completion();
  sim.schedule_at(2.0, [&] { ++fired; });  // reuses the recycled slot
  sim.run_to_completion();
  EXPECT_EQ(fired, 1);
}

TEST(Simulation, SlabSlotsAreRecycled) {
  // Sequential schedule/run cycles must reuse one slot, not grow the slab.
  Simulation sim;
  for (int i = 0; i < 1000; ++i) {
    sim.schedule_at(static_cast<double>(i), [] {});
    sim.run_until(static_cast<double>(i));
  }
  EXPECT_EQ(sim.queue_stats().slab_high_water, 1u);
}

TEST(Simulation, QueueStatsAreConsistent) {
  Simulation sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sim.schedule_at(static_cast<double>(i % 10), [] {}));
  }
  for (int i = 0; i < 100; i += 2) {
    handles[static_cast<std::size_t>(i)].cancel();
  }
  sim.run_to_completion();
  const SimQueueStats stats = sim.queue_stats();
  EXPECT_EQ(stats.scheduled, 100u);
  EXPECT_EQ(stats.executed, 50u);
  EXPECT_EQ(stats.cancelled_skipped, 50u);
  EXPECT_EQ(stats.max_pending, 100u);
  EXPECT_EQ(stats.slab_high_water, 100u);
  // Indices sharing a timestamp share its parity, so odd timestamps keep
  // all ten of their events live after the even-index cancellations.
  EXPECT_EQ(stats.max_simultaneous, 10u);
  EXPECT_EQ(stats.executed + stats.cancelled_skipped, stats.scheduled);
}

TEST(Simulation, LargeSimultaneousBatchStaysFifo) {
  // Thousands of events at one timestamp: the ladder cannot subdivide the
  // range, so ordering rests entirely on the seq tie-break.
  Simulation sim;
  std::vector<int> order;
  order.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_to_completion();
  ASSERT_EQ(order.size(), 4096u);
  for (int i = 0; i < 4096; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(sim.queue_stats().max_simultaneous, 4096u);
}

TEST(FifoResource, SingleJobLatencyIsDemandOverSpeed) {
  Simulation sim;
  FifoResource res(sim, 4.0);
  double completed_at = -1.0;
  res.submit(Job{8.0, 0, [&](SimTime t, const Job&) { completed_at = t; }});
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(completed_at, 2.0);  // 8 units / speed 4
  EXPECT_EQ(res.jobs_completed(), 1u);
}

TEST(FifoResource, JobsQueueFifo) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  std::vector<std::uint64_t> done;
  for (std::uint64_t i = 0; i < 3; ++i) {
    res.submit(Job{1.0, i, [&](SimTime, const Job& j) {
                     done.push_back(j.tag);
                   }});
  }
  sim.run_to_completion();
  EXPECT_EQ(done, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(FifoResource, QueueingLatencyAccumulates) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  std::vector<double> latencies;
  for (int i = 0; i < 3; ++i) {
    res.submit(Job{2.0, 0, [&](SimTime t, const Job& j) {
                     latencies.push_back(t - j.arrival);
                   }});
  }
  sim.run_to_completion();
  ASSERT_EQ(latencies.size(), 3u);
  EXPECT_DOUBLE_EQ(latencies[0], 2.0);
  EXPECT_DOUBLE_EQ(latencies[1], 4.0);
  EXPECT_DOUBLE_EQ(latencies[2], 6.0);
}

TEST(FifoResource, HeterogeneousSpeedMatchesPaperModel) {
  // Paper §5.1: same request costs T on speed-1 and T/9 on speed-9.
  Simulation sim;
  FifoResource slow(sim, 1.0);
  FifoResource fast(sim, 9.0);
  double slow_done = 0.0, fast_done = 0.0;
  slow.submit(Job{9.0, 0, [&](SimTime t, const Job&) { slow_done = t; }});
  fast.submit(Job{9.0, 0, [&](SimTime t, const Job&) { fast_done = t; }});
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(slow_done, 9.0);
  EXPECT_DOUBLE_EQ(fast_done, 1.0);
}

TEST(FifoResource, SpeedChangeAppliesToNextService) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  std::vector<double> completions;
  res.submit(Job{1.0, 0, [&](SimTime t, const Job&) { completions.push_back(t); }});
  res.submit(Job{1.0, 0, [&](SimTime t, const Job&) { completions.push_back(t); }});
  sim.schedule_at(0.5, [&] { res.set_speed(2.0); });
  sim.run_to_completion();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);  // started before the change
  EXPECT_DOUBLE_EQ(completions[1], 1.5);  // second runs at speed 2
}

TEST(FifoResource, FailFlushesQueueAndInflight) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  int completed = 0;
  std::vector<std::uint64_t> flushed;
  res.on_flush = [&](const Job& j) { flushed.push_back(j.tag); };
  for (std::uint64_t i = 0; i < 3; ++i) {
    res.submit(Job{10.0, i, [&](SimTime, const Job&) { ++completed; }});
  }
  sim.schedule_at(1.0, [&] { res.fail(); });
  sim.run_to_completion();
  EXPECT_EQ(completed, 0);
  EXPECT_EQ(flushed, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_FALSE(res.is_up());
}

TEST(FifoResource, RecoverAfterFail) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  res.submit(Job{10.0, 0, nullptr});
  sim.schedule_at(1.0, [&] {
    res.fail();
    res.recover();
    res.submit(Job{1.0, 1, nullptr});
  });
  sim.run_to_completion();
  EXPECT_TRUE(res.is_up());
  EXPECT_EQ(res.jobs_completed(), 1u);
}

TEST(FifoResource, UtilizationTracksBusyTime) {
  Simulation sim;
  FifoResource res(sim, 2.0);
  res.submit(Job{8.0, 0, nullptr});  // 4 seconds of service
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(res.busy_time(), 4.0);
  EXPECT_DOUBLE_EQ(res.utilization(10.0), 0.4);
}

TEST(FifoResource, CompletionCanResubmit) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  int completions = 0;
  std::function<void(SimTime, const Job&)> again =
      [&](SimTime, const Job&) {
        if (++completions < 3) res.submit(Job{1.0, 0, again});
      };
  res.submit(Job{1.0, 0, again});
  sim.run_to_completion();
  EXPECT_EQ(completions, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(PeriodicMonitor, FiresAtInterval) {
  Simulation sim;
  std::vector<double> ticks;
  PeriodicMonitor mon(sim, 2.0, [&](SimTime t) { ticks.push_back(t); });
  sim.run_until(7.0);
  mon.stop();
  EXPECT_EQ(ticks, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(PeriodicMonitor, StopInsideTick) {
  Simulation sim;
  int ticks = 0;
  PeriodicMonitor mon(sim, 1.0, [&](SimTime) {
    if (++ticks == 2) mon.stop();
  });
  sim.run_until(10.0);
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicMonitor, CountsTicks) {
  Simulation sim;
  PeriodicMonitor mon(sim, 1.0, [](SimTime) {});
  sim.run_until(4.5);
  EXPECT_EQ(mon.ticks_fired(), 4u);
}


TEST(Simulation, CancelAfterFireIsNoop) {
  Simulation sim;
  int fired = 0;
  auto handle = sim.schedule_at(1.0, [&] { ++fired; });
  sim.run_to_completion();
  EXPECT_EQ(fired, 1);
  handle.cancel();  // must not crash or double-count
  EXPECT_TRUE(handle.cancelled());
}

TEST(Simulation, SchedulingInThePastAborts) {
  Simulation sim;
  sim.schedule_at(5.0, [] {});
  sim.run_to_completion();
  EXPECT_DEATH(sim.schedule_at(1.0, [] {}), "precondition");
}

TEST(Simulation, RunUntilIsResumable) {
  Simulation sim;
  std::vector<int> fired;
  sim.schedule_at(1.0, [&] { fired.push_back(1); });
  sim.schedule_at(3.0, [&] { fired.push_back(3); });
  sim.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  sim.run_until(4.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(Simulation, ClockAdvancesToHorizonWithoutEvents) {
  Simulation sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulation, DeterministicUnderHeavyInterleaving) {
  auto run = [] {
    Simulation sim;
    std::vector<std::uint64_t> order;
    for (std::uint64_t i = 0; i < 200; ++i) {
      sim.schedule_at(static_cast<double>(i % 7), [&order, i] {
        order.push_back(i);
      });
    }
    sim.run_to_completion();
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(FifoResource, ExtractQueuedLeavesInFlight) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  res.submit(Job{10.0, 7, nullptr});  // starts service immediately
  res.submit(Job{1.0, 7, nullptr});
  res.submit(Job{1.0, 8, nullptr});
  const auto taken =
      res.extract_queued([](const Job& j) { return j.tag == 7; });
  ASSERT_EQ(taken.size(), 1u);  // only the queued tag-7 job, not in-flight
  EXPECT_EQ(res.queue_length(), 2u);  // in-flight + remaining tag-8
}

TEST(FifoResource, ExtractQueuedPreservesArrivalTimes) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  res.submit(Job{10.0, 0, nullptr});
  sim.schedule_at(2.5, [&] { res.submit(Job{1.0, 1, nullptr}); });
  sim.run_until(3.0);
  const auto taken =
      res.extract_queued([](const Job& j) { return j.tag == 1; });
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_DOUBLE_EQ(taken[0].arrival, 2.5);
}

TEST(FifoResource, PresetArrivalPreserved) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  double latency = 0.0;
  sim.schedule_at(5.0, [&] {
    Job job{1.0, 0, [&](SimTime t, const Job& j) { latency = t - j.arrival; }};
    job.arrival = 2.0;  // migrated job keeps its original arrival
    res.submit(std::move(job));
  });
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(latency, 4.0);  // waited 3 (elsewhere) + 1 service
}

TEST(FifoResource, BusyTimePartialAtObservation) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  res.submit(Job{10.0, 0, nullptr});
  sim.run_until(4.0);
  EXPECT_DOUBLE_EQ(res.busy_time(), 4.0);  // only service actually rendered
  EXPECT_DOUBLE_EQ(res.utilization(4.0), 1.0);
}

TEST(FifoResource, FailAccountsPartialService) {
  Simulation sim;
  FifoResource res(sim, 2.0);
  res.submit(Job{10.0, 0, nullptr});  // 5s service at speed 2
  sim.schedule_at(2.0, [&] { res.fail(); });
  sim.run_until(8.0);
  EXPECT_DOUBLE_EQ(res.busy_time(), 2.0);
}

TEST(FifoResource, CancelQueuedRemovesSilently) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  int completions = 0;
  int flushes = 0;
  res.on_flush = [&](const Job&) { ++flushes; };
  res.submit(Job{4.0, 0, [&](SimTime, const Job&) { ++completions; }});
  Job waiting{4.0, 1, [&](SimTime, const Job&) { ++completions; }};
  waiting.id = 7;
  res.submit(std::move(waiting));
  EXPECT_EQ(res.queue_length(), 2u);

  EXPECT_EQ(res.cancel(7), CancelOutcome::kQueued);
  EXPECT_EQ(res.queue_length(), 1u);
  sim.run_to_completion();
  // Only the uncancelled job completed; the cancelled one never surfaced
  // through on_complete or on_flush.
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(flushes, 0);
  EXPECT_EQ(res.jobs_completed(), 1u);
}

TEST(FifoResource, CancelInServiceAbortsAndStartsNext) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  std::vector<std::uint64_t> done;
  Job first{10.0, 1, [&](SimTime, const Job& j) { done.push_back(j.tag); }};
  first.id = 1;
  res.submit(std::move(first));
  res.submit(Job{2.0, 2, [&](SimTime, const Job& j) { done.push_back(j.tag); }});

  sim.schedule_at(3.0, [&] {
    EXPECT_EQ(res.cancel(1), CancelOutcome::kInService);
    // The next waiting job takes over immediately.
    EXPECT_TRUE(res.busy());
  });
  sim.run_to_completion();
  // Tag-1's completion never fires; tag-2 starts at t=3 and finishes at t=5.
  EXPECT_EQ(done, (std::vector<std::uint64_t>{2}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  // Partial service (3s) plus the follow-up job (2s) count as busy time.
  EXPECT_DOUBLE_EQ(res.busy_time(), 5.0);
}

TEST(FifoResource, CancelUnknownIdIsNotFound) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  EXPECT_EQ(res.cancel(42), CancelOutcome::kNotFound);
  Job j{1.0, 0, nullptr};
  j.id = 5;
  res.submit(std::move(j));
  EXPECT_EQ(res.cancel(6), CancelOutcome::kNotFound);
  EXPECT_EQ(res.cancel(5), CancelOutcome::kInService);
}

TEST(FifoResource, OnStartFiresSynchronouslyWhenIdle) {
  Simulation sim;
  FifoResource res(sim, 2.0);
  bool started = false;
  Job j{4.0, 0, nullptr};
  j.on_start = [&](SimTime t, const Job& job) {
    started = true;
    EXPECT_DOUBLE_EQ(t, 0.0);
    EXPECT_EQ(job.demand, 4.0);
  };
  res.submit(std::move(j));
  // The resource was idle: service began inside submit() itself.
  EXPECT_TRUE(started);
}

TEST(FifoResource, OnStartFiresAtServiceStartWhenQueued) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  res.submit(Job{3.0, 0, nullptr});
  SimTime started_at = -1.0;
  Job j{1.0, 1, nullptr};
  j.on_start = [&](SimTime t, const Job&) { started_at = t; };
  res.submit(std::move(j));
  EXPECT_DOUBLE_EQ(started_at, -1.0);  // still waiting
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(started_at, 3.0);  // when the first job finished
}

TEST(FifoResource, OnIdleFiresOnDrainNotOnFailure) {
  Simulation sim;
  FifoResource res(sim, 1.0);
  int idles = 0;
  res.on_idle = [&] { ++idles; };
  EXPECT_EQ(idles, 0);  // initial idle state does not count

  res.submit(Job{2.0, 0, nullptr});
  sim.run_to_completion();
  EXPECT_EQ(idles, 1);  // completion drained the queue

  Job j{5.0, 1, nullptr};
  j.id = 9;
  res.submit(std::move(j));
  EXPECT_EQ(res.cancel(9), CancelOutcome::kInService);
  EXPECT_EQ(idles, 2);  // cancellation drained the queue

  res.submit(Job{5.0, 2, nullptr});
  res.fail();
  EXPECT_EQ(idles, 2);  // fail() is not an idle transition
  res.recover();
  EXPECT_EQ(idles, 2);
}

}  // namespace
}  // namespace anu::sim
