// Tests for the loopback UDP transport (runtime/udp_transport.h): real
// sockets, real datagrams, same Transport semantics the protocol gets from
// the simulated Network — delivery to attached handlers, admin-down drops,
// and hostile-input tolerance (stray and malformed frames are counted and
// dropped, never dispatched).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <vector>

#include "proto/messages.h"
#include "runtime/udp_transport.h"

namespace anu::runtime {
namespace {

/// Loopback delivery is fast but not synchronous: pump until the predicate
/// holds or ~2 s pass. Returns whether it held.
template <typename Pred>
bool pump_until(UdpTransport& transport, Pred&& pred) {
  for (int i = 0; i < 2000; ++i) {
    transport.pump();
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(UdpTransport, BindsOneEphemeralPortPerNode) {
  UdpTransport transport(3);
  EXPECT_EQ(transport.node_count(), 3u);
  ASSERT_EQ(transport.fds().size(), 3u);
  for (std::uint32_t n = 0; n < 3; ++n) {
    EXPECT_GE(transport.fds()[n], 0);
    EXPECT_NE(transport.port_of(n), 0);
    for (std::uint32_t m = n + 1; m < 3; ++m) {
      EXPECT_NE(transport.port_of(n), transport.port_of(m));
    }
  }
}

TEST(UdpTransport, DeliversToAttachedHandler) {
  UdpTransport transport(2);
  std::vector<std::uint32_t> senders;
  std::vector<proto::Message> received;
  transport.attach(1, [&](std::uint32_t from, const proto::Message& message) {
    senders.push_back(from);
    received.push_back(message);
  });
  proto::LatencyReport report;
  report.server = 0;
  report.round = 6;
  report.report.mean_latency = 0.5;
  report.report.completed = 11;
  transport.send(0, 1, report);
  ASSERT_TRUE(pump_until(transport, [&] { return !received.empty(); }));
  EXPECT_EQ(senders, (std::vector<std::uint32_t>{0}));
  const auto* out = std::get_if<proto::LatencyReport>(&received[0]);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->round, 6u);
  EXPECT_EQ(out->report.completed, 11u);
  EXPECT_EQ(transport.datagrams_sent(), 1u);
  EXPECT_EQ(transport.datagrams_delivered(), 1u);
}

TEST(UdpTransport, BroadcastReachesAllOthers) {
  UdpTransport transport(4);
  int received = 0;
  std::vector<std::uint32_t> to_nodes;
  for (std::uint32_t n = 0; n < 4; ++n) {
    transport.attach(n, [&, n](std::uint32_t, const proto::Message&) {
      ++received;
      to_nodes.push_back(n);
    });
  }
  transport.broadcast(2, proto::Heartbeat{2});
  ASSERT_TRUE(pump_until(transport, [&] { return received >= 3; }));
  EXPECT_EQ(received, 3);
  for (const std::uint32_t n : to_nodes) EXPECT_NE(n, 2u);
}

TEST(UdpTransport, DropsAtSendWhenEitherEndpointDown) {
  UdpTransport transport(2);
  int received = 0;
  transport.attach(1, [&](std::uint32_t, const proto::Message&) {
    ++received;
  });
  transport.set_node_up(1, false);
  EXPECT_FALSE(transport.node_up(1));
  transport.send(0, 1, proto::Heartbeat{0});
  transport.set_node_up(1, true);
  transport.set_node_up(0, false);
  transport.send(0, 1, proto::Heartbeat{0});
  EXPECT_EQ(transport.datagrams_sent(), 0u);
  EXPECT_EQ(transport.datagrams_dropped(), 2u);
  transport.pump();
  EXPECT_EQ(received, 0);
}

TEST(UdpTransport, DropsInFlightWhenReceiverGoesDown) {
  UdpTransport transport(2);
  int received = 0;
  transport.attach(1, [&](std::uint32_t, const proto::Message&) {
    ++received;
  });
  transport.send(0, 1, proto::Heartbeat{0});
  // The datagram is already in the kernel queue; the node fails before the
  // event loop drains it — the pump must drop, not dispatch.
  transport.set_node_up(1, false);
  ASSERT_TRUE(
      pump_until(transport, [&] { return transport.datagrams_dropped() > 0; }));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(transport.datagrams_delivered(), 0u);
}

TEST(UdpTransport, DropsStrayAndMalformedDatagrams) {
  UdpTransport transport(2);
  int received = 0;
  transport.attach(0, [&](std::uint32_t, const proto::Message&) {
    ++received;
  });
  // Inject raw frames from an outside socket, as a hostile peer would.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dest.sin_port = htons(transport.port_of(0));
  const auto inject = [&](const std::vector<std::uint8_t>& frame) {
    ASSERT_EQ(::sendto(fd, frame.data(), frame.size(), 0,
                       reinterpret_cast<const sockaddr*>(&dest), sizeof(dest)),
              static_cast<ssize_t>(frame.size()));
  };
  inject({1, 2, 3});                     // shorter than the frame prefix
  inject({9, 0, 0, 0, 3, 0, 0, 0, 0});   // sender id 9 out of range
  inject({1, 0, 0, 0, 250});             // valid sender, unknown message tag
  ASSERT_TRUE(
      pump_until(transport, [&] { return transport.datagrams_dropped() >= 3; }));
  EXPECT_EQ(received, 0);
  EXPECT_EQ(transport.datagrams_delivered(), 0u);
  // And a well-formed frame still gets through afterwards.
  transport.send(1, 0, proto::Heartbeat{1});
  EXPECT_TRUE(pump_until(transport, [&] { return received == 1; }));
  ::close(fd);
}

TEST(UdpTransport, LargeRegionMapUpdateSurvivesTheWire) {
  UdpTransport transport(2);
  proto::RegionMapUpdate got;
  bool arrived = false;
  transport.attach(1, [&](std::uint32_t, const proto::Message& message) {
    if (const auto* update =
            std::get_if<proto::RegionMapUpdate>(&message)) {
      got = *update;
      arrived = true;
    }
  });
  proto::RegionMapUpdate update;
  update.version = 3;
  for (std::uint32_t i = 0; i < 1024; ++i) {
    update.partitions.emplace_back(i % 7, std::uint64_t{i} * 1000003);
  }
  transport.send(0, 1, update);
  ASSERT_TRUE(pump_until(transport, [&] { return arrived; }));
  EXPECT_EQ(got.version, 3u);
  EXPECT_EQ(got.partitions, update.partitions);
}

}  // namespace
}  // namespace anu::runtime
