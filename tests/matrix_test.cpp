// Scenario-matrix driver coverage: profile construction, strategy tokens,
// and the byte-determinism contract of the per-cell artifacts.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "driver/matrix.h"

namespace anu::driver {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f) << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

TEST(HeterogeneityProfile, ShapesMatchTheirDocs) {
  const auto uniform = heterogeneity_profile("uniform", 4);
  ASSERT_TRUE(uniform);
  EXPECT_EQ(*uniform, (std::vector<double>{5.0, 5.0, 5.0, 5.0}));

  // paper tiles the §5.1 speeds 1,3,5,7,9.
  const auto paper = heterogeneity_profile("paper", 7);
  ASSERT_TRUE(paper);
  EXPECT_EQ(*paper, (std::vector<double>{1.0, 3.0, 5.0, 7.0, 9.0, 1.0, 3.0}));

  const auto bimodal = heterogeneity_profile("bimodal", 6);
  ASSERT_TRUE(bimodal);
  EXPECT_EQ(*bimodal, (std::vector<double>{1.0, 1.0, 1.0, 9.0, 9.0, 9.0}));

  const auto extreme = heterogeneity_profile("extreme", 5);
  ASSERT_TRUE(extreme);
  EXPECT_EQ(*extreme, (std::vector<double>{1.0, 2.0, 4.0, 8.0, 16.0}));

  EXPECT_FALSE(heterogeneity_profile("nope", 5));
}

TEST(HeterogeneityProfile, EveryListedNameResolves) {
  for (const std::string& name : heterogeneity_profile_names()) {
    EXPECT_TRUE(heterogeneity_profile(name, 5)) << name;
  }
}

TEST(StrategyConfig, TokensSelectSystems) {
  const SystemConfig base;
  EXPECT_EQ(strategy_config("anu", base)->kind, SystemKind::kAnu);
  EXPECT_EQ(strategy_config("simple", base)->kind, SystemKind::kSimpleRandom);
  EXPECT_EQ(strategy_config("jiq", base)->kind, SystemKind::kJoinIdleQueue);
  EXPECT_EQ(strategy_config("red", base)->kind, SystemKind::kRedundancyD);

  const auto jsqd = strategy_config("jsqd", base);
  ASSERT_TRUE(jsqd);
  EXPECT_EQ(jsqd->kind, SystemKind::kJsqD);
  EXPECT_FALSE(jsqd->jsq.speed_aware);

  const auto jsqdw = strategy_config("jsqdw", base);
  ASSERT_TRUE(jsqdw);
  EXPECT_EQ(jsqdw->kind, SystemKind::kJsqD);
  EXPECT_TRUE(jsqdw->jsq.speed_aware);

  EXPECT_FALSE(strategy_config("nope", base));
}

MatrixConfig tiny_matrix(const std::string& out_dir) {
  MatrixConfig config;
  config.profiles = {"paper"};
  config.server_counts = {4};
  config.loads = {0.5};
  config.strategies = {"jsqd", "red"};
  config.seeds = 2;
  config.requests_per_server = 50;
  config.file_sets_per_server = 3;
  config.duration = 600.0;
  config.out_dir = out_dir;
  return config;
}

TEST(Matrix, CellFilesAreByteIdenticalAtAnyJobsLevel) {
  const auto root = std::filesystem::path(::testing::TempDir());
  auto serial = tiny_matrix((root / "mx_serial").string());
  serial.jobs = 1;
  auto parallel = tiny_matrix((root / "mx_parallel").string());
  parallel.jobs = 4;

  const MatrixResult a = run_matrix(serial);
  const MatrixResult b = run_matrix(parallel);
  ASSERT_EQ(a.cells.size(), 2u);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].file, b.cells[i].file);
    EXPECT_EQ(slurp(std::filesystem::path(serial.out_dir) / a.cells[i].file),
              slurp(std::filesystem::path(parallel.out_dir) / b.cells[i].file))
        << a.cells[i].file;
  }
}

TEST(Matrix, SummaryCarriesEveryCell) {
  const auto root = std::filesystem::path(::testing::TempDir());
  const auto config = tiny_matrix((root / "mx_summary").string());
  const MatrixResult result = run_matrix(config);
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_EQ(result.cells[0].strategy, "jsq-d");
  EXPECT_EQ(result.cells[1].strategy, "redundancy-d");
  for (const MatrixCell& cell : result.cells) {
    EXPECT_EQ(cell.profile, "paper");
    EXPECT_EQ(cell.servers, 4u);
    EXPECT_GT(cell.mean_latency_s, 0.0);
    EXPECT_GT(cell.requests_completed, 0.0);
    EXPECT_TRUE(
        std::filesystem::exists(std::filesystem::path(config.out_dir) /
                                cell.file))
        << cell.file;
  }

  const obs::Json doc = matrix_summary_json(config, result);
  std::ostringstream rendered;
  doc.write_pretty(rendered);
  EXPECT_NE(rendered.str().find("anu.matrix_summary"), std::string::npos);
  EXPECT_NE(rendered.str().find("jsq-d"), std::string::npos);
}

TEST(Matrix, RejectsUnknownTokensAndBadLoads) {
  const auto root = std::filesystem::path(::testing::TempDir());
  auto bad_profile = tiny_matrix((root / "mx_bad1").string());
  bad_profile.profiles = {"nope"};
  EXPECT_THROW((void)run_matrix(bad_profile), std::runtime_error);

  auto bad_strategy = tiny_matrix((root / "mx_bad2").string());
  bad_strategy.strategies = {"nope"};
  EXPECT_THROW((void)run_matrix(bad_strategy), std::runtime_error);

  auto bad_load = tiny_matrix((root / "mx_bad3").string());
  bad_load.loads = {1.5};
  EXPECT_THROW((void)run_matrix(bad_load), std::runtime_error);
}

}  // namespace
}  // namespace anu::driver
