// Golden-shape regression test at full paper scale.
//
// Runs the exact §5.1 configuration (66,401 requests / 50 file sets / 200
// minutes / servers 1,3,5,7,9 / two-minute tuning) through every selectable
// system and asserts the orderings EXPERIMENTS.md documents. This is the
// guard that keeps refactors from silently bending the reproduction; it is
// the slowest test in the suite (~1 s).
#include <gtest/gtest.h>

#include <iterator>

#include "driver/balancer_factory.h"
#include "driver/paper.h"
#include "metrics/consistency.h"

namespace anu::driver {
namespace {

class PaperScale : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new workload::Workload(paper_synthetic_workload());
    const auto config = paper_experiment_config();
    for (SystemKind kind : kAllSystems) {
      SystemConfig system;
      system.kind = kind;
      auto balancer =
          make_balancer(system, config.cluster.server_speeds.size());
      results_[static_cast<int>(kind)] =
          new ExperimentResult(run_experiment(config, *workload_, *balancer));
    }
  }
  static void TearDownTestSuite() {
    delete workload_;
    for (auto*& r : results_) {
      delete r;
      r = nullptr;
    }
  }

  static const ExperimentResult& result(SystemKind kind) {
    return *results_[static_cast<int>(kind)];
  }

  static workload::Workload* workload_;
  static ExperimentResult* results_[std::size(kAllSystems)];
};

workload::Workload* PaperScale::workload_ = nullptr;
ExperimentResult* PaperScale::results_[std::size(kAllSystems)] = {};

TEST_F(PaperScale, SystemOrdering) {
  // Fig. 6(a): prescient ~ VP << simple; ANU within 1.5x of prescient.
  const double prescient = result(SystemKind::kDynPrescient).aggregate.mean();
  const double vp = result(SystemKind::kVirtualProcessor).aggregate.mean();
  const double anu = result(SystemKind::kAnu).aggregate.mean();
  const double simple = result(SystemKind::kSimpleRandom).aggregate.mean();
  EXPECT_LT(prescient, simple / 50.0);
  EXPECT_LT(vp, prescient * 1.3);
  EXPECT_LT(anu, prescient * 1.5);
  EXPECT_GT(anu, prescient * 0.8);
}

TEST_F(PaperScale, AnuSteadyStateMatchesPrescient) {
  EXPECT_LT(result(SystemKind::kAnu).steady_state.mean(),
            result(SystemKind::kDynPrescient).steady_state.mean() * 1.3);
}

TEST_F(PaperScale, SimpleRandomDivergesOnWeakestServer) {
  const auto& simple = result(SystemKind::kSimpleRandom);
  EXPECT_GT(simple.per_server[0].mean(), 1000.0);
  EXPECT_GT(simple.utilization[0], 0.99);
}

TEST_F(PaperScale, AnuWeakestServerNearIdle) {
  const auto& anu = result(SystemKind::kAnu);
  const double share = static_cast<double>(anu.served[0]) /
                       static_cast<double>(anu.requests_completed);
  EXPECT_LT(share, 0.05);  // paper: 0.37%; ours ~1%
}

TEST_F(PaperScale, AnuMovementIsOrderHundred) {
  const auto& anu = result(SystemKind::kAnu);
  EXPECT_GT(anu.total_moved, 10u);
  EXPECT_LT(anu.total_moved, 400u);  // paper: 112
  // Front-loaded: more moves in the first quarter than the rest.
  std::size_t first_quarter = 0, rest = 0;
  for (std::size_t i = 0; i < anu.movement.size(); ++i) {
    (i < anu.movement.size() / 4 ? first_quarter : rest) +=
        anu.movement[i].moved;
  }
  EXPECT_GT(first_quarter, rest);
}

TEST_F(PaperScale, OracleSystemsMoveOrdersOfMagnitudeMore) {
  EXPECT_GT(result(SystemKind::kDynPrescient).total_moved,
            result(SystemKind::kAnu).total_moved * 20);
}

TEST_F(PaperScale, AnuMostConsistentAcrossNonIdleServers) {
  // §5.2.2 / the paper's title: consistent latency over any non-idle server.
  const auto anu = metrics::performance_consistency(
      result(SystemKind::kAnu).per_server, 0.02);
  const auto prescient = metrics::performance_consistency(
      result(SystemKind::kDynPrescient).per_server, 0.02);
  const auto simple = metrics::performance_consistency(
      result(SystemKind::kSimpleRandom).per_server, 0.02);
  EXPECT_LT(anu.latency_cv, prescient.latency_cv);
  EXPECT_LT(anu.latency_cv, simple.latency_cv);
  EXPECT_LT(anu.max_over_min, prescient.max_over_min);
}

TEST_F(PaperScale, SharedStateOrdering) {
  EXPECT_LT(result(SystemKind::kAnu).shared_state_bytes,
            result(SystemKind::kVirtualProcessor).shared_state_bytes);
  EXPECT_LT(result(SystemKind::kSimpleRandom).shared_state_bytes,
            result(SystemKind::kAnu).shared_state_bytes);
}

TEST_F(PaperScale, NearlyAllRequestsComplete) {
  for (SystemKind kind :
       {SystemKind::kDynPrescient, SystemKind::kVirtualProcessor,
        SystemKind::kAnu, SystemKind::kJsqD, SystemKind::kJoinIdleQueue,
        SystemKind::kRedundancyD}) {
    EXPECT_GT(result(kind).requests_completed,
              workload_->request_count() * 99 / 100)
        << system_label(kind);
  }
}

TEST_F(PaperScale, DispatchStrategiesBeatSimpleRandom) {
  // The queue-aware baselines route around the slow servers that sink
  // speed-blind hashing; at paper scale each should sit well under simple
  // randomization's mean and report itself as per-request in the manifest.
  const double simple = result(SystemKind::kSimpleRandom).aggregate.mean();
  for (SystemKind kind : {SystemKind::kJsqD, SystemKind::kJoinIdleQueue,
                          SystemKind::kRedundancyD}) {
    const auto& r = result(kind);
    EXPECT_LT(r.aggregate.mean(), simple / 10.0) << system_label(kind);
    EXPECT_TRUE(r.balance.per_request) << system_label(kind);
    EXPECT_FALSE(r.balance.counters.empty()) << system_label(kind);
    EXPECT_EQ(r.total_moved, 0u) << system_label(kind);
  }
}

}  // namespace
}  // namespace anu::driver
