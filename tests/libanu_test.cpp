// Tests for the public libanu facade (include/anu/anu.h): the embeddable
// balancer must behave like the in-repo decision core it wraps — equal
// shares at start, damped convergence away from slow servers, region
// reclamation on failure, deterministic routing — all through the installed
// header alone (this file deliberately includes no internal headers).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "anu/anu.h"

namespace {

double sum(const std::vector<double>& v) {
  double total = 0.0;
  for (const double x : v) total += x;
  return total;
}

TEST(Libanu, StartsWithEqualSharesSummingToHalf) {
  anu::Balancer balancer(4);
  EXPECT_EQ(balancer.server_count(), 4u);
  EXPECT_EQ(balancer.version(), 0u);
  const auto shares = balancer.shares();
  ASSERT_EQ(shares.size(), 4u);
  EXPECT_NEAR(sum(shares), 0.5, 1e-12);
  for (const double share : shares) EXPECT_NEAR(share, 0.125, 1e-12);
}

TEST(Libanu, RoutingIsDeterministicAcrossInstances) {
  anu::Balancer a(8), b(8);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "object/" + std::to_string(i);
    const std::uint32_t owner = a.route(key);
    EXPECT_LT(owner, 8u);
    EXPECT_EQ(owner, b.route(key)) << key;
    EXPECT_EQ(owner, a.route(key)) << key;  // and stable on repeat
  }
}

TEST(Libanu, DifferentHashSeedsRouteDifferently) {
  anu::BalancerConfig other;
  other.hash_seed = 0x1234;
  anu::Balancer a(8), b(8, other);
  int differ = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "object/" + std::to_string(i);
    if (a.route(key) != b.route(key)) ++differ;
  }
  EXPECT_GT(differ, 50);  // seeds genuinely change the mapping
}

TEST(Libanu, SymmetricReportsLeaveSharesAlone) {
  anu::Balancer balancer(3);
  for (std::uint32_t s = 0; s < 3; ++s) {
    balancer.record_latency(s, 0.100, 1000);
  }
  const auto result = balancer.retune();
  EXPECT_EQ(result.version, 1u);
  EXPECT_FALSE(result.changed);
  EXPECT_NEAR(result.system_average, 0.100, 1e-9);
  EXPECT_TRUE(result.incompetent.empty());
  for (const double share : balancer.shares()) EXPECT_NEAR(share, 0.5 / 3, 1e-12);
}

TEST(Libanu, SlowServerShedsLoadOverRounds) {
  anu::Balancer balancer(3);
  for (int round = 0; round < 6; ++round) {
    const auto shares = balancer.shares();
    // Latency proportional to share times slowness: server 0 is 10x slower.
    for (std::uint32_t s = 0; s < 3; ++s) {
      const double slow = s == 0 ? 10.0 : 1.0;
      balancer.record_latency(s, shares[s] * slow + 1e-6,
                              static_cast<std::uint64_t>(shares[s] * 1e4) + 1);
    }
    const auto result = balancer.retune();
    EXPECT_EQ(result.version, static_cast<std::uint64_t>(round + 1));
  }
  const auto shares = balancer.shares();
  EXPECT_LT(shares[0], shares[1]);
  EXPECT_LT(shares[0], shares[2]);
  EXPECT_NEAR(sum(shares), 0.5, 1e-9);
  EXPECT_EQ(balancer.version(), 6u);
}

TEST(Libanu, PersistentlySlowServerIsFlaggedIncompetent) {
  anu::Balancer balancer(3);
  anu::RetuneResult last;
  for (int round = 0; round < 12; ++round) {
    const auto shares = balancer.shares();
    for (std::uint32_t s = 0; s < 3; ++s) {
      // Server 0 is catastrophically slow regardless of its share: the
      // tuner shrinks it to the floor and must then raise the paper's
      // "incompetent component" signal instead of shrinking further.
      const double latency = s == 0 ? 100.0 : shares[s] + 1e-6;
      balancer.record_latency(s, latency,
                              static_cast<std::uint64_t>(shares[s] * 1e4) + 1);
    }
    last = balancer.retune();
  }
  EXPECT_EQ(std::count(last.incompetent.begin(), last.incompetent.end(), 0u),
            1);
}

TEST(Libanu, DownServerIsReclaimedAndRegrows) {
  anu::Balancer balancer(4);
  balancer.set_server_up(2, false);
  EXPECT_FALSE(balancer.server_up(2));
  auto result = balancer.retune();
  EXPECT_TRUE(result.changed);
  auto shares = balancer.shares();
  EXPECT_EQ(shares[2], 0.0);
  EXPECT_NEAR(sum(shares), 0.5, 1e-9);
  for (int i = 0; i < 500; ++i) {
    EXPECT_NE(balancer.route("k/" + std::to_string(i)), 2u);
  }

  balancer.set_server_up(2, true);
  EXPECT_TRUE(balancer.server_up(2));
  result = balancer.retune();
  EXPECT_TRUE(result.changed);
  shares = balancer.shares();
  EXPECT_GT(shares[2], 0.0);
  EXPECT_NEAR(sum(shares), 0.5, 1e-9);
}

TEST(Libanu, IdleServersKeepTheirShares) {
  anu::Balancer balancer(3);
  // Nobody reported anything: everyone reads as idle, growth is uniform,
  // normalization cancels it — the map must not move.
  const auto result = balancer.retune();
  EXPECT_FALSE(result.changed);
  EXPECT_EQ(result.system_average, 0.0);
  for (const double share : balancer.shares()) {
    EXPECT_NEAR(share, 0.5 / 3, 1e-12);
  }
}

TEST(Libanu, ReportsClearAfterRetune) {
  anu::Balancer balancer(2);
  balancer.record_latency(0, 5.0, 100);
  balancer.record_latency(1, 0.001, 100);
  const auto first = balancer.retune();
  EXPECT_TRUE(first.changed);
  EXPECT_GT(first.system_average, 0.0);
  // The next round has no reports: everyone reads as idle — proving the
  // previous round's reports were consumed, not reused. (A stale report
  // would reproduce round 1's system average and keep shrinking server 0.)
  const auto before = balancer.shares();
  const auto second = balancer.retune();
  EXPECT_EQ(second.version, 2u);
  EXPECT_EQ(second.system_average, 0.0);
  const auto after = balancer.shares();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t s = 0; s < after.size(); ++s) {
    EXPECT_NEAR(after[s], before[s], 1e-9);
  }
}

TEST(Libanu, MoveTransfersTheCluster) {
  anu::Balancer original(4);
  original.record_latency(0, 1.0, 10);
  original.retune();
  const auto before = original.shares();
  anu::Balancer moved(std::move(original));
  EXPECT_EQ(moved.server_count(), 4u);
  EXPECT_EQ(moved.version(), 1u);
  EXPECT_EQ(moved.shares(), before);
  moved.record_latency(1, 1.0, 10);
  EXPECT_EQ(moved.retune().version, 2u);
}

}  // namespace
