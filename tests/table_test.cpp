// Tests for the table/CSV reporting helpers.
#include "common/table.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace anu {
namespace {

TEST(Table, PrintsAlignedBox) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta-long", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("beta-long"), std::string::npos);
  // Rules above header, below header, below body.
  std::size_t rules = 0;
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 3u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_numeric_row({3.14159, 2.71828}, 2);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3.14,2.72\n");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"v"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, WriteCsvFileRoundTrip) {
  Table t({"h"});
  t.add_row({"42"});
  const std::string path = ::testing::TempDir() + "/anu_table_test.csv";
  ASSERT_TRUE(t.write_csv_file(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "h");
  std::getline(f, line);
  EXPECT_EQ(line, "42");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

}  // namespace
}  // namespace anu
