// Tests for the hash-function family used by ANU addressing.
#include "hash/hash_family.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

namespace anu {
namespace {

TEST(Hash64, DeterministicAcrossCalls) {
  EXPECT_EQ(hash64("fileset/0", 1), hash64("fileset/0", 1));
}

TEST(Hash64, SeedChangesValue) {
  EXPECT_NE(hash64("fileset/0", 1), hash64("fileset/0", 2));
}

TEST(Hash64, InputChangesValue) {
  EXPECT_NE(hash64("fileset/0", 1), hash64("fileset/1", 1));
  EXPECT_NE(hash64("", 1), hash64("x", 1));
}

TEST(Hash64, LengthExtensionsDiffer) {
  // Zero-padding ambiguity check: trailing NUL-like suffixes must matter.
  const std::string a("ab");
  const std::string b("ab\0", 3);
  EXPECT_NE(hash64(a, 7), hash64(b, 7));
}

TEST(Hash64, AllLengthsProduceDistinctValues) {
  std::set<std::uint64_t> seen;
  std::string s;
  for (int len = 0; len < 64; ++len) {
    EXPECT_TRUE(seen.insert(hash64(s, 99)).second) << "len=" << len;
    s.push_back('a');
  }
}

TEST(Hash64, NoCollisionsAcrossCorpus) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_TRUE(seen.insert(hash64("path/to/fileset/" + std::to_string(i), 0))
                    .second);
  }
}

TEST(HashFamily, UnitPointsInRange) {
  const HashFamily family;
  for (int i = 0; i < 1000; ++i) {
    const auto p = family.unit_point("fs" + std::to_string(i), 0);
    EXPECT_LT(p, UnitPoint::one());
  }
}

TEST(HashFamily, RoundsAreIndependent) {
  // Successive probes of the same name must look like fresh uniform draws:
  // correlation between round r and r+1 offsets should be negligible.
  const HashFamily family;
  double sum_xy = 0.0, sum_x = 0.0, sum_y = 0.0, sum_x2 = 0.0, sum_y2 = 0.0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    const std::string name = "fs" + std::to_string(i);
    const double x = family.unit_point(name, 0).to_double();
    const double y = family.unit_point(name, 1).to_double();
    sum_xy += x * y;
    sum_x += x;
    sum_y += y;
    sum_x2 += x * x;
    sum_y2 += y * y;
  }
  const double n = kN;
  const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  const double vx = sum_x2 / n - (sum_x / n) * (sum_x / n);
  const double vy = sum_y2 / n - (sum_y / n) * (sum_y / n);
  EXPECT_LT(std::fabs(cov / std::sqrt(vx * vy)), 0.02);
}

TEST(HashFamily, UniformOnUnitInterval) {
  // Chi-square-style bucket check: 20 buckets over 100k names.
  const HashFamily family;
  constexpr int kBuckets = 20;
  constexpr int kN = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kN; ++i) {
    const double x =
        family.unit_point("user/home/dir" + std::to_string(i), 0).to_double();
    ++counts[static_cast<std::size_t>(x * kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kN / kBuckets, kN / kBuckets * 0.08);
  }
}

TEST(HashFamily, FamilySeedSeparatesFamilies) {
  const HashFamily a(1), b(2);
  EXPECT_NE(a.raw("fs", 0), b.raw("fs", 0));
}

class ProbeRoundTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ProbeRoundTest, EachRoundIsUniform) {
  const HashFamily family;
  const std::uint32_t round = GetParam();
  constexpr int kBuckets = 10;
  constexpr int kN = 50'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kN; ++i) {
    const double x =
        family.unit_point("fs/" + std::to_string(i), round).to_double();
    ++counts[static_cast<std::size_t>(x * kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kN / kBuckets, kN / kBuckets * 0.1) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, ProbeRoundTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 31u));


TEST(Hash64, AvalancheOnSingleBitFlips) {
  // Flipping any one input bit should flip ~32 of 64 output bits; demand
  // the average stays in [24, 40] over a corpus — a weak mixer fails this.
  double total_flips = 0.0;
  int trials = 0;
  for (int i = 0; i < 200; ++i) {
    std::string name = "avalanche/input/" + std::to_string(i);
    const std::uint64_t base = hash64(name, 7);
    for (std::size_t byte = 0; byte < name.size(); byte += 3) {
      for (int bit = 0; bit < 8; bit += 3) {
        std::string flipped = name;
        flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
        total_flips += __builtin_popcountll(base ^ hash64(flipped, 7));
        ++trials;
      }
    }
  }
  const double mean_flips = total_flips / trials;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(Hash64, SeedAvalanche) {
  double total_flips = 0.0;
  int trials = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = hash64("fixed-name", 1);
    const std::uint64_t b = hash64("fixed-name", 1ull ^ (1ull << bit));
    total_flips += __builtin_popcountll(a ^ b);
    ++trials;
  }
  EXPECT_GT(total_flips / trials, 24.0);
  EXPECT_LT(total_flips / trials, 40.0);
}

}  // namespace
}  // namespace anu
