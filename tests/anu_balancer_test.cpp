// Tests for the assembled ANU balancer: addressing, tuning, elasticity.
#include "core/anu_balancer.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace anu::core {
namespace {

std::vector<workload::FileSet> make_file_sets(std::size_t n) {
  std::vector<workload::FileSet> fs;
  for (std::uint32_t i = 0; i < n; ++i) {
    fs.push_back({FileSetId(i), "fs/" + std::to_string(i), 1.0});
  }
  return fs;
}

TEST(AnuBalancer, PlacementIsDeterministic) {
  AnuBalancer a(AnuConfig{}, 5), b(AnuConfig{}, 5);
  const auto fs = make_file_sets(50);
  a.register_file_sets(fs);
  b.register_file_sets(fs);
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.server_for(FileSetId(i)), b.server_for(FileSetId(i)));
  }
}

TEST(AnuBalancer, LocateAgreesWithPlacement) {
  AnuBalancer bal(AnuConfig{}, 5);
  const auto fs = make_file_sets(50);
  bal.register_file_sets(fs);
  for (const auto& f : fs) {
    EXPECT_EQ(bal.locate(f.name).server, bal.server_for(f.id));
  }
}

TEST(AnuBalancer, MeanProbesNearTwo) {
  // Paper §4: "On average, the system requires two probes to assign a file
  // set"; miss chance 2^-r after r rounds.
  AnuBalancer bal(AnuConfig{}, 5);
  bal.register_file_sets(make_file_sets(1));
  double probes = 0.0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) {
    probes += bal.locate("probe/test/" + std::to_string(i)).probes;
  }
  EXPECT_NEAR(probes / kN, 2.0, 0.05);
}

TEST(AnuBalancer, InitialSharesEqual) {
  AnuBalancer bal(AnuConfig{}, 5);
  for (std::uint32_t s = 0; s < 5; ++s) {
    EXPECT_NEAR(bal.region_map().share(ServerId(s)).to_double(), 0.1, 1e-9);
  }
}

TEST(AnuBalancer, TuneMovesLoadTowardFastServers) {
  AnuBalancer bal(AnuConfig{}, 5);
  bal.register_file_sets(make_file_sets(50));
  for (int round = 0; round < 30; ++round) {
    for (std::uint32_t s = 0; s < 5; ++s) {
      // Server speed grows with id: latency inversely proportional.
      const double latency = 10.0 / (1.0 + 2.0 * s);
      bal.report(ServerId(s), {latency, 100});
    }
    bal.tune();
  }
  const auto& map = bal.region_map();
  EXPECT_LT(map.share(ServerId(0)).to_double(),
            map.share(ServerId(4)).to_double());
  EXPECT_LT(map.share(ServerId(1)).to_double(),
            map.share(ServerId(3)).to_double());
}

TEST(AnuBalancer, TuneReturnsActualMoves) {
  AnuBalancer bal(AnuConfig{}, 5);
  const auto fs = make_file_sets(50);
  bal.register_file_sets(fs);
  std::vector<ServerId> before(50);
  for (std::uint32_t i = 0; i < 50; ++i) before[i] = bal.server_for(FileSetId(i));
  for (std::uint32_t s = 0; s < 5; ++s) {
    bal.report(ServerId(s), {s == 0 ? 50.0 : 1.0, 100});
  }
  const auto result = bal.tune();
  std::size_t observed_changes = 0;
  for (std::uint32_t i = 0; i < 50; ++i) {
    if (bal.server_for(FileSetId(i)) != before[i]) ++observed_changes;
  }
  EXPECT_EQ(result.moved_count(), observed_changes);
  for (const auto& move : result.moves) {
    EXPECT_EQ(before[move.file_set.value()], move.from);
    EXPECT_EQ(bal.server_for(move.file_set), move.to);
  }
}

TEST(AnuBalancer, FailedServerReceivesNothing) {
  AnuBalancer bal(AnuConfig{}, 5);
  bal.register_file_sets(make_file_sets(50));
  bal.on_server_failed(ServerId(2));
  EXPECT_FALSE(bal.server_up(ServerId(2)));
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_NE(bal.server_for(FileSetId(i)), ServerId(2));
  }
  EXPECT_EQ(bal.region_map().share(ServerId(2)).raw(), 0u);
}

TEST(AnuBalancer, FailureMovesItsOwnFileSets) {
  AnuBalancer bal(AnuConfig{}, 5);
  const auto fs = make_file_sets(50);
  bal.register_file_sets(fs);
  std::set<std::uint32_t> owned;
  for (std::uint32_t i = 0; i < 50; ++i) {
    if (bal.server_for(FileSetId(i)) == ServerId(1)) owned.insert(i);
  }
  const auto result = bal.on_server_failed(ServerId(1));
  std::set<std::uint32_t> moved;
  for (const auto& move : result.moves) moved.insert(move.file_set.value());
  // Every file set the failed server held must have moved.
  for (std::uint32_t i : owned) EXPECT_TRUE(moved.count(i)) << "fs " << i;
  // Collateral movement (captured earlier probes) must stay small.
  EXPECT_LE(moved.size(), owned.size() + 5);
}

TEST(AnuBalancer, HalfOccupancyHeldThroughFailures) {
  AnuBalancer bal(AnuConfig{}, 5);
  bal.register_file_sets(make_file_sets(50));
  bal.on_server_failed(ServerId(0));
  bal.on_server_failed(ServerId(4));
  // check_invariants aborts if the half-occupancy or partial invariants
  // broke; reaching here with sane shares is the assertion.
  double total = 0.0;
  for (std::uint32_t s = 0; s < 5; ++s) {
    total += bal.region_map().share(ServerId(s)).to_double();
  }
  EXPECT_NEAR(total, 0.5, 1e-9);
}

TEST(AnuBalancer, RecoveryRestoresService) {
  AnuBalancer bal(AnuConfig{}, 5);
  bal.register_file_sets(make_file_sets(50));
  bal.on_server_failed(ServerId(3));
  const auto moves = bal.on_server_recovered(ServerId(3));
  EXPECT_TRUE(bal.server_up(ServerId(3)));
  // Recovered server re-enters with roughly one partition of the interval.
  const double share = bal.region_map().share(ServerId(3)).to_double();
  EXPECT_GT(share, 0.0);
  EXPECT_LE(share, bal.region_map().partition_size().to_double() + 1e-9);
  (void)moves;
}

TEST(AnuBalancer, RecoveredServerCanGrowBack) {
  AnuBalancer bal(AnuConfig{}, 5);
  bal.register_file_sets(make_file_sets(50));
  bal.on_server_failed(ServerId(4));
  bal.on_server_recovered(ServerId(4));
  for (int round = 0; round < 40; ++round) {
    for (std::uint32_t s = 0; s < 5; ++s) {
      // Server 4 is the fastest: low latency whenever it serves anything.
      const double latency = s == 4 ? 0.2 : 2.0;
      bal.report(ServerId(s), {latency, 100});
    }
    bal.tune();
  }
  const auto& map = bal.region_map();
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_GT(map.share(ServerId(4)).to_double(),
              map.share(ServerId(s)).to_double());
  }
}

TEST(AnuBalancer, AddServerTriggersRepartition) {
  AnuBalancer bal(AnuConfig{}, 4);
  bal.register_file_sets(make_file_sets(30));
  EXPECT_EQ(bal.region_map().partition_count(), 8u);
  const auto moves = bal.on_server_added(ServerId(4));
  EXPECT_EQ(bal.region_map().partition_count(), 16u);
  EXPECT_TRUE(bal.server_up(ServerId(4)));
  // The newcomer only takes a sliver; most placements survive.
  EXPECT_LT(moves.moved_count(), 10u);
}

TEST(AnuBalancer, AddedServerIsAddressable) {
  AnuBalancer bal(AnuConfig{}, 4);
  bal.register_file_sets(make_file_sets(30));
  bal.on_server_added(ServerId(4));
  // Give it strongly favorable reports; eventually it serves file sets.
  for (int round = 0; round < 50; ++round) {
    for (std::uint32_t s = 0; s < 5; ++s) {
      bal.report(ServerId(s), {s == 4 ? 0.1 : 5.0, 100});
    }
    bal.tune();
  }
  std::size_t on_new = 0;
  for (std::uint32_t i = 0; i < 30; ++i) {
    if (bal.server_for(FileSetId(i)) == ServerId(4)) ++on_new;
  }
  EXPECT_GT(on_new, 0u);
}

TEST(AnuBalancer, SharedStateIsSmallAndServerScaled) {
  AnuBalancer bal5(AnuConfig{}, 5);
  EXPECT_EQ(bal5.shared_state_bytes(), 16u * 12 + 8);
  AnuBalancer bal40(AnuConfig{}, 40);
  EXPECT_EQ(bal40.shared_state_bytes(), 128u * 12 + 8);
}

TEST(AnuBalancer, ReportToDownServerForbidden) {
  AnuBalancer bal(AnuConfig{}, 3);
  bal.register_file_sets(make_file_sets(10));
  bal.on_server_failed(ServerId(1));
  EXPECT_DEATH(bal.report(ServerId(1), {1.0, 1}), "precondition");
}

TEST(AnuBalancer, TuningRoundsCounted) {
  AnuBalancer bal(AnuConfig{}, 3);
  bal.register_file_sets(make_file_sets(10));
  for (int i = 0; i < 4; ++i) {
    for (std::uint32_t s = 0; s < 3; ++s) bal.report(ServerId(s), {1.0, 1});
    bal.tune();
  }
  EXPECT_EQ(bal.tuning_rounds(), 4u);
}

// Hashing-variance property (paper §4): even with identical servers and
// homogeneous file sets, mapped-region scaling yields better balance than
// simple randomization's static split.
TEST(AnuBalancer, CorrectsHashingVariance) {
  AnuBalancer bal(AnuConfig{}, 4);
  const std::size_t kSets = 64;
  bal.register_file_sets(make_file_sets(kSets));
  auto spread = [&] {
    std::vector<std::size_t> counts(4, 0);
    for (std::uint32_t i = 0; i < kSets; ++i) {
      ++counts[bal.server_for(FileSetId(i)).value()];
    }
    std::size_t lo = kSets, hi = 0;
    for (auto c : counts) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    return hi - lo;
  };
  const std::size_t before = spread();
  for (int round = 0; round < 60; ++round) {
    std::vector<std::size_t> counts(4, 0);
    for (std::uint32_t i = 0; i < kSets; ++i) {
      ++counts[bal.server_for(FileSetId(i)).value()];
    }
    for (std::uint32_t s = 0; s < 4; ++s) {
      // Equal-speed servers: latency proportional to assigned count.
      bal.report(ServerId(s),
                 {static_cast<double>(counts[s]) + 0.01, counts[s] + 1});
    }
    bal.tune();
  }
  EXPECT_LE(spread(), before);
  const std::size_t after = spread();
  EXPECT_LE(after, kSets / 4);  // max-min gap at most the average bucket
}


// --- multiple-choice placement (SIEVE heuristic, paper section 4) --------

TEST(AnuBalancerTwoChoice, CandidatesAreDistinctServers) {
  AnuBalancer bal(AnuConfig{}, 5);
  bal.register_file_sets(make_file_sets(1));
  for (int i = 0; i < 200; ++i) {
    const auto pair = bal.candidates("cand/" + std::to_string(i));
    ASSERT_TRUE(pair.first.server.valid());
    if (pair.second.server.valid()) {
      EXPECT_NE(pair.first.server, pair.second.server);
      EXPECT_GT(pair.second.probes, pair.first.probes);
    }
  }
}

TEST(AnuBalancerTwoChoice, SecondChoiceInvalidWithOneServer) {
  AnuBalancer bal(AnuConfig{}, 1);
  bal.register_file_sets(make_file_sets(1));
  const auto pair = bal.candidates("solo");
  EXPECT_TRUE(pair.first.server.valid());
  EXPECT_FALSE(pair.second.server.valid());
}

TEST(AnuBalancerTwoChoice, PlacementUsesOneOfTheCandidates) {
  AnuConfig config;
  config.placement_choices = 2;
  AnuBalancer bal(config, 5);
  const auto fs = make_file_sets(50);
  bal.register_file_sets(fs);
  for (const auto& f : fs) {
    const auto pair = bal.candidates(f.name);
    const ServerId placed = bal.server_for(f.id);
    EXPECT_TRUE(placed == pair.first.server ||
                placed == pair.second.server);
  }
}

TEST(AnuBalancerTwoChoice, ImprovesBalanceOverSingleChoice) {
  // The heuristic exists to tighten the load bound toward ceil(m/n + 1);
  // with equal shares and homogeneous file sets the max-min spread must
  // not get worse, and typically shrinks substantially.
  auto spread = [](std::uint32_t choices) {
    AnuConfig config;
    config.placement_choices = choices;
    AnuBalancer bal(config, 8);
    const std::size_t kSets = 256;
    std::vector<workload::FileSet> fs;
    for (std::uint32_t i = 0; i < kSets; ++i) {
      fs.push_back({FileSetId(i), "mc/" + std::to_string(i), 1.0});
    }
    bal.register_file_sets(fs);
    std::vector<std::size_t> counts(8, 0);
    for (std::uint32_t i = 0; i < kSets; ++i) {
      ++counts[bal.server_for(FileSetId(i)).value()];
    }
    std::size_t lo = kSets, hi = 0;
    for (auto c : counts) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    return hi - lo;
  };
  EXPECT_LT(spread(2), spread(1));
}

TEST(AnuBalancerTwoChoice, DeterministicPlacement) {
  AnuConfig config;
  config.placement_choices = 2;
  AnuBalancer a(config, 5), b(config, 5);
  const auto fs = make_file_sets(64);
  a.register_file_sets(fs);
  b.register_file_sets(fs);
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a.server_for(FileSetId(i)), b.server_for(FileSetId(i)));
  }
}

TEST(AnuBalancerTwoChoice, SharedStateAddsChoiceBits) {
  AnuConfig one;
  AnuConfig two;
  two.placement_choices = 2;
  AnuBalancer a(one, 5), b(two, 5);
  const auto fs = make_file_sets(50);
  a.register_file_sets(fs);
  b.register_file_sets(fs);
  EXPECT_EQ(b.shared_state_bytes(), a.shared_state_bytes() + (50 + 7) / 8);
}

TEST(AnuBalancerTwoChoice, SurvivesMembershipChurn) {
  AnuConfig config;
  config.placement_choices = 2;
  AnuBalancer bal(config, 5);
  bal.register_file_sets(make_file_sets(50));
  bal.on_server_failed(ServerId(2));
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_NE(bal.server_for(FileSetId(i)), ServerId(2));
  }
  bal.on_server_recovered(ServerId(2));
  for (std::uint32_t s = 0; s < 5; ++s) bal.report(ServerId(s), {1.0, 10});
  bal.tune();  // invariants re-checked inside
}


TEST(AnuBalancerDChoice, CandidateSetDistinctAndOrdered) {
  AnuBalancer bal(AnuConfig{}, 8);
  bal.register_file_sets(make_file_sets(1));
  for (int i = 0; i < 100; ++i) {
    const auto set = bal.candidate_set("dc/" + std::to_string(i), 4);
    ASSERT_GE(set.size(), 1u);
    ASSERT_LE(set.size(), 4u);
    for (std::size_t a = 0; a < set.size(); ++a) {
      for (std::size_t b = a + 1; b < set.size(); ++b) {
        EXPECT_NE(set[a].server, set[b].server);
        EXPECT_LT(set[a].probes, set[b].probes);
      }
    }
  }
}

TEST(AnuBalancerDChoice, MoreChoicesNeverWorsenSpread) {
  auto spread = [](std::uint32_t choices) {
    AnuConfig config;
    config.placement_choices = choices;
    AnuBalancer bal(config, 8);
    const std::size_t kSets = 256;
    std::vector<workload::FileSet> fs;
    for (std::uint32_t i = 0; i < kSets; ++i) {
      fs.push_back({FileSetId(i), "dc/" + std::to_string(i), 1.0});
    }
    bal.register_file_sets(fs);
    std::vector<std::size_t> counts(8, 0);
    for (std::uint32_t i = 0; i < kSets; ++i) {
      ++counts[bal.server_for(FileSetId(i)).value()];
    }
    std::size_t lo = kSets, hi = 0;
    for (auto c : counts) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    return hi - lo;
  };
  EXPECT_LE(spread(4), spread(2));
  EXPECT_LT(spread(4), spread(1));
}

TEST(AnuBalancerDChoice, SharedStateBitsGrowWithLgD) {
  const auto fs = make_file_sets(64);
  auto bytes_for = [&](std::uint32_t choices) {
    AnuConfig config;
    config.placement_choices = choices;
    AnuBalancer bal(config, 5);
    bal.register_file_sets(fs);
    return bal.shared_state_bytes();
  };
  const auto base = bytes_for(1);
  EXPECT_EQ(bytes_for(2), base + 64 / 8);      // 1 bit per set
  EXPECT_EQ(bytes_for(4), base + 64 * 2 / 8);  // 2 bits per set
  EXPECT_EQ(bytes_for(8), base + 64 * 3 / 8);  // 3 bits per set
}

TEST(AnuBalancerDChoice, RejectsOutOfRange) {
  AnuConfig config;
  config.placement_choices = 9;
  EXPECT_DEATH(AnuBalancer(config, 5), "precondition");
}

}  // namespace
}  // namespace anu::core
