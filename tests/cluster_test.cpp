// Tests for the cluster model: servers, membership, failure schedules.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/failure_schedule.h"

namespace anu::cluster {
namespace {

TEST(Server, ServesAndReportsInterval) {
  sim::Simulation sim;
  Server server(sim, ServerId(0), 2.0);
  server.submit(FileSetId(0), 4.0);  // 2 seconds of service
  sim.run_to_completion();
  const auto report = server.take_interval_report();
  EXPECT_EQ(report.completed, 1u);
  EXPECT_DOUBLE_EQ(report.mean_latency, 2.0);
  // Interval stats reset after the report; lifetime stats persist.
  const auto empty = server.take_interval_report();
  EXPECT_EQ(empty.completed, 0u);
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(Server, CompletionObserverFires) {
  sim::Simulation sim;
  Server server(sim, ServerId(3), 1.0);
  Completion seen{};
  server.on_complete = [&](const Completion& c) { seen = c; };
  server.submit(FileSetId(7), 5.0);
  sim.run_to_completion();
  EXPECT_EQ(seen.server, ServerId(3));
  EXPECT_EQ(seen.file_set, FileSetId(7));
  EXPECT_DOUBLE_EQ(seen.latency(), 5.0);
}

TEST(Server, FailFlushesThroughCallback) {
  sim::Simulation sim;
  Server server(sim, ServerId(0), 1.0);
  std::vector<std::uint32_t> flushed;
  server.on_flush = [&](FileSetId fs, double, std::uint64_t) {
    flushed.push_back(fs.value());
  };
  server.submit(FileSetId(1), 100.0);
  server.submit(FileSetId(2), 100.0);
  sim.schedule_at(1.0, [&] { server.fail(); });
  sim.run_to_completion();
  EXPECT_EQ(flushed, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_FALSE(server.is_up());
}

TEST(Cluster, PaperConfiguration) {
  sim::Simulation sim;
  Cluster c(sim, paper_cluster());
  EXPECT_EQ(c.server_count(), 5u);
  EXPECT_DOUBLE_EQ(c.total_capacity(), 25.0);
  EXPECT_DOUBLE_EQ(c.server(ServerId(0)).speed(), 1.0);
  EXPECT_DOUBLE_EQ(c.server(ServerId(4)).speed(), 9.0);
}

TEST(Cluster, FailureAffectsCapacityAndUpCount) {
  sim::Simulation sim;
  Cluster c(sim, paper_cluster());
  c.fail_server(ServerId(4));
  EXPECT_EQ(c.up_count(), 4u);
  EXPECT_DOUBLE_EQ(c.total_capacity(), 16.0);
  EXPECT_DOUBLE_EQ(c.up_speeds()[4], 0.0);
  c.recover_server(ServerId(4));
  EXPECT_EQ(c.up_count(), 5u);
}

TEST(Cluster, AddServerGetsNextId) {
  sim::Simulation sim;
  Cluster c(sim, paper_cluster());
  const ServerId id = c.add_server(4.0);
  EXPECT_EQ(id, ServerId(5));
  EXPECT_EQ(c.server_count(), 6u);
  EXPECT_DOUBLE_EQ(c.total_capacity(), 29.0);
}

TEST(Cluster, CompletionForwardedToObserver) {
  sim::Simulation sim;
  Cluster c(sim, paper_cluster());
  int completions = 0;
  c.on_complete = [&](const Completion&) { ++completions; };
  c.submit(ServerId(2), FileSetId(0), 1.0);
  sim.run_to_completion();
  EXPECT_EQ(completions, 1);
}

TEST(FailureSchedule, RandomFailRecoverIsWellFormed) {
  const auto schedule =
      FailureSchedule::random_fail_recover(1, 5, 4, 4000.0, 100.0);
  ASSERT_EQ(schedule.events().size(), 8u);
  double last = 0.0;
  for (std::size_t i = 0; i < schedule.events().size(); i += 2) {
    const auto& fail = schedule.events()[i];
    const auto& recover = schedule.events()[i + 1];
    EXPECT_EQ(fail.action, MembershipAction::kFail);
    EXPECT_EQ(recover.action, MembershipAction::kRecover);
    EXPECT_EQ(fail.server, recover.server);
    EXPECT_DOUBLE_EQ(recover.when - fail.when, 100.0);
    EXPECT_GE(fail.when, last);
    last = recover.when;
  }
}

TEST(FailureSchedule, AddEnforcesOrder) {
  FailureSchedule schedule;
  schedule.add({10.0, MembershipAction::kFail, ServerId(0), 0.0});
  EXPECT_DEATH(
      schedule.add({5.0, MembershipAction::kRecover, ServerId(0), 0.0}),
      "precondition");
}

}  // namespace
}  // namespace anu::cluster
