// Tests for the parallel sweep utility.
#include "driver/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace anu::driver {
namespace {

TEST(Sweep, RunsAllJobs) {
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 50; ++i) jobs.push_back([&] { ++counter; });
  run_parallel(jobs, 4);
  EXPECT_EQ(counter.load(), 50);
}

TEST(Sweep, EmptyJobListIsNoop) {
  run_parallel({}, 4);  // must not hang or crash
}

TEST(Sweep, SingleThreadFallback) {
  int counter = 0;  // non-atomic: safe because threads == 1
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back([&] { ++counter; });
  run_parallel(jobs, 1);
  EXPECT_EQ(counter, 10);
}

TEST(Sweep, ParallelMapPreservesOrder) {
  const std::function<int(std::size_t)> square = [](std::size_t i) {
    return static_cast<int>(i * i);
  };
  const auto results = parallel_map<int>(20, square, 4);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(Sweep, MoreThreadsThanJobs) {
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> jobs{[&] { ++counter; }};
  run_parallel(jobs, 16);
  EXPECT_EQ(counter.load(), 1);
}

}  // namespace
}  // namespace anu::driver
