// Tests for the parallel sweep utility.
#include "driver/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace anu::driver {
namespace {

TEST(Sweep, RunsAllJobs) {
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 50; ++i) jobs.push_back([&] { ++counter; });
  run_parallel(jobs, 4);
  EXPECT_EQ(counter.load(), 50);
}

TEST(Sweep, EmptyJobListIsNoop) {
  run_parallel({}, 4);  // must not hang or crash
}

TEST(Sweep, SingleThreadFallback) {
  int counter = 0;  // non-atomic: safe because threads == 1
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 10; ++i) jobs.push_back([&] { ++counter; });
  run_parallel(jobs, 1);
  EXPECT_EQ(counter, 10);
}

TEST(Sweep, ParallelMapPreservesOrder) {
  const std::function<int(std::size_t)> square = [](std::size_t i) {
    return static_cast<int>(i * i);
  };
  const auto results = parallel_map<int>(20, square, 4);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i));
  }
}

TEST(Sweep, MoreThreadsThanJobs) {
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> jobs{[&] { ++counter; }};
  run_parallel(jobs, 16);
  EXPECT_EQ(counter.load(), 1);
}

// Regression: an exception escaping a worker thread used to reach the
// thread boundary and call std::terminate. It must instead surface on the
// calling thread, after every worker has joined.
TEST(Sweep, ThrowingJobRethrowsOnCaller) {
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 32; ++i) {
    jobs.push_back([i] {
      if (i == 7) throw std::runtime_error("job 7 failed");
    });
  }
  EXPECT_THROW(run_parallel(jobs, 4), std::runtime_error);
}

TEST(Sweep, ThrowingJobAbandonsUnstartedJobs) {
  // One poisoned job among slow ones: jobs claimed after the failure is
  // flagged must not run. With 2 workers and the first job throwing
  // immediately, at most a handful of jobs start before the flag is seen.
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> jobs;
  jobs.push_back([] { throw std::logic_error("poison"); });
  for (int i = 0; i < 1000; ++i) {
    jobs.push_back([&] { ++ran; });
  }
  EXPECT_THROW(run_parallel(jobs, 2), std::logic_error);
  EXPECT_LT(ran.load(), 1000);
}

TEST(Sweep, FirstExceptionWinsWhenSeveralThrow) {
  // All jobs throw; exactly one exception must come back (and not crash).
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 16; ++i) {
    jobs.push_back([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(run_parallel(jobs, 8), std::runtime_error);
}

TEST(Sweep, SingleThreadPathAlsoPropagates) {
  std::vector<std::function<void()>> jobs{
      [] { throw std::runtime_error("solo"); }};
  EXPECT_THROW(run_parallel(jobs, 1), std::runtime_error);
}

}  // namespace
}  // namespace anu::driver
