// Tests for the workload substrate: synthetic generator, trace synthesizer,
// trace format round-trip.
#include <gtest/gtest.h>

#include <sstream>

#include "workload/synthetic.h"
#include "workload/trace.h"
#include "workload/workload.h"

namespace anu::workload {
namespace {

SyntheticConfig small_synthetic() {
  SyntheticConfig config;
  config.file_set_count = 10;
  config.request_count = 2'000;
  config.duration = 600.0;
  return config;
}

TEST(Workload, AccessorsAndTotals) {
  std::vector<FileSet> fs{{FileSetId(0), "a", 2.0}, {FileSetId(1), "b", 3.0}};
  std::vector<Request> reqs{{1.0, FileSetId(0), 0.5},
                            {2.0, FileSetId(1), 0.25}};
  const Workload w(fs, reqs);
  EXPECT_EQ(w.file_set_count(), 2u);
  EXPECT_EQ(w.request_count(), 2u);
  EXPECT_DOUBLE_EQ(w.total_weight(), 5.0);
  EXPECT_DOUBLE_EQ(w.total_demand(), 0.75);
  EXPECT_DOUBLE_EQ(w.span(), 2.0);
  EXPECT_EQ(w.file_set(FileSetId(1)).name, "b");
  EXPECT_EQ(w.requests_per_file_set(), (std::vector<std::size_t>{1, 1}));
}

TEST(Synthetic, ExactRequestAndFileSetCounts) {
  const auto w = make_synthetic_workload(small_synthetic());
  EXPECT_EQ(w.file_set_count(), 10u);
  EXPECT_EQ(w.request_count(), 2'000u);
}

TEST(Synthetic, PaperScaleCounts) {
  // The paper's exact workload: 66,401 requests against 50 file sets over
  // 200 minutes (§5.2.1).
  SyntheticConfig config;  // defaults are the paper values
  const auto w = make_synthetic_workload(config);
  EXPECT_EQ(w.file_set_count(), 50u);
  EXPECT_EQ(w.request_count(), 66'401u);
  EXPECT_LE(w.span(), 200.0 * 60.0);
}

TEST(Synthetic, RequestsSortedWithinDuration) {
  const auto w = make_synthetic_workload(small_synthetic());
  double last = 0.0;
  for (const auto& r : w.requests()) {
    EXPECT_GE(r.arrival, last);
    EXPECT_LT(r.arrival, 600.0);
    last = r.arrival;
  }
}

TEST(Synthetic, DeterministicInSeed) {
  const auto a = make_synthetic_workload(small_synthetic());
  const auto b = make_synthetic_workload(small_synthetic());
  ASSERT_EQ(a.request_count(), b.request_count());
  for (std::size_t i = 0; i < a.request_count(); ++i) {
    EXPECT_EQ(a.requests()[i].arrival, b.requests()[i].arrival);
    EXPECT_EQ(a.requests()[i].demand, b.requests()[i].demand);
  }
}

TEST(Synthetic, SeedChangesWorkload) {
  auto config = small_synthetic();
  const auto a = make_synthetic_workload(config);
  config.seed += 1;
  const auto b = make_synthetic_workload(config);
  EXPECT_NE(a.requests()[0].arrival, b.requests()[0].arrival);
}

TEST(Synthetic, OfferedLoadMatchesTargetUtilization) {
  const auto config = small_synthetic();
  const auto w = make_synthetic_workload(config);
  const double offered = w.total_demand();
  const double capacity = config.duration * config.cluster_capacity;
  EXPECT_NEAR(offered / capacity, config.target_utilization, 0.02);
}

TEST(Synthetic, RequestCountsProportionalToWeights) {
  auto config = small_synthetic();
  config.demand_jitter_sigma = 0.0;
  const auto w = make_synthetic_workload(config);
  const auto counts = w.requests_per_file_set();
  double weight_sum = 0.0;
  for (const auto& fs : w.file_sets()) weight_sum += fs.weight;
  for (std::size_t i = 0; i < w.file_set_count(); ++i) {
    const double expected = static_cast<double>(w.request_count()) *
                            w.file_sets()[i].weight / weight_sum;
    EXPECT_NEAR(static_cast<double>(counts[i]), expected, expected * 0.05 + 2)
        << "file set " << i;
  }
}

TEST(Synthetic, WeightFactorSpreadIsPaperRange) {
  // X ~ U[1,10]: max/min weight ratio must stay within a factor of 10.
  const auto w =
      make_synthetic_workload(SyntheticConfig{});  // 50 sets, better stats
  double lo = 1e18, hi = 0.0;
  for (const auto& fs : w.file_sets()) {
    lo = std::min(lo, fs.weight);
    hi = std::max(hi, fs.weight);
  }
  EXPECT_LE(hi / lo, 10.0);
  EXPECT_GT(hi / lo, 2.0);  // and real spread exists
}

TEST(Synthetic, EveryFileSetHasRequests) {
  const auto w = make_synthetic_workload(small_synthetic());
  for (std::size_t c : w.requests_per_file_set()) EXPECT_GE(c, 1u);
}

TEST(TraceSynth, DfsTraceShape) {
  // §5.1: one-hour DFSTrace workload, 21 file sets, 112,590 requests.
  TraceSynthConfig config;
  const auto w = synthesize_trace(config);
  EXPECT_EQ(w.file_set_count(), 21u);
  EXPECT_EQ(w.request_count(), 112'590u);
  EXPECT_LE(w.span(), 3600.0);
}

TEST(TraceSynth, PopularityIsSkewed) {
  TraceSynthConfig config;
  const auto w = synthesize_trace(config);
  const auto counts = w.requests_per_file_set();
  EXPECT_GT(counts.front(), counts.back() * 5);  // Zipf head vs tail
}

TEST(TraceSynth, Deterministic) {
  TraceSynthConfig config;
  config.request_count = 5'000;
  const auto a = synthesize_trace(config);
  const auto b = synthesize_trace(config);
  for (std::size_t i = 0; i < a.request_count(); ++i) {
    ASSERT_EQ(a.requests()[i].arrival, b.requests()[i].arrival);
  }
}

TEST(TraceSynth, ModulationKeepsOrderAndBounds) {
  TraceSynthConfig config;
  config.request_count = 10'000;
  config.intensity_modulation = 0.8;
  const auto w = synthesize_trace(config);
  double last = 0.0;
  for (const auto& r : w.requests()) {
    EXPECT_GE(r.arrival, last);
    EXPECT_LE(r.arrival, config.duration);
    last = r.arrival;
  }
}

TEST(TraceFormat, RoundTripsThroughText) {
  TraceSynthConfig config;
  config.request_count = 1'000;
  config.file_set_count = 7;
  const auto w = synthesize_trace(config);
  std::stringstream buffer;
  write_trace(buffer, w);
  TraceParseError error;
  const auto parsed = read_trace(buffer, &error);
  ASSERT_TRUE(parsed.has_value()) << error.message;
  ASSERT_EQ(parsed->request_count(), w.request_count());
  ASSERT_EQ(parsed->file_set_count(), w.file_set_count());
  for (std::size_t i = 0; i < w.request_count(); ++i) {
    EXPECT_NEAR(parsed->requests()[i].arrival, w.requests()[i].arrival, 1e-6);
    EXPECT_EQ(parsed->requests()[i].file_set, w.requests()[i].file_set);
  }
  for (std::size_t i = 0; i < w.file_set_count(); ++i) {
    EXPECT_EQ(parsed->file_sets()[i].name, w.file_sets()[i].name);
  }
}

TEST(TraceFormat, RejectsUnknownRecord) {
  std::istringstream is("bogus 1 2 3\n");
  TraceParseError error;
  EXPECT_FALSE(read_trace(is, &error).has_value());
  EXPECT_EQ(error.line, 1u);
}

TEST(TraceFormat, RejectsUndeclaredFileSet) {
  std::istringstream is("req 1.0 0 0.5\n");
  TraceParseError error;
  EXPECT_FALSE(read_trace(is, &error).has_value());
}

TEST(TraceFormat, RejectsOutOfOrderRequests) {
  std::istringstream is(
      "fileset 0 a 1.0\n"
      "req 2.0 0 0.5\n"
      "req 1.0 0 0.5\n");
  TraceParseError error;
  EXPECT_FALSE(read_trace(is, &error).has_value());
  EXPECT_EQ(error.line, 3u);
}

TEST(TraceFormat, RejectsNonDenseFileSetIds) {
  std::istringstream is("fileset 1 a 1.0\n");
  EXPECT_FALSE(read_trace(is).has_value());
}

TEST(TraceFormat, SkipsCommentsAndBlankLines) {
  std::istringstream is(
      "# header\n"
      "\n"
      "fileset 0 a 1.0\n"
      "# mid comment\n"
      "req 1.0 0 0.5\n");
  const auto parsed = read_trace(is);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->request_count(), 1u);
}

TEST(TraceFormat, FileRoundTrip) {
  TraceSynthConfig config;
  config.request_count = 200;
  config.file_set_count = 3;
  const auto w = synthesize_trace(config);
  const std::string path = ::testing::TempDir() + "/anu_trace_test.txt";
  ASSERT_TRUE(write_trace_file(path, w));
  const auto parsed = read_trace_file(path);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->request_count(), 200u);
}

TEST(TraceFormat, MissingFileReportsError) {
  TraceParseError error;
  EXPECT_FALSE(read_trace_file("/nonexistent/anu.txt", &error).has_value());
  EXPECT_EQ(error.line, 0u);
}


TEST(Synthetic, InterArrivalsAreHeavyTailed) {
  // §5.2.1: "inter-arrival times in each file set are governed by a Pareto
  // distribution that is heavy-tailed." The squared coefficient of
  // variation of a file set's gaps should far exceed an exponential's 1.
  workload::SyntheticConfig config;
  config.file_set_count = 1;  // one stream, clean gap statistics
  config.request_count = 20'000;
  config.duration = 20'000.0;
  const auto w = make_synthetic_workload(config);
  double sum = 0.0, sq = 0.0;
  std::size_t n = 0;
  double last = 0.0;
  for (const auto& r : w.requests()) {
    const double gap = r.arrival - last;
    last = r.arrival;
    sum += gap;
    sq += gap * gap;
    ++n;
  }
  const double mean = sum / static_cast<double>(n);
  const double var = sq / static_cast<double>(n) - mean * mean;
  EXPECT_GT(var / (mean * mean), 3.0);  // exponential would be ~1
}

TEST(TraceSynth, IntensityModulationCreatesDensityContrast) {
  // With strong modulation the busiest tenth of the hour must see far more
  // requests than the quietest tenth.
  TraceSynthConfig config;
  config.request_count = 50'000;
  config.intensity_modulation = 0.8;
  const auto w = synthesize_trace(config);
  std::vector<std::size_t> deciles(10, 0);
  for (const auto& r : w.requests()) {
    auto d = static_cast<std::size_t>(r.arrival / config.duration * 10.0);
    ++deciles[std::min<std::size_t>(d, 9)];
  }
  std::size_t lo = w.request_count(), hi = 0;
  for (auto d : deciles) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_GT(hi, lo * 2);
}

TEST(TraceSynth, ZeroModulationIsRoughlyStationary) {
  TraceSynthConfig config;
  config.request_count = 50'000;
  config.intensity_modulation = 0.0;
  config.pareto_shape = 2.5;  // milder burstiness for a stationarity check
  const auto w = synthesize_trace(config);
  std::vector<std::size_t> halves(2, 0);
  for (const auto& r : w.requests()) {
    ++halves[r.arrival < config.duration / 2 ? 0 : 1];
  }
  const double ratio = static_cast<double>(halves[0]) /
                       static_cast<double>(halves[1]);
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.6);
}

TEST(Synthetic, DemandJitterPreservesMeanLoad) {
  workload::SyntheticConfig with_jitter;
  with_jitter.file_set_count = 10;
  with_jitter.request_count = 50'000;
  with_jitter.duration = 5'000.0;
  with_jitter.demand_jitter_sigma = 0.5;
  auto without_jitter = with_jitter;
  without_jitter.demand_jitter_sigma = 0.0;
  const auto a = make_synthetic_workload(with_jitter);
  const auto b = make_synthetic_workload(without_jitter);
  EXPECT_NEAR(a.total_demand() / b.total_demand(), 1.0, 0.02);
}

}  // namespace
}  // namespace anu::workload
