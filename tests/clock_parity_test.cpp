// The sim-vs-realtime guarantee, enforced (docs/runtime.md): the control
// protocol driven by runtime::RealtimeClock makes bit-for-bit the same
// decisions as the same protocol driven by the discrete-event simulator.
//
// Both sides run identical clusters over the deterministic proto::Network
// (same seeds, same latency model); the realtime side's clock reads a
// ManualTimeSource that a test driver advances deadline-by-deadline — so
// "wall time" is a script, and any divergence in dispatch order between
// the event kernel's (time, seq) calendar and the timer wheel shows up as
// differing map versions, partition tables, or routing answers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "faults/fault_plan.h"
#include "proto/network.h"
#include "proto/protocol.h"
#include "runtime/realtime_clock.h"
#include "runtime/time_source.h"
#include "sim/sim_clock.h"
#include "sim/simulation.h"

namespace anu {
namespace {

proto::LatencyModel speeds_model(std::vector<double> speeds) {
  return [speeds = std::move(speeds)](std::uint32_t s, UnitPoint share) {
    const double latency = share.to_double() / speeds[s] * 100.0 + 1e-6;
    const auto n = static_cast<std::size_t>(share.to_double() * 1e4);
    return balance::ServerReport{latency, n};
  };
}

std::vector<std::string> file_set_names() {
  std::vector<std::string> names;
  for (int i = 0; i < 40; ++i) names.push_back("p/" + std::to_string(i));
  return names;
}

/// Drives the realtime clock through purely virtual time: jump the manual
/// source to each next deadline and pump, until `until` is reached. This is
/// the same schedule the event loop would produce with a real source, minus
/// the wall-clock jitter the clock is designed to mask.
void run_virtual_until(runtime::RealtimeClock& clock,
                       runtime::ManualTimeSource& source, SimTime until) {
  for (;;) {
    const SimTime next = clock.next_deadline();
    if (next < 0.0 || next > until) break;
    if (next > source.now()) source.advance_to(next);
    clock.pump();
  }
  if (until > source.now()) source.advance_to(until);
  clock.pump();
}

struct SimSide {
  sim::Simulation sim;
  sim::SimClock clock{sim};
  proto::Network net;
  proto::ProtocolCluster cluster;

  SimSide(std::size_t servers, const std::vector<double>& speeds,
          const proto::ProtocolConfig& config)
      : net(clock, proto::NetworkConfig{}, servers),
        cluster(clock, net, config, servers, speeds_model(speeds)) {
    cluster.register_file_sets(file_set_names());
  }

  void run_until(SimTime t) { sim.run_until(t); }
};

struct RealSide {
  runtime::ManualTimeSource source;
  runtime::RealtimeClock clock{source};
  proto::Network net;
  proto::ProtocolCluster cluster;

  RealSide(std::size_t servers, const std::vector<double>& speeds,
           const proto::ProtocolConfig& config)
      : net(clock, proto::NetworkConfig{}, servers),
        cluster(clock, net, config, servers, speeds_model(speeds)) {
    cluster.register_file_sets(file_set_names());
  }

  void run_until(SimTime t) { run_virtual_until(clock, source, t); }
};

/// Full observable-state comparison at one instant.
void expect_identical(const proto::ProtocolCluster& a,
                      const proto::ProtocolCluster& b, std::size_t servers,
                      const char* at) {
  EXPECT_EQ(a.updates_published(), b.updates_published()) << at;
  EXPECT_EQ(a.replicas_agree(), b.replicas_agree()) << at;
  EXPECT_EQ(a.delegate(), b.delegate()) << at;
  for (std::uint32_t n = 0; n < servers; ++n) {
    EXPECT_EQ(a.version_of(n), b.version_of(n)) << at << " node " << n;
    EXPECT_EQ(a.map_of(n).snapshot(), b.map_of(n).snapshot())
        << at << " node " << n;
  }
  for (int k = 0; k < 16; ++k) {
    const std::string key = "parity/key/" + std::to_string(k);
    EXPECT_EQ(a.route_from(0, key), b.route_from(0, key)) << at << " " << key;
  }
}

TEST(ClockParity, OracleMembershipRoundsAreIdentical) {
  const std::vector<double> speeds{1.0, 3.0, 5.0, 7.0, 9.0};
  proto::ProtocolConfig config;
  SimSide sim_side(5, speeds, config);
  RealSide real_side(5, speeds, config);

  for (int round = 1; round <= 6; ++round) {
    const SimTime t = 120.0 * round + 10.0;
    sim_side.run_until(t);
    real_side.run_until(t);
    const std::string at = "round " + std::to_string(round);
    expect_identical(sim_side.cluster, real_side.cluster, 5, at.c_str());
    EXPECT_EQ(sim_side.cluster.updates_published(),
              static_cast<std::uint64_t>(round));
  }
  // The transports saw the same traffic, message for message.
  EXPECT_EQ(sim_side.net.messages_sent(), real_side.net.messages_sent());
  EXPECT_EQ(sim_side.net.messages_delivered(),
            real_side.net.messages_delivered());
  EXPECT_EQ(sim_side.net.bytes_sent(), real_side.net.bytes_sent());
}

TEST(ClockParity, HeartbeatMembershipIsIdentical) {
  const std::vector<double> speeds{1.0, 2.0, 8.0};
  proto::ProtocolConfig config;
  config.use_heartbeats = true;
  config.tuning_interval = 10.0;
  config.report_grace = 0.3;
  SimSide sim_side(3, speeds, config);
  RealSide real_side(3, speeds, config);

  for (int round = 1; round <= 8; ++round) {
    const SimTime t = 10.0 * round + 2.0;
    sim_side.run_until(t);
    real_side.run_until(t);
    const std::string at = "hb round " + std::to_string(round);
    expect_identical(sim_side.cluster, real_side.cluster, 3, at.c_str());
    for (std::uint32_t n = 0; n < 3; ++n) {
      EXPECT_EQ(sim_side.cluster.believed_delegate_of(n),
                real_side.cluster.believed_delegate_of(n))
          << at << " node " << n;
    }
  }
}

TEST(ClockParity, FailureAndRecoveryAreIdentical) {
  const std::vector<double> speeds{1.0, 4.0, 2.0, 6.0};
  proto::ProtocolConfig config;
  config.tuning_interval = 30.0;
  SimSide sim_side(4, speeds, config);
  RealSide real_side(4, speeds, config);

  // Scripted through the Clock seam itself, so the membership events land
  // at the same logical instant on both sides. Node 0 is the delegate —
  // killing it forces a failover, which is the interesting case.
  const auto script = [](anu::Clock& clock, proto::ProtocolCluster& cluster) {
    clock.schedule_at(95.1, [&cluster] { cluster.fail_server(0); });
    clock.schedule_at(215.7, [&cluster] { cluster.recover_server(0); });
  };
  script(sim_side.clock, sim_side.cluster);
  script(real_side.clock, real_side.cluster);

  for (int round = 1; round <= 10; ++round) {
    const SimTime t = 30.0 * round + 5.0;
    sim_side.run_until(t);
    real_side.run_until(t);
    const std::string at = "failover round " + std::to_string(round);
    expect_identical(sim_side.cluster, real_side.cluster, 4, at.c_str());
  }
  // The run exercised failover on both sides the same way.
  EXPECT_GT(sim_side.cluster.updates_published(), 5u);
}

TEST(ClockParity, LossyNetworkRetransmitsIdentically) {
  const std::vector<double> speeds{1.0, 5.0, 3.0};
  proto::ProtocolConfig config;
  config.tuning_interval = 20.0;
  faults::FaultPlanConfig chaos;
  chaos.loss = 0.15;
  chaos.duplicate = 0.05;
  faults::FaultPlan sim_plan(chaos);
  faults::FaultPlan real_plan(chaos);

  SimSide sim_side(3, speeds, config);
  RealSide real_side(3, speeds, config);
  sim_side.net.set_fault_plan(&sim_plan);
  real_side.net.set_fault_plan(&real_plan);

  for (int round = 1; round <= 8; ++round) {
    const SimTime t = 20.0 * round + 4.0;
    sim_side.run_until(t);
    real_side.run_until(t);
    const std::string at = "lossy round " + std::to_string(round);
    expect_identical(sim_side.cluster, real_side.cluster, 3, at.c_str());
    EXPECT_EQ(sim_side.cluster.retransmits(), real_side.cluster.retransmits())
        << at;
    EXPECT_EQ(sim_side.cluster.duplicates_suppressed(),
              real_side.cluster.duplicates_suppressed())
        << at;
  }
  EXPECT_EQ(sim_side.net.drops_injected(), real_side.net.drops_injected());
  // Loss actually happened — the parity above covered the retry machinery.
  EXPECT_GT(sim_side.net.drops_injected(), 0u);
}

}  // namespace
}  // namespace anu
