// Tests for the datagram codec (proto/wire.h): exact round-trips for every
// message kind, and total rejection of malformed input — the bytes come
// from a socket, so decode() must never assert, over-allocate, or accept a
// frame that encode() could not have produced.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "proto/messages.h"
#include "proto/wire.h"

namespace anu::proto {
namespace {

std::optional<Message> round_trip(const Message& message) {
  return decode(encode(message));
}

// --- round-trips ------------------------------------------------------------

TEST(Wire, LatencyReportRoundTrips) {
  LatencyReport report;
  report.server = 7;
  report.round = 0x0123456789abcdefULL;
  report.seq = 42;
  report.report.mean_latency = 0.12345;
  report.report.completed = 987654321;
  const auto decoded = round_trip(report);
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<LatencyReport>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->server, report.server);
  EXPECT_EQ(out->round, report.round);
  EXPECT_EQ(out->seq, report.seq);
  EXPECT_DOUBLE_EQ(out->report.mean_latency, report.report.mean_latency);
  EXPECT_EQ(out->report.completed, report.report.completed);
}

TEST(Wire, RegionMapUpdateRoundTrips) {
  RegionMapUpdate update;
  update.version = 12;
  update.round = 13;
  update.seq = 14;
  for (std::uint32_t i = 0; i < 16; ++i) {
    update.partitions.emplace_back(i % 4, std::uint64_t{1} << i);
  }
  const auto decoded = round_trip(update);
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<RegionMapUpdate>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->version, update.version);
  EXPECT_EQ(out->round, update.round);
  EXPECT_EQ(out->seq, update.seq);
  EXPECT_EQ(out->partitions, update.partitions);
}

TEST(Wire, EmptyRegionMapUpdateRoundTrips) {
  RegionMapUpdate update;
  update.version = 1;
  const auto decoded = round_trip(update);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get_if<RegionMapUpdate>(&*decoded)->partitions.empty());
}

TEST(Wire, ShedNoticeRoundTrips) {
  const ShedNotice shed{31, 2, 5};
  const auto decoded = round_trip(shed);
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<ShedNotice>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->file_set, 31u);
  EXPECT_EQ(out->from, 2u);
  EXPECT_EQ(out->to, 5u);
}

TEST(Wire, HeartbeatRoundTrips) {
  const auto decoded = round_trip(Heartbeat{9});
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<Heartbeat>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->server, 9u);
}

TEST(Wire, AckRoundTrips) {
  const auto decoded = round_trip(Ack{0xfeedfacecafeULL});
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<Ack>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->seq, 0xfeedfacecafeULL);
}

TEST(Wire, SpecialDoublesSurvive) {
  LatencyReport report;
  report.report.mean_latency = 0.0;
  auto decoded = round_trip(report);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get_if<LatencyReport>(&*decoded)->report.mean_latency, 0.0);

  report.report.mean_latency = 1e-300;
  decoded = round_trip(report);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(std::get_if<LatencyReport>(&*decoded)->report.mean_latency,
                   1e-300);
}

// --- malformed input --------------------------------------------------------

TEST(Wire, RejectsEmptyAndUnknownTag) {
  EXPECT_FALSE(decode(nullptr, 0).has_value());
  const std::uint8_t bad_tag[] = {5, 0, 0, 0, 0};
  EXPECT_FALSE(decode(bad_tag, sizeof(bad_tag)).has_value());
  const std::uint8_t way_off[] = {0xff};
  EXPECT_FALSE(decode(way_off, sizeof(way_off)).has_value());
}

TEST(Wire, RejectsEveryTruncation) {
  LatencyReport report;
  report.server = 3;
  report.report.completed = 12;
  RegionMapUpdate update;
  update.partitions.emplace_back(1, 77);
  for (const Message& message :
       {Message{report}, Message{update}, Message{ShedNotice{1, 2, 3}},
        Message{Heartbeat{4}}, Message{Ack{5}}}) {
    const auto bytes = encode(message);
    for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
      EXPECT_FALSE(decode(bytes.data(), cut).has_value())
          << "tag " << int(bytes[0]) << " truncated to " << cut;
    }
  }
}

TEST(Wire, RejectsTrailingBytes) {
  auto bytes = encode(Heartbeat{1});
  bytes.push_back(0);
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Wire, RejectsAbsurdPartitionCount) {
  // A hostile header claiming 2^32-1 partitions with no payload behind it
  // must be rejected before any allocation happens.
  std::vector<std::uint8_t> frame{1};           // RegionMapUpdate tag
  frame.resize(1 + 24, 0);                      // version, round, seq
  for (int i = 0; i < 4; ++i) frame.push_back(0xff);  // count = 0xffffffff
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(Wire, RejectsCountPayloadMismatch) {
  RegionMapUpdate update;
  update.partitions.emplace_back(0, 1);
  update.partitions.emplace_back(1, 2);
  auto bytes = encode(update);
  // Lie about the count (2 -> 3) while keeping two entries' worth of bytes.
  bytes[1 + 24] = 3;
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Wire, WireSizeModelsIdealizedCostNotRealBytes) {
  // The modelled wire_size() charges the paper's idealized message cost;
  // the codec pays fixed-width reality. They need not match, but both must
  // scale the same way with the partition table.
  RegionMapUpdate small, big;
  small.partitions.resize(4);
  big.partitions.resize(8);
  EXPECT_EQ(encode(big).size() - encode(small).size(),
            (big.wire_size() - small.wire_size()));
}

}  // namespace
}  // namespace anu::proto
