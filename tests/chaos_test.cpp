// Chaos suite: randomized adversarial fault scenarios through the full
// protocol experiment, asserting the post-fault convergence invariants and
// bit-reproducibility (docs/chaos.md). Labeled `chaos` in ctest.
#include "driver/chaos.h"

#include <gtest/gtest.h>

#include "workload/synthetic.h"

namespace anu::driver {
namespace {

/// Small-and-fast chaos shape shared by the suite: ~2 minutes of faults,
/// then enough tuning rounds to judge convergence, in well under a second.
ChaosConfig soak_config(std::uint64_t seed, ChaosProfile profile) {
  ChaosConfig config;
  config.seed = seed;
  config.profile = profile;
  config.horizon = 400.0;
  config.requests = 1200;
  config.file_sets = 12;
  config.protocol.tuning_interval = 30.0;
  return config;
}

std::string violations_text(const ChaosReport& report) {
  std::string out;
  for (const std::string& v : report.violations) out += v + "; ";
  return out;
}

// The ISSUE acceptance scenario, scripted explicitly: 10% message loss for
// the whole fault phase, one 30-second partition splitting the cluster,
// and one server gray-degraded to a quarter of its speed. After faults
// cease the protocol must converge: identical map version on all live
// nodes, full coverage, every file set owned by a live server.
TEST(Chaos, AcceptanceScenarioConverges) {
  workload::SyntheticConfig synthetic;
  synthetic.seed = 5;
  synthetic.file_set_count = 12;
  synthetic.request_count = 1500;
  synthetic.duration = 550.0;
  synthetic.cluster_capacity = 25.0;
  synthetic.target_utilization = 0.5;
  const auto workload = workload::make_synthetic_workload(synthetic);

  auto run_once = [&workload] {
    ProtocolExperimentConfig config;
    config.cluster = cluster::paper_cluster();
    config.horizon = 600.0;
    config.protocol.tuning_interval = 30.0;

    faults::FaultPlanConfig fault_config;
    fault_config.loss = 0.10;
    fault_config.end = 360.0;  // faults cease at 60% of the horizon
    faults::PartitionWindow window;
    window.start = 100.0;
    window.end = 130.0;
    window.group_a = {0, 1};
    window.group_b = {2, 3, 4};
    fault_config.partitions.push_back(window);
    faults::FaultPlan plan(fault_config);
    config.faults = &plan;

    cluster::FailureSchedule failures;
    cluster::MembershipEvent degrade{
        150.0, cluster::MembershipAction::kDegrade, ServerId(4), 0.0};
    degrade.factor = 0.25;
    failures.add(degrade);
    failures.add(
        {300.0, cluster::MembershipAction::kRestore, ServerId(4), 0.0});
    config.failures = failures;

    bool agreed = false;
    std::uint64_t version = 0;
    std::size_t file_sets_on_live_servers = 0;
    config.on_finish = [&](const proto::ProtocolCluster& protocol,
                           const proto::Network& network) {
      agreed = protocol.replicas_agree();
      version = protocol.version_of(0);
      for (const auto& fs : workload.file_sets()) {
        const ServerId owner = protocol.route_from(0, fs.name);
        if (network.node_up(owner.value())) ++file_sets_on_live_servers;
      }
    };
    const auto result = run_protocol_experiment(config, workload);
    EXPECT_TRUE(agreed);
    EXPECT_GT(version, 0u);
    EXPECT_EQ(file_sets_on_live_servers, workload.file_set_count());
    // The faults actually bit: losses were injected and repaired.
    EXPECT_GT(plan.injected_losses(), 0u);
    EXPECT_GT(plan.partition_drops(), 0u);
    EXPECT_GT(result.control_plane.retransmits, 0u);
    EXPECT_EQ(result.control_plane.drops_injected,
              plan.injected_losses() + plan.partition_drops());
    return result;
  };

  // Bit-reproducible: the same scenario twice gives identical results.
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.requests_completed, b.requests_completed);
  EXPECT_EQ(a.aggregate.mean(), b.aggregate.mean());
  EXPECT_EQ(a.control_plane.messages_sent, b.control_plane.messages_sent);
  EXPECT_EQ(a.control_plane.retransmits, b.control_plane.retransmits);
  EXPECT_EQ(a.control_plane.drops_injected, b.control_plane.drops_injected);
}

// 20 random scenarios, cycling all five profiles: every one must converge
// and reconcile its counters.
class ChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSoak, ConvergesAndReconciles) {
  const std::uint64_t seed = GetParam();
  const auto profile = static_cast<ChaosProfile>(seed % 5);
  const auto report = run_chaos(soak_config(seed, profile));
  EXPECT_TRUE(report.passed())
      << "seed " << seed << " profile " << chaos_profile_name(profile)
      << ": " << violations_text(report);
  EXPECT_GT(report.result.tuning_rounds, 5u);
  EXPECT_GT(report.result.requests_completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Chaos, SameSeedIsByteIdentical) {
  const auto config = soak_config(9, ChaosProfile::kMixed);
  const auto a = run_chaos(config);
  const auto b = run_chaos(config);
  EXPECT_TRUE(a.passed()) << violations_text(a);
  // Exact equality, not tolerance: the whole run is a pure function of the
  // config, fault stream included.
  EXPECT_EQ(a.result.requests_completed, b.result.requests_completed);
  EXPECT_EQ(a.result.aggregate.mean(), b.result.aggregate.mean());
  EXPECT_EQ(a.result.aggregate.stddev(), b.result.aggregate.stddev());
  EXPECT_EQ(a.result.control_plane.messages_sent,
            b.result.control_plane.messages_sent);
  EXPECT_EQ(a.result.control_plane.retransmits,
            b.result.control_plane.retransmits);
  EXPECT_EQ(a.result.control_plane.acks_received,
            b.result.control_plane.acks_received);
  EXPECT_EQ(a.injected_losses, b.injected_losses);
  EXPECT_EQ(a.partition_drops, b.partition_drops);
  EXPECT_EQ(a.duplications, b.duplications);
  EXPECT_EQ(a.faults.loss, b.faults.loss);
}

TEST(Chaos, DifferentSeedsGiveDifferentScenarios) {
  const auto a = run_chaos(soak_config(1, ChaosProfile::kHeavy));
  const auto b = run_chaos(soak_config(2, ChaosProfile::kHeavy));
  EXPECT_NE(a.faults.loss, b.faults.loss);
}

// Attaching a fault plan that injects nothing must not shift the workload,
// network-jitter, or retransmit streams: the fault RNG is consulted only
// when a fault can actually fire.
TEST(Chaos, InertFaultPlanDoesNotPerturbTheRun) {
  workload::SyntheticConfig synthetic;
  synthetic.seed = 11;
  synthetic.file_set_count = 10;
  synthetic.request_count = 800;
  synthetic.duration = 350.0;
  const auto workload = workload::make_synthetic_workload(synthetic);

  ProtocolExperimentConfig config;
  config.cluster = cluster::paper_cluster();
  config.horizon = 400.0;
  config.protocol.tuning_interval = 30.0;
  const auto clean = run_protocol_experiment(config, workload);

  faults::FaultPlan inert{faults::FaultPlanConfig{}};
  config.faults = &inert;
  const auto with_plan = run_protocol_experiment(config, workload);

  EXPECT_EQ(clean.requests_completed, with_plan.requests_completed);
  EXPECT_EQ(clean.aggregate.mean(), with_plan.aggregate.mean());
  EXPECT_EQ(clean.control_plane.messages_sent,
            with_plan.control_plane.messages_sent);
  EXPECT_EQ(clean.control_plane.retransmits,
            with_plan.control_plane.retransmits);
  EXPECT_EQ(with_plan.control_plane.drops_injected, 0u);
}

TEST(ChaosProfileNames, RoundTrip) {
  for (const auto profile :
       {ChaosProfile::kLight, ChaosProfile::kHeavy, ChaosProfile::kPartition,
        ChaosProfile::kDegrade, ChaosProfile::kMixed}) {
    const auto parsed = parse_chaos_profile(chaos_profile_name(profile));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, profile);
  }
  EXPECT_FALSE(parse_chaos_profile("tuesday").has_value());
}

}  // namespace
}  // namespace anu::driver
