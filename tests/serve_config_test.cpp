// Tests for the anu_serve config format (runtime/serve_config.h): exact
// parse/write round-trips — a spec printed by `anu_serve --dump-config`
// must re-parse to the same run — plus line-accurate error reporting on
// every way the format can be violated.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "runtime/serve_config.h"

namespace anu::runtime {
namespace {

std::optional<ServeSpec> parse(const std::string& text,
                               ServeConfigError* error = nullptr) {
  std::istringstream is(text);
  return parse_serve_config(is, error);
}

void expect_equal(const ServeSpec& a, const ServeSpec& b) {
  EXPECT_EQ(a.servers, b.servers);
  EXPECT_EQ(a.port, b.port);
  EXPECT_DOUBLE_EQ(a.tuning_interval, b.tuning_interval);
  EXPECT_DOUBLE_EQ(a.report_grace, b.report_grace);
  EXPECT_EQ(a.use_heartbeats, b.use_heartbeats);
  EXPECT_DOUBLE_EQ(a.heartbeat_interval, b.heartbeat_interval);
  EXPECT_DOUBLE_EQ(a.run_seconds, b.run_seconds);
  EXPECT_EQ(a.slow_factors, b.slow_factors);
  EXPECT_EQ(a.hash_seed, b.hash_seed);
}

TEST(ServeConfig, DefaultsRoundTrip) {
  ServeSpec spec;
  spec.slow_factors.resize(spec.servers, 1.0);
  std::ostringstream os;
  write_serve_config(os, spec);
  const auto parsed = parse(os.str());
  ASSERT_TRUE(parsed.has_value());
  expect_equal(*parsed, spec);
}

TEST(ServeConfig, CustomSpecRoundTrips) {
  ServeSpec spec;
  spec.servers = 5;
  spec.port = 0;
  spec.tuning_interval = 0.5;
  spec.report_grace = 0.125;
  spec.use_heartbeats = false;
  spec.heartbeat_interval = 0.0625;
  spec.run_seconds = 12.5;
  spec.slow_factors = {1.0, 1.0, 4.0, 1.0, 2.5};
  spec.hash_seed = 424242;
  std::ostringstream os;
  write_serve_config(os, spec);
  const auto parsed = parse(os.str());
  ASSERT_TRUE(parsed.has_value());
  expect_equal(*parsed, spec);
}

TEST(ServeConfig, CommentsAndBlanksIgnored) {
  const auto parsed = parse(
      "# anu_serve demo cluster\n"
      "\n"
      "servers 4   # four nodes\n"
      "heartbeats off\n"
      "\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->servers, 4u);
  EXPECT_FALSE(parsed->use_heartbeats);
  // Unspecified keys keep their defaults; slow factors pad to 1.0.
  EXPECT_EQ(parsed->port, ServeSpec{}.port);
  EXPECT_EQ(parsed->slow_factors, (std::vector<double>{1.0, 1.0, 1.0, 1.0}));
}

TEST(ServeConfig, ShortSlowFactorListPadsWithOnes) {
  const auto parsed = parse("servers 4\nslow_factors 2 3\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->slow_factors, (std::vector<double>{2.0, 3.0, 1.0, 1.0}));
}

TEST(ServeConfig, RejectsUnknownKeyWithLineNumber) {
  ServeConfigError error;
  const auto parsed = parse("servers 3\nbogus_key 1\n", &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_EQ(error.line, 2u);
  EXPECT_NE(error.message.find("bogus_key"), std::string::npos);
}

TEST(ServeConfig, RejectsZeroServers) {
  ServeConfigError error;
  EXPECT_FALSE(parse("servers 0\n", &error).has_value());
  EXPECT_EQ(error.line, 1u);
}

TEST(ServeConfig, RejectsPortOutOfRange) {
  ServeConfigError error;
  EXPECT_FALSE(parse("port 70000\n", &error).has_value());
  EXPECT_EQ(error.line, 1u);
}

TEST(ServeConfig, RejectsNonNumericValue) {
  ServeConfigError error;
  EXPECT_FALSE(parse("tuning_interval_s soon\n", &error).has_value());
  EXPECT_EQ(error.line, 1u);
  EXPECT_NE(error.message.find("tuning_interval_s"), std::string::npos);
}

TEST(ServeConfig, RejectsBadHeartbeatSwitch) {
  ServeConfigError error;
  EXPECT_FALSE(parse("heartbeats maybe\n", &error).has_value());
  EXPECT_EQ(error.line, 1u);
}

TEST(ServeConfig, RejectsNonPositiveIntervals) {
  EXPECT_FALSE(parse("tuning_interval_s 0\n").has_value());
  EXPECT_FALSE(parse("report_grace_s -1\n").has_value());
  EXPECT_FALSE(parse("heartbeat_interval_s 0\n").has_value());
  EXPECT_FALSE(parse("run_seconds -5\n").has_value());
  EXPECT_TRUE(parse("run_seconds 0\n").has_value());  // 0 = run until killed
}

TEST(ServeConfig, RejectsMoreSlowFactorsThanServers) {
  ServeConfigError error;
  EXPECT_FALSE(parse("servers 2\nslow_factors 1 1 1\n", &error).has_value());
  EXPECT_NE(error.message.find("slow_factors"), std::string::npos);
}

TEST(ServeConfig, EmptyInputYieldsDefaults) {
  const auto parsed = parse("");
  ASSERT_TRUE(parsed.has_value());
  ServeSpec expected;
  expected.slow_factors.resize(expected.servers, 1.0);
  expect_equal(*parsed, expected);
}

}  // namespace
}  // namespace anu::runtime
