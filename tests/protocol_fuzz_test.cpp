// Randomized protocol torture: random failure/recovery churn, random
// network conditions, both membership modes. After the churn quiets down,
// the survivors must agree on one replica and rounds must keep completing.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "proto/network.h"
#include "proto/protocol.h"
#include "sim/sim_clock.h"

namespace anu::proto {
namespace {

class ProtocolFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolFuzzTest, SurvivorsConvergeAfterChurn) {
  Xoshiro256 rng(GetParam());
  const std::size_t servers = 3 + rng.next_below(6);  // 3..8

  sim::Simulation sim;
  sim::SimClock clock(sim);
  NetworkConfig net_config;
  net_config.base_delay = 0.001 + rng.next_double() * 0.05;
  net_config.jitter = rng.next_double() * 0.5;
  net_config.seed = GetParam();
  Network net(clock, net_config, servers);

  ProtocolConfig config;
  config.use_heartbeats = rng.next_below(2) == 0;
  config.report_grace = 0.5 + rng.next_double();
  std::vector<double> speeds(servers);
  for (auto& s : speeds) s = 1.0 + static_cast<double>(rng.next_below(9));
  ProtocolCluster cluster(
      clock, net, config, servers, [&speeds](std::uint32_t s, UnitPoint share) {
        return balance::ServerReport{
            share.to_double() / speeds[s] * 50.0 + 1e-6,
            static_cast<std::size_t>(share.to_double() * 5e3) + 1};
      });
  std::vector<std::string> names;
  for (std::size_t i = 0; i < servers * 8; ++i) {
    names.push_back("fz/" + std::to_string(i));
  }
  cluster.register_file_sets(names);

  // Churn: random fail/recover pairs over the first 20 rounds, never
  // taking down more than servers-2 nodes at once.
  std::vector<bool> down(servers, false);
  std::size_t down_count = 0;
  double t = 60.0;
  for (int ev = 0; ev < 10; ++ev) {
    t += 30.0 + rng.next_double() * 200.0;
    const auto victim =
        static_cast<std::uint32_t>(rng.next_below(servers));
    if (!down[victim] && down_count + 2 <= servers) {
      down[victim] = true;
      ++down_count;
      sim.schedule_at(t, [&cluster, victim] { cluster.fail_server(victim); });
    } else if (down[victim]) {
      down[victim] = false;
      --down_count;
      sim.schedule_at(t,
                      [&cluster, victim] { cluster.recover_server(victim); });
    }
  }
  // Recover everyone still down well before the end.
  for (std::uint32_t s = 0; s < servers; ++s) {
    if (down[s]) {
      t += 50.0;
      sim.schedule_at(t, [&cluster, s] { cluster.recover_server(s); });
    }
  }

  // Run far enough past the last churn for detection + several rounds.
  sim.run_until(t + 120.0 * 8);
  EXPECT_TRUE(cluster.replicas_agree()) << "seed " << GetParam();
  EXPECT_GT(cluster.updates_published(), 10u);
  // Total share always sums to exactly half (check_invariants aborts
  // inside rebalance otherwise; spot-check the visible state too).
  double total = 0.0;
  for (std::uint32_t s = 0; s < servers; ++s) {
    total += cluster.map_of(0).share(ServerId(s)).to_double();
  }
  EXPECT_NEAR(total, 0.5, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace anu::proto
