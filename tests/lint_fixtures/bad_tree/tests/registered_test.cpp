// Lint fixture (never compiled): registered in the fixture CMakeLists.
int registered_marker() { return 0; }
