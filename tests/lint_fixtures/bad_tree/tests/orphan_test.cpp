// Lint fixture (never compiled): NOT registered in the fixture CMakeLists,
// so tools/anu_lint.py must flag it with [test-registration].
int orphan_marker() { return 0; }
