// Lint fixture (never compiled): pointer-keyed ordered container — the
// iteration order is the allocator's address order, i.e. ASLR. Must be
// flagged [ptr-key-container].
#include <map>

struct Server;

int bad_count() {
  std::map<Server*, int> by_server;
  return static_cast<int>(by_server.size());
}
