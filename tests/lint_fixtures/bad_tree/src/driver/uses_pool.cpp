// Lint fixture (never compiled): raw thread-pool use in result-affecting
// code — completion order is scheduling-dependent. Both the include and the
// call must be flagged [pool-order].
#include "common/thread_pool.h"

void bad_fanout() {
  anu::ThreadPool::global().submit([] {});
}
