// Lint fixture (never compiled): src/runtime is the one tree where reading
// real time is the point, so the wall-clock rule is waived there — nothing
// in this file may be flagged [wall-clock]. Every other rule still applies:
// the std::rand below must be flagged [raw-rng] to prove runtime/ is
// linted, not skipped.
#include <chrono>
#include <cstdlib>

double runtime_reads_real_time() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<double>(t.count()) + static_cast<double>(std::rand());
}
