// Lint fixture (never compiled): ambient RNG in result-affecting code.
// tools/anu_lint.py must flag both lines below with [raw-rng].
#include <cstdlib>
#include <random>

int bad_draw() {
  std::random_device seed_source;
  return std::rand() + static_cast<int>(seed_source());
}
