// Lint fixture (never compiled): a steady-clock read inside src/core.
// core/ sits behind the anu::Clock seam and must NEVER consult real time
// itself — even though the same call is fine one directory over in
// src/runtime. tools/anu_lint.py must flag both lines with [wall-clock].
#include <chrono>
#include <ctime>

double core_sneaks_a_clock() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<double>(clock()) + static_cast<double>(t.count());
}
