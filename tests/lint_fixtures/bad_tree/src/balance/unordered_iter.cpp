// Lint fixture (never compiled): unordered-container iteration feeding a
// result. The first loop must be flagged [unordered-iter]; the second is
// suppressed with a justified allow; the third's allow has no reason and
// must be flagged [bare-allow].
#include <unordered_map>

double bad_sum() {
  std::unordered_map<int, double> loads;
  double sum = 0.0;
  for (const auto& [server, load] : loads) {
    sum += load;  // order-dependent only via FP rounding, still banned
  }
  // anu-lint: allow(unordered-iter) summing into max() is order-invariant
  for (const auto& [server, load] : loads) {
    sum = sum > load ? sum : load;
  }
  // anu-lint: allow(unordered-iter)
  for (const auto& [server, load] : loads) {
    sum += load;
  }
  return sum;
}
