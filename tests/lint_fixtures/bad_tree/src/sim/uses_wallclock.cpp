// Lint fixture (never compiled): wall-clock reads in result-affecting code.
// tools/anu_lint.py must flag both lines below with [wall-clock].
#include <chrono>
#include <ctime>

double bad_now() {
  const auto t = std::chrono::system_clock::now();
  return static_cast<double>(time(nullptr)) +
         static_cast<double>(t.time_since_epoch().count());
}
