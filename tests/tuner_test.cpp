// Tests for the stateless delegate tuning rule.
#include "core/tuner.h"

#include <gtest/gtest.h>

namespace anu::core {
namespace {

balance::ServerReport report(double latency, std::size_t n) {
  return balance::ServerReport{latency, n};
}

TEST(Tuner, ScalesSlowDownAndFastUp) {
  // Paper §4: scale down above-average servers, up below-average ones.
  // Band disabled: this tests the raw scaling direction.
  TunerConfig config;
  config.dead_band = 0.0;
  std::vector<TunerInput> in(2);
  in[0] = {0.5, report(4.0, 100)};  // slow
  in[1] = {0.5, report(1.0, 100)};  // fast
  const auto out = run_delegate_round(in, config);
  EXPECT_LT(out.weights[0], 0.5);
  EXPECT_GT(out.weights[1], 0.5);
}

TEST(Tuner, DeadBandHoldsNearAverage) {
  TunerConfig config;
  config.dead_band = 1.0;
  std::vector<TunerInput> in(2);
  in[0] = {0.5, report(1.5, 100)};  // within 2x of the average
  in[1] = {0.5, report(1.0, 100)};
  const auto out = run_delegate_round(in, config);
  EXPECT_DOUBLE_EQ(out.weights[0], 0.5);
  EXPECT_DOUBLE_EQ(out.weights[1], 0.5);
}

TEST(Tuner, SystemAverageIsCompletionWeighted) {
  std::vector<TunerInput> in(2);
  in[0] = {0.5, report(4.0, 300)};
  in[1] = {0.5, report(1.0, 100)};
  const auto out = run_delegate_round(in, TunerConfig{});
  EXPECT_DOUBLE_EQ(out.system_average, (4.0 * 300 + 1.0 * 100) / 400.0);
}

TEST(Tuner, EqualLatencyIsFixedPoint) {
  std::vector<TunerInput> in(3);
  for (auto& i : in) i = {1.0 / 3.0, report(2.0, 50)};
  const auto out = run_delegate_round(in, TunerConfig{});
  for (double w : out.weights) EXPECT_NEAR(w, 1.0 / 3.0, 1e-12);
}

TEST(Tuner, GrowthAndShrinkAreCapped) {
  TunerConfig config;
  config.alpha = 1.0;
  config.growth_cap = 2.0;
  config.shrink_cap = 8.0;
  std::vector<TunerInput> in(2);
  in[0] = {0.5, report(1000.0, 100)};  // would shrink by ~500x uncapped
  in[1] = {0.5, report(0.001, 100)};   // would grow by ~1000x uncapped
  const auto out = run_delegate_round(in, config);
  EXPECT_GE(out.weights[0], 0.5 / 8.0 - 1e-12);
  EXPECT_LE(out.weights[1], 0.5 * 2.0 + 1e-12);
}

TEST(Tuner, DampingSlowsAdjustment) {
  std::vector<TunerInput> in(2);
  in[0] = {0.5, report(4.0, 100)};
  in[1] = {0.5, report(1.0, 100)};
  TunerConfig strong;
  strong.alpha = 1.0;
  strong.dead_band = 0.0;
  TunerConfig weak;
  weak.alpha = 0.25;
  weak.dead_band = 0.0;
  const auto fast = run_delegate_round(in, strong);
  const auto slow = run_delegate_round(in, weak);
  EXPECT_LT(fast.weights[0], slow.weights[0]);
  EXPECT_GT(fast.weights[1], slow.weights[1]);
}

TEST(Tuner, IdleServerGrowsModestly) {
  TunerConfig config;
  std::vector<TunerInput> in(2);
  in[0] = {0.4, report(2.0, 100)};
  in[1] = {0.1, report(0.0, 0)};  // idle: caught no file set
  const auto out = run_delegate_round(in, config);
  EXPECT_NEAR(out.weights[1], 0.1 * config.idle_growth, 1e-12);
}

TEST(Tuner, DownServerStaysAtZero) {
  std::vector<TunerInput> in(3);
  in[0] = {0.3, report(2.0, 10)};
  in[1] = {0.0, std::nullopt};  // down
  in[2] = {0.2, report(2.0, 10)};
  const auto out = run_delegate_round(in, TunerConfig{});
  EXPECT_EQ(out.weights[1], 0.0);
}

TEST(Tuner, FloorPreventsVanishingShare) {
  TunerConfig config;
  config.min_share_fraction = 0.01;
  std::vector<TunerInput> in(2);
  in[0] = {1e-9, report(100.0, 100)};  // tiny and slow: floored
  in[1] = {0.5, report(0.1, 100)};
  const auto out = run_delegate_round(in, config);
  const double floor = 0.01 * (1e-9 + 0.5) / 2.0;
  EXPECT_GE(out.weights[0], floor - 1e-18);
}

TEST(Tuner, IncompetentServerFlagged) {
  TunerConfig config;
  config.min_share_fraction = 0.5;  // aggressive floor to force the flag
  std::vector<TunerInput> in(2);
  in[0] = {0.01, report(100.0, 100)};  // slow even on a floor-sized share
  in[1] = {0.99, report(0.1, 100)};
  const auto out = run_delegate_round(in, config);
  ASSERT_EQ(out.incompetent.size(), 1u);
  EXPECT_EQ(out.incompetent[0], 0u);
}

TEST(Tuner, StatelessSameInputSameOutput) {
  // A newly elected delegate must reach the same configuration (§4).
  std::vector<TunerInput> in(3);
  in[0] = {0.2, report(3.0, 40)};
  in[1] = {0.2, report(1.0, 200)};
  in[2] = {0.1, report(0.0, 0)};
  const auto a = run_delegate_round(in, TunerConfig{});
  const auto b = run_delegate_round(in, TunerConfig{});
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.incompetent, b.incompetent);
}

TEST(Tuner, AllIdleRoundKeepsRelativeShares) {
  std::vector<TunerInput> in(2);
  in[0] = {0.3, report(0.0, 0)};
  in[1] = {0.2, report(0.0, 0)};
  const auto out = run_delegate_round(in, TunerConfig{});
  // Both grow by the same factor; normalization makes this a no-op.
  EXPECT_NEAR(out.weights[0] / out.weights[1], 1.5, 1e-12);
}

// Convergence property: iterating the rule on a fixed "latency model" where
// latency is proportional to share/capacity drives shares toward capacity
// proportions.
class TunerConvergenceTest : public ::testing::TestWithParam<double> {};

TEST_P(TunerConvergenceTest, SharesConvergeToCapacityRatios) {
  const double alpha = GetParam();
  TunerConfig config;
  config.alpha = alpha;
  config.dead_band = 0.0;  // exact convergence needs the band off
  const std::vector<double> capacity{1.0, 3.0, 5.0, 7.0, 9.0};
  std::vector<double> share(5, 0.2);
  for (int round = 0; round < 200; ++round) {
    std::vector<TunerInput> in(5);
    for (std::size_t s = 0; s < 5; ++s) {
      // Load proportional to share; latency ~ load / capacity.
      const double latency = share[s] / capacity[s];
      in[s] = {share[s],
               report(latency, static_cast<std::size_t>(share[s] * 1e4) + 1)};
    }
    auto out = run_delegate_round(in, config);
    double sum = 0.0;
    for (double w : out.weights) sum += w;
    for (std::size_t s = 0; s < 5; ++s) share[s] = out.weights[s] / sum;
  }
  const double total_cap = 25.0;
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_NEAR(share[s], capacity[s] / total_cap, 0.02)
        << "alpha=" << alpha << " server " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, TunerConvergenceTest,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace anu::core
