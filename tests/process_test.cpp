// Tests for the coroutine process layer of the DES kernel.
#include "sim/process.h"

#include <gtest/gtest.h>

#include <vector>

namespace anu::sim {
namespace {

TEST(Process, RunsSequentiallyAcrossDelays) {
  Simulation sim;
  std::vector<double> stamps;
  auto script = [](Simulation& s, std::vector<double>& out) -> Process {
    out.push_back(s.now());
    co_await delay(s, 1.5);
    out.push_back(s.now());
    co_await delay(s, 2.5);
    out.push_back(s.now());
  };
  spawn(script(sim, stamps));
  sim.run_to_completion();
  EXPECT_EQ(stamps, (std::vector<double>{0.0, 1.5, 4.0}));
}

TEST(Process, StartsImmediatelyUpToFirstSuspension) {
  Simulation sim;
  bool started = false;
  auto script = [](Simulation& s, bool& flag) -> Process {
    flag = true;
    co_await delay(s, 1.0);
  };
  spawn(script(sim, started));
  EXPECT_TRUE(started);  // before any event ran
  sim.run_to_completion();
}

TEST(Process, InterleavesWithPlainEvents) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  auto script = [](Simulation& s, std::vector<int>& out) -> Process {
    co_await delay(s, 2.0);
    out.push_back(2);
    co_await delay(s, 2.0);
    out.push_back(4);
  };
  spawn(script(sim, order));
  sim.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Process, ManyProcessesIndependent) {
  Simulation sim;
  int finished = 0;
  auto worker = [](Simulation& s, int id, int& done) -> Process {
    co_await delay(s, static_cast<double>(id));
    ++done;
  };
  for (int i = 1; i <= 50; ++i) spawn(worker(sim, i, finished));
  sim.run_to_completion();
  EXPECT_EQ(finished, 50);
  EXPECT_DOUBLE_EQ(sim.now(), 50.0);
}

TEST(Process, CanSpawnOtherProcesses) {
  Simulation sim;
  std::vector<double> stamps;
  auto child = [](Simulation& s, std::vector<double>& out) -> Process {
    co_await delay(s, 1.0);
    out.push_back(s.now());
  };
  auto parent = [&child](Simulation& s, std::vector<double>& out) -> Process {
    co_await delay(s, 5.0);
    spawn(child(s, out));
    co_await delay(s, 0.5);
    out.push_back(s.now());
  };
  spawn(parent(sim, stamps));
  sim.run_to_completion();
  EXPECT_EQ(stamps, (std::vector<double>{5.5, 6.0}));
}

TEST(Process, DelayUntilAbsoluteTime) {
  Simulation sim;
  double reached = -1.0;
  auto script = [](Simulation& s, double& out) -> Process {
    co_await delay(s, 2.0);
    co_await delay_until(s, 10.0);
    out = s.now();
  };
  spawn(script(sim, reached));
  sim.run_to_completion();
  EXPECT_DOUBLE_EQ(reached, 10.0);
}

TEST(Process, SuspendedProcessCleanedUpOnTeardown) {
  // A process parked on a delay beyond the horizon must be destroyed with
  // the simulation (the guard object's destructor observes it).
  struct Guard {
    bool* flag;
    ~Guard() { *flag = true; }
  };
  bool destroyed = false;
  {
    Simulation sim;
    auto script = [](Simulation& s, bool* flag) -> Process {
      const Guard guard{flag};
      co_await delay(s, 1e9);  // never fires
      (void)guard;
    };
    spawn(script(sim, &destroyed));
    sim.run_until(10.0);
    EXPECT_FALSE(destroyed);
  }  // simulation teardown drops the pending event -> frame destroyed
  EXPECT_TRUE(destroyed);
}

TEST(Process, MembershipScriptDrivesSideEffects) {
  // The intended use: timeline scripts with side effects at simulated
  // instants (see examples/control_plane.cpp).
  Simulation sim;
  std::vector<std::pair<double, int>> log;
  auto timeline = [](Simulation& s,
                     std::vector<std::pair<double, int>>& out) -> Process {
    co_await delay(s, 100.0);
    out.emplace_back(s.now(), 1);
    co_await delay(s, 200.0);
    out.emplace_back(s.now(), 2);
  };
  spawn(timeline(sim, log));
  sim.run_until(350.0);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log[0].first, 100.0);
  EXPECT_DOUBLE_EQ(log[1].first, 300.0);
}

}  // namespace
}  // namespace anu::sim
