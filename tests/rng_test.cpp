// Tests for the deterministic PRNG substrate.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace anu {
namespace {

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 0 from the published SplitMix64 algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DistinctSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Mix64, IsAPermutationOnSamples) {
  // Injective on a sample: no collisions among 10k consecutive inputs.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second);
  }
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(1234), b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, SeedsDecorrelated) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next()) ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, NextDoubleMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.005);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 rng(5);
  constexpr std::uint64_t kBuckets = 10;
  std::array<int, kBuckets> counts{};
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kN / kBuckets, kN / kBuckets * 0.1);
  }
}

TEST(Xoshiro256, JumpChangesStream) {
  Xoshiro256 a(9), b(9);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a.next() == b.next()) ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, SubstreamsIndependentPerIndex) {
  Xoshiro256 a = Xoshiro256::substream(42, 0);
  Xoshiro256 b = Xoshiro256::substream(42, 1);
  Xoshiro256 a2 = Xoshiro256::substream(42, 0);
  EXPECT_NE(a.next(), b.next());
  Xoshiro256 a3 = Xoshiro256::substream(42, 0);
  EXPECT_EQ(a2.next(), a3.next());
}

TEST(Xoshiro256, FillDoublesMatchesSequentialDraws) {
  // fill_doubles is the bulk fast path; it must consume the stream exactly
  // like a next_double() loop — including across odd sizes and when draws
  // continue after the batch — or seeded workloads change under batching.
  for (const std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
    Xoshiro256 batched(99);
    Xoshiro256 sequential(99);
    std::vector<double> out(n);
    batched.fill_doubles(out);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], sequential.next_double()) << "n=" << n << " i=" << i;
    }
    // The generators must be in identical states afterwards.
    EXPECT_EQ(batched.next(), sequential.next());
  }
}

class NextBelowBoundsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NextBelowBoundsTest, AllValuesReachableSmallBounds) {
  const std::uint64_t bound = GetParam();
  Xoshiro256 rng(bound * 77 + 1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.next_below(bound));
  EXPECT_EQ(seen.size(), bound);  // every residue hit for tiny bounds
}

INSTANTIATE_TEST_SUITE_P(SmallBounds, NextBelowBoundsTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace anu
