// Tests for the performance-consistency metric (paper §5.2.2).
#include "metrics/consistency.h"

#include <gtest/gtest.h>

namespace anu::metrics {
namespace {

RunningStats stats_with(double mean, std::size_t count) {
  RunningStats s;
  for (std::size_t i = 0; i < count; ++i) s.add(mean);
  return s;
}

TEST(Consistency, PerfectlyConsistentClusterHasZeroCv) {
  std::vector<RunningStats> servers(4, stats_with(2.0, 100));
  const auto report = performance_consistency(servers);
  EXPECT_DOUBLE_EQ(report.latency_cv, 0.0);
  EXPECT_DOUBLE_EQ(report.max_over_min, 1.0);
  EXPECT_EQ(report.servers_counted, 4u);
  EXPECT_EQ(report.servers_excluded, 0u);
}

TEST(Consistency, InconsistentClusterHasHighCv) {
  std::vector<RunningStats> servers{stats_with(1.0, 100),
                                    stats_with(10.0, 100)};
  const auto report = performance_consistency(servers);
  EXPECT_GT(report.latency_cv, 0.5);
  EXPECT_DOUBLE_EQ(report.max_over_min, 10.0);
}

TEST(Consistency, NearIdleServerExcluded) {
  // The paper's server 0: huge latency but 0.37% of requests — it "does not
  // introduce significant skew into system-wide performance consistency".
  std::vector<RunningStats> servers{
      stats_with(50.0, 3),  // ~0.3% of requests, slow
      stats_with(1.0, 500), stats_with(1.1, 480)};
  const auto report = performance_consistency(servers, 0.01);
  EXPECT_EQ(report.servers_counted, 2u);
  EXPECT_EQ(report.servers_excluded, 1u);
  EXPECT_NEAR(report.excluded_request_share, 3.0 / 983.0, 1e-12);
  EXPECT_LT(report.latency_cv, 0.1);
}

TEST(Consistency, FullyIdleServerIgnoredEntirely) {
  std::vector<RunningStats> servers{RunningStats{}, stats_with(1.0, 100)};
  const auto report = performance_consistency(servers);
  EXPECT_EQ(report.servers_counted, 1u);
  EXPECT_EQ(report.servers_excluded, 0u);
}

TEST(Consistency, EmptyClusterSafe) {
  const auto report = performance_consistency({});
  EXPECT_EQ(report.servers_counted, 0u);
  EXPECT_DOUBLE_EQ(report.latency_cv, 0.0);
}

TEST(Consistency, ThresholdZeroCountsEveryActiveServer) {
  std::vector<RunningStats> servers{stats_with(5.0, 1),
                                    stats_with(1.0, 1000)};
  const auto report = performance_consistency(servers, 0.0);
  EXPECT_EQ(report.servers_counted, 2u);
}

}  // namespace
}  // namespace anu::metrics
