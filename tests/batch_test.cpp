// Tests for the multi-seed batch runner: parallelism-independent
// (byte-identical) results, aggregate math, seed derivation, and the
// results-JSON schema (docs/ci.md).
#include "driver/batch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"

namespace anu::driver {
namespace {

BatchConfig small_workload_batch(std::size_t seeds, std::size_t jobs) {
  BatchConfig config;
  config.seeds = seeds;
  config.jobs = jobs;
  config.base_seed = 42;
  config.spec.synthetic.request_count = 600;
  config.spec.synthetic.file_set_count = 12;
  config.spec.synthetic.duration = 1200.0;
  return config;
}

TEST(SubstreamSeed, DistinctAcrossIndicesAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ULL, 1ULL, 42ULL, ~0ULL}) {
    for (std::uint64_t i = 0; i < 256; ++i) {
      seen.insert(substream_seed(base, i));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 256u);  // no collisions across the grid
}

TEST(SubstreamSeed, PureFunction) {
  EXPECT_EQ(substream_seed(7, 3), substream_seed(7, 3));
  EXPECT_NE(substream_seed(7, 3), substream_seed(7, 4));
  EXPECT_NE(substream_seed(7, 3), substream_seed(8, 3));
}

TEST(AggregateMetric, KnownValues) {
  const auto a = aggregate_metric({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(a.n, 8u);
  EXPECT_DOUBLE_EQ(a.mean, 5.0);
  EXPECT_NEAR(a.stddev, 2.13809, 1e-4);  // sample (n-1) stddev
  EXPECT_NEAR(a.ci95, 1.96 * a.stddev / std::sqrt(8.0), 1e-12);
  EXPECT_DOUBLE_EQ(a.min, 2.0);
  EXPECT_DOUBLE_EQ(a.max, 9.0);
}

TEST(AggregateMetric, DegenerateSizes) {
  EXPECT_EQ(aggregate_metric({}).n, 0u);
  const auto one = aggregate_metric({3.5});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 3.5);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);  // undefined -> reported as 0
  EXPECT_DOUBLE_EQ(one.ci95, 0.0);
}

TEST(Batch, ResultsAreByteIdenticalAcrossJobs) {
  // The acceptance contract behind `anu_sim --seeds N --jobs M --json-out`:
  // the serialized artifact is a pure function of (template, seeds,
  // base_seed) — the parallelism level must not change one byte.
  const auto sequential =
      run_experiment_batch(small_workload_batch(6, 1));
  const auto parallel = run_experiment_batch(small_workload_batch(6, 8));
  const auto cfg = small_workload_batch(6, 1);
  EXPECT_EQ(batch_results_json(cfg, sequential).dump(),
            batch_results_json(cfg, parallel).dump());
}

TEST(Batch, SeedsActuallyVaryTheRuns) {
  const auto result = run_experiment_batch(small_workload_batch(4, 0));
  ASSERT_EQ(result.per_seed.size(), 4u);
  std::set<double> latencies;
  for (const auto& m : result.per_seed) latencies.insert(m.mean_latency_s);
  EXPECT_GT(latencies.size(), 1u);  // distinct seeds -> distinct runs
  for (const auto& m : result.per_seed) {
    EXPECT_GT(m.requests_completed, 0.0);
    EXPECT_GT(m.mean_latency_s, 0.0);
  }
}

TEST(Batch, JsonSchemaShape) {
  const auto config = small_workload_batch(3, 0);
  const auto result = run_experiment_batch(config);
  const auto doc = batch_results_json(config, result);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("schema")->as_string(), "anu.batch_results");
  EXPECT_EQ(doc.find("schema_version")->as_number(), kBatchSchemaVersion);
  ASSERT_NE(doc.find("git"), nullptr);
  EXPECT_EQ(doc.at("config", "mode")->as_string(), "workload");
  EXPECT_EQ(doc.at("config", "seeds")->as_number(), 3);
  // The parallelism cap is an execution detail and must NOT leak into the
  // artifact — that is what makes --jobs unable to change the bytes.
  EXPECT_EQ(doc.at("config", "jobs"), nullptr);
  const obs::Json* mean_latency = doc.at("metrics", "mean_latency_s");
  ASSERT_NE(mean_latency, nullptr);
  for (const char* field : {"n", "mean", "stddev", "ci95", "min", "max"}) {
    EXPECT_NE(mean_latency->find(field), nullptr) << field;
  }
  ASSERT_TRUE(doc.find("per_seed")->is_array());
  EXPECT_EQ(doc.find("per_seed")->as_array().size(), 3u);
  // Round-trips through the strict parser.
  std::string error;
  EXPECT_TRUE(obs::Json::parse(doc.dump(), &error).has_value()) << error;
}

TEST(Batch, ChaosModeAggregatesViolations) {
  BatchConfig config;
  config.mode = BatchConfig::Mode::kChaos;
  config.seeds = 2;
  config.base_seed = 9;
  config.chaos.profile = ChaosProfile::kLight;
  config.chaos.requests = 800;
  config.chaos.file_sets = 10;
  const auto result = run_experiment_batch(config);
  ASSERT_EQ(result.per_seed.size(), 2u);
  bool found = false;
  for (const auto& [name, a] : result.metrics) {
    if (name == "violations") {
      found = true;
      EXPECT_EQ(a.n, 2u);
      EXPECT_EQ(a.max, 0.0) << "light chaos profile should converge";
    }
  }
  EXPECT_TRUE(found);
  // Chaos batches must also be parallelism-independent.
  BatchConfig parallel = config;
  parallel.jobs = 4;
  EXPECT_EQ(batch_results_json(config, result).dump(),
            batch_results_json(config, run_experiment_batch(parallel)).dump());
}

}  // namespace
}  // namespace anu::driver
