// Unit + end-to-end coverage for the randomized-dispatch baselines:
// JSQ(d), join-idle-queue, and redundancy-d (docs/strategies.md).
#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "balance/join_idle_queue.h"
#include "balance/jsq_d.h"
#include "balance/redundancy_d.h"
#include "common/rng.h"
#include "driver/balancer_factory.h"
#include "driver/experiment.h"
#include "workload/synthetic.h"

namespace anu::balance {
namespace {

/// Scriptable cluster state for driving strategies without a simulator.
class FakeClusterView final : public ClusterView {
 public:
  explicit FakeClusterView(std::size_t servers)
      : queues_(servers, 0), speeds_(servers, 1.0), up_(servers, true) {}

  std::size_t server_count() const override { return queues_.size(); }
  bool is_up(ServerId id) const override { return up_[id.value()]; }
  std::size_t queue_length(ServerId id) const override {
    return queues_[id.value()];
  }
  double speed(ServerId id) const override {
    return up_[id.value()] ? speeds_[id.value()] : 0.0;
  }

  std::vector<std::size_t> queues_;
  std::vector<double> speeds_;
  std::vector<bool> up_;
};

std::uint64_t counter(const BalanceCounters& counters, std::string_view name) {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "missing counter: " << name;
  return 0;
}

TEST(JsqD, DEqualsClusterSizeIsFullJsq) {
  // With d = k every dispatch scans all up servers, so the choice must be
  // the global queue minimum (ties: lower id — speeds are equal here).
  constexpr std::size_t kServers = 6;
  FakeClusterView view(kServers);
  JsqDConfig config;
  config.d = kServers;
  JsqDBalancer jsq(config, kServers);
  jsq.bind_cluster(&view);

  Xoshiro256 rng(7);
  for (int round = 0; round < 200; ++round) {
    for (auto& q : view.queues_) q = rng.next_below(10);
    std::size_t expect = 0;
    for (std::size_t s = 1; s < kServers; ++s) {
      if (view.queues_[s] < view.queues_[expect]) expect = s;
    }
    const DispatchDecision decision = jsq.dispatch(FileSetId(0), 1.0);
    ASSERT_EQ(decision.count, 1u);
    EXPECT_EQ(decision.targets[0].value(), expect) << "round " << round;
  }
  EXPECT_EQ(counter(jsq.counters(), "dispatches"), 200u);
  EXPECT_EQ(counter(jsq.counters(), "samples_drawn"), 200u * kServers);
  EXPECT_EQ(counter(jsq.counters(), "full_scans"), 200u);
}

TEST(JsqD, SpeedAwareRanksByDrainTime) {
  // Server 0: 3 queued at speed 9 (drain 0.33); server 1: 1 queued at
  // speed 1 (drain 1.0). Queue-blind JSQ picks 1, drain-time JSQ picks 0.
  FakeClusterView view(2);
  view.queues_ = {3, 1};
  view.speeds_ = {9.0, 1.0};

  JsqDConfig blind;
  blind.d = 2;
  JsqDBalancer jsq_blind(blind, 2);
  jsq_blind.bind_cluster(&view);
  EXPECT_EQ(jsq_blind.dispatch(FileSetId(0), 1.0).targets[0].value(), 1u);

  JsqDConfig aware = blind;
  aware.speed_aware = true;
  JsqDBalancer jsq_aware(aware, 2);
  jsq_aware.bind_cluster(&view);
  EXPECT_EQ(jsq_aware.dispatch(FileSetId(0), 1.0).targets[0].value(), 0u);
}

TEST(JsqD, NeverPicksDownServer) {
  FakeClusterView view(4);
  JsqDConfig config;
  config.d = 2;
  JsqDBalancer jsq(config, 4);
  jsq.bind_cluster(&view);
  view.up_[2] = false;
  (void)jsq.on_server_failed(ServerId(2));
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(jsq.dispatch(FileSetId(0), 1.0).targets[0].value(), 2u);
  }
}

TEST(Jiq, NeverDispatchesToBusyServerWhileTokensExist) {
  constexpr std::size_t kServers = 5;
  FakeClusterView view(kServers);
  JoinIdleQueueBalancer jiq(JiqConfig{}, kServers);
  jiq.bind_cluster(&view);

  // Busy-up some servers; their pooled tokens are now stale. As long as
  // any genuinely idle server holds a token, a busy server must never win.
  Xoshiro256 rng(11);
  for (int round = 0; round < 300; ++round) {
    for (std::size_t s = 0; s < kServers; ++s) {
      view.queues_[s] = rng.next_below(3);  // 0 = idle
    }
    bool any_idle_token = false;
    for (std::size_t s = 0; s < kServers; ++s) {
      if (view.queues_[s] == 0) {
        // server reports its drain
        jiq.on_server_idle(ServerId(static_cast<std::uint32_t>(s)));
        any_idle_token = true;
      }
    }
    const DispatchDecision decision = jiq.dispatch(FileSetId(0), 1.0);
    ASSERT_EQ(decision.count, 1u);
    if (any_idle_token) {
      EXPECT_EQ(view.queues_[decision.targets[0].value()], 0u)
          << "round " << round;
    }
    view.queues_[decision.targets[0].value()]++;  // the dispatch lands
  }
  const auto counters = jiq.counters();
  EXPECT_EQ(counter(counters, "idle_dispatches") +
                counter(counters, "fallback_dispatches"),
            300u);
}

TEST(Jiq, TokenPolicies) {
  // Fresh pool holds every server in id order; speeds 1,3,5,7,9.
  FakeClusterView view(5);
  view.speeds_ = {1.0, 3.0, 5.0, 7.0, 9.0};

  JiqConfig fifo;  // default policy
  JoinIdleQueueBalancer jiq_fifo(fifo, 5);
  jiq_fifo.bind_cluster(&view);
  EXPECT_EQ(jiq_fifo.dispatch(FileSetId(0), 1.0).targets[0].value(), 0u);

  JiqConfig lifo;
  lifo.policy = JiqConfig::TokenPolicy::kLifo;
  JoinIdleQueueBalancer jiq_lifo(lifo, 5);
  jiq_lifo.bind_cluster(&view);
  EXPECT_EQ(jiq_lifo.dispatch(FileSetId(0), 1.0).targets[0].value(), 4u);

  JiqConfig fastest;
  fastest.policy = JiqConfig::TokenPolicy::kFastest;
  JoinIdleQueueBalancer jiq_fastest(fastest, 5);
  jiq_fastest.bind_cluster(&view);
  EXPECT_EQ(jiq_fastest.dispatch(FileSetId(0), 1.0).targets[0].value(), 4u);
}

TEST(Jiq, StaleTokensAreDroppedAndCounted) {
  FakeClusterView view(2);
  JoinIdleQueueBalancer jiq(JiqConfig{}, 2);
  jiq.bind_cluster(&view);
  // Server 0 holds a token but is busy: the token is stale, server 1's
  // token wins.
  view.queues_ = {4, 0};
  EXPECT_EQ(jiq.dispatch(FileSetId(0), 1.0).targets[0].value(), 1u);
  EXPECT_EQ(counter(jiq.counters(), "tokens_stale"), 1u);
  EXPECT_EQ(counter(jiq.counters(), "idle_dispatches"), 1u);
}

TEST(Jiq, EmptyPoolFallsBack) {
  FakeClusterView view(3);
  JoinIdleQueueBalancer jiq(JiqConfig{}, 3);
  jiq.bind_cluster(&view);
  for (auto& q : view.queues_) q = 2;  // everyone busy: all tokens stale
  for (int i = 0; i < 5; ++i) (void)jiq.dispatch(FileSetId(0), 1.0);
  EXPECT_EQ(counter(jiq.counters(), "idle_dispatches"), 0u);
  EXPECT_EQ(counter(jiq.counters(), "fallback_dispatches"), 5u);
  EXPECT_EQ(counter(jiq.counters(), "tokens_stale"), 3u);
}

TEST(Jiq, FailedServerLosesItsToken) {
  FakeClusterView view(2);
  JoinIdleQueueBalancer jiq(JiqConfig{}, 2);
  jiq.bind_cluster(&view);
  view.up_[0] = false;
  (void)jiq.on_server_failed(ServerId(0));
  EXPECT_EQ(jiq.pool_size(), 1u);
  EXPECT_EQ(jiq.dispatch(FileSetId(0), 1.0).targets[0].value(), 1u);
}

TEST(RedundancyD, TargetsAreDistinctAndClamped) {
  FakeClusterView view(5);
  RedundancyDConfig config;
  config.d = 3;
  config.cancel = RedundancyDConfig::CancelMode::kOnStart;
  RedundancyDBalancer red(config, 5);
  red.bind_cluster(&view);

  for (int i = 0; i < 100; ++i) {
    const DispatchDecision decision = red.dispatch(FileSetId(0), 1.0);
    ASSERT_EQ(decision.count, 3u);
    EXPECT_EQ(decision.cancel, DispatchDecision::Cancel::kOnStart);
    for (std::uint32_t a = 0; a < decision.count; ++a) {
      for (std::uint32_t b = a + 1; b < decision.count; ++b) {
        EXPECT_NE(decision.targets[a], decision.targets[b]);
      }
    }
  }

  // Fewer up servers than d: the decision clamps to every up server.
  for (std::uint32_t s = 2; s < 5; ++s) {
    view.up_[s] = false;
    (void)red.on_server_failed(ServerId(s));
  }
  const DispatchDecision clamped = red.dispatch(FileSetId(0), 1.0);
  EXPECT_EQ(clamped.count, 2u);
}

// --- end-to-end: the driver's per-request path over a real cluster ---

workload::Workload small_workload() {
  workload::SyntheticConfig config;
  config.seed = 99;
  config.file_set_count = 20;
  config.request_count = 3000;
  config.duration = 1200.0;
  config.target_utilization = 0.6;
  config.cluster_capacity = 25.0;
  return workload::make_synthetic_workload(config);
}

driver::ExperimentConfig small_experiment() {
  driver::ExperimentConfig config;
  config.cluster.server_speeds = {1.0, 3.0, 5.0, 7.0, 9.0};
  // Generous horizon so every replica race settles before the run ends —
  // the counter identities below are exact only on a drained cluster.
  config.horizon = 20000.0;
  return config;
}

driver::ExperimentResult run_system(driver::SystemKind kind,
                                    driver::SystemConfig system = {}) {
  system.kind = kind;
  const auto workload = small_workload();
  auto balancer = driver::make_balancer(system, 5);
  return driver::run_experiment(small_experiment(), workload, *balancer);
}

TEST(DispatchEndToEnd, JsqCompletesEverythingWithoutMoves) {
  const auto result = run_system(driver::SystemKind::kJsqD);
  EXPECT_EQ(result.requests_completed, 3000u);
  EXPECT_TRUE(result.balance.per_request);
  EXPECT_EQ(result.balance.strategy, "jsq-d");
  EXPECT_EQ(result.total_moved, 0u);
  EXPECT_TRUE(result.shares_over_time.empty());
  EXPECT_EQ(counter(result.balance.counters, "dispatches"), 3000u);
}

TEST(DispatchEndToEnd, JiqAccountsEveryDispatch) {
  const auto result = run_system(driver::SystemKind::kJoinIdleQueue);
  EXPECT_EQ(result.requests_completed, 3000u);
  EXPECT_EQ(result.balance.strategy, "jiq");
  EXPECT_EQ(counter(result.balance.counters, "idle_dispatches") +
                counter(result.balance.counters, "fallback_dispatches"),
            3000u);
}

TEST(DispatchEndToEnd, RedundancyCancelOnCompleteSettlesEveryRace) {
  driver::SystemConfig system;
  system.red.d = 3;
  const auto result = run_system(driver::SystemKind::kRedundancyD, system);
  EXPECT_EQ(result.requests_completed, 3000u);
  const auto& c = result.balance.counters;
  const std::uint64_t submitted = counter(c, "replicas_submitted");
  const std::uint64_t queued = counter(c, "replicas_cancelled_queued");
  const std::uint64_t in_service = counter(c, "replicas_cancelled_in_service");
  // Exactly one winner per request; with cancel-on-complete nothing is
  // elided at submit time, so every race submits all 3 replicas and
  // cancels d-1 = 2 of them.
  EXPECT_EQ(submitted, 3u * 3000u);
  EXPECT_EQ(counter(c, "replicas_elided"), 0u);
  EXPECT_EQ(queued + in_service, submitted - 3000u);
  EXPECT_EQ(counter(c, "replicas_rescued"), 0u);
}

TEST(DispatchEndToEnd, RedundancyCancelOnStartWastesNoService) {
  driver::SystemConfig system;
  system.red.d = 3;
  system.red.cancel = RedundancyDConfig::CancelMode::kOnStart;
  const auto result = run_system(driver::SystemKind::kRedundancyD, system);
  EXPECT_EQ(result.requests_completed, 3000u);
  const auto& c = result.balance.counters;
  // First replica to enter service kills its siblings before they start;
  // no service capacity is ever spent twice on one request.
  EXPECT_EQ(counter(c, "replicas_cancelled_in_service"), 0u);
  // Replicas aimed at an idle server start synchronously and elide the
  // rest of their group's submissions.
  EXPECT_GT(counter(c, "replicas_elided"), 0u);
  const std::uint64_t submitted = counter(c, "replicas_submitted");
  EXPECT_EQ(counter(c, "replicas_cancelled_queued"), submitted - 3000u);
}

TEST(DispatchEndToEnd, SurvivesServerFailure) {
  // A dispatch strategy must route around a dead server: requests queued
  // there are rescued, later arrivals avoid it.
  for (const driver::SystemKind kind :
       {driver::SystemKind::kJsqD, driver::SystemKind::kJoinIdleQueue,
        driver::SystemKind::kRedundancyD}) {
    driver::SystemConfig system;
    system.kind = kind;
    const auto workload = small_workload();
    auto config = small_experiment();
    config.failures.add(
        {300.0, cluster::MembershipAction::kFail, ServerId(4), 0.0});
    auto balancer = driver::make_balancer(system, 5);
    const auto result = driver::run_experiment(config, workload, *balancer);
    EXPECT_GT(result.requests_completed, 2990u) << driver::system_label(kind);
  }
}

}  // namespace
}  // namespace anu::balance
