// FailureSchedule: scripted ordering rules, the random generators'
// guarantees (disjoint rounds, honored windows, determinism), and the
// degrade/restore action round-trip.
#include "cluster/failure_schedule.h"

#include <gtest/gtest.h>

#include <string>

namespace anu::cluster {
namespace {

TEST(ActionName, CoversEveryAction) {
  EXPECT_STREQ(action_name(MembershipAction::kFail), "fail");
  EXPECT_STREQ(action_name(MembershipAction::kRecover), "recover");
  EXPECT_STREQ(action_name(MembershipAction::kAdd), "add");
  EXPECT_STREQ(action_name(MembershipAction::kRemove), "remove");
  EXPECT_STREQ(action_name(MembershipAction::kDegrade), "degrade");
  EXPECT_STREQ(action_name(MembershipAction::kRestore), "restore");
}

TEST(RandomFailRecover, RoundsAreDisjointAndDowntimeHonored) {
  const SimTime horizon = 1000.0;
  const SimTime downtime = 40.0;
  const std::size_t rounds = 5;
  const auto schedule = FailureSchedule::random_fail_recover(
      123, 4, rounds, horizon, downtime);
  const auto& events = schedule.events();
  ASSERT_EQ(events.size(), rounds * 2);
  const SimTime window = horizon / static_cast<double>(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    const MembershipEvent& fail = events[r * 2];
    const MembershipEvent& recover = events[r * 2 + 1];
    EXPECT_EQ(fail.action, MembershipAction::kFail);
    EXPECT_EQ(recover.action, MembershipAction::kRecover);
    EXPECT_EQ(fail.server.value(), recover.server.value());
    // The server is down exactly `downtime`, wholly inside its round's
    // window — so no two rounds overlap and at most one server is down.
    EXPECT_NEAR(recover.when - fail.when, downtime, 1e-6);
    EXPECT_GE(fail.when, window * static_cast<double>(r));
    EXPECT_LE(recover.when, window * static_cast<double>(r + 1));
    EXPECT_LT(fail.server.value(), 4u);
  }
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].when, events[i].when);
  }
}

TEST(RandomFailRecover, DeterministicInSeed) {
  const auto a = FailureSchedule::random_fail_recover(7, 5, 4, 800.0, 30.0);
  const auto b = FailureSchedule::random_fail_recover(7, 5, 4, 800.0, 30.0);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].when, b.events()[i].when);
    EXPECT_EQ(a.events()[i].server.value(), b.events()[i].server.value());
    EXPECT_EQ(a.events()[i].action, b.events()[i].action);
  }
  const auto c = FailureSchedule::random_fail_recover(8, 5, 4, 800.0, 30.0);
  bool differs = false;
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    if (a.events()[i].when != c.events()[i].when ||
        a.events()[i].server.value() != c.events()[i].server.value()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(RandomDegrade, PairsDegradeWithRestoreInsideWindows) {
  const SimTime horizon = 900.0;
  const SimTime duration = 60.0;
  const std::size_t rounds = 3;
  const auto schedule = FailureSchedule::random_degrade(
      42, 5, rounds, horizon, duration, 0.2, 0.6);
  const auto& events = schedule.events();
  ASSERT_EQ(events.size(), rounds * 2);
  const SimTime window = horizon / static_cast<double>(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    const MembershipEvent& degrade = events[r * 2];
    const MembershipEvent& restore = events[r * 2 + 1];
    EXPECT_EQ(degrade.action, MembershipAction::kDegrade);
    EXPECT_EQ(restore.action, MembershipAction::kRestore);
    EXPECT_EQ(degrade.server.value(), restore.server.value());
    EXPECT_NEAR(restore.when - degrade.when, duration, 1e-6);
    EXPECT_GE(degrade.when, window * static_cast<double>(r));
    EXPECT_LE(restore.when, window * static_cast<double>(r + 1));
    EXPECT_GE(degrade.factor, 0.2);
    EXPECT_LE(degrade.factor, 0.6);
  }
}

TEST(RandomDegrade, DeterministicInSeed) {
  const auto a = FailureSchedule::random_degrade(3, 4, 2, 600.0, 50.0,
                                                 0.3, 0.5);
  const auto b = FailureSchedule::random_degrade(3, 4, 2, 600.0, 50.0,
                                                 0.3, 0.5);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].when, b.events()[i].when);
    EXPECT_DOUBLE_EQ(a.events()[i].factor, b.events()[i].factor);
    EXPECT_EQ(a.events()[i].server.value(), b.events()[i].server.value());
  }
}

TEST(FailureSchedule, RejectsOutOfOrderAdds) {
  FailureSchedule schedule;
  schedule.add({100.0, MembershipAction::kFail, ServerId(0), 0.0});
  schedule.add({100.0, MembershipAction::kDegrade, ServerId(1), 0.0});
  EXPECT_DEATH(
      schedule.add({50.0, MembershipAction::kRecover, ServerId(0), 0.0}),
      "");
}

}  // namespace
}  // namespace anu::cluster
