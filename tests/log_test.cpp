// Tests for the leveled logger's pluggable sink: swap semantics, level
// filtering, truncation, and the sink-swap-vs-concurrent-logging race the
// thread-safety annotations pin down (ctest label: pool, so the TSan CI
// leg replays the race detection — docs/static-analysis.md).
#include "common/log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace anu {
namespace {

/// RAII: restores the stderr default and the prior level on scope exit so
/// test order can't leak a capture sink into other suites.
class ScopedSink {
 public:
  explicit ScopedSink(LogSink sink) : level_(log_level()) {
    set_log_sink(std::move(sink));
  }
  ~ScopedSink() {
    set_log_sink({});
    set_log_level(level_);
  }

 private:
  LogLevel level_;
};

TEST(Log, SinkReceivesFormattedMessageAndLevel) {
  std::vector<std::pair<LogLevel, std::string>> got;
  ScopedSink guard([&](LogLevel level, std::string_view msg) {
    got.emplace_back(level, std::string(msg));
  });
  set_log_level(LogLevel::kDebug);
  ANU_LOG_WARN("answer=%d", 42);
  ANU_LOG_DEBUG("pi=%.2f", 3.14159);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, LogLevel::kWarn);
  EXPECT_EQ(got[0].second, "answer=42");
  EXPECT_EQ(got[1].first, LogLevel::kDebug);
  EXPECT_EQ(got[1].second, "pi=3.14");
}

TEST(Log, LevelThresholdDropsBelow) {
  std::atomic<int> calls{0};
  ScopedSink guard([&](LogLevel, std::string_view) { ++calls; });
  set_log_level(LogLevel::kError);
  ANU_LOG_DEBUG("dropped");
  ANU_LOG_INFO("dropped");
  ANU_LOG_WARN("dropped");
  ANU_LOG_ERROR("kept");
  EXPECT_EQ(calls.load(), 1);
}

TEST(Log, LongMessagesTruncateInsteadOfOverflowing) {
  std::string got;
  ScopedSink guard(
      [&](LogLevel, std::string_view msg) { got = std::string(msg); });
  set_log_level(LogLevel::kInfo);
  const std::string big(4096, 'x');
  ANU_LOG_WARN("%s", big.c_str());
  EXPECT_LT(got.size(), 1024u);  // internal buffer bound (log.h)
  EXPECT_EQ(got.substr(0, 16), std::string(16, 'x'));
}

TEST(Log, EmptySinkRestoresStderrDefault) {
  std::atomic<int> calls{0};
  {
    ScopedSink guard([&](LogLevel, std::string_view) { ++calls; });
    set_log_level(LogLevel::kInfo);
    ANU_LOG_INFO("captured");
    EXPECT_EQ(calls.load(), 1);
  }
  // Post-restore messages go to stderr, not the destroyed capture sink.
  ANU_LOG_ERROR("to stderr, must not touch calls");
  EXPECT_EQ(calls.load(), 1);
}

// The race the annotations guard: swapping the sink while other threads
// log. The mutex serializes sink invocation with the swap, so a sink can
// never be destroyed mid-call; every message lands in exactly one sink
// generation. TSan (check.sh tsan) verifies the absence of a data race on
// the sink object itself. The sink is installed before the loggers start
// and the swap loop runs until messages have demonstrably flowed, so the
// test is schedule-independent (it must pass on a single-CPU host where
// the main thread can run far ahead of the loggers).
TEST(Log, ConcurrentLoggingDuringSinkSwapIsRaceFree) {
  std::atomic<std::uint64_t> delivered{0};
  const auto counting = [&delivered](LogLevel, std::string_view) {
    ++delivered;
  };
  set_log_level(LogLevel::kInfo);
  set_log_sink(counting);
  std::atomic<bool> stop{false};
  std::vector<std::thread> loggers;
  loggers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    loggers.emplace_back([&stop, t] {
      for (int i = 0;
           !stop.load(std::memory_order_relaxed) && i < 20000; ++i) {
        ANU_LOG_INFO("thread %d message %d", t, i);
      }
    });
  }
  // Keep re-installing the (equivalent) sink while the loggers run; the
  // yield is what lets logger threads interleave with the swaps on a
  // single-CPU host. Terminates: every message hits a counting sink and
  // the loggers can emit up to 80000 before their own bound.
  while (delivered.load(std::memory_order_relaxed) < 2000) {
    set_log_sink(counting);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : loggers) t.join();
  set_log_sink({});
  set_log_level(LogLevel::kWarn);
  EXPECT_GE(delivered.load(), 2000u);
}

}  // namespace
}  // namespace anu
