// Tests for delegate election and stateless failover (paper §4).
#include "core/delegate.h"

#include <gtest/gtest.h>

#include "core/anu_balancer.h"
#include "core/tuner.h"

namespace anu::core {
namespace {

TEST(DelegateElection, LowestUpServerIsDelegate) {
  DelegateElection election(5);
  EXPECT_EQ(election.current(), ServerId(0));
  EXPECT_TRUE(election.is_delegate(ServerId(0)));
  EXPECT_FALSE(election.is_delegate(ServerId(1)));
}

TEST(DelegateElection, FailoverToNextServer) {
  DelegateElection election(5);
  election.on_server_failed(ServerId(0));
  EXPECT_EQ(election.current(), ServerId(1));
  election.on_server_failed(ServerId(1));
  EXPECT_EQ(election.current(), ServerId(2));
}

TEST(DelegateElection, RecoveryReclaimsDelegacy) {
  DelegateElection election(3);
  election.on_server_failed(ServerId(0));
  EXPECT_EQ(election.current(), ServerId(1));
  election.on_server_recovered(ServerId(0));
  EXPECT_EQ(election.current(), ServerId(0));
}

TEST(DelegateElection, AllDownYieldsInvalid) {
  DelegateElection election(2);
  election.on_server_failed(ServerId(0));
  election.on_server_failed(ServerId(1));
  EXPECT_FALSE(election.current().valid());
  EXPECT_EQ(election.up_count(), 0u);
}

TEST(DelegateElection, AddedServerJoinsElectorate) {
  DelegateElection election(1);
  election.on_server_added();
  EXPECT_EQ(election.up_count(), 2u);
  election.on_server_failed(ServerId(0));
  EXPECT_EQ(election.current(), ServerId(1));
}

TEST(DelegateFailover, NewDelegateComputesIdenticalConfiguration) {
  // §4: "If the delegate fails, the next elected delegate runs the same
  // protocol with the same information." The delegate round is a pure
  // function, so two delegates fed the same reports must emit the same
  // decision — byte for byte.
  std::vector<TunerInput> reports(5);
  for (std::size_t s = 0; s < 5; ++s) {
    reports[s] = {0.2,
                  balance::ServerReport{0.5 + static_cast<double>(s), 40}};
  }
  const TunerConfig config;
  const auto by_old_delegate = run_delegate_round(reports, config);
  // Delegate crashes; server 1 takes over with the same reports.
  const auto by_new_delegate = run_delegate_round(reports, config);
  EXPECT_EQ(by_old_delegate.weights, by_new_delegate.weights);
  EXPECT_EQ(by_old_delegate.system_average, by_new_delegate.system_average);
  EXPECT_EQ(by_old_delegate.incompetent, by_new_delegate.incompetent);
}

TEST(DelegateFailover, BalancersConvergeIdenticallyUnderFailover) {
  // Two replicas of the balancer state machine fed identical reports reach
  // identical region maps regardless of which node runs the rounds.
  AnuBalancer a(AnuConfig{}, 5), b(AnuConfig{}, 5);
  std::vector<workload::FileSet> fs;
  for (std::uint32_t i = 0; i < 20; ++i) {
    fs.push_back({FileSetId(i), "d/" + std::to_string(i), 1.0});
  }
  a.register_file_sets(fs);
  b.register_file_sets(fs);
  for (int round = 0; round < 10; ++round) {
    for (std::uint32_t s = 0; s < 5; ++s) {
      const balance::ServerReport report{1.0 + s * 0.7, 30};
      a.report(ServerId(s), report);
      b.report(ServerId(s), report);
    }
    a.tune();
    b.tune();
  }
  for (std::uint32_t s = 0; s < 5; ++s) {
    EXPECT_EQ(a.region_map().share(ServerId(s)).raw(),
              b.region_map().share(ServerId(s)).raw());
  }
}

}  // namespace
}  // namespace anu::core
