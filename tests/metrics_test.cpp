// Tests for latency and movement trackers.
#include <gtest/gtest.h>

#include "metrics/latency_tracker.h"
#include "metrics/movement_tracker.h"

namespace anu::metrics {
namespace {

cluster::Completion completion(std::uint32_t server, double arrival,
                               double done) {
  return cluster::Completion{ServerId(server), FileSetId(0), arrival, done};
}

TEST(LatencyTracker, AggregatesAcrossServers) {
  LatencyTracker tracker(2);
  tracker.observe(completion(0, 0.0, 1.0));  // latency 1
  tracker.observe(completion(1, 0.0, 3.0));  // latency 3
  EXPECT_EQ(tracker.total_served(), 2u);
  EXPECT_DOUBLE_EQ(tracker.aggregate().mean(), 2.0);
  EXPECT_DOUBLE_EQ(tracker.server_stats(ServerId(0)).mean(), 1.0);
  EXPECT_DOUBLE_EQ(tracker.server_stats(ServerId(1)).mean(), 3.0);
  EXPECT_EQ(tracker.served(ServerId(0)), 1u);
}

TEST(LatencyTracker, SeriesRecordsCompletionTimes) {
  LatencyTracker tracker(1);
  tracker.observe(completion(0, 0.0, 1.0));
  tracker.observe(completion(0, 1.0, 4.0));
  const auto& series = tracker.server_series(ServerId(0));
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.points()[1].time, 4.0);
  EXPECT_DOUBLE_EQ(series.points()[1].value, 3.0);
}

TEST(LatencyTracker, AddServerExtends) {
  LatencyTracker tracker(1);
  tracker.add_server();
  tracker.observe(completion(1, 0.0, 2.0));
  EXPECT_EQ(tracker.served(ServerId(1)), 1u);
}

balance::RebalanceResult moves_of(std::initializer_list<std::uint32_t> sets) {
  balance::RebalanceResult result;
  for (auto fs : sets) {
    result.moves.push_back(
        {FileSetId(fs), ServerId(0), ServerId(1)});
  }
  return result;
}

TEST(MovementTracker, CountsAndWeights) {
  MovementTracker tracker({1.0, 2.0, 3.0, 4.0});  // total weight 10
  tracker.record(10.0, moves_of({0, 2}));          // weight 4
  ASSERT_EQ(tracker.rounds().size(), 1u);
  EXPECT_EQ(tracker.rounds()[0].moved, 2u);
  EXPECT_DOUBLE_EQ(tracker.rounds()[0].moved_weight, 4.0);
  EXPECT_DOUBLE_EQ(tracker.percent_workload_moved(), 40.0);
}

TEST(MovementTracker, CumulativeAcrossRounds) {
  MovementTracker tracker({1.0, 1.0});
  tracker.record(1.0, moves_of({0}));
  tracker.record(2.0, moves_of({1}));
  tracker.record(3.0, {});  // quiet round
  EXPECT_EQ(tracker.total_moved(), 2u);
  EXPECT_DOUBLE_EQ(tracker.percent_workload_moved(), 100.0);
  EXPECT_EQ(tracker.rounds()[2].moved, 0u);
  EXPECT_EQ(tracker.rounds()[2].cumulative, 2u);
}

TEST(MovementTracker, RepeatMovesCountTwice) {
  MovementTracker tracker({5.0, 5.0});
  tracker.record(1.0, moves_of({0}));
  tracker.record(2.0, moves_of({0}));
  EXPECT_DOUBLE_EQ(tracker.percent_workload_moved(), 100.0);
}

TEST(MovementTracker, EmptyWeightsSafe) {
  MovementTracker tracker({});
  tracker.record(0.0, {});
  EXPECT_DOUBLE_EQ(tracker.percent_workload_moved(), 0.0);
}

}  // namespace
}  // namespace anu::metrics
