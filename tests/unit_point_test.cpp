// Unit tests for the fixed-point unit-interval arithmetic.
#include "common/unit_point.h"

#include <gtest/gtest.h>

namespace anu {
namespace {

TEST(UnitPoint, RawRoundTrip) {
  const auto p = UnitPoint::from_raw(12345);
  EXPECT_EQ(p.raw(), 12345u);
}

TEST(UnitPoint, OneIsRepresentable) {
  EXPECT_EQ(UnitPoint::one().raw(), UnitPoint::kOneRaw);
  EXPECT_DOUBLE_EQ(UnitPoint::one().to_double(), 1.0);
}

TEST(UnitPoint, FromDoubleSaturates) {
  EXPECT_EQ(UnitPoint::from_double(-0.5), UnitPoint::zero());
  EXPECT_EQ(UnitPoint::from_double(1.5), UnitPoint::one());
}

TEST(UnitPoint, FromDoubleMidpoint) {
  EXPECT_EQ(UnitPoint::from_double(0.5).raw(), UnitPoint::kOneRaw / 2);
}

TEST(UnitPoint, FromHashUsesTopBits) {
  EXPECT_EQ(UnitPoint::from_hash(~0ull).raw(), (~0ull) >> 1);
  EXPECT_LT(UnitPoint::from_hash(~0ull), UnitPoint::one());
}

TEST(UnitPoint, PlusMinus) {
  const auto a = UnitPoint::from_double(0.25);
  const auto b = UnitPoint::from_double(0.5);
  EXPECT_EQ(a.plus(a), b);
  EXPECT_EQ(b.minus(a), a);
}

TEST(UnitPoint, ScaledExactHalving) {
  const auto p = UnitPoint::from_raw(1000);
  EXPECT_EQ(p.scaled(1, 2).raw(), 500u);
  EXPECT_EQ(p.scaled(1, 1).raw(), 1000u);
  EXPECT_EQ(p.scaled(0, 7).raw(), 0u);
}

TEST(UnitPoint, ScaledByDouble) {
  const auto p = UnitPoint::from_double(0.5);
  EXPECT_NEAR(p.scaled_by(0.5).to_double(), 0.25, 1e-12);
  EXPECT_EQ(p.scaled_by(10.0), UnitPoint::one());  // saturates
}

TEST(UnitSegment, ContainsIsHalfOpen) {
  const UnitSegment seg{UnitPoint::from_double(0.25),
                        UnitPoint::from_double(0.5)};
  EXPECT_TRUE(seg.contains(UnitPoint::from_double(0.25)));
  EXPECT_TRUE(seg.contains(UnitPoint::from_raw(seg.end.raw() - 1)));
  EXPECT_FALSE(seg.contains(seg.end));
  EXPECT_FALSE(seg.contains(UnitPoint::zero()));
}

TEST(UnitSegment, LengthAndEmpty) {
  const UnitSegment seg{UnitPoint::from_double(0.25),
                        UnitPoint::from_double(0.5)};
  EXPECT_EQ(seg.length(), UnitPoint::from_double(0.25));
  const UnitSegment empty{UnitPoint::from_double(0.3),
                          UnitPoint::from_double(0.3)};
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(empty.contains(UnitPoint::from_double(0.3)));
}

TEST(UnitSegment, OverlapsAndCovers) {
  const UnitSegment a{UnitPoint::from_double(0.0), UnitPoint::from_double(0.5)};
  const UnitSegment b{UnitPoint::from_double(0.4), UnitPoint::from_double(0.6)};
  const UnitSegment c{UnitPoint::from_double(0.5), UnitPoint::from_double(0.7)};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));  // half-open: touching is not overlap
  EXPECT_TRUE(a.covers({UnitPoint::from_double(0.1), UnitPoint::from_double(0.2)}));
  EXPECT_FALSE(a.covers(b));
}

TEST(UnitSegment, IntersectionLength) {
  const UnitSegment a{UnitPoint::from_double(0.0), UnitPoint::from_double(0.5)};
  const UnitSegment b{UnitPoint::from_double(0.4), UnitPoint::from_double(0.6)};
  EXPECT_NEAR(intersection_length(a, b).to_double(), 0.1, 1e-12);
  const UnitSegment c{UnitPoint::from_double(0.7), UnitPoint::from_double(0.8)};
  EXPECT_EQ(intersection_length(a, c), UnitPoint::zero());
}

}  // namespace
}  // namespace anu
