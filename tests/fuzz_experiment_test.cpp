// Randomized end-to-end property tests.
//
// Each seed draws a random experiment — cluster shape, workload size,
// utilization, system, tuning interval, membership churn, cache model —
// runs it to completion and asserts the cross-cutting invariants that must
// hold for ANY configuration:
//   * no crash / no ANU invariant violation (check_invariants aborts);
//   * request conservation: completed <= issued == workload size, and the
//     shortfall is bounded by what can still be queued at the horizon;
//   * every completion's latency is positive;
//   * placements only ever name up servers (verified inside the driver by
//     construction: submitting to a down server aborts);
//   * determinism: re-running the same seed reproduces the same result.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "driver/balancer_factory.h"
#include "driver/experiment.h"
#include "workload/synthetic.h"

namespace anu::driver {
namespace {

struct RandomScenario {
  workload::SyntheticConfig workload;
  ExperimentConfig experiment;
  SystemConfig system;
};

RandomScenario draw(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  RandomScenario s;

  const std::size_t servers = 2 + rng.next_below(7);  // 2..8
  s.experiment.cluster.server_speeds.clear();
  for (std::size_t i = 0; i < servers; ++i) {
    s.experiment.cluster.server_speeds.push_back(
        1.0 + static_cast<double>(rng.next_below(9)));
  }
  if (rng.next_below(3) == 0) {
    s.experiment.cluster.cache.enabled = true;
    s.experiment.cluster.cache.cold_penalty_factor =
        1.5 + rng.next_double();
    s.experiment.cluster.cache.warmup_requests =
        5 + static_cast<std::uint32_t>(rng.next_below(20));
  }

  s.workload.seed = seed * 31 + 7;
  s.workload.file_set_count = 5 + rng.next_below(40);
  s.workload.request_count = 1'000 + rng.next_below(4'000);
  s.workload.duration = 600.0 + rng.next_double() * 1800.0;
  s.workload.target_utilization = 0.3 + rng.next_double() * 0.4;
  double capacity = 0.0;
  for (double sp : s.experiment.cluster.server_speeds) capacity += sp;
  s.workload.cluster_capacity = capacity;

  s.experiment.tuning_interval = 30.0 + rng.next_double() * 150.0;
  s.experiment.move_warmup_penalty =
      rng.next_below(2) == 0 ? 0.0 : rng.next_double() * 3.0;
  s.experiment.oracle_lookahead = rng.next_below(4) != 0;

  constexpr SystemKind kKinds[] = {
      SystemKind::kSimpleRandom, SystemKind::kDynPrescient,
      SystemKind::kVirtualProcessor, SystemKind::kAnu};
  s.system.kind = kKinds[rng.next_below(4)];
  s.system.vp.vp_per_server = 1 + rng.next_below(8);
  s.system.anu.placement_choices = 1 + static_cast<std::uint32_t>(
                                           rng.next_below(2));

  // Membership churn: a fail/recover pair on a random victim, sometimes an
  // addition, all within the run.
  if (rng.next_below(2) == 0) {
    const auto victim = ServerId(static_cast<std::uint32_t>(
        rng.next_below(servers)));
    const SimTime at = s.workload.duration * (0.2 + 0.3 * rng.next_double());
    s.experiment.failures.add(
        {at, cluster::MembershipAction::kFail, victim, 0.0});
    s.experiment.failures.add(
        {at + s.workload.duration * 0.2, cluster::MembershipAction::kRecover,
         victim, 0.0});
  }
  if (rng.next_below(3) == 0) {
    s.experiment.failures.add({s.workload.duration * 0.9,
                               cluster::MembershipAction::kAdd, ServerId(),
                               1.0 + static_cast<double>(rng.next_below(9))});
  }
  return s;
}

ExperimentResult run_scenario(const RandomScenario& s) {
  const auto workload = make_synthetic_workload(s.workload);
  auto balancer =
      make_balancer(s.system, s.experiment.cluster.server_speeds.size());
  return run_experiment(s.experiment, workload, *balancer);
}

class FuzzExperimentTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzExperimentTest, InvariantsHoldOnRandomScenario) {
  const RandomScenario scenario = draw(GetParam());
  const ExperimentResult result = run_scenario(scenario);

  // Conservation.
  EXPECT_EQ(result.requests_issued, scenario.workload.request_count);
  EXPECT_LE(result.requests_completed, result.requests_issued);
  // At a sane utilization the vast majority completes within the horizon
  // for every adaptive system; simple randomization may strand more on a
  // hot weak server, so only a loose floor applies to it.
  const double floor =
      scenario.system.kind == SystemKind::kSimpleRandom ? 0.3 : 0.6;
  EXPECT_GT(static_cast<double>(result.requests_completed),
            floor * static_cast<double>(result.requests_issued));

  // Served counts add up to the aggregate.
  std::uint64_t served = 0;
  for (auto n : result.served) served += n;
  EXPECT_EQ(served, result.requests_completed);
  EXPECT_EQ(result.aggregate.count(), result.requests_completed);

  // Latencies are sane.
  EXPECT_GT(result.aggregate.mean(), 0.0);
  EXPECT_GE(result.aggregate.min(), 0.0);

  // Utilization is a fraction.
  for (double u : result.utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }

  // Determinism: the same scenario reproduces bit-identical headline
  // numbers.
  const ExperimentResult again = run_scenario(scenario);
  EXPECT_EQ(result.requests_completed, again.requests_completed);
  EXPECT_DOUBLE_EQ(result.aggregate.mean(), again.aggregate.mean());
  EXPECT_EQ(result.total_moved, again.total_moved);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzExperimentTest,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace anu::driver
