#!/usr/bin/env python3
"""Acceptance test for tools/anu_lint.py (ctest label: lint).

Two halves:
  1. The fixture tree (tests/lint_fixtures/bad_tree) contains one known-bad
     snippet per rule; the linter must fail on it and every rule id must
     appear, while the justified suppression must NOT appear.
  2. The real repository must lint clean — the determinism guarantees in
     docs/static-analysis.md are only as good as a green gate.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINTER = REPO / "tools" / "anu_lint.py"
BAD_TREE = REPO / "tests" / "lint_fixtures" / "bad_tree"

EXPECTED_RULES = [
    "[wall-clock]",
    "[raw-rng]",
    "[unordered-iter]",
    "[ptr-key-container]",
    "[pool-order]",
    "[bare-allow]",
    "[test-registration]",
    "[baseline-missing]",
    "[baseline-orphan]",
]


def run_linter(root: Path) -> tuple[int, str]:
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--root", str(root)],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stdout + proc.stderr


def main() -> int:
    failures: list[str] = []

    code, out = run_linter(BAD_TREE)
    if code != 1:
        failures.append(f"bad_tree: expected exit 1, got {code}\n{out}")
    for rule in EXPECTED_RULES:
        if rule not in out:
            failures.append(f"bad_tree: rule {rule} did not fire")
    # Each flagged fixture line fires exactly as designed: the justified
    # suppression in unordered_iter.cpp must be honored (2 unordered-iter
    # findings: the unsuppressed loop and the bare-allow loop, not 3).
    unordered_hits = out.count("[unordered-iter]")
    if unordered_hits != 2:
        failures.append(
            "bad_tree: justified allow() not honored — expected exactly 2 "
            f"[unordered-iter] findings, got {unordered_hits}\n{out}"
        )
    if "uses_wallclock.cpp:7" not in out or "uses_wallclock.cpp:8" not in out:
        failures.append(f"bad_tree: wall-clock lines not both flagged\n{out}")
    # The clock seam's directory policy: src/core must stay wall-clock-free
    # even for the "harmless" steady clock, while src/runtime (whose job is
    # real time) is exempt from wall-clock but still linted by every other
    # rule — its std::rand must fire.
    if ("uses_steady_now.cpp:9" not in out
            or "uses_steady_now.cpp:10" not in out):
        failures.append(f"bad_tree: steady clock in src/core not flagged\n{out}")
    for line in out.splitlines():
        if "realtime_ok.cpp" in line and "[wall-clock]" in line:
            failures.append(f"bad_tree: wall-clock misfired in src/runtime\n{out}")
    if not any("realtime_ok.cpp" in line and "[raw-rng]" in line
               for line in out.splitlines()):
        failures.append(f"bad_tree: raw-rng did not fire in src/runtime\n{out}")

    code, out = run_linter(REPO)
    if code != 0:
        failures.append(f"real tree: expected clean (exit 0), got {code}\n{out}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"ok: all {len(EXPECTED_RULES)} rules fire on the fixture tree, "
          "suppression honored, real tree clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
