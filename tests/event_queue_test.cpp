// Differential tests for the ladder-queue event kernel.
//
// The ladder queue's ordering contract is exact — ascending (time, seq),
// FIFO at equal times — and the rest of the tree leans on it for seeded
// reproducibility. These tests check the contract two ways: the LadderQueue
// against a sort of the same keys, and the full Simulation (slab, handles,
// cancellation, clock rules) against a deliberately naive reference model
// that stores pending events in a flat vector and min-scans per dispatch.
// Both run over randomized operation sequences across many seeds; any
// divergence in fired order, clocks, or counters is a kernel bug.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace anu::sim {
namespace {

// ---------------------------------------------------------------------------
// LadderQueue vs a sorted copy of the same keys.

struct RefKey {
  SimTime time;
  std::uint64_t seq;
  std::uint32_t slot;
};

bool ref_before(const RefKey& a, const RefKey& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

/// Draws times from regimes that stress distinct queue paths: wide uniform
/// spreads (top transfers + rung scatters), dense clusters (deep
/// refinement), exact ties (FIFO + zero-width guard), and a far-future
/// outlier mixed with near-term work (skewed epochs).
SimTime draw_time(Xoshiro256& rng, double base) {
  switch (rng.next_below(6)) {
    case 0:
      return base + rng.next_double() * 1e4;
    case 1:
      return base + rng.next_double() * 1e-6;
    case 2:
      return base + static_cast<double>(rng.next_below(4));  // integer ties
    case 3:
      return base;  // exact tie at the batch base
    case 4:
      return base + 1e7 * (1.0 + rng.next_double());  // far future
    default:
      return base + rng.next_double();
  }
}

TEST(LadderQueue, MatchesSortedReferenceAcrossSeeds) {
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Xoshiro256 rng(seed);
    LadderQueue queue;
    std::vector<RefKey> reference;
    std::uint64_t seq = 0;
    double clock = 0.0;
    // Alternate push bursts and pop bursts so pushes interleave with a
    // partially drained ladder (the rung-descent and sorted-bottom-insert
    // paths), not just a fresh queue.
    for (int phase = 0; phase < 20; ++phase) {
      const std::uint64_t pushes = rng.next_below(400);
      for (std::uint64_t i = 0; i < pushes; ++i) {
        const SimTime t = draw_time(rng, clock);
        const auto slot = static_cast<std::uint32_t>(seq);
        queue.push(t, seq, slot);
        reference.push_back({t, seq, slot});
        ++seq;
      }
      std::sort(reference.begin(), reference.end(), ref_before);
      std::uint64_t pops = rng.next_below(300);
      pops = std::min<std::uint64_t>(pops, queue.size());
      for (std::uint64_t i = 0; i < pops; ++i) {
        const RefKey expect = reference.front();
        reference.erase(reference.begin());
        const EventKey got = queue.pop();
        ASSERT_EQ(got.time, expect.time) << "seed " << seed;
        ASSERT_EQ(got.seq, expect.seq) << "seed " << seed;
        ASSERT_EQ(got.slot, expect.slot) << "seed " << seed;
        clock = got.time;  // pushes must never go behind the last pop
      }
      ASSERT_EQ(queue.size(), reference.size());
    }
    // Drain and check the tail.
    while (!queue.empty()) {
      const RefKey expect = reference.front();
      reference.erase(reference.begin());
      const EventKey got = queue.pop();
      ASSERT_EQ(got.time, expect.time) << "seed " << seed;
      ASSERT_EQ(got.seq, expect.seq) << "seed " << seed;
    }
    EXPECT_TRUE(reference.empty());
  }
}

TEST(LadderQueue, MinIsStableAndDropMinPops) {
  LadderQueue queue;
  queue.push(2.0, 0, 0);
  queue.push(1.0, 1, 1);
  queue.push(1.0, 2, 2);
  EXPECT_EQ(queue.min().seq, 1u);
  EXPECT_EQ(queue.min().seq, 1u);  // min() is idempotent
  queue.drop_min();
  EXPECT_EQ(queue.min().seq, 2u);
  queue.drop_min();
  EXPECT_EQ(queue.min().time, 2.0);
  queue.drop_min();
  EXPECT_TRUE(queue.empty());
}

TEST(LadderQueue, ManyTiedTimestampsStayFifo) {
  // A whole epoch at one timestamp exercises the zero-width spill guard:
  // the range cannot be subdivided, so everything must sort by seq alone.
  LadderQueue queue;
  for (std::uint64_t i = 0; i < 5000; ++i) queue.push(7.0, i, 0);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(queue.pop().seq, i);
  }
  EXPECT_TRUE(queue.empty());
}

// ---------------------------------------------------------------------------
// Simulation vs a naive reference model, lockstep over random operations.
//
// The model mirrors Simulation's documented semantics only — never its
// implementation: a flat vector of pending events min-scanned per dispatch,
// with the same clock-advance rule for bounded runs.

struct ModelEvent {
  SimTime time;
  std::uint64_t seq;
  std::uint32_t id;
  bool cancelled;
};

std::vector<std::pair<SimTime, std::uint32_t>> spawn_children(
    std::uint32_t parent);

class ModelSim {
 public:
  std::uint64_t schedule(SimTime when, std::uint32_t id) {
    events_.push_back({when, next_seq_, id, false});
    ++next_seq_;
    return next_seq_ - 1;
  }

  void cancel(std::uint64_t seq) {
    for (ModelEvent& ev : events_) {
      if (ev.seq == seq) ev.cancelled = true;
    }
  }

  /// Returns fired (id, time) pairs, matching Simulation::run_until's
  /// dispatch order and clock rule. Fired events spawn children through
  /// spawn_children — the same pure function the Simulation callbacks use.
  std::vector<std::pair<std::uint32_t, SimTime>> run_until(SimTime until) {
    std::vector<std::pair<std::uint32_t, SimTime>> fired;
    for (;;) {
      std::size_t best = events_.size();
      for (std::size_t i = 0; i < events_.size(); ++i) {
        if (best == events_.size() ||
            events_[i].time < events_[best].time ||
            (events_[i].time == events_[best].time &&
             events_[i].seq < events_[best].seq)) {
          best = i;
        }
      }
      if (best == events_.size()) break;
      if (events_[best].time > until) break;
      const ModelEvent ev = events_[best];
      events_.erase(events_.begin() +
                    static_cast<std::ptrdiff_t>(best));
      if (ev.cancelled) {
        ++cancelled_skipped_;
        continue;
      }
      now_ = ev.time;
      fired.emplace_back(ev.id, ev.time);
      ++executed_;
      for (const auto& [delay, child_id] : spawn_children(ev.id)) {
        schedule(now_ + delay, child_id);
      }
    }
    if (events_.empty()) {
      if (until > now_ && until != std::numeric_limits<SimTime>::infinity()) {
        now_ = until;
      }
    } else {
      now_ = until;
    }
    return fired;
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  [[nodiscard]] std::uint64_t cancelled_skipped() const {
    return cancelled_skipped_;
  }

 private:
  std::vector<ModelEvent> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_skipped_ = 0;
  SimTime now_ = 0.0;
};

/// Children an event spawns when it fires: a pure function of the parent
/// id, so the Simulation callback and the model replay generate identical
/// schedules without sharing state.
std::vector<std::pair<SimTime, std::uint32_t>> spawn_children(
    std::uint32_t parent) {
  std::vector<std::pair<SimTime, std::uint32_t>> out;
  const std::uint64_t h = mix64(parent);
  if (parent >= 1u << 20) return out;  // bound the cascade depth
  if ((h & 7) == 0) {
    out.emplace_back(static_cast<double>((h >> 8) & 1023) * 1e-3,
                     (parent << 2) | 1u);
  }
  if ((h & 15) == 1) {
    out.emplace_back(0.0, (parent << 2) | 2u);  // child at now(): same-time
    out.emplace_back(1.0 + static_cast<double>((h >> 16) & 255),
                     (parent << 2) | 3u);
  }
  return out;
}

void run_differential_fuzz(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Simulation sim;
  ModelSim model;

  std::vector<std::pair<std::uint32_t, SimTime>> sim_fired;
  // Handles for cancellation, parallel arrays on both sides.
  std::vector<EventHandle> handles;
  std::vector<std::uint64_t> model_seqs;

  // In-callback behavior: record the firing, then schedule this id's
  // children. Children recurse through the same callback.
  struct Recorder;
  struct Recorder {
    Simulation& sim;
    std::vector<std::pair<std::uint32_t, SimTime>>& fired;
    void fire(std::uint32_t id) {
      fired.emplace_back(id, sim.now());
      for (const auto& [delay, child] : spawn_children(id)) {
        std::uint32_t c = child;
        Recorder self = *this;
        sim.schedule_after(delay, [self, c]() mutable { self.fire(c); });
      }
    }
  };
  Recorder recorder{sim, sim_fired};

  // Root ids are small, so roots can cascade: children take id
  // parent*4 + k, and spawn_children stops the recursion once ids pass
  // 2^20 (about ten generations deep from these roots).
  std::uint32_t next_id = 1;
  for (int phase = 0; phase < 12; ++phase) {
    const std::uint64_t roots = rng.next_below(200);
    for (std::uint64_t i = 0; i < roots; ++i) {
      const SimTime t = draw_time(rng, sim.now());
      const std::uint32_t id = next_id++;
      handles.push_back(sim.schedule_at(t, [&recorder, id] {
        recorder.fire(id);
      }));
      model_seqs.push_back(model.schedule(t, id));
    }
    // Cancel a random sample of everything ever scheduled; stale handles
    // (already fired) must be harmless no-ops on both sides.
    const std::uint64_t cancels = rng.next_below(40);
    for (std::uint64_t i = 0; i < cancels && !handles.empty(); ++i) {
      const std::uint64_t pick = rng.next_below(handles.size());
      handles[pick].cancel();
      model.cancel(model_seqs[pick]);
    }
    // Random horizon: sometimes exactly the current clock (fires only
    // events at now), sometimes far ahead, occasionally to completion.
    SimTime until;
    const std::uint64_t kind = rng.next_below(4);
    if (kind == 0) {
      until = sim.now();
    } else if (kind == 3) {
      until = std::numeric_limits<SimTime>::infinity();
    } else {
      until = sim.now() + rng.next_double() * 2e4;
    }
    sim_fired.clear();
    sim.run_until(until);
    const auto model_fired = model.run_until(until);
    ASSERT_EQ(sim_fired.size(), model_fired.size()) << "seed " << seed;
    for (std::size_t i = 0; i < sim_fired.size(); ++i) {
      ASSERT_EQ(sim_fired[i].first, model_fired[i].first)
          << "seed " << seed << " index " << i;
      ASSERT_EQ(sim_fired[i].second, model_fired[i].second)
          << "seed " << seed << " index " << i;
    }
    ASSERT_EQ(sim.now(), model.now()) << "seed " << seed;
    ASSERT_EQ(sim.pending_events(), model.pending()) << "seed " << seed;
    ASSERT_EQ(sim.events_executed(), model.executed()) << "seed " << seed;
  }
  const SimQueueStats stats = sim.queue_stats();
  EXPECT_EQ(stats.executed, model.executed());
  EXPECT_EQ(stats.cancelled_skipped, model.cancelled_skipped());
}

TEST(SimulationDifferentialFuzz, MatchesReferenceModelAcross64Seeds) {
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    run_differential_fuzz(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace anu::sim
