// Tests for the persistent work-stealing pool: determinism at any
// parallelism level, exception aggregation, nested-submit deadlock
// regression, and a seeded stress soak (ctest label: pool).
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace anu {
namespace {

/// A deterministic per-task computation driven by the (base_seed, index)
/// substream convention — the same shape a multi-seed experiment batch has.
std::uint64_t substream_work(std::uint64_t base, std::size_t index) {
  Xoshiro256 rng(substream_seed(base, index));
  std::uint64_t acc = 0;
  const std::size_t steps = 100 + rng.next_below(400);
  for (std::size_t i = 0; i < steps; ++i) acc ^= rng.next();
  return acc;
}

std::vector<std::uint64_t> run_wave(ThreadPool& pool, std::uint64_t base,
                                    std::size_t tasks,
                                    std::size_t parallelism) {
  std::vector<std::uint64_t> out(tasks);
  pool.run_indexed(
      tasks, [&](std::size_t i) { out[i] = substream_work(base, i); },
      parallelism);
  return out;
}

TEST(ThreadPool, RunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  pool.run_indexed(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.run_indexed(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, SameResultsAtAnyParallelism) {
  // The determinism contract behind `anu_sim --jobs`: bit-identical output
  // whether the batch runs inline or 8-wide.
  ThreadPool pool(8);
  const auto sequential = run_wave(pool, 42, 200, 1);
  for (const std::size_t jobs : {2u, 3u, 8u, 64u}) {
    EXPECT_EQ(run_wave(pool, 42, 200, jobs), sequential) << jobs;
  }
}

TEST(ThreadPool, ParallelismCapIsStructural) {
  // At most `cap` tasks can ever be in flight: the batch has exactly cap
  // participants (caller + cap-1 workers), so the high-water mark cannot
  // exceed it even under scheduling jitter.
  ThreadPool pool(8);
  constexpr std::size_t kCap = 3;
  std::atomic<int> active{0};
  std::atomic<int> high_water{0};
  pool.run_indexed(
      64,
      [&](std::size_t) {
        const int now = ++active;
        int seen = high_water.load();
        while (now > seen && !high_water.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        --active;
      },
      kCap);
  EXPECT_LE(high_water.load(), static_cast<int>(kCap));
  EXPECT_GE(high_water.load(), 1);
}

TEST(ThreadPool, MidBatchExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.run_indexed(64, [&](std::size_t i) {
      if (i == 13) throw std::runtime_error("task 13 failed");
      ++ran;
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 13 failed");
  }
  EXPECT_LT(ran.load(), 64);
}

TEST(ThreadPool, AllThrowingTasksYieldOneException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_indexed(
                   32, [](std::size_t) { throw std::logic_error("boom"); }),
               std::logic_error);
}

TEST(ThreadPool, PoolSurvivesFailedBatch) {
  // Exception aggregation must leave the pool reusable: a failed batch is
  // drained, not wedged.
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_indexed(
                   16, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.run_indexed(100, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 100);
}

// Regression: with the old spawn-per-batch scheme a nested parallel call
// from inside a worker was fine (fresh threads), but a naive pool turns it
// into a deadlock — every worker blocks waiting for subtasks that no free
// worker exists to run. The caller-participates design must complete
// nested batches even on a single-worker pool.
TEST(ThreadPool, NestedSubmitDoesNotDeadlock) {
  ThreadPool pool(1);  // worst case: zero spare workers for inner batches
  std::atomic<int> inner_total{0};
  pool.run_indexed(4, [&](std::size_t) {
    pool.run_indexed(8, [&](std::size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, DeeplyNestedBatches) {
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  pool.run_indexed(3, [&](std::size_t) {
    pool.run_indexed(3, [&](std::size_t) {
      pool.run_indexed(3, [&](std::size_t) { ++leaves; });
    });
  });
  EXPECT_EQ(leaves.load(), 27);
}

TEST(ThreadPool, NestedExceptionCrossesBatchBoundary) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_indexed(2,
                                [&](std::size_t) {
                                  pool.run_indexed(4, [](std::size_t i) {
                                    if (i == 3) {
                                      throw std::runtime_error("inner");
                                    }
                                  });
                                }),
               std::runtime_error);
}

TEST(ThreadPool, GlobalPoolIsPersistent) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.worker_count(), 1u);
  std::atomic<int> count{0};
  a.run_indexed(32, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, FireAndForgetSubmitRuns) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) pool.submit([&] { ++ran; });
    // Drain deterministically by running a batch behind the submissions:
    // batch completion implies the pool processed its queues past them.
    while (ran.load() < 8) std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, StatsCountersAdvanceAndAreQuiescentExact) {
  ThreadPool pool(4);
  const ThreadPool::StatsSnapshot before = pool.stats();
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) pool.submit([&] { ++ran; });
  // The counter trails the task body (a worker bumps it after the task
  // returns), so wait on the counter itself; overshoot would still fail
  // the exactness check below.
  while (pool.stats().tasks_executed - before.tasks_executed < 64u) {
    std::this_thread::yield();
  }
  const ThreadPool::StatsSnapshot after = pool.stats();
  EXPECT_EQ(ran.load(), 64);
  // Exactly the 64 pool-level tasks ran; steals/parks are schedule-
  // dependent so only monotonicity is checkable.
  EXPECT_EQ(after.tasks_executed - before.tasks_executed, 64u);
  EXPECT_GE(after.steals, before.steals);
  EXPECT_GE(after.parks, before.parks);
}

TEST(ThreadPool, StatsNeverFeedResults) {
  // The batch path runs caller-side jobs too, so tasks_executed (pool-level
  // only) must NOT be assumed to equal the job count — this pins the
  // documented contract that stats are advisory scheduling telemetry.
  ThreadPool pool(2);
  const ThreadPool::StatsSnapshot before = pool.stats();
  std::atomic<int> ran{0};
  pool.run_indexed(100, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 100);
  const ThreadPool::StatsSnapshot after = pool.stats();
  EXPECT_LE(after.tasks_executed - before.tasks_executed, 100u);
}

// Seeded stress soak (label: pool): many waves of uneven task counts at
// randomized parallelism, every wave validated against its sequential
// twin, so the steal paths and pool-reuse churn are exercised hard but
// reproducibly — one seed reproduces one schedule of waves.
TEST(ThreadPoolStress, SeededWavesMatchSequential) {
  ThreadPool pool(8);
  Xoshiro256 rng(20260806);
  for (int wave = 0; wave < 25; ++wave) {
    const std::uint64_t base = rng.next();
    const std::size_t tasks = 1 + rng.next_below(300);
    const std::size_t jobs = 1 + rng.next_below(16);
    EXPECT_EQ(run_wave(pool, base, tasks, jobs),
              run_wave(pool, base, tasks, 1))
        << "wave " << wave << " tasks " << tasks << " jobs " << jobs;
  }
}

TEST(ThreadPoolStress, ConcurrentBatchesFromManyThreads) {
  // Several external threads drive batches through one pool at once; each
  // must see exactly its own results (batch state is per-call, the pool is
  // shared).
  ThreadPool pool(4);
  std::vector<std::thread> drivers;
  std::atomic<int> failures{0};
  for (std::uint64_t t = 0; t < 4; ++t) {
    drivers.emplace_back([&pool, &failures, t] {
      for (int round = 0; round < 10; ++round) {
        const std::uint64_t base = t * 1000 + static_cast<std::uint64_t>(round);
        if (run_wave(pool, base, 64, 4) != run_wave(pool, base, 64, 1)) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& d : drivers) d.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace anu
