// Tests for the Chord-style ring (the §5.4 footnote's alternative to
// replicating the virtual-processor address table).
#include "balance/chord_ring.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace anu::balance {
namespace {

TEST(ChordRing, SingleNodeOwnsEverything) {
  const ChordRing ring(1);
  for (std::uint64_t key : {0ull, 42ull, ~0ull}) {
    const auto result = ring.lookup_from(0, key);
    EXPECT_EQ(result.node, 0u);
    EXPECT_EQ(result.hops, 0u);
  }
}

TEST(ChordRing, FingerWalkMatchesDirectSuccessor) {
  const ChordRing ring(64);
  Xoshiro256 rng(3);
  for (int i = 0; i < 2'000; ++i) {
    const std::uint64_t key = rng.next();
    const auto start = static_cast<std::uint32_t>(rng.next_below(64));
    EXPECT_EQ(ring.lookup_from(start, key).node, ring.successor_of(key));
  }
}

TEST(ChordRing, InvariantsHold) {
  for (std::size_t n : {1u, 2u, 5u, 33u, 128u}) {
    const ChordRing ring(n);
    ring.check_invariants();  // aborts on violation
  }
}

TEST(ChordRing, HopsAreLogarithmic) {
  // Chord's guarantee: O(log n) hops. Check the empirical mean stays below
  // log2(n) and the max below 2*log2(n) across random lookups.
  for (std::size_t n : {16u, 64u, 256u, 1024u}) {
    const ChordRing ring(n);
    Xoshiro256 rng(n);
    double total = 0.0;
    std::uint32_t worst = 0;
    constexpr int kLookups = 2'000;
    for (int i = 0; i < kLookups; ++i) {
      const auto result = ring.lookup_from(
          static_cast<std::uint32_t>(rng.next_below(n)), rng.next());
      total += result.hops;
      worst = std::max(worst, result.hops);
    }
    const double log2n = std::log2(static_cast<double>(n));
    EXPECT_LE(total / kLookups, log2n) << "n=" << n;
    EXPECT_LE(worst, static_cast<std::uint32_t>(2.0 * log2n) + 2) << "n=" << n;
  }
}

TEST(ChordRing, LookupByNameIsDeterministic) {
  const ChordRing a(32), b(32);
  for (int i = 0; i < 100; ++i) {
    const std::string name = "vp/" + std::to_string(i);
    EXPECT_EQ(a.lookup(name).node, b.lookup(name).node);
  }
}

TEST(ChordRing, PayloadRoundTrip) {
  ChordRing ring(8);
  ring.set_payload(3, ServerId(7));
  EXPECT_EQ(ring.payload(3), ServerId(7));
  EXPECT_FALSE(ring.payload(4).valid());
}

TEST(ChordRing, PerNodeStateIsLogNotLinear) {
  const ChordRing small(16), large(1024);
  // Distinct finger entries grow ~log n: doubling the ring six times adds
  // ~6 entries, versus an O(n) replicated table.
  EXPECT_LT(small.per_node_state_bytes(), large.per_node_state_bytes());
  EXPECT_LT(large.per_node_state_bytes(), 8u + 24u * 12u);  // ~2*log2(n) cap
  EXPECT_LT(large.per_node_state_bytes(), 1024u * 16u);
}

TEST(ChordRing, KeysSpreadAcrossNodes) {
  const ChordRing ring(32);
  Xoshiro256 rng(9);
  std::vector<int> hits(32, 0);
  for (int i = 0; i < 20'000; ++i) ++hits[ring.successor_of(rng.next())];
  int nonzero = 0;
  for (int h : hits) nonzero += h > 0 ? 1 : 0;
  EXPECT_EQ(nonzero, 32);  // every node owns a slice
}


TEST(ChordRingChurn, JoinTakesOverExactlyItsArc) {
  // Consistent hashing's minimal disruption: after a join, only keys in
  // (predecessor, new-position] change owner, and they all go to the new
  // node.
  ChordRing ring(16);
  Xoshiro256 rng(21);
  std::vector<std::uint64_t> keys(5'000);
  for (auto& k : keys) k = rng.next();
  std::vector<std::uint64_t> before(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    before[i] = ring.position_of(ring.successor_of(keys[i]));
  }
  const std::uint64_t new_pos = 0x7777777777777777ULL;
  const auto joined = ring.add_node(new_pos, ServerId(42));
  ring.check_invariants();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto now = ring.successor_of(keys[i]);
    if (ring.position_of(now) == new_pos) {
      EXPECT_EQ(now, joined);
    } else {
      // Unmoved keys keep their old owner (identified by position — the
      // array index may have shifted).
      EXPECT_EQ(ring.position_of(now), before[i]) << "key " << keys[i];
    }
  }
}

TEST(ChordRingChurn, LeaveHandsKeysToSuccessor) {
  ChordRing ring(16);
  Xoshiro256 rng(22);
  const std::uint32_t victim = 5;
  const std::uint64_t victim_pos = ring.position_of(victim);
  const std::uint64_t successor_pos =
      ring.position_of((victim + 1) % 16);
  std::vector<std::uint64_t> keys(5'000);
  for (auto& k : keys) k = rng.next();
  std::vector<std::uint64_t> before(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    before[i] = ring.position_of(ring.successor_of(keys[i]));
  }
  ring.remove_node(victim);
  ring.check_invariants();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint64_t now = ring.position_of(ring.successor_of(keys[i]));
    if (before[i] == victim_pos) {
      EXPECT_EQ(now, successor_pos);
    } else {
      EXPECT_EQ(now, before[i]);
    }
  }
}

TEST(ChordRingChurn, LookupCorrectAfterChurn) {
  ChordRing ring(8);
  Xoshiro256 rng(23);
  for (int round = 0; round < 20; ++round) {
    if (ring.node_count() < 4 || (ring.node_count() < 64 && rng.next_below(2))) {
      ring.add_node(rng.next());
    } else {
      ring.remove_node(
          static_cast<std::uint32_t>(rng.next_below(ring.node_count())));
    }
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t key = rng.next();
      const auto start =
          static_cast<std::uint32_t>(rng.next_below(ring.node_count()));
      ASSERT_EQ(ring.lookup_from(start, key).node, ring.successor_of(key));
    }
  }
}

TEST(ChordRingChurn, DuplicatePositionRejected) {
  ChordRing ring(4);
  EXPECT_DEATH(ring.add_node(ring.position_of(2)), "precondition");
}

TEST(ChordRingChurn, CannotEmptyTheRing) {
  ChordRing ring(1);
  EXPECT_DEATH(ring.remove_node(0), "precondition");
}

TEST(ChordRingChurn, PayloadSurvivesOtherNodesChurn) {
  ChordRing ring(8);
  const std::uint64_t marked_pos = ring.position_of(3);
  ring.set_payload(3, ServerId(9));
  ring.add_node(0x1234512345ULL);  // may shift indices
  ring.remove_node(0);
  // Find the marked node by position and check its payload survived.
  for (std::uint32_t i = 0; i < ring.node_count(); ++i) {
    if (ring.position_of(i) == marked_pos) {
      EXPECT_EQ(ring.payload(i), ServerId(9));
      return;
    }
  }
  FAIL() << "marked node disappeared";
}

}  // namespace
}  // namespace anu::balance
