// Tests for the control-protocol simulation: network model, report/update
// flow, versioned replication, shed notices, delegate failover.
#include <gtest/gtest.h>

#include "faults/fault_plan.h"
#include "proto/network.h"
#include "proto/protocol.h"
#include "sim/sim_clock.h"

namespace anu::proto {
namespace {

// --- network ---------------------------------------------------------------

TEST(Network, DeliversAfterDelay) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  NetworkConfig config;
  config.base_delay = 0.01;
  config.jitter = 0.0;
  Network net(clock, config, 2);
  double delivered_at = -1.0;
  net.attach(1, [&](std::uint32_t from, const Message&) {
    EXPECT_EQ(from, 0u);
    delivered_at = sim.now();
  });
  net.send(0, 1, ShedNotice{});
  sim.run_to_completion();
  EXPECT_NEAR(delivered_at, 0.01 + 12 * 8e-9, 1e-9);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(Network, DropsToDownNode) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  Network net(clock, NetworkConfig{}, 2);
  int received = 0;
  net.attach(1, [&](std::uint32_t, const Message&) { ++received; });
  net.set_node_up(1, false);
  net.send(0, 1, ShedNotice{});
  sim.run_to_completion();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(Network, DropsInFlightWhenReceiverFails) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  NetworkConfig config;
  config.base_delay = 1.0;
  Network net(clock, config, 2);
  int received = 0;
  net.attach(1, [&](std::uint32_t, const Message&) { ++received; });
  net.send(0, 1, ShedNotice{});
  sim.schedule_at(0.5, [&] { net.set_node_up(1, false); });
  sim.run_to_completion();
  EXPECT_EQ(received, 0);
}

TEST(Network, BroadcastReachesAllOthers) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  Network net(clock, NetworkConfig{}, 4);
  int received = 0;
  for (std::uint32_t n = 0; n < 4; ++n) {
    net.attach(n, [&](std::uint32_t, const Message&) { ++received; });
  }
  net.broadcast(2, ShedNotice{});
  sim.run_to_completion();
  EXPECT_EQ(received, 3);
}

TEST(Network, AccountsBytes) {
  sim::Simulation sim;
  sim::SimClock clock(sim);
  Network net(clock, NetworkConfig{}, 2);
  net.attach(1, [](std::uint32_t, const Message&) {});
  RegionMapUpdate update;
  update.partitions.resize(16);
  net.send(0, 1, update);
  EXPECT_EQ(net.bytes_sent(), 24u + 16u * 12u);
}

// --- protocol ---------------------------------------------------------------

struct ProtoHarness {
  sim::Simulation sim;
  sim::SimClock clock{sim};
  Network net;
  ProtocolCluster cluster;

  explicit ProtoHarness(std::size_t servers,
                        const std::vector<double>& speeds,
                        ProtocolConfig config = {})
      : net(clock, NetworkConfig{}, servers),
        cluster(clock, net, config, servers,
                [speeds](std::uint32_t s, UnitPoint share) {
                  // Data-plane model: latency proportional to share over
                  // speed; completions proportional to share.
                  const double latency =
                      share.to_double() / speeds[s] * 100.0 + 1e-6;
                  const auto n = static_cast<std::size_t>(
                      share.to_double() * 1e4);
                  return balance::ServerReport{latency, n};
                }) {
    std::vector<std::string> names;
    for (int i = 0; i < 40; ++i) names.push_back("p/" + std::to_string(i));
    cluster.register_file_sets(names);
  }
};

TEST(Protocol, ReplicasAgreeAfterEachRound) {
  ProtoHarness h(5, {1.0, 3.0, 5.0, 7.0, 9.0});
  for (int round = 1; round <= 10; ++round) {
    h.sim.run_until(120.0 * round + 10.0);  // interval + slack for messages
    EXPECT_TRUE(h.cluster.replicas_agree()) << "round " << round;
    EXPECT_EQ(h.cluster.version_of(0), static_cast<std::uint64_t>(round));
  }
  EXPECT_EQ(h.cluster.updates_published(), 10u);
}

TEST(Protocol, SharesConvergeTowardSpeeds) {
  ProtoHarness h(5, {1.0, 3.0, 5.0, 7.0, 9.0});
  h.sim.run_until(120.0 * 60);
  const auto& map = h.cluster.map_of(4);
  EXPECT_GT(map.share(ServerId(4)).to_double(),
            map.share(ServerId(0)).to_double() * 2.0);
}

TEST(Protocol, AllNodesRouteIdentically) {
  ProtoHarness h(5, {1.0, 3.0, 5.0, 7.0, 9.0});
  h.sim.run_until(120.0 * 5 + 10.0);
  for (int i = 0; i < 40; ++i) {
    const std::string name = "p/" + std::to_string(i);
    const ServerId from0 = h.cluster.route_from(0, name);
    for (std::uint32_t s = 1; s < 5; ++s) {
      EXPECT_EQ(h.cluster.route_from(s, name), from0);
    }
  }
}

TEST(Protocol, ShedNoticesFlowToAcquirers) {
  ProtoHarness h(5, {1.0, 3.0, 5.0, 7.0, 9.0});
  h.sim.run_until(120.0 * 20);
  std::uint64_t notices = 0;
  for (std::uint32_t s = 0; s < 5; ++s) {
    notices += h.cluster.shed_notices_received(s);
  }
  // Load moves toward fast servers during convergence, so somebody must
  // have been notified of gaining file sets.
  EXPECT_GT(notices, 0u);
}

TEST(Protocol, DelegateFailoverKeepsRoundsFlowing) {
  ProtoHarness h(5, {1.0, 3.0, 5.0, 7.0, 9.0});
  h.sim.run_until(120.0 * 3 + 10.0);
  EXPECT_EQ(h.cluster.delegate(), 0u);
  const auto before = h.cluster.updates_published();
  h.cluster.fail_server(0);
  EXPECT_EQ(h.cluster.delegate(), 1u);
  h.sim.run_until(120.0 * 8 + 10.0);
  // Rounds keep completing under the new delegate and survivors agree.
  EXPECT_GT(h.cluster.updates_published(), before + 3);
  EXPECT_TRUE(h.cluster.replicas_agree());
}

TEST(Protocol, RecoveredNodeCatchesUpViaVersioning) {
  ProtoHarness h(5, {1.0, 3.0, 5.0, 7.0, 9.0});
  h.sim.run_until(120.0 * 2 + 10.0);
  h.cluster.fail_server(3);
  h.sim.run_until(120.0 * 6 + 10.0);
  // Node 3 is stale while down.
  EXPECT_LT(h.cluster.version_of(3), h.cluster.version_of(0));
  h.cluster.recover_server(3);
  h.sim.run_until(120.0 * 8 + 10.0);
  EXPECT_TRUE(h.cluster.replicas_agree());
  EXPECT_EQ(h.cluster.version_of(3), h.cluster.version_of(0));
}

TEST(Protocol, SlowNetworkStillConverges) {
  // Half a second of one-way delay (WAN-grade for a LAN protocol): rounds
  // still complete because the grace window waits out stragglers.
  sim::Simulation sim;
  sim::SimClock clock(sim);
  NetworkConfig net_config;
  net_config.base_delay = 0.5;
  net_config.jitter = 0.3;
  Network net(clock, net_config, 3);
  ProtocolConfig config;
  config.report_grace = 2.0;
  const std::vector<double> speeds{1.0, 4.0, 8.0};
  ProtocolCluster cluster(
      clock, net, config, 3, [&](std::uint32_t s, UnitPoint share) {
        return balance::ServerReport{share.to_double() / speeds[s] + 1e-6,
                                     100};
      });
  cluster.register_file_sets({"a", "b", "c", "d"});
  sim.run_until(120.0 * 20);
  EXPECT_TRUE(cluster.replicas_agree());
  EXPECT_GE(cluster.updates_published(), 18u);
}

TEST(Protocol, UpdateMessageCostIsRegionTableSized) {
  ProtoHarness h(5, {1.0, 1.0, 1.0, 1.0, 1.0});
  h.sim.run_until(130.0);
  // One round: 4 remote reports (24 B each) + 4 update broadcasts carrying
  // the 16-partition table (16 + 192 B) + shed notices. The dominant cost
  // scales with the partition table — O(servers), §5.4's argument.
  EXPECT_GE(h.net.bytes_sent(), 4u * 24 + 4u * (16 + 192));
  EXPECT_LT(h.net.bytes_sent(), 4000u);
}


TEST(Protocol, RecoveredFormerDelegateDoesNotSplitBrain) {
  // Regression: a recovered ex-delegate once resumed with a stale replica
  // and published version numbers below the cluster's, which everyone
  // rejected forever. Version-by-round plus state transfer on rejoin must
  // re-unify the replicas.
  ProtoHarness h(5, {1.0, 3.0, 5.0, 7.0, 9.0});
  h.sim.run_until(120.0 * 3 + 10.0);
  h.cluster.fail_server(0);                 // the delegate dies
  h.sim.run_until(120.0 * 8 + 10.0);        // s1 runs rounds 4..8
  h.cluster.recover_server(0);              // s0 is re-elected delegate
  h.sim.run_until(120.0 * 12 + 10.0);       // s0 runs rounds 9..12
  EXPECT_TRUE(h.cluster.replicas_agree());
  EXPECT_EQ(h.cluster.version_of(0), h.cluster.version_of(4));
  EXPECT_GE(h.cluster.version_of(0), 12u);
}

TEST(Protocol, VersionsTrackRounds) {
  ProtoHarness h(3, {1.0, 2.0, 4.0});
  h.sim.run_until(120.0 * 6 + 10.0);
  for (std::uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(h.cluster.version_of(s), 6u);
  }
}

TEST(Protocol, StateTransferCatchesUpBeforeNextRound) {
  ProtoHarness h(4, {1.0, 2.0, 4.0, 8.0});
  h.sim.run_until(120.0 * 2 + 10.0);
  h.cluster.fail_server(2);
  h.sim.run_until(120.0 * 5 + 10.0);
  h.cluster.recover_server(2);
  // Well before the next tuning round, the transfer alone has synced it.
  h.sim.run_until(120.0 * 5 + 20.0);
  EXPECT_EQ(h.cluster.version_of(2), h.cluster.version_of(0));
  EXPECT_TRUE(h.cluster.replicas_agree());
}


// --- heartbeat failure detection -------------------------------------------

// --- reliable delivery under faults ----------------------------------------

TEST(Reliability, RoundsConvergeUnderHeavyLoss) {
  ProtoHarness h(5, {1.0, 3.0, 5.0, 7.0, 9.0});
  faults::FaultPlanConfig fault_config;
  fault_config.loss = 0.2;
  faults::FaultPlan plan(fault_config);
  h.net.set_fault_plan(&plan);
  h.sim.run_until(120.0 * 10 + 20.0);
  // One in five control messages vanished, yet every round still closed:
  // retransmission carried the reports in and the map updates out.
  EXPECT_TRUE(h.cluster.replicas_agree());
  EXPECT_EQ(h.cluster.updates_published(), 10u);
  EXPECT_GT(plan.injected_losses(), 0u);
  EXPECT_GT(h.cluster.retransmits(), 0u);
  EXPECT_GT(h.cluster.acks_received(), 0u);
  // Acks only exist for reliable transmissions; the books must balance.
  EXPECT_LE(h.cluster.acks_received(),
            h.cluster.reliable_sent() + h.cluster.retransmits());
}

TEST(Reliability, DuplicatedMessagesAreSuppressedNotReapplied) {
  ProtoHarness h(4, {1.0, 2.0, 4.0, 8.0});
  faults::FaultPlanConfig fault_config;
  fault_config.duplicate = 0.5;
  faults::FaultPlan plan(fault_config);
  h.net.set_fault_plan(&plan);
  h.sim.run_until(120.0 * 8 + 20.0);
  EXPECT_TRUE(h.cluster.replicas_agree());
  EXPECT_EQ(h.cluster.updates_published(), 8u);
  EXPECT_GT(plan.duplications(), 0u);
  EXPECT_GT(h.cluster.duplicates_suppressed(), 0u);
}

TEST(Reliability, LossFreeRunsNeverRetransmit) {
  ProtoHarness h(3, {1.0, 2.0, 4.0});
  h.sim.run_until(120.0 * 5 + 20.0);
  EXPECT_GT(h.cluster.reliable_sent(), 0u);
  EXPECT_EQ(h.cluster.retransmits(), 0u);
  EXPECT_EQ(h.cluster.duplicates_suppressed(), 0u);
  EXPECT_EQ(h.cluster.retries_abandoned(), 0u);
  // Every reliable message was acked exactly once.
  EXPECT_EQ(h.cluster.acks_received(), h.cluster.reliable_sent());
}

TEST(Reliability, PendingRetriesAbandonedWhenPeerFails) {
  ProtoHarness h(4, {1.0, 2.0, 4.0, 8.0});
  // Cut all of node 3's links so everything sent to it stays pending,
  // then declare it failed: the senders must abandon, not spin forever.
  faults::FaultPlan plan{faults::FaultPlanConfig{}};
  h.net.set_fault_plan(&plan);
  h.sim.schedule_at(115.0, [&] {
    for (std::uint32_t peer = 0; peer < 3; ++peer) plan.partition(peer, 3);
  });
  h.sim.schedule_at(125.0, [&] { h.cluster.fail_server(3); });
  h.sim.run_until(120.0 * 4 + 20.0);
  EXPECT_GT(h.cluster.retries_abandoned(), 0u);
  EXPECT_TRUE(h.cluster.replicas_agree());
}

TEST(HeartbeatView, SelfAlwaysUp) {
  const HeartbeatView view(HeartbeatConfig{}, 4, 2);
  EXPECT_TRUE(view.believes_up(2, 1e9));
}

TEST(HeartbeatView, SuspectsAfterSilence) {
  HeartbeatView view(HeartbeatConfig{}, 3, 0);
  view.heard_from(1, 10.0);
  EXPECT_TRUE(view.believes_up(1, 12.0));
  EXPECT_FALSE(view.believes_up(1, 14.0));  // > 3.5 s silent
  view.heard_from(1, 14.5);                 // came back
  EXPECT_TRUE(view.believes_up(1, 15.0));
}

TEST(HeartbeatView, DelegateFollowsSuspicion) {
  HeartbeatView view(HeartbeatConfig{}, 3, 2);
  view.heard_from(0, 0.0);
  view.heard_from(1, 100.0);
  EXPECT_EQ(view.believed_delegate(1.0), 0u);
  EXPECT_EQ(view.believed_delegate(100.0), 1u);  // 0 long silent
  EXPECT_EQ(view.believed_delegate(1000.0), 2u); // everyone silent: self
}

TEST(HeartbeatView, FlappingPeerFollowsLatestEvidence) {
  HeartbeatView view(HeartbeatConfig{}, 3, 2);
  view.heard_from(0, 0.0);
  view.heard_from(1, 6.0);
  EXPECT_EQ(view.believed_delegate(1.0), 0u);
  // Node 0 goes silent past the suspicion threshold: delegate shifts to 1.
  EXPECT_EQ(view.believed_delegate(8.0), 1u);
  // It flaps back: a single fresh beacon restores it immediately.
  view.heard_from(0, 8.5);
  EXPECT_EQ(view.believed_delegate(9.0), 0u);
  // And silent again: suspicion re-arms from the latest beacon, not the
  // first one.
  view.heard_from(1, 18.0);
  EXPECT_EQ(view.believed_delegate(20.0), 1u);
}

TEST(HeartbeatView, AllPeersSuspectedElectsSelf) {
  HeartbeatView view(HeartbeatConfig{}, 4, 3);
  for (std::uint32_t p = 0; p < 3; ++p) view.heard_from(p, 10.0);
  EXPECT_EQ(view.believed_delegate(11.0), 0u);
  // Total silence: the node must still name a delegate — itself — so a
  // fully partitioned node keeps making progress instead of wedging.
  EXPECT_EQ(view.believed_delegate(1e6), 3u);
  EXPECT_EQ(view.believed_up_count(1e6), 1u);
}

TEST(HeartbeatView, UpCountTracksViews) {
  HeartbeatView view(HeartbeatConfig{}, 4, 0);
  for (std::uint32_t p = 1; p < 4; ++p) view.heard_from(p, 50.0);
  EXPECT_EQ(view.believed_up_count(51.0), 4u);
  EXPECT_EQ(view.believed_up_count(60.0), 1u);  // only self
}

ProtocolConfig heartbeat_config() {
  ProtocolConfig config;
  config.use_heartbeats = true;
  return config;
}

TEST(ProtocolHeartbeat, ConvergesLikeOracleMembership) {
  ProtoHarness h(5, {1.0, 3.0, 5.0, 7.0, 9.0}, heartbeat_config());
  h.sim.run_until(120.0 * 30);
  EXPECT_TRUE(h.cluster.replicas_agree());
  const auto& map = h.cluster.map_of(0);
  EXPECT_GT(map.share(ServerId(4)).to_double(),
            map.share(ServerId(0)).to_double() * 2.0);
}

TEST(ProtocolHeartbeat, FailureDetectedWithoutOracle) {
  ProtoHarness h(5, {1.0, 3.0, 5.0, 7.0, 9.0}, heartbeat_config());
  h.sim.run_until(120.0 * 3 + 10.0);
  const double before_share =
      h.cluster.map_of(1).share(ServerId(4)).to_double();
  EXPECT_GT(before_share, 0.0);
  h.cluster.fail_server(4);  // only kills the process/link — no oracle call
  // Within suspect_after, peers notice; the next round reclaims its region.
  h.sim.run_until(120.0 * 5 + 10.0);
  EXPECT_EQ(h.cluster.map_of(0).share(ServerId(4)).raw(), 0u);
  EXPECT_FALSE(h.cluster.believed_up(0, 4));
}

TEST(ProtocolHeartbeat, DelegateFailoverIsEmergent) {
  ProtoHarness h(5, {1.0, 3.0, 5.0, 7.0, 9.0}, heartbeat_config());
  h.sim.run_until(120.0 * 2 + 10.0);
  EXPECT_EQ(h.cluster.believed_delegate_of(3), 0u);
  const auto rounds_before = h.cluster.updates_published();
  h.cluster.fail_server(0);
  h.sim.run_until(120.0 * 6 + 10.0);
  // Every survivor's local view elected server 1; rounds kept flowing.
  for (std::uint32_t s = 1; s < 5; ++s) {
    EXPECT_EQ(h.cluster.believed_delegate_of(s), 1u) << "node " << s;
  }
  EXPECT_GT(h.cluster.updates_published(), rounds_before + 2);
  EXPECT_TRUE(h.cluster.replicas_agree());
}

TEST(ProtocolHeartbeat, RecoveryRedetected) {
  ProtoHarness h(4, {1.0, 2.0, 4.0, 8.0}, heartbeat_config());
  h.sim.run_until(120.0 * 2 + 10.0);
  h.cluster.fail_server(2);
  h.sim.run_until(120.0 * 4 + 10.0);
  EXPECT_FALSE(h.cluster.believed_up(0, 2));
  h.cluster.recover_server(2);
  // Its heartbeats resume; peers re-admit it and the delegate regrows it.
  h.sim.run_until(120.0 * 8 + 10.0);
  EXPECT_TRUE(h.cluster.believed_up(0, 2));
  EXPECT_GT(h.cluster.map_of(0).share(ServerId(2)).raw(), 0u);
  EXPECT_TRUE(h.cluster.replicas_agree());
}

}  // namespace
}  // namespace anu::proto
