// Tests for the anu_sim configuration parser.
#include "driver/config_file.h"

#include <gtest/gtest.h>

#include <sstream>

namespace anu::driver {
namespace {

std::optional<SimSpec> parse(const std::string& text,
                             ConfigError* error = nullptr) {
  std::istringstream is(text);
  return parse_sim_config(is, error);
}

TEST(ConfigFile, EmptyConfigYieldsDefaults) {
  const auto spec = parse("");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->system.kind, SystemKind::kAnu);
  EXPECT_EQ(spec->workload, SimSpec::WorkloadKind::kSynthetic);
  EXPECT_EQ(spec->experiment.cluster.server_speeds.size(), 5u);
}

TEST(ConfigFile, ParsesFullSyntheticSpec) {
  const auto spec = parse(
      "# comment\n"
      "workload synthetic\n"
      "seed 7\n"
      "file_sets 20\n"
      "requests 1000\n"
      "duration_min 10\n"
      "utilization 0.4\n"
      "speeds 1 2 4\n"
      "system vp\n"
      "vp_per_server 3\n"
      "tuning_interval_s 60\n"
      "move_penalty_s 2.5\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->synthetic.seed, 7u);
  EXPECT_EQ(spec->synthetic.file_set_count, 20u);
  EXPECT_EQ(spec->synthetic.request_count, 1000u);
  EXPECT_DOUBLE_EQ(spec->synthetic.duration, 600.0);
  EXPECT_DOUBLE_EQ(spec->synthetic.target_utilization, 0.4);
  EXPECT_EQ(spec->experiment.cluster.server_speeds,
            (std::vector<double>{1.0, 2.0, 4.0}));
  EXPECT_EQ(spec->system.kind, SystemKind::kVirtualProcessor);
  EXPECT_EQ(spec->system.vp.vp_per_server, 3u);
  EXPECT_DOUBLE_EQ(spec->experiment.tuning_interval, 60.0);
  EXPECT_DOUBLE_EQ(spec->experiment.move_warmup_penalty, 2.5);
  // Capacity follows the declared speeds.
  EXPECT_DOUBLE_EQ(spec->synthetic.cluster_capacity, 7.0);
}

TEST(ConfigFile, ParsesMembershipEvents) {
  const auto spec = parse(
      "fail 30 1\n"
      "recover 50 1\n"
      "add 80 9.0\n"
      "remove 120 0\n");
  ASSERT_TRUE(spec.has_value());
  const auto& events = spec->experiment.failures.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].action, cluster::MembershipAction::kFail);
  EXPECT_DOUBLE_EQ(events[0].when, 1800.0);
  EXPECT_EQ(events[0].server, ServerId(1));
  EXPECT_EQ(events[2].action, cluster::MembershipAction::kAdd);
  EXPECT_DOUBLE_EQ(events[2].speed, 9.0);
  EXPECT_EQ(events[3].action, cluster::MembershipAction::kRemove);
}

TEST(ConfigFile, ParsesDegradeRestoreEvents) {
  const auto spec = parse(
      "degrade 140 2 0.25\n"
      "restore 160 2\n");
  ASSERT_TRUE(spec.has_value());
  const auto& events = spec->experiment.failures.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].action, cluster::MembershipAction::kDegrade);
  EXPECT_DOUBLE_EQ(events[0].when, 140.0 * 60.0);
  EXPECT_EQ(events[0].server, ServerId(2));
  EXPECT_DOUBLE_EQ(events[0].factor, 0.25);
  EXPECT_EQ(events[1].action, cluster::MembershipAction::kRestore);
  EXPECT_DOUBLE_EQ(events[1].when, 160.0 * 60.0);
}

TEST(ConfigFile, RejectsBadDegradeFactor) {
  // A degrade factor must land in (0, 1]: 0 would be a failure, >1 a boost.
  EXPECT_FALSE(parse("degrade 10 0 0\n").has_value());
  EXPECT_FALSE(parse("degrade 10 0 1.5\n").has_value());
  EXPECT_FALSE(parse("degrade 10 0 -0.3\n").has_value());
  EXPECT_FALSE(parse("degrade 10 0\n").has_value());
  ConfigError error;
  EXPECT_FALSE(parse("degrade 10 0 2\n", &error).has_value());
  EXPECT_EQ(error.line, 1u);
}

TEST(ConfigFile, RejectsOutOfOrderEvents) {
  ConfigError error;
  EXPECT_FALSE(parse("fail 50 1\nrecover 30 1\n", &error).has_value());
  EXPECT_EQ(error.line, 2u);
}

TEST(ConfigFile, RejectsUnknownKey) {
  ConfigError error;
  EXPECT_FALSE(parse("bogus 1\n", &error).has_value());
  EXPECT_EQ(error.line, 1u);
  EXPECT_NE(error.message.find("bogus"), std::string::npos);
}

TEST(ConfigFile, RejectsBadValues) {
  EXPECT_FALSE(parse("utilization 1.5\n").has_value());
  EXPECT_FALSE(parse("utilization 0\n").has_value());
  EXPECT_FALSE(parse("speeds\n").has_value());
  EXPECT_FALSE(parse("speeds 1 -2\n").has_value());
  EXPECT_FALSE(parse("system nope\n").has_value());
  EXPECT_FALSE(parse("workload nope\n").has_value());
  EXPECT_FALSE(parse("file_sets 0\n").has_value());
  EXPECT_FALSE(parse("placement_choices 9\n").has_value());
  EXPECT_FALSE(parse("seed\n").has_value());
}

TEST(ConfigFile, CacheModelKeys) {
  const auto spec = parse("cache_penalty_x 3.5\ncache_warmup_requests 7\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_TRUE(spec->experiment.cluster.cache.enabled);
  EXPECT_DOUBLE_EQ(spec->experiment.cluster.cache.cold_penalty_factor, 3.5);
  EXPECT_EQ(spec->experiment.cluster.cache.warmup_requests, 7u);
}

TEST(ConfigFile, CachePenaltyOneDisablesModel) {
  const auto spec = parse("cache_penalty_x 1\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_FALSE(spec->experiment.cluster.cache.enabled);
}

TEST(ConfigFile, RejectsSubUnityCachePenalty) {
  EXPECT_FALSE(parse("cache_penalty_x 0.5\n").has_value());
  EXPECT_FALSE(parse("cache_warmup_requests 0\n").has_value());
}

TEST(ConfigFile, DispatchStrategyKeys) {
  const auto spec = parse(
      "system jsqd\n"
      "jsq_d 4\n"
      "jsq_speed_aware 1\n"
      "jiq_policy fastest\n"
      "jiq_weighted_fallback 0\n"
      "red_d 3\n"
      "red_cancel start\n"
      "red_speed_aware 1\n"
      "strategy_seed 1234\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->system.kind, SystemKind::kJsqD);
  EXPECT_EQ(spec->system.jsq.d, 4u);
  EXPECT_TRUE(spec->system.jsq.speed_aware);
  EXPECT_EQ(spec->system.jiq.policy, balance::JiqConfig::TokenPolicy::kFastest);
  EXPECT_FALSE(spec->system.jiq.weighted_fallback);
  EXPECT_EQ(spec->system.red.d, 3u);
  EXPECT_EQ(spec->system.red.cancel,
            balance::RedundancyDConfig::CancelMode::kOnStart);
  EXPECT_TRUE(spec->system.red.speed_aware);
  // strategy_seed feeds all three dispatch strategies.
  EXPECT_EQ(spec->system.jsq.seed, 1234u);
  EXPECT_EQ(spec->system.jiq.seed, 1234u);
  EXPECT_EQ(spec->system.red.seed, 1234u);
}

TEST(ConfigFile, DispatchStrategyAliases) {
  EXPECT_EQ(parse("system jsq-d\n")->system.kind, SystemKind::kJsqD);
  EXPECT_EQ(parse("system jiq\n")->system.kind, SystemKind::kJoinIdleQueue);
  EXPECT_EQ(parse("system redundancy\n")->system.kind,
            SystemKind::kRedundancyD);
  EXPECT_EQ(parse("system red\n")->system.kind, SystemKind::kRedundancyD);
}

TEST(ConfigFile, RejectsBadDispatchValues) {
  ConfigError error;
  EXPECT_FALSE(parse("jsq_d 0\n", &error));
  EXPECT_NE(error.message.find("jsq_d"), std::string::npos);
  EXPECT_FALSE(parse("jsq_d 9\n", &error));
  EXPECT_FALSE(parse("red_d 99\n", &error));
  EXPECT_FALSE(parse("jiq_policy random\n", &error));
  EXPECT_NE(error.message.find("jiq_policy"), std::string::npos);
  EXPECT_FALSE(parse("red_cancel never\n", &error));
  EXPECT_NE(error.message.find("red_cancel"), std::string::npos);
}

TEST(ConfigFile, TraceFileImpliesTraceWorkload) {
  const auto spec = parse("trace_file /tmp/x.trace\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->workload, SimSpec::WorkloadKind::kTrace);
  EXPECT_EQ(spec->trace_file, "/tmp/x.trace");
}

TEST(ConfigFile, PlacementChoicesFlowsToAnuConfig) {
  const auto spec = parse("placement_choices 2\n");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->system.anu.placement_choices, 2u);
}

TEST(ConfigFile, BuildWorkloadSynthetic) {
  auto spec = parse("file_sets 5\nrequests 100\nduration_min 1\n");
  ASSERT_TRUE(spec.has_value());
  const auto workload = build_workload(*spec);
  ASSERT_TRUE(workload.has_value());
  EXPECT_EQ(workload->file_set_count(), 5u);
  EXPECT_EQ(workload->request_count(), 100u);
}

TEST(ConfigFile, BuildWorkloadSynthesizedTrace) {
  auto spec = parse("workload trace\nfile_sets 4\nrequests 200\n"
                    "duration_min 2\n");
  ASSERT_TRUE(spec.has_value());
  const auto workload = build_workload(*spec);
  ASSERT_TRUE(workload.has_value());
  EXPECT_EQ(workload->file_set_count(), 4u);
}

TEST(ConfigFile, BuildWorkloadMissingTraceFileFails) {
  auto spec = parse("trace_file /nonexistent/x.trace\n");
  ASSERT_TRUE(spec.has_value());
  ConfigError error;
  EXPECT_FALSE(build_workload(*spec, &error).has_value());
  EXPECT_NE(error.message.find("/nonexistent/x.trace"), std::string::npos);
}

TEST(ConfigFile, MissingFileReportsError) {
  ConfigError error;
  EXPECT_FALSE(parse_sim_config_file("/nonexistent/anu.conf", &error)
                   .has_value());
  EXPECT_EQ(error.line, 0u);
}

TEST(ConfigFile, EndToEndSmallRun) {
  auto spec = parse(
      "file_sets 8\nrequests 500\nduration_min 5\nsystem anu\n"
      "tuning_interval_s 30\nfail 2 4\nrecover 3 4\n");
  ASSERT_TRUE(spec.has_value());
  const auto workload = build_workload(*spec);
  ASSERT_TRUE(workload.has_value());
  auto balancer = make_balancer(spec->system,
                                spec->experiment.cluster.server_speeds.size());
  const auto result = run_experiment(spec->experiment, *workload, *balancer);
  EXPECT_GT(result.requests_completed, 400u);
}

}  // namespace
}  // namespace anu::driver
