#!/usr/bin/env bash
# Full verification: format check, configure, build, test (tiered: obs,
# pool, chaos, then everything), run every figure harness and
# microbenchmark. This is what CI runs (.github/workflows/ci.yml mirrors
# these stages — docs/ci.md) and what EXPERIMENTS.md numbers come from.
set -euo pipefail
cd "$(dirname "$0")/.."

# Per-test wall-clock ceiling for every ctest invocation below. A hung
# test (e.g. a pool deadlock regression) fails fast instead of wedging
# the whole check.
CTEST_TIMEOUT=600

# Style gate. clang-format is optional in minimal containers; the check is
# skipped (with a warning) when absent rather than silently diverging.
if command -v clang-format >/dev/null 2>&1; then
  echo "=== clang-format --dry-run --Werror ==="
  find src tests tools bench -name '*.h' -o -name '*.cpp' | \
    xargs clang-format --dry-run --Werror
else
  echo "warning: clang-format not found; skipping format check" >&2
fi

# Docs gate: every relative link and #anchor in README.md and docs/
# must resolve (scripts/check_doc_links.py; mirrored by the docs-links
# CI job). python3 is optional in minimal containers.
if command -v python3 >/dev/null 2>&1; then
  echo "=== doc link check ==="
  python3 scripts/check_doc_links.py
else
  echo "warning: python3 not found; skipping doc link check" >&2
fi

cmake -B build -G Ninja
cmake --build build

# Tiered test run: observability suite first (fast, and the schema/doc
# contract fails loudly), then the pool suite (determinism + batch-runner
# acceptance checks), then the chaos suite (randomized fault scenarios
# must converge and reconcile — docs/chaos.md), then everything.
ctest --test-dir build -L obs --output-on-failure --timeout "$CTEST_TIMEOUT"
ctest --test-dir build -L pool --output-on-failure --timeout "$CTEST_TIMEOUT"
ctest --test-dir build -L chaos --output-on-failure --timeout "$CTEST_TIMEOUT"
ctest --test-dir build --output-on-failure --timeout "$CTEST_TIMEOUT"

# Sanitizer pass: the whole suite again under ASan+UBSan. Some toolchains
# (or containers without the runtime libs) can't link it; skip with a
# warning rather than failing the whole check — but keep the log so a
# real build break is visible instead of silently discarded.
ASAN_LOG=build-asan-configure.log
if cmake -B build-asan -G Ninja -DANU_SANITIZE=ON >"$ASAN_LOG" 2>&1 \
   && cmake --build build-asan >>"$ASAN_LOG" 2>&1; then
  echo "=== ASan+UBSan test pass ==="
  ctest --test-dir build-asan --output-on-failure --timeout "$CTEST_TIMEOUT"
else
  echo "warning: ASan+UBSan build failed; skipping sanitizer pass" >&2
  echo "--- last 30 lines of $ASAN_LOG ---" >&2
  tail -n 30 "$ASAN_LOG" >&2
fi

# Every figure harness and microbenchmark, each dropping its
# machine-readable BENCH_<name>.json next to the binaries (bench_compare
# diffs these against a baseline — docs/ci.md).
export ANU_BENCH_JSON_DIR=build/bench
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "=== $b ==="
    "$b"
  fi
done
