#!/usr/bin/env bash
# Full verification: format check, configure, build, test (including the
# obs-labeled observability suite), run every figure harness and
# microbenchmark. This is what CI runs and what EXPERIMENTS.md numbers come
# from.
set -euo pipefail
cd "$(dirname "$0")/.."

# Style gate. clang-format is optional in minimal containers; the check is
# skipped (with a warning) when absent rather than silently diverging.
if command -v clang-format >/dev/null 2>&1; then
  echo "=== clang-format --dry-run --Werror ==="
  find src tests tools -name '*.h' -o -name '*.cpp' | \
    xargs clang-format --dry-run --Werror
else
  echo "warning: clang-format not found; skipping format check" >&2
fi

cmake -B build -G Ninja
cmake --build build

# Observability suite first (fast, and the schema/doc contract fails
# loudly), then everything.
ctest --test-dir build -L obs --output-on-failure
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "=== $b ==="
    "$b"
  fi
done
