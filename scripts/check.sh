#!/usr/bin/env bash
# Full verification: configure, build, test, run every figure harness and
# microbenchmark. This is what CI runs and what EXPERIMENTS.md numbers come
# from.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "=== $b ==="
    "$b"
  fi
done
