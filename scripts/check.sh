#!/usr/bin/env bash
# Full verification, split into tiers so one gate can be run alone:
#
#   scripts/check.sh              # everything, in order (what CI mirrors)
#   scripts/check.sh tsan         # just the ThreadSanitizer pass
#   scripts/check.sh format lint  # any subset, in the order given
#
# Tiers: format docs lint build test integration tidy asan tsan bench
# (.github/workflows/ci.yml mirrors these stages — docs/ci.md; the
# static-analysis tiers are specified in docs/static-analysis.md; the
# integration tier boots the live anu_serve demo — docs/runtime.md.)
# Optional tools (clang-format, clang-tidy, python3, sanitizer runtimes)
# degrade to a loud skip rather than a silent pass or a hard failure, so
# the script stays runnable in minimal containers.
set -euo pipefail
cd "$(dirname "$0")/.."

# Per-test wall-clock ceiling for every ctest invocation below. A hung
# test (e.g. a pool deadlock regression) fails fast instead of wedging
# the whole check. TSan runs are 5-15x slower, hence the larger ceiling.
CTEST_TIMEOUT=600
TSAN_CTEST_TIMEOUT=1800

tier_format() {
  # Style gate. clang-format is optional in minimal containers; the check is
  # skipped (with a warning) when absent rather than silently diverging.
  if command -v clang-format >/dev/null 2>&1; then
    echo "=== clang-format --dry-run --Werror ==="
    find src tests tools bench -name '*.h' -o -name '*.cpp' | \
      xargs clang-format --dry-run --Werror
  else
    echo "warning: clang-format not found; skipping format check" >&2
  fi
}

tier_docs() {
  # Docs gate: every relative link and #anchor in README.md and docs/
  # must resolve (scripts/check_doc_links.py; mirrored by the docs-links
  # CI job). python3 is optional in minimal containers.
  if command -v python3 >/dev/null 2>&1; then
    echo "=== doc link check ==="
    python3 scripts/check_doc_links.py
  else
    echo "warning: python3 not found; skipping doc link check" >&2
  fi
}

tier_lint() {
  # Determinism linter (tools/anu_lint.py — docs/static-analysis.md): bans
  # wall-clock/raw-RNG/unordered-iteration/pointer-key/raw-pool use in
  # result-affecting code and cross-checks test registration and bench
  # baselines. The fixture test proves every rule actually fires.
  if command -v python3 >/dev/null 2>&1; then
    echo "=== anu_lint (determinism linter) ==="
    python3 tools/anu_lint.py
    python3 tests/anu_lint_test.py
  else
    echo "warning: python3 not found; skipping determinism lint" >&2
  fi
}

tier_build() {
  cmake -B build -G Ninja
  cmake --build build
}

tier_test() {
  # Tiered test run: observability suite first (fast, and the schema/doc
  # contract fails loudly), then the pool suite (determinism + batch-runner
  # acceptance checks), then the chaos suite (randomized fault scenarios
  # must converge and reconcile — docs/chaos.md), then everything.
  ctest --test-dir build -L obs --output-on-failure --timeout "$CTEST_TIMEOUT"
  ctest --test-dir build -L pool --output-on-failure --timeout "$CTEST_TIMEOUT"
  ctest --test-dir build -L chaos --output-on-failure --timeout "$CTEST_TIMEOUT"
  ctest --test-dir build --output-on-failure --timeout "$CTEST_TIMEOUT"
}

tier_integration() {
  # Live-runtime integration test: boot anu_serve on loopback sockets,
  # drive the scripted client, assert routed keys + >=1 retune
  # (scripts/integration_test.sh — docs/runtime.md). Needs the demo built;
  # reuses the build tier's tree.
  [ -x build/examples/anu_serve ] || {
    cmake -B build -G Ninja
    cmake --build build --target anu_serve
  }
  echo "=== anu_serve integration test ==="
  ./scripts/integration_test.sh build
}

tier_tidy() {
  # clang-tidy over the library and harness sources, configured by
  # .clang-tidy at the repo root. Needs the compile database, which every
  # configure exports (CMAKE_EXPORT_COMPILE_COMMANDS=ON + root symlink).
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "warning: clang-tidy not found; skipping tidy tier" >&2
    return 0
  fi
  [ -f build/compile_commands.json ] || cmake -B build -G Ninja
  echo "=== clang-tidy (full sweep) ==="
  find src tools bench -name '*.cpp' | xargs clang-tidy -p build --quiet
}

tier_asan() {
  # Sanitizer pass: the whole suite again under ASan+UBSan. Some toolchains
  # (or containers without the runtime libs) can't link it; skip with a
  # warning rather than failing the whole check — but keep the log so a
  # real build break is visible instead of silently discarded.
  local log=build-asan-configure.log
  if cmake -B build-asan -G Ninja -DANU_SANITIZE=ON >"$log" 2>&1 \
     && cmake --build build-asan >>"$log" 2>&1; then
    echo "=== ASan+UBSan test pass ==="
    ctest --test-dir build-asan --output-on-failure --timeout "$CTEST_TIMEOUT"
  else
    echo "warning: ASan+UBSan build failed; skipping sanitizer pass" >&2
    echo "--- last 30 lines of $log ---" >&2
    tail -n 30 "$log" >&2
  fi
}

tier_tsan() {
  # ThreadSanitizer pass over the concurrency-sensitive suites: the pool
  # tier (work-stealing pool, batch/matrix byte-determinism CLI checks) and
  # the chaos tier. Reports fail the run (TSan exits 66 on a report);
  # suppressions, if ever unavoidable, live in tsan.supp with justification
  # (docs/static-analysis.md) — there are currently none.
  local log=build-tsan-configure.log
  if cmake -B build-tsan -G Ninja -DANU_TSAN=ON >"$log" 2>&1 \
     && cmake --build build-tsan >>"$log" 2>&1; then
    echo "=== TSan concurrency test pass (pool + chaos tiers) ==="
    TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=0 second_deadlock_stack=1}" \
      ctest --test-dir build-tsan -L 'pool|chaos' --output-on-failure \
        --timeout "$TSAN_CTEST_TIMEOUT"
  else
    echo "warning: TSan build failed; skipping tsan tier" >&2
    echo "--- last 30 lines of $log ---" >&2
    tail -n 30 "$log" >&2
  fi
}

tier_bench() {
  # Every figure harness and microbenchmark, each dropping its
  # machine-readable BENCH_<name>.json next to the binaries (bench_compare
  # diffs these against a baseline — docs/ci.md).
  export ANU_BENCH_JSON_DIR=build/bench
  local b
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "=== $b ==="
      "$b"
    fi
  done
}

ALL_TIERS=(format docs lint build test integration tidy asan tsan bench)
TIERS=("$@")
if [ ${#TIERS[@]} -eq 0 ]; then
  TIERS=("${ALL_TIERS[@]}")
fi

for tier in "${TIERS[@]}"; do
  case "$tier" in
    format|docs|lint|build|test|integration|tidy|asan|tsan|bench)
      "tier_$tier"
      ;;
    all)
      for t in "${ALL_TIERS[@]}"; do "tier_$t"; done
      ;;
    *)
      echo "unknown tier: $tier (known: ${ALL_TIERS[*]} all)" >&2
      exit 2
      ;;
  esac
done
