#!/usr/bin/env bash
# Full verification: format check, configure, build, test (including the
# obs-labeled observability suite), run every figure harness and
# microbenchmark. This is what CI runs and what EXPERIMENTS.md numbers come
# from.
set -euo pipefail
cd "$(dirname "$0")/.."

# Style gate. clang-format is optional in minimal containers; the check is
# skipped (with a warning) when absent rather than silently diverging.
if command -v clang-format >/dev/null 2>&1; then
  echo "=== clang-format --dry-run --Werror ==="
  find src tests tools -name '*.h' -o -name '*.cpp' | \
    xargs clang-format --dry-run --Werror
else
  echo "warning: clang-format not found; skipping format check" >&2
fi

cmake -B build -G Ninja
cmake --build build

# Observability suite first (fast, and the schema/doc contract fails
# loudly), then the chaos suite (randomized fault scenarios must converge
# and reconcile — docs/chaos.md), then everything.
ctest --test-dir build -L obs --output-on-failure
ctest --test-dir build -L chaos --output-on-failure
ctest --test-dir build --output-on-failure

# Sanitizer pass: the whole suite again under ASan+UBSan. Some toolchains
# (or containers without the runtime libs) can't link it; skip with a
# warning rather than failing the whole check.
if cmake -B build-asan -G Ninja -DANU_SANITIZE=ON >/dev/null 2>&1 \
   && cmake --build build-asan >/dev/null 2>&1; then
  echo "=== ASan+UBSan test pass ==="
  ctest --test-dir build-asan --output-on-failure
else
  echo "warning: ASan+UBSan build failed; skipping sanitizer pass" >&2
fi

for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "=== $b ==="
    "$b"
  fi
done
