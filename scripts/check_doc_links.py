#!/usr/bin/env python3
"""Relative-link checker for the Markdown docs.

Scans README.md plus every .md file under docs/ for Markdown links,
verifies that relative targets exist on disk, and that fragment links
(#anchors) name a real heading in the target file using GitHub's slug
rules. External links (http/https/mailto) are not fetched.

Usage: scripts/check_doc_links.py [root]
Exit status 0 when every link resolves, 1 otherwise (one line per
broken link). Wired into scripts/check.sh and the docs-links CI step.
"""

import re
import sys
from pathlib import Path

# Inline links: [text](target). Skips images' leading "!"; tolerates
# titles: [text](target "title"). Reference-style links are rare in this
# repo and intentionally unsupported.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
# Fences may be indented (e.g. inside list items); ``` and ~~~ both open.
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")
# Inline code spans are stripped before link matching: C++ snippets in
# prose — `[[maybe_unused]]`, `map<K*, V>(...)`, annotation macros — would
# otherwise parse as bracket-paren "links" and false-positive.
INLINE_CODE_RE = re.compile(r"`[^`]*`")


def github_slug(heading: str) -> str:
    """GitHub's anchor algorithm: lowercase, strip punctuation, spaces->dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # unwrap inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """All heading slugs in a file, with GitHub's -1/-2 dedup suffixes."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_file(md: Path, root: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    errors: list[str] = []
    in_fence = False
    for lineno, line in enumerate(md.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        line = INLINE_CODE_RE.sub("", line)
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            dest = md if not path_part else (md.parent / path_part).resolve()
            rel = md.relative_to(root)
            if not dest.exists():
                errors.append(f"{rel}:{lineno}: broken link: {target}")
                continue
            if fragment and dest.suffix == ".md":
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors_of(dest)
                if fragment.lower() not in anchor_cache[dest]:
                    errors.append(f"{rel}:{lineno}: missing anchor: {target}")
    return errors


def main() -> int:
    root = Path(sys.argv[1]).resolve() if len(sys.argv) > 1 else Path.cwd()
    files = sorted((root / "docs").glob("**/*.md"))
    readme = root / "README.md"
    if readme.exists():
        files.insert(0, readme)
    if not files:
        print(f"no Markdown files found under {root}", file=sys.stderr)
        return 1

    anchor_cache: dict[Path, set[str]] = {}
    errors: list[str] = []
    for md in files:
        errors.extend(check_file(md, root, anchor_cache))

    for err in errors:
        print(err)
    checked = len(files)
    if errors:
        print(f"{len(errors)} broken link(s) across {checked} files", file=sys.stderr)
        return 1
    print(f"ok: {checked} Markdown files, all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
