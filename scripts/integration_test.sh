#!/usr/bin/env bash
# Live-runtime integration test (docs/runtime.md): boot `anu_serve` — real
# protocol nodes over loopback UDP, timed by the realtime clock — drive the
# scripted client against it, and assert the control loop actually closed:
#
#   * the client got answers for >=90% of its keys (its own PASS gate) and
#     every server routed at least one key;
#   * the server logged at least one successful retune ("retune version="),
#     i.e. reports flowed to the delegate and a new region map came back;
#   * replicas agreed on every logged retune, and both processes exited 0.
#
# Usage: scripts/integration_test.sh [build-dir]     (default: build)
# Environment:
#   ANU_INTEGRATION_PORT     client-facing UDP port (default 19733)
#   ANU_INTEGRATION_LOG_DIR  where serve.log/client.log land
#                            (default <build-dir>/integration-logs; CI
#                            uploads this directory on failure)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
BIN="$BUILD_DIR/examples/anu_serve"
if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found; build it first (cmake --build $BUILD_DIR --target anu_serve)" >&2
  exit 2
fi

PORT="${ANU_INTEGRATION_PORT:-19733}"
RUN_SECONDS=6
REQUESTS=150
LOG_DIR="${ANU_INTEGRATION_LOG_DIR:-$BUILD_DIR/integration-logs}"
mkdir -p "$LOG_DIR"
SERVE_LOG="$LOG_DIR/serve.log"
CLIENT_LOG="$LOG_DIR/client.log"

fail() {
  echo "FAIL: $*" >&2
  echo "--- $SERVE_LOG ---" >&2
  cat "$SERVE_LOG" >&2 || true
  echo "--- $CLIENT_LOG ---" >&2
  cat "$CLIENT_LOG" >&2 || true
  exit 1
}

# Server: 3 nodes, 1 s tuning rounds, server 2 four times slower than
# nominal — the asymmetry the tuner must react to within the run.
"$BIN" --servers 3 --port "$PORT" --run-seconds "$RUN_SECONDS" \
  --slow 1,1,4 >"$SERVE_LOG" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

# Wait for the ROUTE socket before aiming the client at it.
up=""
for _ in $(seq 1 50); do
  if grep -q "nodes up" "$SERVE_LOG" 2>/dev/null; then up=1; break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then break; fi
  sleep 0.1
done
[ -n "$up" ] || fail "server did not come up on port $PORT"

: >"$CLIENT_LOG"
client_exit=0
"$BIN" --client --port "$PORT" --requests "$REQUESTS" >"$CLIENT_LOG" 2>&1 \
  || client_exit=$?

server_exit=0
wait "$SERVER_PID" || server_exit=$?
trap - EXIT

[ "$client_exit" -eq 0 ] || fail "client exited $client_exit"
[ "$server_exit" -eq 0 ] || fail "server exited $server_exit"

# Routed-key accounting: every server took real traffic.
for s in 0 1 2; do
  grep -Eq "server $s routed [1-9][0-9]* keys" "$CLIENT_LOG" \
    || fail "server $s routed no keys"
done

# At least one live retune happened, and replicas agreed on each one.
grep -q "retune version=" "$SERVE_LOG" \
  || fail "no retune was logged in $RUN_SECONDS s"
if grep "retune version=" "$SERVE_LOG" | grep -vq "agree=yes"; then
  fail "replicas disagreed on a logged retune"
fi

retunes=$(grep -c "retune version=" "$SERVE_LOG")
echo "integration test PASS: $retunes retunes, logs in $LOG_DIR"
