// libanu — the embeddable ANU load balancer (public API).
//
// This is the paper's decision core behind a C++ facade with no internal
// headers: feed it membership changes and per-interval latency reports,
// ask it to retune, route keys through the current region map. The same
// code drives the in-repo simulator, the `anu_serve` demo, and any
// application that links `libanu` — docs/runtime.md walks through both
// embeddings.
//
// Thread model: a Balancer is confined to one thread (or externally
// synchronized), like every other component in this codebase.
//
//   anu::BalancerConfig config;
//   anu::Balancer balancer(4, config);        // 4 servers, equal shares
//   balancer.record_latency(0, 0.120, 500);   // server, mean seconds, count
//   ...
//   const auto result = balancer.retune();    // one delegate round
//   const std::uint32_t owner = balancer.route("user:4711");
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace anu {

/// Tuning knobs, mirroring the delegate's damped multiplicative update
/// (see docs/design notes; defaults are the paper-calibrated values).
struct BalancerConfig {
  /// Damping exponent of the multiplicative update (1 = undamped).
  double alpha = 0.3;
  /// Max multiplicative growth of a share in one round.
  double growth_cap = 1.5;
  /// Max multiplicative shrink of a share in one round.
  double shrink_cap = 3.0;
  /// Growth factor for a server that completed nothing this round.
  double idle_growth = 1.5;
  /// Share floor as a fraction of the equal share.
  double min_share_fraction = 0.1;
  /// Relative dead band around the system average latency.
  double dead_band = 1.0;
  /// Seed of the hash family mapping keys to the unit interval. All
  /// replicas of one cluster must agree on it.
  std::uint64_t hash_seed = 0x616e755f68617368ULL;
  /// Probe-round budget for route(); the default never exhausts in
  /// practice (each round hits an occupied region with probability 1/2).
  std::uint32_t max_probe_rounds = 64;
};

/// Result of one tuning round.
struct RetuneResult {
  /// Map version after the round (increments once per retune()).
  std::uint64_t version = 0;
  /// Completion-weighted mean latency across reporting servers (0 when
  /// nothing completed).
  double system_average = 0.0;
  /// Whether any share actually moved.
  bool changed = false;
  /// Servers pinned at the share floor yet still above-average slow — the
  /// paper's "incompetent component" signal; surface to an operator.
  std::vector<std::uint32_t> incompetent;
};

class Balancer {
 public:
  /// `server_count` servers starting from the deterministic equal-share
  /// map. `server_count` must be positive.
  explicit Balancer(std::size_t server_count,
                    const BalancerConfig& config = {});
  ~Balancer();
  Balancer(Balancer&&) noexcept;
  Balancer& operator=(Balancer&&) noexcept;
  Balancer(const Balancer&) = delete;
  Balancer& operator=(const Balancer&) = delete;

  [[nodiscard]] std::size_t server_count() const;

  /// Marks a server down (its region is reclaimed at the next retune) or
  /// back up (it regrows from the share floor).
  void set_server_up(std::uint32_t server, bool up);
  [[nodiscard]] bool server_up(std::uint32_t server) const;

  /// Records server `server`'s report for the closing interval: mean
  /// request latency in seconds over `completed` finished requests.
  /// Overwrites any earlier report in the same interval.
  void record_latency(std::uint32_t server, double mean_latency,
                      std::uint64_t completed);

  /// Runs one delegate round on the recorded reports, applies the new map,
  /// and clears the reports. An up server with no report reads as idle
  /// (bounded growth), a down server's region is reclaimed.
  RetuneResult retune();

  /// Routes a key on the current map: the server that owns it.
  [[nodiscard]] std::uint32_t route(std::string_view key) const;

  /// Current map version (0 until the first retune()).
  [[nodiscard]] std::uint64_t version() const;

  /// Per-server shares of the unit interval, summing to 0.5 (the map keeps
  /// half the interval unoccupied — that slack is what lets shares move).
  [[nodiscard]] std::vector<double> shares() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace anu
