// Heterogeneous web-serving cluster with a flash crowd.
//
// §4: ANU randomization "is suitable for any cluster system that partitions
// workload and has relatively short tasks, such as Web serving". Here the
// workload units are virtual-host sites on a shared-storage web farm; a
// flash crowd triples one site's traffic mid-run. We contrast ANU with
// simple randomization: the static hash cannot react, ANU re-tunes.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "driver/balancer_factory.h"
#include "driver/experiment.h"
#include "workload/workload.h"

#include "common/distributions.h"
#include "common/rng.h"

using namespace anu;
using namespace anu::driver;

namespace {

/// Builds a web workload: `sites` virtual hosts with Zipf popularity,
/// exponential think times, and a flash crowd on the most popular site
/// during [crowd_start, crowd_end) at `crowd_factor` times its normal rate.
workload::Workload make_web_workload(std::size_t sites,
                                     std::size_t request_count,
                                     SimTime duration, SimTime crowd_start,
                                     SimTime crowd_end, double crowd_factor) {
  // A mild Zipf keeps every site small enough to fit on one server even at
  // crowd peak — a site is the indivisible placement unit, so a site hotter
  // than the largest server would swamp any balancer.
  const Zipf popularity(sites, 0.7);

  // Per-site request counts (base + flash-crowd extras on site 0).
  std::vector<std::size_t> base(sites), extra(sites, 0);
  std::size_t total = 0;
  for (std::size_t site = 0; site < sites; ++site) {
    base[site] = static_cast<std::size_t>(
        popularity.pmf(site) * static_cast<double>(request_count));
    total += base[site];
  }
  extra[0] = static_cast<std::size_t>(static_cast<double>(base[0]) *
                                      (crowd_factor - 1.0));
  total += extra[0];

  // Demand sized for ~45% cluster load over the whole run.
  const double capacity = 25.0;
  const double mean_demand =
      0.45 * duration * capacity / static_cast<double>(total);

  std::vector<workload::FileSet> file_sets;
  std::vector<workload::Request> requests;
  requests.reserve(total);
  for (std::uint32_t site = 0; site < sites; ++site) {
    file_sets.push_back(
        {FileSetId(site), "site-" + std::to_string(site) + ".example",
         mean_demand * static_cast<double>(base[site] + extra[site])});
    Xoshiro256 site_rng = Xoshiro256::substream(99, site);
    for (std::size_t i = 0; i < base[site]; ++i) {
      requests.push_back({site_rng.next_double() * duration, FileSetId(site),
                          mean_demand});
    }
    for (std::size_t i = 0; i < extra[site]; ++i) {
      requests.push_back(
          {crowd_start + site_rng.next_double() * (crowd_end - crowd_start),
           FileSetId(site), mean_demand});
    }
  }
  std::sort(requests.begin(), requests.end(),
            [](const workload::Request& a, const workload::Request& b) {
              return a.arrival < b.arrival;
            });
  return workload::Workload(std::move(file_sets), std::move(requests));
}

}  // namespace

int main() {
  std::printf("web_cluster: flash crowd on a heterogeneous web farm\n\n");

  constexpr SimTime kDuration = 3600.0;
  const auto workload =
      make_web_workload(/*sites=*/40, /*request_count=*/40'000, kDuration,
                        /*crowd_start=*/1200.0, /*crowd_end=*/2400.0,
                        /*crowd_factor=*/2.0);
  std::printf("workload: %zu requests over %zu sites in one hour;\n"
              "flash crowd on site-0 between minute 20 and 40\n\n",
              workload.request_count(), workload.file_set_count());

  ExperimentConfig config;
  config.cluster.server_speeds = {1.0, 2.0, 4.0, 8.0, 2.0, 8.0};
  config.tuning_interval = 60.0;  // web traffic shifts faster than metadata
  config.series_window = 300.0;

  Table table({"system", "mean_latency", "p_stddev", "crowd_window_mean",
               "moves"});
  for (SystemKind kind : {SystemKind::kSimpleRandom, SystemKind::kAnu}) {
    SystemConfig system;
    system.kind = kind;
    auto balancer = make_balancer(system, config.cluster.server_speeds.size());
    const auto result = run_experiment(config, workload, *balancer);
    // Mean latency inside the crowd window, averaged over servers' windows.
    double crowd_sum = 0.0;
    std::size_t crowd_n = 0;
    for (const auto& series : result.latency_over_time) {
      for (const auto& point : series) {
        if (point.time > 1200.0 && point.time <= 2400.0) {
          crowd_sum += point.value;
          ++crowd_n;
        }
      }
    }
    table.add_row({system_label(kind),
                   format_double(result.aggregate.mean(), 3),
                   format_double(result.aggregate.stddev(), 3),
                   format_double(crowd_sum / static_cast<double>(crowd_n), 3),
                   std::to_string(result.total_moved)});
  }
  table.print(std::cout);

  std::printf("\nANU sheds the flash-crowd site onto the big servers within\n"
              "a few one-minute tuning rounds; the static hash placement\n"
              "rides out the crowd wherever the site happened to land.\n");
  return 0;
}
