// The ANU control protocol at message level (paper §4).
//
// Five server nodes exchange real (simulated) messages: latency reports to
// the elected delegate, region-table broadcasts, shed notices. Watch a
// delegate crash mid-experiment — the next node takes over with nothing
// but the reports it receives, because the tuning round is a pure
// function. This is the distributed-systems story behind the single-
// process AnuBalancer used in the other examples.
// The membership timeline below is written as a coroutine process
// (sim::Process) — the YACSIM-style sequential scripting the original
// simulator used.
#include <cstdio>

#include "proto/network.h"
#include "proto/protocol.h"
#include "sim/process.h"
#include "sim/sim_clock.h"

using namespace anu;
using namespace anu::proto;

namespace {

void show(const ProtocolCluster& cluster, std::size_t servers) {
  std::printf("  delegate=s%u  versions:", cluster.delegate());
  for (std::uint32_t s = 0; s < servers; ++s) {
    std::printf(" s%u=v%llu", s,
                static_cast<unsigned long long>(cluster.version_of(s)));
  }
  std::printf("  agree=%s\n", cluster.replicas_agree() ? "yes" : "no");
  std::printf("  shares(s0-node view):");
  for (std::uint32_t s = 0; s < servers; ++s) {
    std::printf(" %.3f", cluster.map_of(0).share(ServerId(s)).to_double());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("control_plane: the section-4 protocol over a simulated "
              "network\n\n");

  constexpr std::size_t kServers = 5;
  const std::vector<double> speeds{1.0, 3.0, 5.0, 7.0, 9.0};

  sim::Simulation sim;
  sim::SimClock clock(sim);
  Network network(clock, NetworkConfig{}, kServers);
  ProtocolCluster cluster(
      clock, network, ProtocolConfig{}, kServers,
      [&](std::uint32_t s, UnitPoint share) {
        // Data-plane stand-in: latency tracks share/speed.
        return balance::ServerReport{
            share.to_double() / speeds[s] * 100.0 + 1e-6,
            static_cast<std::size_t>(share.to_double() * 1e4) + 1};
      });
  std::vector<std::string> file_sets;
  for (int i = 0; i < 50; ++i) file_sets.push_back("fs/" + std::to_string(i));
  cluster.register_file_sets(file_sets);

  std::printf("start (equal shares, version 0 everywhere):\n");
  show(cluster, kServers);

  // The experiment timeline, scripted as a simulation process: sequential
  // code that sleeps in simulated time (YACSIM style).
  auto timeline = [&](sim::Simulation& s) -> sim::Process {
    co_await sim::delay_until(s, 120.0 * 5 + 5.0);
    std::printf("\nafter 5 tuning rounds (reports -> delegate s0 -> "
                "broadcast):\n");
    show(cluster, kServers);

    std::printf("\nkilling the delegate (server 0)...\n");
    cluster.fail_server(0);

    co_await sim::delay_until(s, 120.0 * 10 + 5.0);
    std::printf("server 1 took over; rounds kept completing:\n");
    show(cluster, kServers);

    std::printf("\nrecovering server 0 (it rejoins with a stale replica and\n"
                "catches up via state transfer + versioned broadcasts):\n");
    cluster.recover_server(0);

    co_await sim::delay_until(s, 120.0 * 12 + 5.0);
    show(cluster, kServers);
  };
  sim::spawn(timeline(sim));
  sim.run_until(120.0 * 12 + 6.0);

  std::printf("\nwire totals: %llu messages, %llu bytes over %llu rounds\n",
              static_cast<unsigned long long>(network.messages_delivered()),
              static_cast<unsigned long long>(network.bytes_sent()),
              static_cast<unsigned long long>(cluster.updates_published()));
  std::printf("every byte of shared state that ever crossed the network was\n"
              "a region table: O(servers), the paper's section-5.4 point.\n");
  return 0;
}
