// Replay a trace file through any of the four load-management systems.
//
// Usage:
//   trace_replay                      # synthesizes & replays a demo trace
//   trace_replay <trace-file> [system]
// where system is one of: anu (default), simple, prescient, vp.
//
// The trace format is the plain-text format documented in
// src/workload/trace.h; `trace_replay` with no arguments also writes the
// demo trace next to the binary so you can inspect the format.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "common/table.h"
#include "driver/balancer_factory.h"
#include "driver/experiment.h"
#include "workload/trace.h"

using namespace anu;
using namespace anu::driver;

namespace {

std::optional<SystemKind> parse_system(const std::string& name) {
  if (name == "anu") return SystemKind::kAnu;
  if (name == "simple") return SystemKind::kSimpleRandom;
  if (name == "prescient") return SystemKind::kDynPrescient;
  if (name == "vp") return SystemKind::kVirtualProcessor;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  workload::Workload trace;
  if (argc >= 2) {
    workload::TraceParseError error;
    auto parsed = workload::read_trace_file(argv[1], &error);
    if (!parsed) {
      std::fprintf(stderr, "error: %s:%zu: %s\n", argv[1], error.line,
                   error.message.c_str());
      return 1;
    }
    trace = std::move(*parsed);
    std::printf("loaded %s: %zu requests, %zu file sets, %.0f s span\n",
                argv[1], trace.request_count(), trace.file_set_count(),
                trace.span());
  } else {
    workload::TraceSynthConfig config;
    config.request_count = 30'000;
    config.file_set_count = 21;
    config.duration = 2400.0;
    config.target_utilization = 0.45;
    trace = workload::synthesize_trace(config);
    const std::string demo = "trace_replay_demo.trace";
    if (workload::write_trace_file(demo, trace)) {
      std::printf("no trace given; synthesized a demo trace and wrote it to "
                  "%s\n", demo.c_str());
    }
  }

  SystemKind kind = SystemKind::kAnu;
  if (argc >= 3) {
    const auto parsed = parse_system(argv[2]);
    if (!parsed) {
      std::fprintf(stderr,
                   "error: unknown system '%s' (anu|simple|prescient|vp)\n",
                   argv[2]);
      return 1;
    }
    kind = *parsed;
  }

  ExperimentConfig config;
  config.cluster = cluster::paper_cluster();
  SystemConfig system;
  system.kind = kind;
  auto balancer = make_balancer(system, config.cluster.server_speeds.size());
  const auto result = run_experiment(config, trace, *balancer);

  std::printf("\nsystem: %s\n", system_label(kind).c_str());
  Table table({"metric", "value"});
  table.add_row({"requests completed",
                 std::to_string(result.requests_completed)});
  table.add_row({"mean latency (s)", format_double(result.aggregate.mean(), 4)});
  table.add_row({"latency stddev", format_double(result.aggregate.stddev(), 4)});
  table.add_row({"steady-state mean (s)",
                 format_double(result.steady_state.mean(), 4)});
  table.add_row({"file-set moves", std::to_string(result.total_moved)});
  table.add_row({"replicated state (bytes)",
                 std::to_string(result.shared_state_bytes)});
  table.print(std::cout);
  return 0;
}
