// Quickstart: the ANU randomization public API in one sitting.
//
// Builds the paper's five-server heterogeneous cluster, registers a handful
// of file sets, runs a few latency-driven tuning rounds by hand, and shows
// lookup, failure and recovery. No simulator required — this is the API a
// cluster integrator calls from their own serving loop.
#include <cstdio>

#include "anu.h"

using anu::FileSetId;
using anu::ServerId;

namespace {

void show_shares(const anu::core::AnuBalancer& balancer, std::size_t servers) {
  std::printf("  shares:");
  for (std::uint32_t s = 0; s < servers; ++s) {
    std::printf(" s%u=%.3f", s,
                balancer.region_map().share(ServerId(s)).to_double());
  }
  std::printf("  (state: %zu bytes)\n", balancer.shared_state_bytes());
}

}  // namespace

int main() {
  // 1. Create the balancer for a 5-server cluster. It knows nothing about
  //    server speeds — that is the point.
  constexpr std::size_t kServers = 5;
  anu::core::AnuConfig config;
  anu::core::AnuBalancer balancer(config, kServers);

  // 2. Register the workload's file sets (the indivisible placement units).
  std::vector<anu::workload::FileSet> file_sets;
  for (std::uint32_t i = 0; i < 12; ++i) {
    file_sets.push_back({FileSetId(i), "home/project-" + std::to_string(i),
                         /*weight=*/1.0});
  }
  balancer.register_file_sets(file_sets);

  std::printf("initial placement (equal mapped regions):\n");
  show_shares(balancer, kServers);
  for (const auto& fs : file_sets) {
    const auto where = balancer.locate(fs.name);
    std::printf("  %-16s -> server %u  (%u hash probe%s)\n", fs.name.c_str(),
                where.server.value(), where.probes,
                where.probes == 1 ? "" : "s");
  }

  // 3. Feedback loop: report each server's mean request latency for the
  //    closing interval; the stateless delegate rescales mapped regions.
  //    Here we fake reports where server 0 is slow and server 4 fast.
  std::printf("\nrunning 5 tuning rounds (server 0 slow, server 4 fast):\n");
  for (int round = 1; round <= 5; ++round) {
    const double latency[kServers] = {9.0, 3.0, 1.8, 1.3, 1.0};
    for (std::uint32_t s = 0; s < kServers; ++s) {
      balancer.report(ServerId(s), {latency[s], 100});
    }
    const auto moves = balancer.tune();
    std::printf("round %d: moved %zu file set(s), system avg %.2f\n", round,
                moves.moved_count(), balancer.last_system_average());
  }
  show_shares(balancer, kServers);

  // 4. Failure: the failed server's file sets re-hash onto survivors, who
  //    absorb its share to keep the half-occupancy invariant. (Survivor
  //    growth maps a little previously-unmapped space, so the odd unrelated
  //    file set can move too — movement stays near the minimum.)
  std::printf("\nfailing server 3:\n");
  const auto fail_moves = balancer.on_server_failed(ServerId(3));
  for (const auto& move : fail_moves.moves) {
    std::printf("  %s moved s%u -> s%u\n",
                file_sets[move.file_set.value()].name.c_str(),
                move.from.value(), move.to.value());
  }
  show_shares(balancer, kServers);

  // 5. Recovery: the server re-enters in a free partition with a small
  //    share; the delegate grows it back from live feedback.
  std::printf("\nrecovering server 3:\n");
  const auto recover_moves = balancer.on_server_recovered(ServerId(3));
  std::printf("  %zu file set(s) moved back\n", recover_moves.moved_count());
  show_shares(balancer, kServers);

  std::printf("\ndone — see examples/metadata_cluster.cpp for a full\n"
              "simulated cluster and bench/ for the paper's figures.\n");
  return 0;
}
