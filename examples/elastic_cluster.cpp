// "Clusters on demand": servers come and go during the day (§1).
//
// "Servers are dynamically interchangeable and reconfigurable without
// negatively affecting performance of applications ... the same server
// might be deployed in different clusters at different times during the
// same day or hours." This example scripts a day-in-the-life membership
// timeline — a failure with recovery, a decommission, and two
// commissionings (one triggering re-partitioning) — and shows the cluster
// absorbing every change without operator involvement.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"

using namespace anu;
using namespace anu::driver;

int main() {
  std::printf("elastic_cluster: membership churn under ANU randomization\n\n");

  const auto workload = paper_synthetic_workload();
  auto config = paper_experiment_config();
  config.cluster.server_speeds = {2.0, 4.0, 6.0, 8.0};  // starts with four

  cluster::FailureSchedule timeline;
  // minute 30: server 1 crashes; minute 50: it recovers.
  timeline.add({30.0 * 60.0, cluster::MembershipAction::kFail, ServerId(1)});
  timeline.add({50.0 * 60.0, cluster::MembershipAction::kRecover, ServerId(1)});
  // minute 80: borrow a big machine from another cluster (k 4->5: the unit
  // interval re-partitions 8 -> 16, moving no existing load).
  timeline.add({80.0 * 60.0, cluster::MembershipAction::kAdd, ServerId(), 9.0});
  // minute 120: the slowest machine is decommissioned for the day.
  timeline.add({120.0 * 60.0, cluster::MembershipAction::kRemove, ServerId(0)});
  // minute 150: one more loaner arrives.
  timeline.add({150.0 * 60.0, cluster::MembershipAction::kAdd, ServerId(), 5.0});
  config.failures = timeline;

  SystemConfig system;
  system.kind = SystemKind::kAnu;
  auto balancer = make_balancer(system, config.cluster.server_speeds.size());
  const auto result = run_experiment(config, workload, *balancer);

  std::printf("timeline: fail(s1)@30min, recover(s1)@50min, add(speed 9)@80min,"
              "\n          remove(s0)@120min, add(speed 5)@150min\n\n");

  Table table({"server", "speed", "served", "mean_latency", "utilization"});
  const std::vector<double> final_speeds{2.0, 4.0, 6.0, 8.0, 9.0, 5.0};
  for (std::size_t s = 0; s < result.server_count; ++s) {
    table.add_row({std::to_string(s), format_double(final_speeds[s], 0),
                   std::to_string(result.served[s]),
                   format_double(result.per_server[s].mean(), 3),
                   format_double(result.utilization[s], 3)});
  }
  table.print(std::cout);

  std::printf("\nrequests completed: %llu/%llu (none lost across five "
              "membership changes)\n",
              static_cast<unsigned long long>(result.requests_completed),
              static_cast<unsigned long long>(result.requests_issued));
  std::printf("aggregate latency: %.3f s; file-set moves: %zu\n",
              result.aggregate.mean(), result.total_moved);
  std::printf("every transition was handled by re-hash addressing plus\n"
              "region rescaling: no lookup tables rebuilt, no manual "
              "rebalancing.\n");
  return 0;
}
