// Performance-consistency / SLA reporting (paper §5.2.2).
//
// "As cluster and grid systems extend to support Service Level Agreements,
// it is essential that application performance is consistent over different
// servers in a heterogeneous cluster." This example runs the paper workload
// under each system and produces the report an SLA dashboard would show:
// latency percentiles, the share of requests that met a deadline, and the
// per-server consistency index — highlighting that ANU's consistency comes
// without any capability knowledge.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"
#include "metrics/consistency.h"

using namespace anu;
using namespace anu::driver;

int main() {
  std::printf("sla_report: percentiles and consistency per system\n\n");

  const auto workload = paper_synthetic_workload();
  const auto config = paper_experiment_config();
  // An SLA target: metadata requests answered within this bound.
  constexpr double kDeadline = 5.0;

  Table table({"system", "p50", "p90", "p99", "pct_within_5s",
               "per_server_cv", "slowest/fastest"});
  for (SystemKind kind : kAllSystems) {
    SystemConfig system;
    system.kind = kind;
    auto balancer = make_balancer(system, config.cluster.server_speeds.size());
    const auto result = run_experiment(config, workload, *balancer);

    // Fraction of requests within the deadline, from the log histogram:
    // find the quantile where the deadline sits by bisection on q.
    double lo = 0.0, hi = 1.0;
    for (int iter = 0; iter < 40; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (result.latency_histogram.quantile(mid) < kDeadline ? lo : hi) = mid;
    }
    const auto consistency =
        metrics::performance_consistency(result.per_server, 0.02);
    table.add_row({system_label(kind),
                   format_double(result.latency_histogram.quantile(0.50), 3),
                   format_double(result.latency_histogram.quantile(0.90), 3),
                   format_double(result.latency_histogram.quantile(0.99), 3),
                   format_double(100.0 * lo, 2),
                   format_double(consistency.latency_cv, 3),
                   format_double(consistency.max_over_min, 2)});
  }
  table.print(std::cout);

  std::printf("\nreading: simple randomization misses the deadline for a\n"
              "large share of requests (everything routed to the weak server\n"
              "is late); the oracle systems meet it but their per-server\n"
              "latencies differ by the servers' speed ratio; ANU's non-idle\n"
              "servers answer within a narrow band of each other — the\n"
              "\"performance consistency\" the paper is titled after.\n");
  return 0;
}
