// Shared-disk file-system metadata cluster — the paper's home scenario (§3).
//
// Simulates the full evaluation setup: the five-server heterogeneous
// cluster (speeds 1,3,5,7,9), the synthetic metadata workload (66,401
// requests against 50 file sets over 200 minutes), the two-minute delegate
// tuning loop — and reports convergence, per-server consistency and load
// movement, i.e. a one-binary tour of the paper's §5.2/§5.3 results.
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "driver/balancer_factory.h"
#include "driver/paper.h"

using namespace anu;
using namespace anu::driver;

int main() {
  std::printf("metadata_cluster: ANU randomization on a shared-disk "
              "metadata cluster\n\n");

  const auto workload = paper_synthetic_workload();
  const auto config = paper_experiment_config();

  std::printf("workload: %zu requests, %zu file sets, %.0f minutes\n",
              workload.request_count(), workload.file_set_count(),
              workload.span() / 60.0);
  std::printf("cluster: 5 metadata servers, speeds 1,3,5,7,9 "
              "(capacity 25 units)\n\n");

  SystemConfig system;
  system.kind = SystemKind::kAnu;
  auto balancer = make_balancer(system, config.cluster.server_speeds.size());
  const auto result = run_experiment(config, workload, *balancer);

  std::printf("aggregate request latency: %.3f s (stddev %.3f)\n",
              result.aggregate.mean(), result.aggregate.stddev());
  std::printf("post-convergence latency:  %.3f s (stddev %.3f)\n\n",
              result.steady_state.mean(), result.steady_state.stddev());

  Table servers({"server", "speed", "served", "served_pct", "mean_latency",
                 "utilization"});
  for (std::size_t s = 0; s < result.server_count; ++s) {
    servers.add_row(
        {std::to_string(s),
         format_double(config.cluster.server_speeds[s], 0),
         std::to_string(result.served[s]),
         format_double(100.0 * static_cast<double>(result.served[s]) /
                           static_cast<double>(result.requests_completed),
                       2),
         format_double(result.per_server[s].mean(), 3),
         format_double(result.utilization[s], 3)});
  }
  servers.print(std::cout);

  std::printf("\nload movement: %zu file-set moves over %zu tuning rounds "
              "(%zu distinct file sets, %.1f%% of workload weight)\n",
              result.total_moved, result.movement.size(),
              result.unique_moved, result.percent_unique_workload_moved);
  std::printf("replicated addressing state: %zu bytes "
              "(the unit-interval partition table)\n",
              result.shared_state_bytes);

  std::printf("\nthe weakest server serves a marginal share once balanced —\n"
              "the delegate identified the capacity mismatch from latency\n"
              "reports alone, with no a-priori knowledge of server speeds.\n");
  return 0;
}
