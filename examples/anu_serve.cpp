// anu_serve — the control plane, live.
//
// Server mode hosts an ANU cluster for real: N protocol nodes exchanging
// heartbeats, latency reports and region-map updates over loopback UDP
// sockets (runtime::UdpTransport), timed by a realtime clock
// (runtime::RealtimeClock) instead of the simulator. A client-facing UDP
// socket answers ROUTE requests — send a key, get back the owning server
// and the map version it was routed under. Every retune is logged:
//
//   anu_serve: retune version=3 shares=0.21,0.08,0.21
//
// The data plane is synthetic (per-server slow factors feed the latency
// model), so what the demo shows is the paper's control loop converging in
// wall time: slow servers shed load, the region map re-tunes live, and
// clients observe the version advancing — scripts/integration_test.sh
// asserts exactly that in CI.
//
// Client mode (--client) is the scripted driver: it sends sequential keys,
// tallies which server owns each, and exits 0 when at least 90% of
// requests got an answer.
//
//   anu_serve --servers 3 --port 9700 --run-seconds 6 --slow 1,1,4
//   anu_serve --client --port 9700 --requests 200
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "proto/protocol.h"
#include "runtime/event_loop.h"
#include "runtime/realtime_clock.h"
#include "runtime/serve_config.h"
#include "runtime/time_source.h"
#include "runtime/udp_transport.h"

using namespace anu;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--servers N] [--port P] [--run-seconds S]\n"
               "          [--slow f0,f1,...] [--config FILE] [--dump-config]\n"
               "       %s --client [--port P] [--requests N]\n",
               argv0, argv0);
  return 2;
}

std::vector<double> parse_factors(const std::string& arg) {
  std::vector<double> out;
  std::stringstream ss(arg);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::atof(item.c_str()));
  return out;
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

// --- client mode ------------------------------------------------------------

int run_client(std::uint16_t port, int requests) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  const sockaddr_in server = loopback(port);
  int replied = 0;
  std::map<unsigned, int> per_server;
  std::uint64_t min_version = ~0ULL, max_version = 0;
  for (int i = 0; i < requests; ++i) {
    const std::string key = "key/" + std::to_string(i);
    if (::sendto(fd, key.data(), key.size(), 0,
                 reinterpret_cast<const sockaddr*>(&server),
                 sizeof(server)) < 0) {
      continue;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 500) <= 0) continue;  // 500 ms per-request budget
    char buffer[256];
    const auto n = ::recv(fd, buffer, sizeof(buffer) - 1, 0);
    if (n <= 0) continue;
    buffer[n] = '\0';
    unsigned owner = 0;
    unsigned long long version = 0;
    if (std::sscanf(buffer, "OK %u %llu", &owner, &version) != 2) continue;
    ++replied;
    ++per_server[owner];
    if (version < min_version) min_version = version;
    if (version > max_version) max_version = version;
  }
  ::close(fd);

  std::printf("anu_serve client: sent=%d replied=%d\n", requests, replied);
  for (const auto& [owner, count] : per_server) {
    std::printf("  server %u routed %d keys\n", owner, count);
  }
  if (replied > 0) {
    std::printf("  map versions observed: %llu..%llu\n",
                static_cast<unsigned long long>(min_version),
                static_cast<unsigned long long>(max_version));
  }
  // The transport is best-effort UDP: tolerate stragglers, fail on bulk
  // loss (which would mean the server was not actually routing).
  const bool ok = replied * 10 >= requests * 9;
  std::printf("anu_serve client: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

// --- server mode ------------------------------------------------------------

int run_server(const runtime::ServeSpec& spec) {
  runtime::SteadyTimeSource source;
  runtime::RealtimeClock clock(source);
  runtime::UdpTransport transport(spec.servers);

  proto::ProtocolConfig config;
  config.tuning_interval = spec.tuning_interval;
  config.report_grace = spec.report_grace;
  config.use_heartbeats = spec.use_heartbeats;
  config.heartbeat.interval = spec.heartbeat_interval;
  config.hash_seed = spec.hash_seed;

  // Synthetic data plane: server s runs slow_factors[s] times slower than
  // nominal, so its interval latency is share * slow — the same model the
  // protocol tests use. Routed client keys feed the completion counts.
  std::vector<std::uint64_t> routed(spec.servers, 0);
  const auto& slow = spec.slow_factors;
  proto::ProtocolCluster cluster(
      clock, transport, config, spec.servers,
      [&](std::uint32_t s, UnitPoint share) {
        const double latency = share.to_double() * slow[s] * 100.0 + 1e-6;
        const auto base =
            static_cast<std::size_t>(share.to_double() * 1e4) + 1;
        const auto extra = static_cast<std::size_t>(routed[s]);
        routed[s] = 0;
        return balance::ServerReport{latency, base + extra};
      });
  std::vector<std::string> names;
  for (int i = 0; i < 64; ++i) names.push_back("fs/" + std::to_string(i));
  cluster.register_file_sets(names);

  // Client-facing ROUTE socket.
  const int route_fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (route_fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in route_addr = loopback(spec.port);
  if (::bind(route_fd, reinterpret_cast<const sockaddr*>(&route_addr),
             sizeof(route_addr)) != 0) {
    std::perror("bind");
    ::close(route_fd);
    return 1;
  }

  runtime::EventLoop loop(clock);
  for (std::uint32_t n = 0; n < transport.fds().size(); ++n) {
    loop.add_fd(transport.fds()[n], [&transport] { transport.pump(); });
  }
  loop.add_fd(route_fd, [&] {
    char buffer[512];
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    for (;;) {
      const auto n = ::recvfrom(route_fd, buffer, sizeof(buffer) - 1,
                                MSG_DONTWAIT,
                                reinterpret_cast<sockaddr*>(&from), &from_len);
      if (n <= 0) break;
      buffer[n] = '\0';
      // Route on node 0's replica — any node gives the same answer once
      // replicas agree, which is the protocol's whole job.
      const ServerId owner = cluster.route_from(0, buffer);
      ++routed[owner.value()];
      char reply[64];
      const int len = std::snprintf(
          reply, sizeof(reply), "OK %u %llu", owner.value(),
          static_cast<unsigned long long>(cluster.version_of(0)));
      ::sendto(route_fd, reply, static_cast<std::size_t>(len), 0,
               reinterpret_cast<const sockaddr*>(&from), from_len);
      from_len = sizeof(from);
    }
  });

  std::printf("anu_serve: %zu nodes up, heartbeats %s, routing on udp port "
              "%u, tuning every %.2fs\n",
              spec.servers, spec.use_heartbeats ? "on" : "off",
              static_cast<unsigned>(ntohs(route_addr.sin_port)),
              spec.tuning_interval);
  std::fflush(stdout);

  std::uint64_t seen_version = 0;
  while (spec.run_seconds <= 0.0 || clock.now() < spec.run_seconds) {
    loop.run_once(0.05);
    const std::uint64_t version = cluster.version_of(0);
    if (version != seen_version) {
      seen_version = version;
      std::printf("anu_serve: retune version=%llu shares=",
                  static_cast<unsigned long long>(version));
      const auto& map = cluster.map_of(0);
      for (std::uint32_t s = 0; s < spec.servers; ++s) {
        std::printf("%s%.3f", s == 0 ? "" : ",",
                    map.share(ServerId(s)).to_double());
      }
      std::printf(" agree=%s\n", cluster.replicas_agree() ? "yes" : "no");
      std::fflush(stdout);
    }
  }

  std::printf("anu_serve: done after %.1fs, %llu updates published, final "
              "version=%llu\n",
              clock.now(),
              static_cast<unsigned long long>(cluster.updates_published()),
              static_cast<unsigned long long>(seen_version));
  ::close(route_fd);
  return seen_version > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  runtime::ServeSpec spec;
  spec.run_seconds = 0.0;
  bool client = false;
  bool dump = false;
  int requests = 200;
  std::vector<double> slow;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--client") {
      client = true;
    } else if (arg == "--dump-config") {
      dump = true;
    } else if (arg == "--servers") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      spec.servers = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--port") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      spec.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--run-seconds") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      spec.run_seconds = std::atof(v);
    } else if (arg == "--requests") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      requests = std::atoi(v);
    } else if (arg == "--slow") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      slow = parse_factors(v);
    } else if (arg == "--config") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      std::ifstream is(v);
      runtime::ServeConfigError error;
      const auto parsed = runtime::parse_serve_config(is, &error);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "%s:%zu: %s\n", v, error.line,
                     error.message.c_str());
        return 2;
      }
      spec = *parsed;
    } else {
      return usage(argv[0]);
    }
  }
  if (spec.servers == 0) return usage(argv[0]);
  if (!slow.empty()) spec.slow_factors = slow;
  spec.slow_factors.resize(spec.servers, 1.0);

  if (dump) {
    runtime::write_serve_config(std::cout, spec);
    return 0;
  }
  if (client) return run_client(spec.port, requests);
  return run_server(spec);
}
