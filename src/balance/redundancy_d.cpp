#include "balance/redundancy_d.h"

#include "common/assert.h"

namespace anu::balance {

const char* cancel_mode_name(RedundancyDConfig::CancelMode mode) {
  switch (mode) {
    case RedundancyDConfig::CancelMode::kOnStart: return "start";
    case RedundancyDConfig::CancelMode::kOnComplete: return "complete";
  }
  return "?";
}

RedundancyDBalancer::RedundancyDBalancer(const RedundancyDConfig& config,
                                         std::size_t server_count)
    : DispatchBalancer(server_count, config.seed), config_(config) {
  ANU_REQUIRE(config.d >= 1 &&
              config.d <= DispatchDecision::kMaxTargets);
}

DispatchDecision RedundancyDBalancer::dispatch(FileSetId id, double demand) {
  (void)id;
  (void)demand;
  DispatchDecision decision;
  decision.cancel = config_.cancel == RedundancyDConfig::CancelMode::kOnStart
                        ? DispatchDecision::Cancel::kOnStart
                        : DispatchDecision::Cancel::kOnComplete;
  sample_distinct(config_.d, config_.speed_aware, decision);
  ++dispatches_;
  replicas_requested_ += decision.count;
  return decision;
}

BalanceCounters RedundancyDBalancer::counters() const {
  return {{"dispatches", dispatches_},
          {"replicas_requested", replicas_requested_}};
}

}  // namespace anu::balance
