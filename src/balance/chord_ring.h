// Chord-style consistent-hash ring with finger tables.
//
// Paper §5.4, footnote 1: "The addressing information [of virtual
// processors] could also be implemented in the Chord-style ring [35] to
// avoid replication at the expense of log(n) probes to the data
// structure." This module implements that alternative so the shared-state
// comparison can be made concrete: instead of replicating the full
// VP -> server table at every node, each node keeps only its successor
// list and an O(log n) finger table, and a lookup walks fingers in
// O(log n) hops.
//
// The ring here is simulated in one address space — nodes are ring
// positions, a "hop" is a finger-table indirection — which is exactly the
// level of abstraction the footnote's tradeoff lives at: per-node state
// (bytes) versus probes per lookup.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "hash/hash_family.h"

namespace anu::balance {

/// One node's routing state in the ring.
struct RingNode {
  /// Position on the identifier circle (64-bit ring).
  std::uint64_t position = 0;
  /// The value this node stores (e.g. the server a VP maps to).
  ServerId payload;
  /// finger[i] = index (into the ring's node array) of the first node at
  /// distance >= 2^i around the circle.
  std::vector<std::uint32_t> fingers;
  std::uint32_t successor = 0;
};

/// Result of a ring lookup.
struct RingLookup {
  /// Node index responsible for the key (its successor on the circle).
  std::uint32_t node = 0;
  /// Finger-table hops taken to reach it from the starting node.
  std::uint32_t hops = 0;
};

class ChordRing {
 public:
  /// Builds a ring of `node_count` nodes with deterministic positions
  /// derived from `seed`. Payloads start invalid; assign via set_payload.
  ChordRing(std::size_t node_count, std::uint64_t seed = 0x63686f7264ULL);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Node responsible for `key` (the key's successor on the circle),
  /// found by walking finger tables from `start`. Counts hops.
  [[nodiscard]] RingLookup lookup_from(std::uint32_t start,
                                       std::uint64_t key) const;
  /// Convenience: lookup of a name from node 0.
  [[nodiscard]] RingLookup lookup(std::string_view name) const;

  /// Direct (oracle) successor computation — O(log n) binary search; used
  /// to verify finger-walk correctness in tests.
  [[nodiscard]] std::uint32_t successor_of(std::uint64_t key) const;

  void set_payload(std::uint32_t node, ServerId payload);
  [[nodiscard]] ServerId payload(std::uint32_t node) const;

  /// Membership churn. Joining inserts a node at `position` (must be
  /// unoccupied) and leaving removes one; both rebuild successor/finger
  /// state. Consistent hashing's minimal-disruption property holds: a join
  /// takes over exactly the keys in (predecessor, position], a leave hands
  /// the departed node's keys to its successor, and no other key moves
  /// (tested). Returns the new node's index.
  std::uint32_t add_node(std::uint64_t position, ServerId payload = {});
  void remove_node(std::uint32_t node);
  [[nodiscard]] std::uint64_t position_of(std::uint32_t node) const;

  /// Bytes of routing state ONE node keeps: successor + finger table
  /// (position + index per entry). The footnote's tradeoff: O(log n) per
  /// node instead of the O(n) replicated table.
  [[nodiscard]] std::size_t per_node_state_bytes() const;

  /// Verifies finger-table integrity (each finger is the true first node
  /// at distance >= 2^i). Aborts on violation.
  void check_invariants() const;

 private:
  [[nodiscard]] std::uint64_t distance(std::uint64_t from,
                                       std::uint64_t to) const {
    return to - from;  // mod 2^64 wrap-around is free on uint64
  }
  void rebuild_routing();

  HashFamily family_;
  std::vector<RingNode> nodes_;      // sorted by position
  std::vector<std::uint64_t> sorted_positions_;
};

}  // namespace anu::balance
