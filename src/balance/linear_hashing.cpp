#include "balance/linear_hashing.h"

#include "common/assert.h"

namespace anu::balance {

LinearHashing::LinearHashing(std::size_t initial_buckets,
                             std::uint64_t hash_seed)
    : family_(hash_seed), initial_(initial_buckets) {
  ANU_REQUIRE(initial_buckets > 0);
}

std::size_t LinearHashing::bucket_count() const {
  return static_cast<std::size_t>(slots_at(level_)) + split_;
}

std::uint32_t LinearHashing::bucket_of(std::string_view key) const {
  const std::uint64_t h = family_.raw(key, 0);
  std::uint64_t bucket = h % slots_at(level_);
  if (bucket < split_) {
    bucket = h % slots_at(level_ + 1);  // already-split region: finer hash
  }
  return static_cast<std::uint32_t>(bucket);
}

std::uint32_t LinearHashing::add_bucket() {
  const std::uint32_t split_bucket = split_;
  ++split_;
  if (split_ == slots_at(level_)) {
    // A full doubling completed: advance the level, reset the pointer.
    ++level_;
    split_ = 0;
  }
  return split_bucket;
}

}  // namespace anu::balance
