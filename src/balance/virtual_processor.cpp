#include "balance/virtual_processor.h"

#include "common/assert.h"

namespace anu::balance {

VirtualProcessorBalancer::VirtualProcessorBalancer(
    const VirtualProcessorConfig& config, std::size_t server_count)
    : config_(config),
      family_(config.hash_seed),
      speeds_(server_count, 1.0),
      vp_to_server_(server_count * config.vp_per_server, ServerId(0)) {
  ANU_REQUIRE(server_count > 0);
  ANU_REQUIRE(config.vp_per_server > 0);
}

void VirtualProcessorBalancer::register_file_sets(
    const std::vector<workload::FileSet>& file_sets) {
  file_set_vp_.clear();
  file_set_vp_.reserve(file_sets.size());
  for (const auto& fs : file_sets) {
    // Static uniform hash of the file-set name into the VP space.
    const auto vp = family_.raw(fs.name, 0) % vp_to_server_.size();
    file_set_vp_.push_back(VpId(static_cast<std::uint32_t>(vp)));
  }
  if (demands_.size() != file_sets.size()) {
    demands_.clear();
    demands_.reserve(file_sets.size());
    for (const auto& fs : file_sets) demands_.push_back(fs.weight);
  }
  placement_.assign(file_sets.size(), ServerId(0));
  remap();
}

ServerId VirtualProcessorBalancer::server_for(FileSetId id) const {
  ANU_REQUIRE(id.value() < placement_.size());
  return placement_[id.value()];
}

VpId VirtualProcessorBalancer::vp_of(FileSetId id) const {
  ANU_REQUIRE(id.value() < file_set_vp_.size());
  return file_set_vp_[id.value()];
}

void VirtualProcessorBalancer::set_oracle(const OracleView& oracle) {
  if (!oracle.file_set_demand.empty()) demands_ = oracle.file_set_demand;
  if (!oracle.server_speeds.empty()) {
    ANU_REQUIRE(oracle.server_speeds.size() >= speeds_.size());
    speeds_ = oracle.server_speeds;
  }
}

std::vector<double> VirtualProcessorBalancer::vp_demands() const {
  std::vector<double> vp_demand(vp_to_server_.size(), 0.0);
  for (std::size_t fs = 0; fs < file_set_vp_.size(); ++fs) {
    vp_demand[file_set_vp_[fs].value()] += demands_[fs];
  }
  return vp_demand;
}

RebalanceResult VirtualProcessorBalancer::remap() {
  ANU_REQUIRE(demands_.size() == file_set_vp_.size());
  const std::vector<ServerId> before = placement_;
  vp_to_server_ =
      config_.policy == VpMappingPolicy::kCapacityProportional
          ? assign_capacity_proportional(vp_demands(), speeds_)
          : assign_min_latency(vp_demands(), speeds_, config_.assignment);
  placement_.resize(file_set_vp_.size());
  for (std::size_t fs = 0; fs < file_set_vp_.size(); ++fs) {
    placement_[fs] = vp_to_server_[file_set_vp_[fs].value()];
  }
  if (before.size() != placement_.size()) return {};
  return diff_placement(before, placement_);
}

RebalanceResult VirtualProcessorBalancer::tune() { return remap(); }

RebalanceResult VirtualProcessorBalancer::on_server_failed(ServerId id) {
  ANU_REQUIRE(id.value() < speeds_.size() && speeds_[id.value()] > 0.0);
  speeds_[id.value()] = 0.0;
  return remap();
}

RebalanceResult VirtualProcessorBalancer::on_server_recovered(ServerId id) {
  ANU_REQUIRE(id.value() < speeds_.size());
  if (speeds_[id.value()] <= 0.0) speeds_[id.value()] = 1.0;
  return remap();
}

RebalanceResult VirtualProcessorBalancer::on_server_added(ServerId id) {
  // The oracle may already have grown the speed vector (driver refreshes
  // it from the cluster before notifying the balancer).
  if (id.value() == speeds_.size()) {
    speeds_.push_back(1.0);
  }
  ANU_REQUIRE(id.value() < speeds_.size());
  // The VP population is sized N*v at construction; adding servers does not
  // re-shard file sets (that is the point of VPs), the new server simply
  // becomes a mapping target. VP count staying fixed mirrors Kale et al.'s
  // virtualization model.
  return remap();
}

}  // namespace anu::balance
