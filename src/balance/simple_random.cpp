#include "balance/simple_random.h"

#include "common/assert.h"

namespace anu::balance {

SimpleRandomBalancer::SimpleRandomBalancer(std::size_t server_count,
                                           std::uint64_t hash_seed)
    : family_(hash_seed), up_(server_count, true) {
  ANU_REQUIRE(server_count > 0);
}

void SimpleRandomBalancer::register_file_sets(
    const std::vector<workload::FileSet>& file_sets) {
  names_.clear();
  names_.reserve(file_sets.size());
  for (const auto& fs : file_sets) names_.push_back(fs.name);
  placement_ = resolve_all();
}

ServerId SimpleRandomBalancer::server_for(FileSetId id) const {
  ANU_REQUIRE(id.value() < placement_.size());
  return placement_[id.value()];
}

ServerId SimpleRandomBalancer::place(std::string_view name) const {
  // Uniform over up servers; probes the family until the hash selects an up
  // server so that membership changes move only the affected file sets
  // (rendezvous-style stability is deliberately *not* used — the paper's
  // baseline is plain uniform hashing).
  std::size_t up_count = 0;
  for (bool b : up_) up_count += b ? 1 : 0;
  ANU_REQUIRE(up_count > 0);
  for (std::uint32_t r = 0;; ++r) {
    const auto pick = family_.raw(name, r) % up_.size();
    if (up_[pick]) return ServerId(static_cast<std::uint32_t>(pick));
  }
}

std::vector<ServerId> SimpleRandomBalancer::resolve_all() const {
  std::vector<ServerId> placed;
  placed.reserve(names_.size());
  for (const std::string& name : names_) placed.push_back(place(name));
  return placed;
}

RebalanceResult SimpleRandomBalancer::reresolve() {
  const std::vector<ServerId> before = placement_;
  placement_ = resolve_all();
  return diff_placement(before, placement_);
}

RebalanceResult SimpleRandomBalancer::on_server_failed(ServerId id) {
  ANU_REQUIRE(id.value() < up_.size() && up_[id.value()]);
  up_[id.value()] = false;
  return reresolve();
}

RebalanceResult SimpleRandomBalancer::on_server_recovered(ServerId id) {
  ANU_REQUIRE(id.value() < up_.size() && !up_[id.value()]);
  up_[id.value()] = true;
  return reresolve();
}

RebalanceResult SimpleRandomBalancer::on_server_added(ServerId id) {
  ANU_REQUIRE(id.value() == up_.size());
  up_.push_back(true);
  return reresolve();
}

}  // namespace anu::balance
