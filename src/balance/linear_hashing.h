// Linear hashing address scheme — the §4 contrast case.
//
// "Further partitioning the unit interval does not move any existing load
// and does not change the hash functions that address load, as does linear
// hashing [20]." (§4, citing Litwin's LH*.) This module implements the
// classic linear hashing directory over servers-as-buckets so
// bench/micro_elasticity can quantify that contrast: growing a linear-hash
// ensemble splits one bucket at a time, rehashing (and moving) roughly half
// of that bucket's keys at every split, whereas ANU's re-partitioning moves
// nothing.
//
// Addressing: level L, split pointer p. A key's bucket is
//   b = h(key) mod 2^L * N0;     if b < p: b = h(key) mod 2^(L+1) * N0
// where N0 is the initial bucket count. add_bucket() splits bucket p by
// switching its keys to the finer hash function.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "hash/hash_family.h"

namespace anu::balance {

class LinearHashing {
 public:
  explicit LinearHashing(std::size_t initial_buckets,
                         std::uint64_t hash_seed = 0x6c68ULL);

  /// Current bucket (server) count.
  [[nodiscard]] std::size_t bucket_count() const;

  /// The bucket a key addresses to under the current (level, pointer).
  [[nodiscard]] std::uint32_t bucket_of(std::string_view key) const;

  /// Splits the next bucket, growing the ensemble by one. Returns the
  /// bucket that was split (its keys rehash between it and the new last
  /// bucket).
  std::uint32_t add_bucket();

  /// Addressing state a node must hold: level + split pointer + N0.
  [[nodiscard]] static std::size_t shared_state_bytes() { return 24; }

  [[nodiscard]] std::uint32_t level() const { return level_; }
  [[nodiscard]] std::uint32_t split_pointer() const { return split_; }

 private:
  [[nodiscard]] std::uint64_t slots_at(std::uint32_t level) const {
    return initial_ << level;
  }

  HashFamily family_;
  std::uint64_t initial_;
  std::uint32_t level_ = 0;
  std::uint32_t split_ = 0;
};

}  // namespace anu::balance
