// Common machinery for per-request dispatch strategies (JSQ(d), JIQ,
// redundancy-d — docs/strategies.md).
//
// A dispatch strategy owns no file-set placement: every arrival is routed
// individually against live cluster state (queue lengths, idle tokens),
// so tune() never moves anything and the membership callbacks only keep
// the strategy's up-server set current. This base maintains that set,
// owns the strategy RNG, and provides the uniform / speed-weighted
// sampling primitives the concrete strategies share.
#pragma once

#include <cstdint>

#include "balance/balancer.h"
#include "common/rng.h"

namespace anu::balance {

class DispatchBalancer : public LoadBalancer {
 public:
  DispatchBalancer(std::size_t server_count, std::uint64_t seed);

  [[nodiscard]] bool per_request() const final { return true; }
  void bind_cluster(const ClusterView* view) final { view_ = view; }

  void register_file_sets(
      const std::vector<workload::FileSet>& file_sets) override;

  /// Dispatch strategies keep no placement; this is the documented
  /// fallback for code paths that still ask (first up server). The driver
  /// never routes through it when per_request() is true.
  [[nodiscard]] ServerId server_for(FileSetId id) const override;

  void report(ServerId, const ServerReport&) override {}
  RebalanceResult tune() override { return {}; }
  RebalanceResult on_server_failed(ServerId id) override;
  RebalanceResult on_server_recovered(ServerId id) override;
  RebalanceResult on_server_added(ServerId id) override;

  /// Dispatch needs the membership list replicated at every dispatcher
  /// (like simple randomization): 4 bytes per server slot. Strategies with
  /// extra shared state (JIQ's token pool) add to this.
  [[nodiscard]] std::size_t shared_state_bytes() const override {
    return up_mask_.size() * 4;
  }

 protected:
  /// Up servers, ascending id. Maintained by the membership callbacks.
  [[nodiscard]] const std::vector<ServerId>& up_servers() const {
    return up_;
  }
  [[nodiscard]] bool is_up(ServerId id) const {
    return id.value() < up_mask_.size() && up_mask_[id.value()];
  }
  /// Speed as the bound view reports it; 1.0 before a view is bound (unit
  /// tests drive strategies without a cluster).
  [[nodiscard]] double speed_of(ServerId id) const;
  [[nodiscard]] std::size_t queue_of(ServerId id) const;

  /// Uniform draw over the up-server set. Precondition: not empty.
  [[nodiscard]] ServerId sample_uniform();
  /// Speed-weighted draw (P(s) proportional to speed) via rejection
  /// against the maximum up speed. Precondition: not empty.
  [[nodiscard]] ServerId sample_weighted();
  /// `d` distinct up servers into `out` (uniform or speed-weighted).
  /// Fewer than `d` up servers returns them all, in id order.
  void sample_distinct(std::uint32_t d, bool weighted,
                       DispatchDecision& out);

  const ClusterView* view_ = nullptr;
  Xoshiro256 rng_;

 private:
  void set_up(ServerId id, bool up);

  std::vector<ServerId> up_;
  std::vector<bool> up_mask_;
};

}  // namespace anu::balance
