// Dynamic prescient — the upper-bound oracle system (§5.1).
//
// "Dynamic prescient realizes the optimal load balance through identifying
// the permutation of file sets onto servers that minimizes average latency,
// because it has perfect knowledge of server capabilities and workload
// properties. It provides the upper bound of load balancing."
//
// The driver feeds it an OracleView before every tuning round: true
// per-file-set demand for the *upcoming* interval (read ahead from the
// workload schedule — knowledge no real system has) and true server speeds.
// Each round recomputes the min-latency assignment from scratch; movement
// cost is ignored, again an idealization in the paper's favor.
#pragma once

#include <string>
#include <vector>

#include "balance/assignment.h"
#include "balance/balancer.h"

namespace anu::balance {

class PrescientBalancer final : public LoadBalancer {
 public:
  explicit PrescientBalancer(std::size_t server_count,
                             AssignmentConfig assignment = {});

  [[nodiscard]] std::string name() const override { return "dyn-prescient"; }

  void register_file_sets(
      const std::vector<workload::FileSet>& file_sets) override;
  [[nodiscard]] ServerId server_for(FileSetId id) const override;
  void report(ServerId, const ServerReport&) override {}
  void set_oracle(const OracleView& oracle) override;
  RebalanceResult tune() override;
  RebalanceResult on_server_failed(ServerId id) override;
  RebalanceResult on_server_recovered(ServerId id) override;
  RebalanceResult on_server_added(ServerId id) override;

  /// Prescient placement is an explicit file-set -> server table that every
  /// node must replicate (the paper's §6 critique of bin-packing schemes):
  /// 4 bytes per file set plus the speed vector.
  [[nodiscard]] std::size_t shared_state_bytes() const override {
    return placement_.size() * 4 + speeds_.size() * 8;
  }

 private:
  RebalanceResult reassign();

  std::size_t server_count_;
  AssignmentConfig assignment_;
  std::vector<double> speeds_;         // 0 = down
  std::vector<double> demands_;        // upcoming-interval oracle, per file set
  std::vector<double> weights_;        // registration-time fallback demands
  std::vector<ServerId> placement_;
};

}  // namespace anu::balance
