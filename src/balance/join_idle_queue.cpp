#include "balance/join_idle_queue.h"

#include <algorithm>

#include "common/assert.h"

namespace anu::balance {

const char* jiq_policy_name(JiqConfig::TokenPolicy policy) {
  switch (policy) {
    case JiqConfig::TokenPolicy::kFifo: return "fifo";
    case JiqConfig::TokenPolicy::kLifo: return "lifo";
    case JiqConfig::TokenPolicy::kFastest: return "fastest";
  }
  return "?";
}

JoinIdleQueueBalancer::JoinIdleQueueBalancer(const JiqConfig& config,
                                             std::size_t server_count)
    : DispatchBalancer(server_count, config.seed),
      config_(config),
      pooled_(server_count, false) {
  // Every server starts idle, so the pool starts full (in id order —
  // deterministic, and what a cold dispatcher would accumulate).
  for (std::uint32_t s = 0; s < server_count; ++s) add_token(ServerId(s));
}

void JoinIdleQueueBalancer::add_token(ServerId server) {
  if (server.value() >= pooled_.size()) {
    pooled_.resize(server.value() + 1, false);
  }
  if (pooled_[server.value()] || !is_up(server)) return;
  pooled_[server.value()] = true;
  tokens_.push_back(server);
  ++tokens_issued_;
}

void JoinIdleQueueBalancer::drop_tokens(ServerId server) {
  if (server.value() < pooled_.size() && pooled_[server.value()]) {
    pooled_[server.value()] = false;
    tokens_.erase(std::find(tokens_.begin(), tokens_.end(), server));
  }
}

void JoinIdleQueueBalancer::on_server_idle(ServerId server) {
  add_token(server);
}

RebalanceResult JoinIdleQueueBalancer::on_server_failed(ServerId id) {
  drop_tokens(id);
  return DispatchBalancer::on_server_failed(id);
}

RebalanceResult JoinIdleQueueBalancer::on_server_recovered(ServerId id) {
  auto result = DispatchBalancer::on_server_recovered(id);
  add_token(id);  // a recovered server comes back empty, hence idle
  return result;
}

RebalanceResult JoinIdleQueueBalancer::on_server_added(ServerId id) {
  auto result = DispatchBalancer::on_server_added(id);
  add_token(id);
  return result;
}

DispatchDecision JoinIdleQueueBalancer::dispatch(FileSetId id,
                                                 double demand) {
  (void)id;
  (void)demand;
  DispatchDecision decision;
  while (!tokens_.empty()) {
    std::size_t pick = 0;
    switch (config_.policy) {
      case JiqConfig::TokenPolicy::kFifo:
        pick = 0;
        break;
      case JiqConfig::TokenPolicy::kLifo:
        pick = tokens_.size() - 1;
        break;
      case JiqConfig::TokenPolicy::kFastest:
        for (std::size_t i = 1; i < tokens_.size(); ++i) {
          if (speed_of(tokens_[i]) > speed_of(tokens_[pick])) pick = i;
        }
        break;
    }
    const ServerId server = tokens_[pick];
    tokens_.erase(tokens_.begin() +
                  static_cast<std::ptrdiff_t>(pick));
    pooled_[server.value()] = false;
    // A token can go stale between issue and use: the server failed, or a
    // fallback dispatch landed on it while its token still sat pooled.
    if (!is_up(server) || queue_of(server) != 0) {
      ++tokens_stale_;
      continue;
    }
    ++idle_dispatches_;
    decision.add(server);
    return decision;
  }
  ++fallback_dispatches_;
  decision.add(config_.weighted_fallback ? sample_weighted()
                                         : sample_uniform());
  return decision;
}

BalanceCounters JoinIdleQueueBalancer::counters() const {
  return {{"idle_dispatches", idle_dispatches_},
          {"fallback_dispatches", fallback_dispatches_},
          {"tokens_issued", tokens_issued_},
          {"tokens_stale", tokens_stale_}};
}

}  // namespace anu::balance
