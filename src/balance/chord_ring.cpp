#include "balance/chord_ring.h"

#include <algorithm>

#include "common/assert.h"
#include "common/rng.h"

namespace anu::balance {

ChordRing::ChordRing(std::size_t node_count, std::uint64_t seed)
    : family_(seed) {
  ANU_REQUIRE(node_count > 0);
  // Deterministic, well-spread positions; re-draw on (astronomically
  // unlikely) duplicates so successor relationships are unambiguous.
  SplitMix64 mixer(seed);
  std::vector<std::uint64_t> positions;
  positions.reserve(node_count);
  while (positions.size() < node_count) {
    const std::uint64_t p = mixer.next();
    if (std::find(positions.begin(), positions.end(), p) == positions.end()) {
      positions.push_back(p);
    }
  }
  std::sort(positions.begin(), positions.end());
  nodes_.resize(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    nodes_[i].position = positions[i];
  }
  rebuild_routing();
}

void ChordRing::rebuild_routing() {
  sorted_positions_.clear();
  sorted_positions_.reserve(nodes_.size());
  for (const RingNode& node : nodes_) {
    sorted_positions_.push_back(node.position);
  }
  const auto n = static_cast<std::uint32_t>(nodes_.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    nodes_[i].successor = (i + 1) % n;
    // Finger tables: finger[b] of node i = successor of position + 2^b.
    nodes_[i].fingers.resize(64);
    for (int b = 0; b < 64; ++b) {
      const std::uint64_t target =
          nodes_[i].position + (std::uint64_t{1} << b);  // wraps mod 2^64
      nodes_[i].fingers[static_cast<std::size_t>(b)] = successor_of(target);
    }
  }
}

std::uint32_t ChordRing::add_node(std::uint64_t position, ServerId payload) {
  for (const RingNode& node : nodes_) {
    ANU_REQUIRE(node.position != position);  // positions are unique
  }
  RingNode joined;
  joined.position = position;
  joined.payload = payload;
  const auto at = std::lower_bound(
      nodes_.begin(), nodes_.end(), position,
      [](const RingNode& node, std::uint64_t p) { return node.position < p; });
  const auto index =
      static_cast<std::uint32_t>(std::distance(nodes_.begin(), at));
  nodes_.insert(at, std::move(joined));
  rebuild_routing();
  return index;
}

void ChordRing::remove_node(std::uint32_t node) {
  ANU_REQUIRE(node < nodes_.size());
  ANU_REQUIRE(nodes_.size() > 1);
  nodes_.erase(nodes_.begin() + node);
  rebuild_routing();
}

std::uint64_t ChordRing::position_of(std::uint32_t node) const {
  ANU_REQUIRE(node < nodes_.size());
  return nodes_[node].position;
}

std::uint32_t ChordRing::successor_of(std::uint64_t key) const {
  // First node with position >= key, wrapping to node 0.
  const auto it = std::lower_bound(sorted_positions_.begin(),
                                   sorted_positions_.end(), key);
  if (it == sorted_positions_.end()) return 0;
  return static_cast<std::uint32_t>(it - sorted_positions_.begin());
}

RingLookup ChordRing::lookup_from(std::uint32_t start,
                                  std::uint64_t key) const {
  ANU_REQUIRE(start < nodes_.size());
  RingLookup result;
  if (nodes_.size() == 1) return result;  // a lone node owns every key
  std::uint32_t current = start;
  // Walk: while key is not owned by current's successor, jump to the
  // farthest finger that does not overshoot the key. Classic Chord routing.
  for (;;) {
    const RingNode& node = nodes_[current];
    const std::uint64_t gap = distance(node.position, key);
    const RingNode& successor = nodes_[node.successor];
    if (gap == 0) {
      result.node = current;  // exact hit: current owns the key
      return result;
    }
    if (distance(node.position, successor.position) >= gap) {
      result.node = node.successor;  // successor covers the key
      ++result.hops;
      return result;
    }
    // Farthest finger strictly inside (position, key).
    std::uint32_t next = node.successor;
    for (int b = 63; b >= 0; --b) {
      const std::uint32_t candidate =
          node.fingers[static_cast<std::size_t>(b)];
      const std::uint64_t reach =
          distance(node.position, nodes_[candidate].position);
      if (reach > 0 && reach < gap) {
        next = candidate;
        break;
      }
    }
    ANU_ENSURE(next != current);  // progress or the ring is corrupt
    current = next;
    ++result.hops;
  }
}

RingLookup ChordRing::lookup(std::string_view name) const {
  return lookup_from(0, family_.raw(name, 0));
}

void ChordRing::set_payload(std::uint32_t node, ServerId payload) {
  ANU_REQUIRE(node < nodes_.size());
  nodes_[node].payload = payload;
}

ServerId ChordRing::payload(std::uint32_t node) const {
  ANU_REQUIRE(node < nodes_.size());
  return nodes_[node].payload;
}

std::size_t ChordRing::per_node_state_bytes() const {
  // Successor (4) + payload (4) + the *distinct* finger entries (node
  // index 4 + cached position 8 each): for small rings most of the 64
  // powers of two resolve to the same few nodes, and a real implementation
  // stores each once — this is how Chord's state is O(log n).
  std::size_t distinct_total = 0;
  for (const RingNode& node : nodes_) {
    std::vector<std::uint32_t> targets = node.fingers;
    std::sort(targets.begin(), targets.end());
    distinct_total += static_cast<std::size_t>(
        std::unique(targets.begin(), targets.end()) - targets.begin());
  }
  return 8 + (distinct_total / nodes_.size()) * 12;
}

void ChordRing::check_invariants() const {
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const RingNode& node = nodes_[i];
    ANU_ENSURE(node.successor ==
               (i + 1) % static_cast<std::uint32_t>(nodes_.size()));
    for (int b = 0; b < 64; ++b) {
      const std::uint64_t target = node.position + (std::uint64_t{1} << b);
      ANU_ENSURE(node.fingers[static_cast<std::size_t>(b)] ==
                 successor_of(target));
    }
  }
}

}  // namespace anu::balance
