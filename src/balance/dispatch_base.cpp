#include "balance/dispatch_base.h"

#include <algorithm>

#include "common/assert.h"

namespace anu::balance {

DispatchBalancer::DispatchBalancer(std::size_t server_count,
                                   std::uint64_t seed)
    : rng_(seed), up_mask_(server_count, true) {
  ANU_REQUIRE(server_count > 0);
  up_.reserve(server_count);
  for (std::uint32_t s = 0; s < server_count; ++s) {
    up_.push_back(ServerId(s));
  }
}

void DispatchBalancer::register_file_sets(
    const std::vector<workload::FileSet>& file_sets) {
  (void)file_sets;  // no placement to compute
}

ServerId DispatchBalancer::server_for(FileSetId id) const {
  (void)id;
  ANU_REQUIRE(!up_.empty());
  return up_.front();
}

RebalanceResult DispatchBalancer::on_server_failed(ServerId id) {
  set_up(id, false);
  return {};
}

RebalanceResult DispatchBalancer::on_server_recovered(ServerId id) {
  set_up(id, true);
  return {};
}

RebalanceResult DispatchBalancer::on_server_added(ServerId id) {
  if (id.value() >= up_mask_.size()) up_mask_.resize(id.value() + 1, false);
  set_up(id, true);
  return {};
}

void DispatchBalancer::set_up(ServerId id, bool up) {
  ANU_REQUIRE(id.value() < up_mask_.size());
  if (up_mask_[id.value()] == up) return;
  up_mask_[id.value()] = up;
  if (up) {
    up_.insert(std::lower_bound(up_.begin(), up_.end(), id,
                                [](ServerId a, ServerId b) {
                                  return a.value() < b.value();
                                }),
               id);
  } else {
    up_.erase(std::find(up_.begin(), up_.end(), id));
  }
  ANU_ENSURE(!up_.empty());  // the driver never fails the last server
}

double DispatchBalancer::speed_of(ServerId id) const {
  return view_ != nullptr ? view_->speed(id) : 1.0;
}

std::size_t DispatchBalancer::queue_of(ServerId id) const {
  return view_ != nullptr ? view_->queue_length(id) : 0;
}

ServerId DispatchBalancer::sample_uniform() {
  ANU_REQUIRE(!up_.empty());
  return up_[rng_.next_below(up_.size())];
}

ServerId DispatchBalancer::sample_weighted() {
  ANU_REQUIRE(!up_.empty());
  double max_speed = 0.0;
  for (const ServerId s : up_) max_speed = std::max(max_speed, speed_of(s));
  if (max_speed <= 0.0) return sample_uniform();
  // Rejection sampling: uniform candidate accepted with probability
  // speed / max_speed — O(1) expected draws, exact weighting, no O(k)
  // prefix-sum walk per request.
  for (;;) {
    const ServerId s = up_[rng_.next_below(up_.size())];
    if (rng_.next_double() * max_speed <= speed_of(s)) return s;
  }
}

void DispatchBalancer::sample_distinct(std::uint32_t d, bool weighted,
                                       DispatchDecision& out) {
  ANU_REQUIRE(d >= 1 && d <= DispatchDecision::kMaxTargets);
  if (up_.size() <= d) {
    for (const ServerId s : up_) out.add(s);
    return;
  }
  while (out.count < d) {
    const ServerId s = weighted ? sample_weighted() : sample_uniform();
    bool duplicate = false;
    for (std::uint32_t i = 0; i < out.count; ++i) {
      if (out.targets[i] == s) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.add(s);
  }
}

}  // namespace anu::balance
