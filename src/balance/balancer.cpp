#include "balance/balancer.h"

#include "common/assert.h"

namespace anu::balance {

DispatchDecision LoadBalancer::dispatch(FileSetId id, double demand) {
  (void)demand;
  DispatchDecision decision;
  decision.add(server_for(id));
  return decision;
}

RebalanceResult diff_placement(const std::vector<ServerId>& before,
                               const std::vector<ServerId>& after) {
  ANU_REQUIRE(before.size() == after.size());
  RebalanceResult result;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] != after[i]) {
      result.moves.push_back(FileSetMove{
          FileSetId(static_cast<std::uint32_t>(i)), before[i], after[i]});
    }
  }
  return result;
}

}  // namespace anu::balance
