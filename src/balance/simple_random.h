// Simple hash-based randomization — the static baseline (§5.1).
//
// "Simple randomization employs a pseudo-random hash function to uniformly
// assign file sets to servers, allowing us to compare our system with
// static, offline randomized policies used in heterogeneous clusters."
//
// Placement is a single hash of the file-set name mapped uniformly over the
// up servers. It never reacts to load (tune() is a no-op), which is exactly
// the pathology Figs. 5/6 demonstrate: it "is a static algorithm and assumes
// homogeneity in server capabilities", so the weakest server's latency
// diverges. Failure/recovery re-hashes only as needed to keep every file
// set on an up server.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "balance/balancer.h"
#include "hash/hash_family.h"

namespace anu::balance {

class SimpleRandomBalancer final : public LoadBalancer {
 public:
  SimpleRandomBalancer(std::size_t server_count,
                       std::uint64_t hash_seed = 0x73696d706c65ULL);

  [[nodiscard]] std::string name() const override { return "simple-random"; }

  void register_file_sets(
      const std::vector<workload::FileSet>& file_sets) override;
  [[nodiscard]] ServerId server_for(FileSetId id) const override;
  void report(ServerId, const ServerReport&) override {}
  RebalanceResult tune() override { return {}; }
  RebalanceResult on_server_failed(ServerId id) override;
  RebalanceResult on_server_recovered(ServerId id) override;
  RebalanceResult on_server_added(ServerId id) override;

  /// Addressing is pure hashing over the up-server list; the shared state
  /// is just that membership list (4 bytes per server).
  [[nodiscard]] std::size_t shared_state_bytes() const override {
    return up_.size() * 4;
  }

 private:
  [[nodiscard]] ServerId place(std::string_view name) const;
  [[nodiscard]] std::vector<ServerId> resolve_all() const;
  RebalanceResult reresolve();

  HashFamily family_;
  std::vector<bool> up_;
  std::vector<std::string> names_;
  std::vector<ServerId> placement_;
};

}  // namespace anu::balance
