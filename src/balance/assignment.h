// Prescient assignment: place weighted items on heterogeneous servers to
// minimize average latency.
//
// The paper's "dynamic prescient" system "realizes the optimal load balance
// through identifying the permutation of file sets onto servers that
// minimizes average latency, because it has perfect knowledge of server
// capabilities and workload properties" (§5.1). Minimizing queueing latency
// under FIFO service is (to first order) minimizing the maximum normalized
// load max_j(load_j / speed_j) — makespan on uniform machines — which is
// NP-hard; the classic LPT greedy plus a local-search polish gets within a
// few percent of optimal on instances this size, and is what we use for
// both dynamic prescient (items = file sets) and the virtual-processor
// system (items = VPs). Ties are broken deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace anu::balance {

struct AssignmentConfig {
  /// Local-search passes after LPT (0 disables polishing).
  std::size_t refine_passes = 4;
};

/// Assigns item i (demand demands[i]) to a server, minimizing the maximum
/// of (sum of assigned demand) / speed over servers, with total normalized
/// load as tie-breaker. Servers with speed <= 0 are down and receive
/// nothing. At least one speed must be positive. Zero-demand items go to
/// the fastest up server.
[[nodiscard]] std::vector<ServerId> assign_min_latency(
    const std::vector<double>& demands, const std::vector<double>& speeds,
    const AssignmentConfig& config = {});

/// The objective assign_min_latency minimizes; exposed for tests/benches.
[[nodiscard]] double max_normalized_load(const std::vector<ServerId>& placement,
                                         const std::vector<double>& demands,
                                         const std::vector<double>& speeds);

/// Capacity-proportional assignment: each up server receives a number of
/// items proportional to its speed (largest-remainder rounding), and within
/// those quotas the heaviest items go where they raise normalized load
/// least. This is the classic virtual-processor discipline (server i hosts
/// ~capacity_i/total VPs); its count quantization is exactly the
/// granularity penalty the paper's Fig. 8 charges against VP systems —
/// e.g. a server with 4% of capacity can hold 0 or 1 of 5 VPs, never 0.2.
[[nodiscard]] std::vector<ServerId> assign_capacity_proportional(
    const std::vector<double>& demands, const std::vector<double>& speeds);

}  // namespace anu::balance
