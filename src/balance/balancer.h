// The load-balancer interface shared by ANU randomization and the paper's
// three comparison systems (§5.1): simple randomization, dynamic prescient,
// and virtual processors.
//
// A balancer owns the file-set -> server placement. The experiment driver
// asks `server_for` on every request arrival, feeds per-server latency
// reports each tuning interval, and calls `tune` at interval boundaries;
// `tune` returns the file sets that moved so the driver can account load
// movement (paper Fig. 7) and model movement cost.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"
#include "workload/workload.h"

namespace anu::balance {

/// What one server reports to the tuning authority for the last interval
/// (paper §4: each server computes its latency over the interval).
struct ServerReport {
  double mean_latency = 0.0;
  std::size_t completed = 0;
};

/// A single file-set relocation produced by a tuning round.
struct FileSetMove {
  FileSetId file_set;
  ServerId from;
  ServerId to;
};

/// Result of one tuning round.
struct RebalanceResult {
  std::vector<FileSetMove> moves;
  [[nodiscard]] std::size_t moved_count() const { return moves.size(); }
};

/// Oracle knowledge handed to prescient balancers before each tuning round:
/// per-file-set offered demand for the *upcoming* interval (perfect
/// knowledge of workload properties) and per-server speeds (perfect
/// knowledge of server capabilities). Non-prescient balancers ignore it.
struct OracleView {
  std::vector<double> file_set_demand;  // indexed by FileSetId
  std::vector<double> server_speeds;    // indexed by ServerId; 0 = down
};

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Registers the workload's file sets. Called once before the run; the
  /// initial placement is computed here.
  virtual void register_file_sets(
      const std::vector<workload::FileSet>& file_sets) = 0;

  /// Current placement of a file set. Must return an up server.
  [[nodiscard]] virtual ServerId server_for(FileSetId id) const = 0;

  /// Feedback from one server for the closing interval.
  virtual void report(ServerId server, const ServerReport& report) = 0;

  /// Oracle information for the upcoming interval (prescient systems only).
  virtual void set_oracle(const OracleView& oracle) { (void)oracle; }

  /// Runs one tuning round; returns the placement changes it made.
  virtual RebalanceResult tune() = 0;

  /// Membership changes. Implementations must immediately stop returning
  /// the failed server from server_for (the paper's recovery semantics:
  /// only the failed server's file sets move).
  virtual RebalanceResult on_server_failed(ServerId id) = 0;
  virtual RebalanceResult on_server_recovered(ServerId id) = 0;
  /// A brand-new server (commissioning). Paper §4 treats it as recovery.
  virtual RebalanceResult on_server_added(ServerId id) = 0;

  /// Bytes of state that must be replicated to every cluster node for
  /// addressing (paper §5.4's shared-state comparison).
  [[nodiscard]] virtual std::size_t shared_state_bytes() const = 0;
};

/// Computes the moves implied by an old and a new placement vector.
[[nodiscard]] RebalanceResult diff_placement(
    const std::vector<ServerId>& before, const std::vector<ServerId>& after);

}  // namespace anu::balance
