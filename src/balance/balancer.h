// The load-balancer interface shared by ANU randomization, the paper's
// three comparison systems (§5.1) — simple randomization, dynamic
// prescient, virtual processors — and the modern randomized-dispatch
// baselines (JSQ(d), JIQ, redundancy-d; docs/strategies.md).
//
// Two families implement it:
//
//  * Placement strategies own the file-set -> server placement. The
//    experiment driver asks `server_for` on every request arrival, feeds
//    per-server latency reports each tuning interval, and calls `tune` at
//    interval boundaries; `tune` returns the file sets that moved so the
//    driver can account load movement (paper Fig. 7) and model movement
//    cost.
//
//  * Dispatch strategies (`per_request()` == true) route every request
//    individually through `dispatch`, reading live cluster state through
//    the ClusterView the driver binds before the run. They own no
//    placement, so `tune` never moves anything; membership callbacks only
//    maintain the strategy's notion of the up-server set.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "workload/workload.h"

namespace anu::balance {

/// What one server reports to the tuning authority for the last interval
/// (paper §4: each server computes its latency over the interval).
struct ServerReport {
  double mean_latency = 0.0;
  std::size_t completed = 0;
};

/// A single file-set relocation produced by a tuning round.
struct FileSetMove {
  FileSetId file_set;
  ServerId from;
  ServerId to;
};

/// Result of one tuning round.
struct RebalanceResult {
  std::vector<FileSetMove> moves;
  [[nodiscard]] std::size_t moved_count() const { return moves.size(); }
};

/// Oracle knowledge handed to prescient balancers before each tuning round:
/// per-file-set offered demand for the *upcoming* interval (perfect
/// knowledge of workload properties) and per-server speeds (perfect
/// knowledge of server capabilities). Non-prescient balancers ignore it.
struct OracleView {
  std::vector<double> file_set_demand;  // indexed by FileSetId
  std::vector<double> server_speeds;    // indexed by ServerId; 0 = down
};

/// Read-only live cluster state exposed to dispatch strategies. The
/// experiment driver implements it over cluster::Cluster; it is abstract
/// here so src/balance stays below src/cluster in the layering.
class ClusterView {
 public:
  virtual ~ClusterView() = default;
  [[nodiscard]] virtual std::size_t server_count() const = 0;
  [[nodiscard]] virtual bool is_up(ServerId id) const = 0;
  /// Requests waiting plus in service (0 = idle).
  [[nodiscard]] virtual std::size_t queue_length(ServerId id) const = 0;
  /// Current speed factor (nominal or degraded); 0 for down servers.
  [[nodiscard]] virtual double speed(ServerId id) const = 0;
};

/// One per-request routing decision. More than one target means "replicate
/// to all of them" (redundancy-d); `cancel` picks the moment the losing
/// replicas are killed.
struct DispatchDecision {
  static constexpr std::size_t kMaxTargets = 8;
  enum class Cancel : std::uint8_t {
    kOnStart,    // first replica to enter service kills the rest
    kOnComplete  // first replica to finish kills the rest
  };

  std::array<ServerId, kMaxTargets> targets{};
  std::uint32_t count = 0;
  Cancel cancel = Cancel::kOnComplete;

  void add(ServerId id) { targets.at(count++) = id; }
};

/// (name, value) counter pairs a strategy exports into the manifest's
/// `balance` block (driver/telemetry). Names are per-strategy; see
/// docs/strategies.md for each strategy's table.
using BalanceCounters = std::vector<std::pair<std::string, std::uint64_t>>;

class LoadBalancer {
 public:
  virtual ~LoadBalancer() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Registers the workload's file sets. Called once before the run; the
  /// initial placement is computed here.
  virtual void register_file_sets(
      const std::vector<workload::FileSet>& file_sets) = 0;

  /// Current placement of a file set. Must return an up server.
  [[nodiscard]] virtual ServerId server_for(FileSetId id) const = 0;

  /// Feedback from one server for the closing interval.
  virtual void report(ServerId server, const ServerReport& report) = 0;

  /// Oracle information for the upcoming interval (prescient systems only).
  virtual void set_oracle(const OracleView& oracle) { (void)oracle; }

  /// Runs one tuning round; returns the placement changes it made.
  virtual RebalanceResult tune() = 0;

  /// Membership changes. Implementations must immediately stop returning
  /// the failed server from server_for (the paper's recovery semantics:
  /// only the failed server's file sets move).
  virtual RebalanceResult on_server_failed(ServerId id) = 0;
  virtual RebalanceResult on_server_recovered(ServerId id) = 0;
  /// A brand-new server (commissioning). Paper §4 treats it as recovery.
  virtual RebalanceResult on_server_added(ServerId id) = 0;

  /// Bytes of state that must be replicated to every cluster node for
  /// addressing (paper §5.4's shared-state comparison).
  [[nodiscard]] virtual std::size_t shared_state_bytes() const = 0;

  // --- per-request dispatch extension (docs/strategies.md) ---

  /// True for dispatch strategies: the driver then routes every arrival
  /// through dispatch() instead of the placement routing table, binds a
  /// ClusterView before the run, and forwards idle notifications.
  [[nodiscard]] virtual bool per_request() const { return false; }

  /// Live cluster state, bound once before the run (dispatch strategies
  /// only; the view outlives the run). Placement strategies ignore it.
  virtual void bind_cluster(const ClusterView* view) { (void)view; }

  /// Routes one request (dispatch strategies only). The default forwards
  /// to the placement: a single target, server_for(id).
  [[nodiscard]] virtual DispatchDecision dispatch(FileSetId id,
                                                  double demand);

  /// `server` just drained its queue while up (idle-token feed for JIQ).
  virtual void on_server_idle(ServerId server) { (void)server; }

  /// Strategy-specific counters for the manifest's `balance` block.
  [[nodiscard]] virtual BalanceCounters counters() const { return {}; }
};

/// Computes the moves implied by an old and a new placement vector.
[[nodiscard]] RebalanceResult diff_placement(
    const std::vector<ServerId>& before, const std::vector<ServerId>& after);

}  // namespace anu::balance
