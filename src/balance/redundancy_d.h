// Redundancy-d dispatch: replicate each request to d servers, keep the
// winner, cancel the rest.
//
// The product-form redundancy scheme of van der Boor, Borst, van
// Leeuwaarden & Comte (PAPERS.md): replication turns per-request server
// choice into a race, so the request experiences the minimum of d queues
// without the dispatcher reading any queue state at all. Cancellation
// timing is the key design axis:
//
//   cancel-on-start    — the first replica to *enter service* kills its
//                        siblings; no service capacity is ever wasted
//                        (equivalent to late binding / sparrow-style
//                        batch sampling).
//   cancel-on-complete — replicas race to the finish; losers may burn
//                        real service time (visible in utilization), in
//                        exchange for hedging against slow servers
//                        mid-service.
//
// The replica race itself (start/completion callbacks, sibling
// cancellation, failure rescue) is run by the experiment driver on top of
// the cluster's cancel-capable job handles; this strategy only picks the
// d targets and the cancel mode.
#pragma once

#include <cstdint>

#include "balance/dispatch_base.h"

namespace anu::balance {

struct RedundancyDConfig {
  /// Replicas per request (clamped to the up-server count at dispatch).
  std::uint32_t d = 2;
  enum class CancelMode : std::uint8_t { kOnStart, kOnComplete };
  CancelMode cancel = CancelMode::kOnComplete;
  /// Draw replica targets speed-weighted instead of uniform.
  bool speed_aware = false;
  std::uint64_t seed = 0x726564ULL;  // "red"
};

/// Names for config files / labels: start | complete.
[[nodiscard]] const char* cancel_mode_name(RedundancyDConfig::CancelMode mode);

class RedundancyDBalancer final : public DispatchBalancer {
 public:
  RedundancyDBalancer(const RedundancyDConfig& config,
                      std::size_t server_count);

  [[nodiscard]] std::string name() const override { return "redundancy-d"; }

  [[nodiscard]] DispatchDecision dispatch(FileSetId id,
                                          double demand) override;

  /// Manifest counters (docs/strategies.md): dispatches,
  /// replicas_requested. The driver adds the race outcomes
  /// (replication.* counters) next to these.
  [[nodiscard]] BalanceCounters counters() const override;

  [[nodiscard]] const RedundancyDConfig& config() const { return config_; }

 private:
  RedundancyDConfig config_;
  std::uint64_t dispatches_ = 0;
  std::uint64_t replicas_requested_ = 0;
};

}  // namespace anu::balance
