// Join-Idle-Queue dispatch (Lu et al.), heterogeneity-aware per
// Gardner et al. (PAPERS.md, arXiv:2006.13987).
//
// Servers push an idle token to the dispatcher the moment their queue
// drains; an arrival grabs a token and goes to that (guaranteed-idle)
// server, paying O(1) dispatcher work with no per-arrival queue probes.
// When the token pool is empty the arrival falls back to a random server
// — uniformly, or speed-weighted so the fallback at least respects
// capacities (the heterogeneity-aware refinement).
//
// The token policy decides which idle server an arrival takes:
//   fifo    — longest-idle first (the classic JIQ queue)
//   lifo    — most-recently-idle first (cache-warm bias)
//   fastest — highest-speed idle server first (heterogeneity-aware:
//             idle fast servers are the most wasteful kind of idle)
#pragma once

#include <cstdint>
#include <deque>

#include "balance/dispatch_base.h"

namespace anu::balance {

struct JiqConfig {
  enum class TokenPolicy : std::uint8_t { kFifo, kLifo, kFastest };
  TokenPolicy policy = TokenPolicy::kFifo;
  /// Busy fallback draws speed-weighted instead of uniform.
  bool weighted_fallback = true;
  std::uint64_t seed = 0x6a6971ULL;  // "jiq"
};

/// Names for config files / labels: fifo | lifo | fastest.
[[nodiscard]] const char* jiq_policy_name(JiqConfig::TokenPolicy policy);

class JoinIdleQueueBalancer final : public DispatchBalancer {
 public:
  JoinIdleQueueBalancer(const JiqConfig& config, std::size_t server_count);

  [[nodiscard]] std::string name() const override { return "jiq"; }

  [[nodiscard]] DispatchDecision dispatch(FileSetId id,
                                          double demand) override;
  void on_server_idle(ServerId server) override;

  RebalanceResult on_server_failed(ServerId id) override;
  RebalanceResult on_server_recovered(ServerId id) override;
  RebalanceResult on_server_added(ServerId id) override;

  /// Membership (base) plus the token pool: 4 bytes per pooled token.
  [[nodiscard]] std::size_t shared_state_bytes() const override {
    return DispatchBalancer::shared_state_bytes() + tokens_.size() * 4;
  }

  /// Manifest counters (docs/strategies.md): idle_dispatches,
  /// fallback_dispatches, tokens_issued, tokens_stale.
  [[nodiscard]] BalanceCounters counters() const override;

  [[nodiscard]] std::size_t pool_size() const { return tokens_.size(); }
  [[nodiscard]] const JiqConfig& config() const { return config_; }

 private:
  void add_token(ServerId server);
  void drop_tokens(ServerId server);

  JiqConfig config_;
  /// Idle tokens in arrival order; kFifo pops the front, kLifo the back,
  /// kFastest scans for the highest-speed entry. At most one token per
  /// server (pooled_ guards duplicates).
  std::deque<ServerId> tokens_;
  std::vector<bool> pooled_;
  std::uint64_t idle_dispatches_ = 0;
  std::uint64_t fallback_dispatches_ = 0;
  std::uint64_t tokens_issued_ = 0;
  std::uint64_t tokens_stale_ = 0;
};

}  // namespace anu::balance
