#include "balance/jsq_d.h"

#include "common/assert.h"

namespace anu::balance {

JsqDBalancer::JsqDBalancer(const JsqDConfig& config, std::size_t server_count)
    : DispatchBalancer(server_count, config.seed), config_(config) {
  ANU_REQUIRE(config.d >= 1 &&
              config.d <= DispatchDecision::kMaxTargets);
}

DispatchDecision JsqDBalancer::dispatch(FileSetId id, double demand) {
  (void)id;
  (void)demand;
  DispatchDecision sampled;
  sample_distinct(config_.d, config_.speed_aware, sampled);
  ++dispatches_;
  samples_drawn_ += sampled.count;
  if (sampled.count < config_.d || sampled.count == up_servers().size()) {
    ++full_scans_;
  }

  // Rank the samples: expected drain time (queue/speed) when
  // heterogeneity-aware, raw queue length otherwise. Ties go to the
  // faster server, then the lower id — a total order, so the choice is
  // independent of sample order.
  ServerId best = sampled.targets[0];
  double best_score = config_.speed_aware
                          ? static_cast<double>(queue_of(best)) /
                                speed_of(best)
                          : static_cast<double>(queue_of(best));
  for (std::uint32_t i = 1; i < sampled.count; ++i) {
    const ServerId s = sampled.targets[i];
    const double score =
        config_.speed_aware
            ? static_cast<double>(queue_of(s)) / speed_of(s)
            : static_cast<double>(queue_of(s));
    if (score < best_score) {
      best = s;
      best_score = score;
    } else if (score == best_score) {
      ++ties_broken_;
      if (speed_of(s) > speed_of(best) ||
          (speed_of(s) == speed_of(best) &&
           s.value() < best.value())) {
        best = s;
      }
    }
  }

  DispatchDecision decision;
  decision.add(best);
  return decision;
}

BalanceCounters JsqDBalancer::counters() const {
  return {{"dispatches", dispatches_},
          {"samples_drawn", samples_drawn_},
          {"ties_broken", ties_broken_},
          {"full_scans", full_scans_}};
}

}  // namespace anu::balance
