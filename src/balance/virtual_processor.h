// Virtual-processor load balancing — the main comparison system (§5.1, §5.4).
//
// "The virtual processor system first randomly distributes file sets into
// N*v virtual processors where N is the number of physical servers and v is
// a scaling factor chosen from interval [1,10] ... By default, we set the
// value of v to 5. The system then utilizes perfect knowledge about server
// capabilities and virtual processor workload characteristics to map
// virtual processors to servers in a way that minimizes average latency.
// This mapping procedure is similar to that in dynamic prescient except
// that the workload assignment and movement unit is now virtual processor
// instead of file set."
//
// The file-set -> VP map is a static hash (uniform); the VP -> server map is
// recomputed prescient each round over per-VP demand (sum of member file-set
// oracle demand). Shared state is the per-VP address table — the cost §5.4
// charges against this design.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "balance/assignment.h"
#include "balance/balancer.h"
#include "hash/hash_family.h"

namespace anu::balance {

/// How virtual processors are mapped onto servers each round.
enum class VpMappingPolicy {
  /// Each server hosts a VP count proportional to its capacity; the
  /// heaviest VPs go to the fastest servers within those quotas. This is
  /// the classic VP discipline and reproduces the paper's granularity
  /// penalty: with few VPs the count quantization cannot match capacities
  /// (e.g. a 4%-capacity server must hold 0 or 1 of 5 VPs).
  kCapacityProportional,
  /// Unconstrained min-latency packing (LPT + local search) — a stronger,
  /// modern mapper that may leave weak servers empty; kept for comparison
  /// (see bench/ablation_tuner and EXPERIMENTS.md).
  kMinLatency,
};

struct VirtualProcessorConfig {
  /// v: virtual processors per physical server (paper default 5).
  std::size_t vp_per_server = 5;
  VpMappingPolicy policy = VpMappingPolicy::kCapacityProportional;
  std::uint64_t hash_seed = 0x76705f68617368ULL;
  AssignmentConfig assignment;
  /// Bytes of replicated address state per virtual processor. A VP's
  /// address record is its id, current server, and endpoint information —
  /// 16 bytes is a lean encoding (§5.4 footnote: a Chord-style ring could
  /// trade this for log(n) probes).
  std::size_t bytes_per_vp = 16;
};

class VirtualProcessorBalancer final : public LoadBalancer {
 public:
  VirtualProcessorBalancer(const VirtualProcessorConfig& config,
                           std::size_t server_count);

  [[nodiscard]] std::string name() const override {
    return "virtual-processor(v=" + std::to_string(config_.vp_per_server) +
           ")";
  }

  void register_file_sets(
      const std::vector<workload::FileSet>& file_sets) override;
  [[nodiscard]] ServerId server_for(FileSetId id) const override;
  void report(ServerId, const ServerReport&) override {}
  void set_oracle(const OracleView& oracle) override;
  RebalanceResult tune() override;
  RebalanceResult on_server_failed(ServerId id) override;
  RebalanceResult on_server_recovered(ServerId id) override;
  RebalanceResult on_server_added(ServerId id) override;
  [[nodiscard]] std::size_t shared_state_bytes() const override {
    return vp_to_server_.size() * config_.bytes_per_vp;
  }

  [[nodiscard]] std::size_t vp_count() const { return vp_to_server_.size(); }
  [[nodiscard]] VpId vp_of(FileSetId id) const;

 private:
  RebalanceResult remap();
  [[nodiscard]] std::vector<double> vp_demands() const;

  VirtualProcessorConfig config_;
  HashFamily family_;
  std::vector<double> speeds_;          // 0 = down
  std::vector<VpId> file_set_vp_;       // static hash map
  std::vector<ServerId> vp_to_server_;  // the replicated table
  std::vector<double> demands_;         // oracle per file set
  std::vector<ServerId> placement_;     // derived: per file set
};

}  // namespace anu::balance
