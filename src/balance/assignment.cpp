#include "balance/assignment.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/assert.h"

namespace anu::balance {

namespace {

struct Loads {
  std::vector<double> load;        // raw demand per server
  const std::vector<double>* speeds;

  [[nodiscard]] double normalized(std::size_t s) const {
    return load[s] / (*speeds)[s];
  }
  [[nodiscard]] double normalized_with(std::size_t s, double extra) const {
    return (load[s] + extra) / (*speeds)[s];
  }
};

}  // namespace

std::vector<ServerId> assign_min_latency(const std::vector<double>& demands,
                                         const std::vector<double>& speeds,
                                         const AssignmentConfig& config) {
  ANU_REQUIRE(!speeds.empty());
  std::vector<std::size_t> up;
  for (std::size_t s = 0; s < speeds.size(); ++s) {
    if (speeds[s] > 0.0) up.push_back(s);
  }
  ANU_REQUIRE(!up.empty());

  // LPT: items in descending demand, each to the server whose normalized
  // load after placement is smallest.
  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return demands[a] > demands[b];
                   });

  Loads loads{std::vector<double>(speeds.size(), 0.0), &speeds};
  std::vector<ServerId> placement(demands.size());
  for (std::size_t item : order) {
    ANU_REQUIRE(demands[item] >= 0.0);
    std::size_t best = up.front();
    double best_load = std::numeric_limits<double>::infinity();
    for (std::size_t s : up) {
      const double after = loads.normalized_with(s, demands[item]);
      // Tie-break toward the faster server: it finishes the marginal work
      // sooner, and the deterministic order keeps runs reproducible.
      if (after < best_load ||
          (after == best_load && speeds[s] > speeds[best])) {
        best = s;
        best_load = after;
      }
    }
    loads.load[best] += demands[item];
    placement[item] = ServerId(static_cast<std::uint32_t>(best));
  }

  // Local search: single-item moves that reduce (max normalized load, then
  // sum of squared normalized loads). Few passes suffice at this scale.
  for (std::size_t pass = 0; pass < config.refine_passes; ++pass) {
    bool improved = false;
    for (std::size_t item : order) {
      const std::size_t from = placement[item].value();
      const double d = demands[item];
      if (d == 0.0) continue;
      const double from_before = loads.normalized(from);
      for (std::size_t to : up) {
        if (to == from) continue;
        const double to_after = loads.normalized_with(to, d);
        const double from_after = loads.normalized_with(from, -d);
        // The move helps if the larger of the two involved servers' loads
        // strictly decreases.
        const double before = std::max(from_before, loads.normalized(to));
        const double after = std::max(from_after, to_after);
        if (after < before) {
          loads.load[from] -= d;
          loads.load[to] += d;
          placement[item] = ServerId(static_cast<std::uint32_t>(to));
          improved = true;
          break;
        }
      }
    }
    if (!improved) break;
  }
  return placement;
}

std::vector<ServerId> assign_capacity_proportional(
    const std::vector<double>& demands, const std::vector<double>& speeds) {
  ANU_REQUIRE(!speeds.empty());
  std::vector<std::size_t> up;
  double total_speed = 0.0;
  for (std::size_t s = 0; s < speeds.size(); ++s) {
    if (speeds[s] > 0.0) {
      up.push_back(s);
      total_speed += speeds[s];
    }
  }
  ANU_REQUIRE(!up.empty());

  // Quotas: items per server proportional to speed, largest remainder.
  const std::size_t n = demands.size();
  std::vector<std::size_t> quota(speeds.size(), 0);
  std::size_t assigned = 0;
  std::vector<std::pair<double, std::size_t>> remainders;
  for (std::size_t s : up) {
    const double exact = static_cast<double>(n) * speeds[s] / total_speed;
    quota[s] = static_cast<std::size_t>(exact);
    assigned += quota[s];
    remainders.emplace_back(exact - static_cast<double>(quota[s]), s);
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first > b.first;
                     return a.second < b.second;
                   });
  for (std::size_t k = 0; assigned < n; ++k, ++assigned) {
    ++quota[remainders[k % remainders.size()].second];
  }

  // Heaviest items first; within the remaining quotas pick the server whose
  // normalized load grows least (so the big VPs land on fast servers).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return demands[a] > demands[b];
                   });
  std::vector<double> load(speeds.size(), 0.0);
  std::vector<ServerId> placement(n);
  for (std::size_t item : order) {
    std::size_t best = speeds.size();
    double best_load = std::numeric_limits<double>::infinity();
    for (std::size_t s : up) {
      if (quota[s] == 0) continue;
      const double after = (load[s] + demands[item]) / speeds[s];
      if (after < best_load) {
        best = s;
        best_load = after;
      }
    }
    ANU_ENSURE(best < speeds.size());  // quotas sum to n by construction
    --quota[best];
    load[best] += demands[item];
    placement[item] = ServerId(static_cast<std::uint32_t>(best));
  }
  return placement;
}

double max_normalized_load(const std::vector<ServerId>& placement,
                           const std::vector<double>& demands,
                           const std::vector<double>& speeds) {
  ANU_REQUIRE(placement.size() == demands.size());
  std::vector<double> load(speeds.size(), 0.0);
  for (std::size_t i = 0; i < placement.size(); ++i) {
    load[placement[i].value()] += demands[i];
  }
  double worst = 0.0;
  for (std::size_t s = 0; s < speeds.size(); ++s) {
    if (speeds[s] > 0.0) worst = std::max(worst, load[s] / speeds[s]);
    else ANU_REQUIRE(load[s] == 0.0);
  }
  return worst;
}

}  // namespace anu::balance
