// Power-of-d-choices join-shortest-queue dispatch — JSQ(d).
//
// The classic randomized baseline the paper never compared against
// (PAPERS.md: Mukhopadhyay & Mazumdar, arXiv:1311.5806): each arrival
// samples d servers uniformly at random and joins the one with the
// shortest queue. d = 2 already collapses the queue-length distribution
// ("the power of two choices"); d = k degenerates to full JSQ.
//
// The heterogeneity-aware variant (speed_aware) adapts the scheme to
// clusters with unequal service rates two ways at once: the d samples are
// drawn with probability proportional to server speed, and the comparison
// ranks servers by expected drain time (queue length / speed) instead of
// raw queue length — a speed-9 server with 3 queued requests beats a
// speed-1 server with 1.
#pragma once

#include <cstdint>

#include "balance/dispatch_base.h"

namespace anu::balance {

struct JsqDConfig {
  /// Servers sampled per request (1 = pure random, >= cluster = full JSQ).
  std::uint32_t d = 2;
  /// Heterogeneity-aware sampling + drain-time comparison (see above).
  bool speed_aware = false;
  std::uint64_t seed = 0x6a737164ULL;  // "jsqd"
};

class JsqDBalancer final : public DispatchBalancer {
 public:
  JsqDBalancer(const JsqDConfig& config, std::size_t server_count);

  [[nodiscard]] std::string name() const override {
    return config_.speed_aware ? "jsq-d-het" : "jsq-d";
  }

  [[nodiscard]] DispatchDecision dispatch(FileSetId id,
                                          double demand) override;

  /// Manifest counters (docs/strategies.md): dispatches, samples_drawn,
  /// ties_broken, full_scans (rounds where d covered every up server).
  [[nodiscard]] BalanceCounters counters() const override;

  [[nodiscard]] const JsqDConfig& config() const { return config_; }

 private:
  JsqDConfig config_;
  std::uint64_t dispatches_ = 0;
  std::uint64_t samples_drawn_ = 0;
  std::uint64_t ties_broken_ = 0;
  std::uint64_t full_scans_ = 0;
};

}  // namespace anu::balance
