#include "balance/prescient.h"

#include "common/assert.h"

namespace anu::balance {

PrescientBalancer::PrescientBalancer(std::size_t server_count,
                                     AssignmentConfig assignment)
    : server_count_(server_count),
      assignment_(assignment),
      speeds_(server_count, 1.0) {
  ANU_REQUIRE(server_count > 0);
}

void PrescientBalancer::register_file_sets(
    const std::vector<workload::FileSet>& file_sets) {
  weights_.clear();
  weights_.reserve(file_sets.size());
  for (const auto& fs : file_sets) weights_.push_back(fs.weight);
  // Balanced "from the very beginning, time 0" (§5.2.1): the initial
  // placement already uses whatever oracle view is set (or the registered
  // weights before the first set_oracle call).
  if (demands_.size() != weights_.size()) demands_ = weights_;
  placement_.assign(file_sets.size(), ServerId(0));
  reassign();
}

ServerId PrescientBalancer::server_for(FileSetId id) const {
  ANU_REQUIRE(id.value() < placement_.size());
  return placement_[id.value()];
}

void PrescientBalancer::set_oracle(const OracleView& oracle) {
  if (!oracle.file_set_demand.empty()) {
    demands_ = oracle.file_set_demand;
  }
  if (!oracle.server_speeds.empty()) {
    ANU_REQUIRE(oracle.server_speeds.size() >= speeds_.size());
    speeds_ = oracle.server_speeds;
    server_count_ = speeds_.size();
  }
}

RebalanceResult PrescientBalancer::reassign() {
  ANU_REQUIRE(demands_.size() == placement_.size());
  const std::vector<ServerId> before = placement_;
  placement_ = assign_min_latency(demands_, speeds_, assignment_);
  return diff_placement(before, placement_);
}

RebalanceResult PrescientBalancer::tune() { return reassign(); }

RebalanceResult PrescientBalancer::on_server_failed(ServerId id) {
  ANU_REQUIRE(id.value() < speeds_.size() && speeds_[id.value()] > 0.0);
  speeds_[id.value()] = 0.0;
  return reassign();
}

RebalanceResult PrescientBalancer::on_server_recovered(ServerId id) {
  ANU_REQUIRE(id.value() < speeds_.size());
  // The oracle is expected to refresh speeds_ via set_oracle; recovery with
  // no refresh restores unit speed so the server is at least schedulable.
  if (speeds_[id.value()] <= 0.0) speeds_[id.value()] = 1.0;
  return reassign();
}

RebalanceResult PrescientBalancer::on_server_added(ServerId id) {
  // The oracle may already have grown the speed vector (the driver
  // refreshes it from the cluster, which knows the new server first).
  if (id.value() == speeds_.size()) {
    speeds_.push_back(1.0);
  }
  ANU_REQUIRE(id.value() < speeds_.size());
  server_count_ = speeds_.size();
  return reassign();
}

}  // namespace anu::balance
