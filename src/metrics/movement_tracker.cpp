#include "metrics/movement_tracker.h"

#include "common/assert.h"

namespace anu::metrics {

MovementTracker::MovementTracker(std::vector<double> file_set_weights)
    : weights_(std::move(file_set_weights)),
      ever_moved_(weights_.size(), false) {
  for (double w : weights_) {
    ANU_REQUIRE(w >= 0.0);
    total_weight_ += w;
  }
}

void MovementTracker::record(SimTime when,
                             const balance::RebalanceResult& result) {
  Round round;
  round.when = when;
  round.moved = result.moves.size();
  for (const balance::FileSetMove& move : result.moves) {
    ANU_REQUIRE(move.file_set.value() < weights_.size());
    round.moved_weight += weights_[move.file_set.value()];
    ever_moved_[move.file_set.value()] = true;
  }
  total_moved_ += round.moved;
  moved_weight_ += round.moved_weight;
  round.cumulative = total_moved_;
  round.cumulative_pct = percent_workload_moved();
  rounds_.push_back(round);
}

double MovementTracker::percent_workload_moved() const {
  return total_weight_ > 0.0 ? 100.0 * moved_weight_ / total_weight_ : 0.0;
}

std::size_t MovementTracker::unique_moved() const {
  std::size_t n = 0;
  for (bool moved : ever_moved_) n += moved ? 1 : 0;
  return n;
}

double MovementTracker::percent_unique_workload_moved() const {
  if (total_weight_ <= 0.0) return 0.0;
  double moved = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (ever_moved_[i]) moved += weights_[i];
  }
  return 100.0 * moved / total_weight_;
}

}  // namespace anu::metrics
