#include "metrics/consistency.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace anu::metrics {

ConsistencyReport performance_consistency(
    const std::vector<RunningStats>& per_server, double min_served_share) {
  ANU_REQUIRE(min_served_share >= 0.0 && min_served_share < 1.0);
  ConsistencyReport report;
  std::size_t total = 0;
  for (const RunningStats& s : per_server) total += s.count();
  if (total == 0) return report;

  RunningStats means;  // of per-server mean latencies, counted servers only
  double lo = 0.0, hi = 0.0;
  for (const RunningStats& s : per_server) {
    const double share =
        static_cast<double>(s.count()) / static_cast<double>(total);
    if (s.count() == 0) continue;  // fully idle: not a server of the metric
    if (share < min_served_share) {
      ++report.servers_excluded;
      report.excluded_request_share += share;
      continue;
    }
    const double mean = s.mean();
    if (report.servers_counted == 0) {
      lo = hi = mean;
    } else {
      lo = std::min(lo, mean);
      hi = std::max(hi, mean);
    }
    ++report.servers_counted;
    means.add(mean);
  }
  if (report.servers_counted == 0) return report;
  report.latency_cv = means.mean() > 0.0 ? means.stddev() / means.mean() : 0.0;
  report.max_over_min = lo > 0.0 ? hi / lo : 1.0;
  return report;
}

}  // namespace anu::metrics
