// Performance-consistency metrics (paper §5.2.2).
//
// "Servers exhibit consistent average latency values in ANU randomization
// ... application workloads will observe consistent latency over any
// non-idle server in the cluster once the system reaches balance. It will
// benefit applications that have strict performance requirements [and]
// Service Level Agreements."
//
// Consistency is summarized over the servers that actually carry load: a
// near-idle server's handful of requests (the paper's server 0 at 0.37%)
// must not dominate the statistic, so servers below `min_served_share` of
// total requests are reported separately.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.h"

namespace anu::metrics {

struct ConsistencyReport {
  /// Coefficient of variation (stddev/mean) of per-server mean latencies
  /// over the counted (non-idle) servers. 0 = perfectly consistent.
  double latency_cv = 0.0;
  /// Ratio of slowest to fastest counted server's mean latency.
  double max_over_min = 1.0;
  /// Servers included (served share >= min_served_share).
  std::size_t servers_counted = 0;
  /// Servers excluded as near-idle, and the share of requests they served.
  std::size_t servers_excluded = 0;
  double excluded_request_share = 0.0;
};

/// Computes the report from whole-run per-server latency statistics.
/// `min_served_share` is the fraction of total served requests below which
/// a server counts as near-idle (default 1%).
[[nodiscard]] ConsistencyReport performance_consistency(
    const std::vector<RunningStats>& per_server,
    double min_served_share = 0.01);

}  // namespace anu::metrics
