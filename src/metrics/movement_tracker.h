// Load-movement accounting (Fig. 7).
//
// "Figure 7 illustrates both the number of file sets moved by ANU
// randomization over the course of synthetic workload simulation and the
// percentage of total workload that has been moved during the same
// experiment." Movement is costly in shared-disk clusters (cache flush on
// the shedding server, cold cache on the acquirer — §5.3), so the tracker
// records both counts and the weight of what moved, per tuning round and
// cumulatively.
#pragma once

#include <cstddef>
#include <vector>

#include "balance/balancer.h"
#include "common/types.h"

namespace anu::metrics {

class MovementTracker {
 public:
  /// `file_set_weights[fs]` is the file set's total offered work; the
  /// percentage-of-workload-moved metric is moved weight / total weight.
  explicit MovementTracker(std::vector<double> file_set_weights);

  struct Round {
    SimTime when = 0.0;
    std::size_t moved = 0;        // file sets moved this round
    double moved_weight = 0.0;    // their summed weights
    std::size_t cumulative = 0;   // running total of moves
    double cumulative_pct = 0.0;  // running % of total workload moved
  };

  void record(SimTime when, const balance::RebalanceResult& result);

  [[nodiscard]] const std::vector<Round>& rounds() const { return rounds_; }
  [[nodiscard]] std::size_t total_moved() const { return total_moved_; }
  [[nodiscard]] double total_moved_weight() const { return moved_weight_; }
  /// Percentage (0..100+) of total workload weight that has moved; a file
  /// set moving twice counts twice, as in the paper's cumulative plot.
  [[nodiscard]] double percent_workload_moved() const;
  /// Number of distinct file sets that moved at least once.
  [[nodiscard]] std::size_t unique_moved() const;
  /// Percentage (0..100) of total workload weight whose file set moved at
  /// least once — the stricter reading of "workload that has been moved".
  [[nodiscard]] double percent_unique_workload_moved() const;

 private:
  std::vector<double> weights_;
  std::vector<bool> ever_moved_;
  double total_weight_ = 0.0;
  std::vector<Round> rounds_;
  std::size_t total_moved_ = 0;
  double moved_weight_ = 0.0;
};

}  // namespace anu::metrics
