#include "metrics/latency_tracker.h"

#include "common/assert.h"

namespace anu::metrics {

LatencyTracker::LatencyTracker(std::size_t server_count)
    : per_server_(server_count), series_(server_count) {}

void LatencyTracker::observe(const cluster::Completion& completion) {
  ANU_REQUIRE(completion.server.value() < per_server_.size());
  const double latency = completion.latency();
  aggregate_.add(latency);
  per_server_[completion.server.value()].add(latency);
  series_[completion.server.value()].add(completion.completion, latency);
}

void LatencyTracker::add_server() {
  per_server_.emplace_back();
  series_.emplace_back();
}

const RunningStats& LatencyTracker::server_stats(ServerId id) const {
  ANU_REQUIRE(id.value() < per_server_.size());
  return per_server_[id.value()];
}

const TimeSeries& LatencyTracker::server_series(ServerId id) const {
  ANU_REQUIRE(id.value() < series_.size());
  return series_[id.value()];
}

std::uint64_t LatencyTracker::served(ServerId id) const {
  return server_stats(id).count();
}

}  // namespace anu::metrics
