// Latency accounting for the evaluation figures.
//
// Figures 4 and 5 plot each server's latency over time; Figure 6(a) reports
// the aggregate mean and standard deviation over *all requests*; Figure 6(b)
// the per-server means. One tracker instance observes every completion of a
// run and can answer all three.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/server.h"
#include "common/stats.h"
#include "common/types.h"

namespace anu::metrics {

class LatencyTracker {
 public:
  explicit LatencyTracker(std::size_t server_count);

  void observe(const cluster::Completion& completion);
  /// Extends the trackers when a server is commissioned mid-run.
  void add_server();

  [[nodiscard]] std::size_t server_count() const { return per_server_.size(); }

  /// All requests, whole run (Fig. 6(a)).
  [[nodiscard]] const RunningStats& aggregate() const { return aggregate_; }
  /// One server, whole run (Fig. 6(b)).
  [[nodiscard]] const RunningStats& server_stats(ServerId id) const;
  /// One server's (completion time, latency) series (Figs. 4/5).
  [[nodiscard]] const TimeSeries& server_series(ServerId id) const;
  /// Requests served per server (the §5.2.2 "server 0 served only 248
  /// requests (0.37%)" analysis).
  [[nodiscard]] std::uint64_t served(ServerId id) const;
  [[nodiscard]] std::uint64_t total_served() const {
    return aggregate_.count();
  }

 private:
  RunningStats aggregate_;
  std::vector<RunningStats> per_server_;
  std::vector<TimeSeries> series_;
};

}  // namespace anu::metrics
