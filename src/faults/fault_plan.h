// Adversarial fault injection for the control-plane network.
//
// The paper's §4 fault model is the friendliest possible one: messages to a
// cleanly-down node vanish, everything else arrives. Real heterogeneous
// clusters are dominated by *partial* failures — lossy links, duplicated
// and reordered packets, latency spikes, partitions that heal. A FaultPlan
// scripts exactly those: the Network consults it once per message and the
// plan answers "drop it / duplicate it / delay it", driven by a dedicated
// seeded RNG stream so a chaos run is bit-reproducible and the fault
// stream never perturbs the workload or network-jitter streams.
//
// Probabilistic faults are confined to an active window [start, end); a
// chaos run schedules the window to close well before the horizon so the
// protocol's post-fault convergence can be asserted. Partitions are either
// scripted windows (two node groups whose cross-traffic drops while the
// window is open) or imperative `partition(a, b)` / `heal()` edits, which
// tests use directly.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace anu::faults {

/// A scripted link-level partition: while `start <= now < end`, messages
/// between a node in `group_a` and a node in `group_b` are dropped (both
/// directions). Nodes in neither group are unaffected.
struct PartitionWindow {
  SimTime start = 0.0;
  SimTime end = 0.0;
  std::vector<std::uint32_t> group_a;
  std::vector<std::uint32_t> group_b;
};

struct FaultPlanConfig {
  /// Per-message probabilities in [0, 1).
  double loss = 0.0;       // message transmitted but lost in transit
  double duplicate = 0.0;  // message delivered twice (independent delays)
  double delay_spike = 0.0;  // message held an extra uniform [0, spike_max)
  double spike_max = 0.05;   // delay-spike magnitude bound, seconds
  /// Bounded reordering: an extra uniform [0, reorder_max) hold applied
  /// with probability `reorder` — small enough to shuffle adjacent
  /// messages, bounded so no message is held back indefinitely.
  double reorder = 0.0;
  double reorder_max = 0.01;
  /// Active window for the probabilistic faults above. Scripted partition
  /// windows carry their own spans and ignore this.
  SimTime start = 0.0;
  SimTime end = std::numeric_limits<SimTime>::infinity();
  /// Dedicated fault-stream seed — isolated from workload and network RNGs.
  std::uint64_t seed = 0x6368616f73ULL;  // "chaos"
  std::vector<PartitionWindow> partitions;
};

class FaultPlan {
 public:
  /// What the network should do with one message.
  struct Decision {
    bool drop = false;
    bool partitioned = false;   // drop was a partition cut, not random loss
    std::uint32_t copies = 1;   // 2 when the message is duplicated
    double extra_delay = 0.0;   // seconds added on top of the modelled delay
  };

  explicit FaultPlan(const FaultPlanConfig& config);

  /// Rolls the fault dice for one message. Mutates the fault RNG stream;
  /// call exactly once per send attempt.
  Decision decide(std::uint32_t from, std::uint32_t to, SimTime now);

  /// Is the (a, b) link currently cut (scripted window or manual edit)?
  [[nodiscard]] bool partitioned(std::uint32_t a, std::uint32_t b,
                                 SimTime now) const;

  /// Imperative partition matrix (symmetric), for tests and scenarios that
  /// are easier to drive than to script.
  void partition(std::uint32_t a, std::uint32_t b);
  void heal(std::uint32_t a, std::uint32_t b);
  /// Clears every manual cut (scripted windows still apply).
  void heal();

  [[nodiscard]] const FaultPlanConfig& config() const { return config_; }

  /// Injection counters, for telemetry reconciliation.
  [[nodiscard]] std::uint64_t injected_losses() const { return losses_; }
  [[nodiscard]] std::uint64_t partition_drops() const {
    return partition_drops_;
  }
  [[nodiscard]] std::uint64_t duplications() const { return duplications_; }
  [[nodiscard]] std::uint64_t delay_injections() const { return delays_; }

 private:
  [[nodiscard]] bool active(SimTime now) const {
    return now >= config_.start && now < config_.end;
  }
  static std::uint64_t link_key(std::uint32_t a, std::uint32_t b);

  FaultPlanConfig config_;
  Xoshiro256 rng_;
  std::unordered_set<std::uint64_t> cut_links_;
  std::uint64_t losses_ = 0;
  std::uint64_t partition_drops_ = 0;
  std::uint64_t duplications_ = 0;
  std::uint64_t delays_ = 0;
};

}  // namespace anu::faults
