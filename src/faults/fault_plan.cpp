#include "faults/fault_plan.h"

#include <algorithm>

#include "common/assert.h"

namespace anu::faults {

namespace {

bool contains(const std::vector<std::uint32_t>& group, std::uint32_t node) {
  return std::find(group.begin(), group.end(), node) != group.end();
}

bool window_cuts(const PartitionWindow& w, std::uint32_t a, std::uint32_t b,
                 SimTime now) {
  if (now < w.start || now >= w.end) return false;
  return (contains(w.group_a, a) && contains(w.group_b, b)) ||
         (contains(w.group_a, b) && contains(w.group_b, a));
}

}  // namespace

FaultPlan::FaultPlan(const FaultPlanConfig& config)
    : config_(config), rng_(config.seed) {
  ANU_REQUIRE(config.loss >= 0.0 && config.loss < 1.0);
  ANU_REQUIRE(config.duplicate >= 0.0 && config.duplicate < 1.0);
  ANU_REQUIRE(config.delay_spike >= 0.0 && config.delay_spike < 1.0);
  ANU_REQUIRE(config.reorder >= 0.0 && config.reorder < 1.0);
  ANU_REQUIRE(config.spike_max >= 0.0);
  ANU_REQUIRE(config.reorder_max >= 0.0);
  ANU_REQUIRE(config.end >= config.start);
  for (const PartitionWindow& w : config.partitions) {
    ANU_REQUIRE(w.end >= w.start);
  }
}

std::uint64_t FaultPlan::link_key(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

bool FaultPlan::partitioned(std::uint32_t a, std::uint32_t b,
                            SimTime now) const {
  if (cut_links_.count(link_key(a, b)) != 0) return true;
  for (const PartitionWindow& w : config_.partitions) {
    if (window_cuts(w, a, b, now)) return true;
  }
  return false;
}

void FaultPlan::partition(std::uint32_t a, std::uint32_t b) {
  ANU_REQUIRE(a != b);
  cut_links_.insert(link_key(a, b));
}

void FaultPlan::heal(std::uint32_t a, std::uint32_t b) {
  cut_links_.erase(link_key(a, b));
}

void FaultPlan::heal() { cut_links_.clear(); }

FaultPlan::Decision FaultPlan::decide(std::uint32_t from, std::uint32_t to,
                                      SimTime now) {
  Decision d;
  if (partitioned(from, to, now)) {
    d.drop = true;
    d.partitioned = true;
    ++partition_drops_;
    return d;
  }
  if (!active(now)) return d;
  if (config_.loss > 0.0 && rng_.next_double() < config_.loss) {
    d.drop = true;
    ++losses_;
    return d;
  }
  if (config_.duplicate > 0.0 && rng_.next_double() < config_.duplicate) {
    d.copies = 2;
    ++duplications_;
  }
  if (config_.delay_spike > 0.0 &&
      rng_.next_double() < config_.delay_spike) {
    d.extra_delay += rng_.next_double() * config_.spike_max;
    ++delays_;
  }
  if (config_.reorder > 0.0 && rng_.next_double() < config_.reorder) {
    d.extra_delay += rng_.next_double() * config_.reorder_max;
    ++delays_;
  }
  return d;
}

}  // namespace anu::faults
