// Trace exporters: JSONL (one event object per line, semantic field names)
// and Chrome/Perfetto `trace_event` JSON, loadable directly in
// ui.perfetto.dev or chrome://tracing. Field-by-field schemas are in
// docs/observability.md.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/trace_sink.h"

namespace anu::obs {

/// One JSON object per line, oldest event first:
///   {"t":840.25,"type":"file_set_move","file_set":7,"from":0,"to":3}
/// Generic slots are rendered under their per-type semantic names; unused
/// slots are omitted.
void write_jsonl(const TraceSink& sink, std::ostream& os);

/// Chrome trace_event format (the JSON object form, so Perfetto's and
/// chrome://tracing's stricter parsers both accept it). Simulated seconds
/// become microseconds. Request completions render as duration ("X")
/// events on their server's track, shares as counter ("C") series, and
/// everything else as instant ("i") events; track names are emitted as
/// metadata.
void write_chrome_trace(const TraceSink& sink, std::ostream& os);

/// Writes the file `path`, picking the format from the extension:
/// ".jsonl" -> JSONL, anything else -> Chrome trace. Returns false when the
/// file cannot be opened.
bool write_trace_file(const TraceSink& sink, const std::string& path);

}  // namespace anu::obs
