#include "obs/build_info.h"

#ifndef ANU_GIT_DESCRIBE
#define ANU_GIT_DESCRIBE "unknown"
#endif

namespace anu::obs {

const char* git_describe() { return ANU_GIT_DESCRIBE; }

}  // namespace anu::obs
