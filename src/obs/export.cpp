#include "obs/export.h"

#include <fstream>
#include <ostream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace anu::obs {

namespace {

/// Compact number formatting shared by both exporters (ints stay integral).
std::string num(double v) { return Json(v).dump(); }

/// The per-type semantic rendering of the generic slots. Single source of
/// truth for JSONL field names; docs/observability.md documents the same
/// mapping, and ObsDoc.EveryEventTypeDocumented ties the two together.
Json event_fields(const TraceEvent& e) {
  Json o = Json::object();
  switch (e.type) {
    case EventType::kRequestIssue:
      o.set("file_set", e.a).set("server", e.b).set("demand", e.x);
      break;
    case EventType::kRequestComplete:
      o.set("file_set", e.a).set("server", e.b).set("latency_s", e.x);
      break;
    case EventType::kTuningRound:
      o.set("round", e.a)
          .set("moves", e.b)
          .set("moved_weight", e.x)
          .set("cumulative_pct", e.y);
      break;
    case EventType::kRegionRetune:
      o.set("server", e.a).set("share", e.x);
      break;
    case EventType::kFileSetMove:
      o.set("file_set", e.a).set("from", e.b).set("to", e.c);
      break;
    case EventType::kServerFail:
    case EventType::kServerRecover:
      o.set("server", e.a);
      break;
    case EventType::kServerAdd:
      o.set("server", e.a).set("speed", e.x);
      break;
    case EventType::kMessageSend:
    case EventType::kMessageRecv:
      o.set("from", e.a).set("to", e.b).set("kind", e.c).set("bytes", e.x);
      break;
    case EventType::kDelegateRound:
      o.set("reporting", e.a)
          .set("completions", e.b)
          .set("system_avg_latency_s", e.x);
      break;
    case EventType::kMapApply:
      o.set("node", e.a).set("version", e.b).set("sheds", e.c);
      break;
    case EventType::kDelegateElected:
      o.set("server", e.a).set("previous", e.b);
      break;
    case EventType::kServerDegrade:
      o.set("server", e.a).set("factor", e.x);
      break;
    case EventType::kServerRestore:
      o.set("server", e.a).set("speed", e.x);
      break;
    case EventType::kFaultInject: {
      static constexpr const char* kCauses[] = {"loss", "partition",
                                                "duplicate", "delay"};
      o.set("from", e.a).set("to", e.b);
      o.set("cause", e.c < 4 ? kCauses[e.c] : "unknown");
      o.set("value", e.x);
      break;
    }
    case EventType::kRetransmit:
      o.set("from", e.a).set("to", e.b).set("attempt", e.c).set("rto_s", e.x);
      break;
  }
  return o;
}

/// Chrome track ("tid") of an event: servers on tracks 1..k, the control
/// plane on track 0.
int chrome_tid(const TraceEvent& e) {
  switch (e.type) {
    case EventType::kRequestIssue:
    case EventType::kRequestComplete:
      return static_cast<int>(e.b) + 1;
    case EventType::kRegionRetune:
    case EventType::kServerFail:
    case EventType::kServerRecover:
    case EventType::kServerAdd:
    case EventType::kServerDegrade:
    case EventType::kServerRestore:
      return static_cast<int>(e.a) + 1;
    case EventType::kMessageSend:
    case EventType::kRetransmit:
      return static_cast<int>(e.a) + 1;
    case EventType::kMessageRecv:
      return static_cast<int>(e.b) + 1;
    case EventType::kTuningRound:
    case EventType::kFileSetMove:
    case EventType::kDelegateRound:
    case EventType::kMapApply:
    case EventType::kDelegateElected:
    case EventType::kFaultInject:
      return 0;
  }
  return 0;
}

void write_chrome_event(std::ostream& os, const TraceEvent& e) {
  const double ts_us = e.time * 1e6;
  const int tid = chrome_tid(e);
  const std::string args = event_fields(e).dump();
  if (e.type == EventType::kRequestComplete) {
    // Duration event spanning the request's time in system: issue-to-finish
    // on the serving server's track.
    const double dur_us = e.x * 1e6;
    os << "{\"name\":\"fs" << e.a << "\",\"cat\":\"request\",\"ph\":\"X\""
       << ",\"ts\":" << num(ts_us - dur_us) << ",\"dur\":" << num(dur_us)
       << ",\"pid\":1,\"tid\":" << tid << ",\"args\":" << args << "}";
    return;
  }
  if (e.type == EventType::kRegionRetune) {
    // Counter series: one track per server share.
    os << "{\"name\":\"share s" << e.a << "\",\"ph\":\"C\",\"ts\":"
       << num(ts_us) << ",\"pid\":1,\"args\":{\"share\":" << num(e.x) << "}}";
    return;
  }
  os << "{\"name\":\"" << event_type_name(e.type)
     << "\",\"cat\":\"anu\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << num(ts_us)
     << ",\"pid\":1,\"tid\":" << tid << ",\"args\":" << args << "}";
}

}  // namespace

void write_jsonl(const TraceSink& sink, std::ostream& os) {
  sink.for_each([&](const TraceEvent& e) {
    Json o = Json::object();
    o.set("t", e.time).set("type", event_type_name(e.type));
    // Named local: binding the range-for directly to the temporary's
    // object would dangle (no lifetime extension through as_object()).
    const Json fields = event_fields(e);
    for (const auto& [key, value] : fields.as_object()) {
      o.set(key, value);
    }
    o.write(os);
    os << '\n';
  });
}

void write_chrome_trace(const TraceSink& sink, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Track-name metadata: the control plane plus every server track seen.
  std::set<int> tids;
  sink.for_each([&](const TraceEvent& e) { tids.insert(chrome_tid(e)); });
  for (const int tid : tids) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\""
       << (tid == 0 ? std::string("control plane")
                    : "server " + std::to_string(tid - 1))
       << "\"}}";
  }
  sink.for_each([&](const TraceEvent& e) {
    if (!first) os << ",";
    first = false;
    os << "\n";
    write_chrome_event(os, e);
  });
  os << "\n]}\n";
}

bool write_trace_file(const TraceSink& sink, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  if (path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0) {
    write_jsonl(sink, f);
  } else {
    write_chrome_trace(sink, f);
  }
  return static_cast<bool>(f);
}

}  // namespace anu::obs
