#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/assert.h"

namespace anu::obs {

namespace {

/// Shortest round-trip representation of a double (integers stay integral).
void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; the manifest never emits them, but never emit
    // invalid JSON even for a hostile value.
    os << "null";
    return;
  }
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(static_cast<std::int64_t>(v)));
    os << buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shorter %.15g form when it round-trips exactly.
  char shorter[32];
  std::snprintf(shorter, sizeof shorter, "%.15g", v);
  double back = 0.0;
  std::sscanf(shorter, "%lf", &back);
  os << (back == v ? shorter : buf);
}

}  // namespace

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char ch : s) {
    const auto u = static_cast<unsigned char>(ch);
    switch (ch) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          os << buf;
        } else {
          os << ch;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  os << '"';
}

bool Json::as_bool() const {
  ANU_REQUIRE(kind_ == Kind::kBool);
  return bool_;
}

double Json::as_number() const {
  ANU_REQUIRE(kind_ == Kind::kNumber);
  return number_;
}

const std::string& Json::as_string() const {
  ANU_REQUIRE(kind_ == Kind::kString);
  return string_;
}

const Json::Array& Json::as_array() const {
  ANU_REQUIRE(kind_ == Kind::kArray);
  return array_;
}

const Json::Object& Json::as_object() const {
  ANU_REQUIRE(kind_ == Kind::kObject);
  return object_;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  ANU_REQUIRE(kind_ == Kind::kObject);
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  ANU_REQUIRE(kind_ == Kind::kArray);
  array_.push_back(std::move(value));
  return *this;
}

void Json::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      write_number(os, number_);
      break;
    case Kind::kString:
      write_json_string(os, string_);
      break;
    case Kind::kArray: {
      os << '[';
      bool first = true;
      for (const Json& v : array_) {
        if (!first) os << ',';
        first = false;
        v.write(os);
      }
      os << ']';
      break;
    }
    case Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) os << ',';
        first = false;
        write_json_string(os, k);
        os << ':';
        v.write(os);
      }
      os << '}';
      break;
    }
  }
}

void Json::write_pretty(std::ostream& os, int indent) const {
  const auto pad = [&os](int n) {
    for (int i = 0; i < n; ++i) os << "  ";
  };
  switch (kind_) {
    case Kind::kArray: {
      if (array_.empty()) {
        os << "[]";
        return;
      }
      os << "[\n";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        pad(indent + 1);
        array_[i].write_pretty(os, indent + 1);
        if (i + 1 < array_.size()) os << ',';
        os << '\n';
      }
      pad(indent);
      os << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        os << "{}";
        return;
      }
      os << "{\n";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        pad(indent + 1);
        write_json_string(os, object_[i].first);
        os << ": ";
        object_[i].second.write_pretty(os, indent + 1);
        if (i + 1 < object_.size()) os << ',';
        os << '\n';
      }
      pad(indent);
      os << '}';
      break;
    }
    default:
      write(os);
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run(std::string* error) {
    auto value = parse_value();
    if (value) {
      skip_ws();
      if (pos_ != text_.size()) {
        value = std::nullopt;
        error_ = "trailing characters after document";
      }
    }
    if (!value && error) {
      *error = error_ + " at byte " + std::to_string(pos_);
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<Json> fail(std::string message) {
    error_ = std::move(message);
    return std::nullopt;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case 't':
        return parse_literal("true", Json(true));
      case 'f':
        return parse_literal("false", Json(false));
      case 'n':
        return parse_literal("null", Json());
      default:
        return parse_number();
    }
  }

  std::optional<Json> parse_literal(std::string_view word, Json value) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    return value;
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) {
      pos_ = start;
      return fail("invalid number");
    }
    return Json(value);
  }

  std::optional<std::string> parse_string() {
    if (text_[pos_] != '"') {
      error_ = "expected string";
      return std::nullopt;
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        if (++pos_ >= text_.size()) break;
        switch (text_[pos_]) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              error_ = "truncated \\u escape";
              return std::nullopt;
            }
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                error_ = "invalid \\u escape";
                return std::nullopt;
              }
            }
            pos_ += 4;
            // Encode the code point as UTF-8 (BMP only; surrogate pairs in
            // telemetry documents do not occur — names are ASCII).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            error_ = "invalid escape";
            return std::nullopt;
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) {
      error_ = "unterminated string";
      return std::nullopt;
    }
    ++pos_;  // closing quote
    return out;
  }

  std::optional<Json> parse_array() {
    ++pos_;  // '['
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    for (;;) {
      auto value = parse_value();
      if (!value) return std::nullopt;
      out.push_back(std::move(*value));
      if (consume(']')) return out;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  std::optional<Json> parse_object() {
    ++pos_;  // '{'
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      if (!consume(':')) return fail("expected ':'");
      auto value = parse_value();
      if (!value) return std::nullopt;
      out.set(std::move(*key), std::move(*value));
      if (consume('}')) return out;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace anu::obs
