#include "obs/trace_sink.h"

#include "common/assert.h"

namespace anu::obs {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kRequestIssue:
      return "request_issue";
    case EventType::kRequestComplete:
      return "request_complete";
    case EventType::kTuningRound:
      return "tuning_round";
    case EventType::kRegionRetune:
      return "region_retune";
    case EventType::kFileSetMove:
      return "file_set_move";
    case EventType::kServerFail:
      return "server_fail";
    case EventType::kServerRecover:
      return "server_recover";
    case EventType::kServerAdd:
      return "server_add";
    case EventType::kMessageSend:
      return "message_send";
    case EventType::kMessageRecv:
      return "message_recv";
    case EventType::kDelegateRound:
      return "delegate_round";
    case EventType::kMapApply:
      return "map_apply";
    case EventType::kDelegateElected:
      return "delegate_elected";
    case EventType::kServerDegrade:
      return "server_degrade";
    case EventType::kServerRestore:
      return "server_restore";
    case EventType::kFaultInject:
      return "fault_inject";
    case EventType::kRetransmit:
      return "retransmit";
  }
  ANU_ENSURE(false && "unknown event type");
  return "unknown";
}

TraceSink::TraceSink(std::size_t capacity) : ring_(capacity) {
  ANU_REQUIRE(capacity > 0);
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for_each([&](const TraceEvent& e) { out.push_back(e); });
  return out;
}

void TraceSink::clear() {
  const ExclusiveUse guard(*this);
  head_ = 0;
  size_ = 0;
  emitted_ = 0;
}

}  // namespace anu::obs
