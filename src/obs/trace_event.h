// Typed trace events — the vocabulary of the run-telemetry subsystem.
//
// Every event is a fixed-size POD stamped with a simulation timestamp, so
// the recording fast path (obs::TraceSink) never allocates. Events carry
// three generic integer slots (a, b, c) and two double slots (x, y); the
// per-type meaning of each slot is defined here, rendered with semantic
// field names by the exporters (obs/export.h), and documented — one table
// per event type — in docs/observability.md. A test
// (ObsDoc.EveryEventTypeDocumented) fails if an event type is added without
// a matching documentation entry.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace anu::obs {

/// Every kind of event the instrumented layers emit. Slot meanings:
///
///   kRequestIssue      a=file_set  b=server                x=demand
///   kRequestComplete   a=file_set  b=server                x=latency_s
///   kTuningRound       a=round     b=moves                 x=moved_weight  y=cumulative_pct
///   kRegionRetune      a=server                            x=share
///   kFileSetMove       a=file_set  b=from      c=to
///   kServerFail        a=server
///   kServerRecover     a=server
///   kServerAdd         a=server                            x=speed
///   kMessageSend       a=from      b=to        c=kind      x=bytes
///   kMessageRecv       a=from      b=to        c=kind      x=bytes
///   kDelegateRound     a=reporting b=completions           x=system_avg
///   kMapApply          a=node      b=version   c=sheds
///   kDelegateElected   a=server    b=previous
///   kServerDegrade     a=server                            x=factor
///   kServerRestore     a=server                            x=speed
///   kFaultInject       a=from      b=to        c=cause     x=value
///   kRetransmit        a=from      b=to        c=attempt   x=rto_s
enum class EventType : std::uint8_t {
  kRequestIssue = 0,
  kRequestComplete,
  kTuningRound,
  kRegionRetune,
  kFileSetMove,
  kServerFail,
  kServerRecover,
  kServerAdd,
  kMessageSend,
  kMessageRecv,
  kDelegateRound,
  kMapApply,
  kDelegateElected,
  kServerDegrade,
  kServerRestore,
  kFaultInject,
  kRetransmit,
};

inline constexpr std::size_t kEventTypeCount = 17;

/// Cause slot (c) of a kFaultInject event.
enum class FaultCause : std::uint32_t {
  kLoss = 0,       // message transmitted, then lost (x unused)
  kPartition = 1,  // link cut by a partition (x unused)
  kDuplicate = 2,  // extra copy delivered (x = copies)
  kDelay = 3,      // extra hold injected (x = extra delay, seconds)
};

/// Stable wire name of an event type (what the exporters and the schema
/// reference in docs/observability.md use).
[[nodiscard]] const char* event_type_name(EventType type);

/// One recorded event. 48 bytes; trivially copyable.
struct TraceEvent {
  SimTime time = 0.0;  // simulation seconds
  EventType type = EventType::kRequestIssue;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;
  double x = 0.0;
  double y = 0.0;
};

}  // namespace anu::obs
