// Build provenance for telemetry manifests.
#pragma once

namespace anu::obs {

/// `git describe --always --dirty` of the source tree, captured at CMake
/// configure time; "unknown" when the tree was built outside git. Stale by
/// at most one reconfigure — the manifest consumer should treat it as
/// provenance, not proof.
[[nodiscard]] const char* git_describe();

}  // namespace anu::obs
