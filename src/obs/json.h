// Minimal JSON document model: build, serialize, parse.
//
// The telemetry manifest (docs/observability.md) is a JSON artifact, and
// the repository takes no third-party dependencies, so this is a small
// self-contained implementation covering exactly what telemetry needs:
// the six JSON kinds, compact + pretty serialization, and a strict
// recursive-descent parser (UTF-8 passed through verbatim; \uXXXX escapes
// accepted and re-emitted for non-ASCII). Objects preserve insertion order
// so emitted documents are deterministic and diffable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace anu::obs {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Insertion-ordered; lookup is linear (telemetry objects are small).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  /// Any non-bool arithmetic type (one template beats an overload per
  /// integer width — uint32_t etc. would otherwise be ambiguous).
  template <class T, std::enable_if_t<std::is_arithmetic_v<T> &&
                                          !std::is_same_v<T, bool>,
                                      int> = 0>
  Json(T n) : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Json(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}
  Json(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

  [[nodiscard]] static Json array() { return Json(Array{}); }
  [[nodiscard]] static Json object() { return Json(Object{}); }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors; checked (ANU_REQUIRE) on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object field by key; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// `find` across a path of keys, e.g. at("result", "steady_state").
  template <class... Keys>
  [[nodiscard]] const Json* at(std::string_view key, Keys... rest) const {
    const Json* child = find(key);
    if constexpr (sizeof...(rest) == 0) {
      return child;
    } else {
      return child ? child->at(rest...) : nullptr;
    }
  }

  /// Appends a field to an object / element to an array (checked).
  Json& set(std::string key, Json value);
  Json& push_back(Json value);

  /// Compact single-line serialization.
  void write(std::ostream& os) const;
  /// Two-space-indented serialization (the manifest on disk, for diffing).
  void write_pretty(std::ostream& os, int indent = 0) const;
  [[nodiscard]] std::string dump() const;

  /// Strict parse of one JSON document (trailing garbage is an error).
  /// Returns nullopt and fills `error` (message + byte offset) on failure.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Writes `s` as a JSON string literal (quotes + escapes) to `os`.
void write_json_string(std::ostream& os, std::string_view s);

}  // namespace anu::obs
