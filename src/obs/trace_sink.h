// TraceSink — preallocated ring buffer of typed trace events.
//
// The recording path is designed for the simulator's hot loop: emit() is a
// bounds-free write into storage allocated once at construction, and the
// disabled case costs exactly one branch — every instrumented site holds a
// `TraceSink*` that is null when tracing is off:
//
//   if (auto* t = sim.trace()) t->emit(now, EventType::kRequestIssue, ...);
//
// When the ring fills, the oldest events are overwritten and counted as
// dropped; exporters see the newest `capacity()` events in chronological
// order. Sizing guidance and the drop accounting contract are documented in
// docs/observability.md.
//
// Concurrency contract: a TraceSink is exclusively owned — one simulation
// appends, and readers (snapshot / for_each / exporters) run only after the
// run finishes, synchronized by whatever joined the producing thread (the
// batch runner's completion barrier provides this happens-before for
// pool-executed runs). It is deliberately NOT internally locked: emit() is
// the simulator's hot path and a mutex or atomic head would serialize the
// ring for a guarantee callers already have structurally. Debug builds
// enforce the contract with a tripwire (busy_): overlapped append/flush
// aborts loudly instead of corrupting the ring silently, and the TSan CI
// leg (docs/static-analysis.md) verifies the handoff synchronization on
// the batch/matrix tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#ifndef NDEBUG
#include <atomic>

#include "common/assert.h"
#endif

#include "obs/trace_event.h"

namespace anu::obs {

class TraceSink {
 public:
  /// Default capacity: 1M events (~48 MB). A paper-scale run (66k requests,
  /// 100 tuning rounds) emits ~140k events, so the default retains whole
  /// runs with ample headroom.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 20;

  explicit TraceSink(std::size_t capacity = kDefaultCapacity);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;
  // Movable so factories can return sinks by value; any `TraceSink*`
  // installed in a Simulation must point at the sink's final home.
  TraceSink(TraceSink&&) = default;
  TraceSink& operator=(TraceSink&&) = default;

  /// Records one event; overwrites the oldest retained event when full.
  void emit(SimTime time, EventType type, std::uint32_t a = 0,
            std::uint32_t b = 0, std::uint32_t c = 0, double x = 0.0,
            double y = 0.0) {
    const ExclusiveUse guard(*this);
    TraceEvent& slot = ring_[head_];
    slot.time = time;
    slot.type = type;
    slot.a = a;
    slot.b = b;
    slot.c = c;
    slot.x = x;
    slot.y = y;
    head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
    if (size_ < ring_.size()) ++size_;
    ++emitted_;
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Events ever emitted, including overwritten ones.
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  /// Events lost to ring overwrite (= emitted - size).
  [[nodiscard]] std::uint64_t dropped() const {
    return emitted_ - static_cast<std::uint64_t>(size_);
  }

  /// Visits retained events oldest-first (chronological order).
  template <class Fn>
  void for_each(Fn&& fn) const {
    const ExclusiveUse guard(*this);
    const std::size_t start =
        size_ == ring_.size() ? head_ : (head_ + ring_.size() - size_) %
                                            ring_.size();
    for (std::size_t i = 0; i < size_; ++i) {
      fn(ring_[(start + i) % ring_.size()]);
    }
  }

  /// Retained events, oldest-first, as a flat vector (tests, exporters).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Forgets all retained events and resets the counters.
  void clear();

 private:
#ifndef NDEBUG
  // Debug tripwire for the exclusive-use contract: set while any append or
  // flush runs; overlap aborts. Moves reset it — a sink being moved has no
  // concurrent users by definition.
  struct DebugBusy {
    mutable std::atomic<int> flag{0};
    DebugBusy() = default;
    DebugBusy(const DebugBusy&) = delete;
    DebugBusy& operator=(const DebugBusy&) = delete;
    DebugBusy(DebugBusy&&) noexcept {}
    DebugBusy& operator=(DebugBusy&&) noexcept { return *this; }
  };

  class [[nodiscard]] ExclusiveUse {
   public:
    explicit ExclusiveUse(const TraceSink& sink) : flag_(&sink.busy_.flag) {
      ANU_ENSURE(flag_->exchange(1, std::memory_order_acq_rel) == 0);
    }
    ~ExclusiveUse() { flag_->store(0, std::memory_order_release); }
    ExclusiveUse(const ExclusiveUse&) = delete;
    ExclusiveUse& operator=(const ExclusiveUse&) = delete;

   private:
    std::atomic<int>* flag_;
  };
#else
  struct [[maybe_unused]] ExclusiveUse {
    explicit ExclusiveUse(const TraceSink&) {}
  };
#endif

  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
  std::uint64_t emitted_ = 0;
#ifndef NDEBUG
  DebugBusy busy_;
#endif
};

}  // namespace anu::obs
