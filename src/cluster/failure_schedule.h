// Scripted and randomized failure/recovery injection.
//
// Paper §4: "ANU randomization performs well when servers fail or recover,
// or when servers are installed or removed". The elasticity experiments and
// the fault-injection tests drive membership changes through this schedule.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace anu::cluster {

enum class MembershipAction {
  kFail,
  kRecover,
  kAdd,
  kRemove,
  /// Gray failure: the server stays up but serves at `factor` times its
  /// nominal speed until a kRestore (or a fail/recover cycle) heals it.
  kDegrade,
  kRestore,
};

/// Stable lower-case name of a membership action ("fail", "recover",
/// "add", "remove", "degrade", "restore") — what the telemetry manifest and
/// the config format both use, so a manifest's membership script
/// round-trips into a config.
[[nodiscard]] const char* action_name(MembershipAction action);

struct MembershipEvent {
  SimTime when = 0.0;
  MembershipAction action = MembershipAction::kFail;
  /// Target server for fail/recover/remove/degrade/restore; ignored for add.
  ServerId server;
  /// Speed of the server being added; ignored otherwise.
  double speed = 1.0;
  /// Service-rate multiplier in (0, 1] for degrade; ignored otherwise.
  double factor = 1.0;
};

/// A time-ordered script of membership changes.
class FailureSchedule {
 public:
  FailureSchedule() = default;
  explicit FailureSchedule(std::vector<MembershipEvent> events);

  [[nodiscard]] const std::vector<MembershipEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  void add(MembershipEvent event);

  /// Generates a random fail-then-recover schedule: each of `rounds` rounds
  /// picks a random server from [0, server_count), fails it at a random time
  /// in its round's window and recovers it `downtime` later. Servers are
  /// never concurrently down (rounds are disjoint windows).
  static FailureSchedule random_fail_recover(std::uint64_t seed,
                                             std::size_t server_count,
                                             std::size_t rounds,
                                             SimTime horizon, SimTime downtime);

  /// Generates a random degrade-then-restore schedule, shaped like
  /// random_fail_recover: each round degrades one random server to a
  /// random factor in [min_factor, max_factor] for `duration`, then
  /// restores it. At most one server is degraded at a time.
  static FailureSchedule random_degrade(std::uint64_t seed,
                                        std::size_t server_count,
                                        std::size_t rounds, SimTime horizon,
                                        SimTime duration, double min_factor,
                                        double max_factor);

 private:
  std::vector<MembershipEvent> events_;
};

}  // namespace anu::cluster
