// A metadata file server in the shared-disk cluster model.
//
// Paper §3: in a shared-disk file system cluster the file servers carry the
// metadata workload only (data I/O goes directly to the shared disks over
// the SAN), so a server is modelled as a FIFO queue with a speed factor —
// paper §5.1: "Servers 0..4 have processing power 1, 3, 5, 7, 9; if the
// least powerful server consumes time T for a metadata request, the most
// powerful consumes T/9."
//
// Each server keeps the per-tuning-interval latency statistic it reports to
// the delegate (§4: "each server monitors its performance and produces a
// performance metric over a chosen time interval ... we use latency").
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "sim/resource.h"

namespace anu::cluster {

/// Cold-cache model (paper §5.3): "The releasing server needs to flush its
/// cache ... The acquiring server must initialize the file set [and]
/// starts with a cold cache, which hinders initial performance."
///
/// A server serves a file set's requests at `cold_penalty_factor` times the
/// base demand while its cache for that file set is cold; the penalty
/// decays linearly over the first `warmup_requests` requests. Shedding a
/// file set flushes its cache entry (evict), so re-acquiring starts cold.
struct CacheConfig {
  bool enabled = false;
  /// Requests until a file set's working set is fully cached.
  std::uint32_t warmup_requests = 20;
  /// Demand multiplier at fully-cold (>= 1).
  double cold_penalty_factor = 2.0;
};

/// Completion record handed to the cluster's observer.
struct Completion {
  ServerId server;
  FileSetId file_set;
  SimTime arrival;
  SimTime completion;
  /// Nonzero for replicas of a redundant dispatch (submit_replica); the
  /// driver uses it to find the replica group the winner belongs to.
  std::uint64_t job_id = 0;
  [[nodiscard]] double latency() const { return completion - arrival; }
};

class Server {
 public:
  Server(sim::Simulation& simulation, ServerId id, double speed,
         const CacheConfig& cache = {});

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] ServerId id() const { return id_; }
  [[nodiscard]] double speed() const { return resource_.speed(); }
  [[nodiscard]] bool is_up() const { return resource_.is_up(); }
  [[nodiscard]] std::size_t queue_length() const {
    return resource_.queue_length();
  }

  /// Enqueues a metadata request; `on_complete` observer (if set) fires at
  /// completion time. A non-negative `arrival` preserves the request's
  /// original arrival time (used when a queued request migrates with its
  /// file set).
  void submit(FileSetId file_set, double demand, SimTime arrival = -1.0);

  /// Enqueues one replica of a redundant dispatch (docs/strategies.md).
  /// `job_id` (nonzero, unique across the run) identifies the replica for
  /// cancel(); `on_start` fires when its service begins — possibly
  /// synchronously inside this call when the server is idle — which is the
  /// driver's cancel-on-start hook. The replica's Completion carries
  /// job_id so the driver can settle the group.
  void submit_replica(FileSetId file_set, double demand, std::uint64_t job_id,
                      std::function<void(SimTime)> on_start);

  /// Cancels the replica with nonzero id `job_id`: a waiting replica is
  /// dropped, an in-service one is aborted (partial work still counts as
  /// busy time — the price of redundancy). Cancelled replicas never reach
  /// the latency statistics or on_complete.
  sim::CancelOutcome cancel(std::uint64_t job_id);

  /// A queued (not yet started) request, as extracted on file-set moves.
  struct QueuedRequest {
    FileSetId file_set;
    double demand;
    SimTime arrival;
  };
  /// Removes and returns all waiting requests of one file set; the paper's
  /// shed protocol redirects pending work to the acquiring server.
  std::vector<QueuedRequest> extract_queued(FileSetId file_set);

  /// Interval statistics: latency of requests completed since the last
  /// take_interval_report() call. This is the number reported to the
  /// delegate each tuning round.
  struct IntervalReport {
    double mean_latency = 0.0;
    std::size_t completed = 0;
  };
  IntervalReport take_interval_report();

  /// Whole-run statistics (paper Fig. 6(b): per-server average latency).
  [[nodiscard]] const RunningStats& lifetime_latency() const {
    return lifetime_;
  }
  [[nodiscard]] std::uint64_t requests_served() const {
    return lifetime_.count();
  }
  [[nodiscard]] double utilization(SimTime horizon) const {
    return resource_.utilization(horizon);
  }

  /// Failure/recovery; queued requests are flushed through `on_flush`.
  /// Failure also drops all cache warmth (a restarted server is cold).
  void fail();
  void recover();
  void set_speed(double speed) {
    nominal_speed_ = speed;
    degraded_ = false;
    resource_.set_speed(speed);
  }

  /// Gray failure (docs/chaos.md): the server stays up — it heartbeats,
  /// reports, and keeps serving — but at `factor` times its nominal speed
  /// (0 < factor <= 1). Takes effect at the next service start, like any
  /// speed change. restore() returns it to nominal; a fail/recover cycle
  /// also comes back at nominal (a restarted server is healthy).
  void degrade(double factor);
  void restore();
  [[nodiscard]] bool is_degraded() const { return degraded_; }
  [[nodiscard]] double nominal_speed() const { return nominal_speed_; }

  /// Flushes the cache entry of a shed file set (§5.3). No-op when the
  /// cache model is disabled or the file set was never served here.
  void evict(FileSetId file_set);
  /// Current warmth in [0, 1]: 0 = fully cold, 1 = fully warm.
  [[nodiscard]] double warmth(FileSetId file_set) const;

  /// Observers (wired by the Cluster). on_flush reports the flushed job's
  /// cancellation id (0 for plain requests) so the driver can tell a
  /// stranded replica from a request it must re-dispatch. on_idle fires
  /// when the queue drains while the server is up — the idle-token feed
  /// for JIQ-style dispatchers.
  std::function<void(const Completion&)> on_complete;
  std::function<void(FileSetId, double demand, std::uint64_t job_id)> on_flush;
  std::function<void(ServerId)> on_idle;

 private:
  void enqueue(FileSetId file_set, double demand, SimTime arrival,
               std::uint64_t job_id, std::function<void(SimTime)> on_start);
  [[nodiscard]] double cache_factor(FileSetId file_set) const;

  ServerId id_;
  sim::FifoResource resource_;
  double nominal_speed_;
  bool degraded_ = false;
  CacheConfig cache_;
  std::unordered_map<std::uint32_t, std::uint32_t> cache_hits_;
  RunningStats interval_;
  RunningStats lifetime_;
};

}  // namespace anu::cluster
