#include "cluster/server.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace anu::cluster {

Server::Server(sim::Simulation& simulation, ServerId id, double speed,
               const CacheConfig& cache)
    : id_(id),
      resource_(simulation, speed, "server" + std::to_string(id.value())),
      nominal_speed_(speed),
      cache_(cache) {
  ANU_REQUIRE(cache_.cold_penalty_factor >= 1.0);
  ANU_REQUIRE(!cache_.enabled || cache_.warmup_requests > 0);
  resource_.on_flush = [this](const sim::Job& job) {
    if (on_flush) {
      on_flush(FileSetId(static_cast<std::uint32_t>(job.tag)), job.demand,
               job.id);
    }
  };
  resource_.on_idle = [this] {
    if (on_idle) on_idle(id_);
  };
}

double Server::cache_factor(FileSetId file_set) const {
  if (!cache_.enabled) return 1.0;
  return cache_.cold_penalty_factor -
         (cache_.cold_penalty_factor - 1.0) * warmth(file_set);
}

double Server::warmth(FileSetId file_set) const {
  if (!cache_.enabled) return 1.0;
  const auto it = cache_hits_.find(file_set.value());
  if (it == cache_hits_.end()) return 0.0;
  return std::min(1.0, static_cast<double>(it->second) /
                           static_cast<double>(cache_.warmup_requests));
}

void Server::evict(FileSetId file_set) { cache_hits_.erase(file_set.value()); }

void Server::submit(FileSetId file_set, double demand, SimTime arrival) {
  enqueue(file_set, demand, arrival, 0, nullptr);
}

void Server::submit_replica(FileSetId file_set, double demand,
                            std::uint64_t job_id,
                            std::function<void(SimTime)> on_start) {
  ANU_REQUIRE(job_id != 0);
  enqueue(file_set, demand, -1.0, job_id, std::move(on_start));
}

sim::CancelOutcome Server::cancel(std::uint64_t job_id) {
  return resource_.cancel(job_id);
}

void Server::enqueue(FileSetId file_set, double demand, SimTime arrival,
                     std::uint64_t job_id,
                     std::function<void(SimTime)> on_start) {
  ANU_REQUIRE(is_up());
  sim::Job job;
  job.demand = demand * cache_factor(file_set);
  if (cache_.enabled) ++cache_hits_[file_set.value()];
  job.tag = file_set.value();
  job.id = job_id;
  job.arrival = arrival;
  if (on_start) {
    job.on_start = [cb = std::move(on_start)](SimTime when, const sim::Job&) {
      cb(when);
    };
  }
  job.on_complete = [this](SimTime when, const sim::Job& done) {
    const Completion c{id_, FileSetId(static_cast<std::uint32_t>(done.tag)),
                       done.arrival, when, done.id};
    interval_.add(c.latency());
    lifetime_.add(c.latency());
    if (on_complete) on_complete(c);
  };
  resource_.submit(std::move(job));
}

std::vector<Server::QueuedRequest> Server::extract_queued(FileSetId file_set) {
  const auto jobs = resource_.extract_queued([&](const sim::Job& job) {
    return job.tag == file_set.value();
  });
  std::vector<QueuedRequest> out;
  out.reserve(jobs.size());
  for (const sim::Job& job : jobs) {
    out.push_back(QueuedRequest{file_set, job.demand, job.arrival});
  }
  return out;
}

Server::IntervalReport Server::take_interval_report() {
  IntervalReport report{interval_.mean(), interval_.count()};
  interval_.reset();
  return report;
}

void Server::fail() {
  resource_.fail();
  cache_hits_.clear();  // a restarted server comes back cold
}

void Server::recover() {
  resource_.recover();
  // Any gray degradation active at failure time does not survive the
  // restart: a recovered server runs at nominal speed.
  restore();
}

void Server::degrade(double factor) {
  ANU_REQUIRE(factor > 0.0 && factor <= 1.0);
  ANU_REQUIRE(is_up());
  degraded_ = true;
  resource_.set_speed(nominal_speed_ * factor);
}

void Server::restore() {
  degraded_ = false;
  resource_.set_speed(nominal_speed_);
}

}  // namespace anu::cluster
