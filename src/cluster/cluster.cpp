#include "cluster/cluster.h"

#include "common/assert.h"
#include "obs/trace_sink.h"

namespace anu::cluster {

ClusterConfig paper_cluster() { return ClusterConfig{}; }

Cluster::Cluster(sim::Simulation& simulation, const ClusterConfig& config)
    : sim_(simulation), cache_(config.cache) {
  ANU_REQUIRE(!config.server_speeds.empty());
  for (double speed : config.server_speeds) add_server(speed);
}

std::size_t Cluster::up_count() const {
  std::size_t n = 0;
  for (const auto& s : servers_) n += s->is_up() ? 1u : 0u;
  return n;
}

Server& Cluster::server(ServerId id) {
  ANU_REQUIRE(id.value() < servers_.size());
  return *servers_[id.value()];
}

const Server& Cluster::server(ServerId id) const {
  ANU_REQUIRE(id.value() < servers_.size());
  return *servers_[id.value()];
}

double Cluster::total_capacity() const {
  double sum = 0.0;
  for (const auto& s : servers_) {
    if (s->is_up()) sum += s->speed();
  }
  return sum;
}

std::vector<double> Cluster::up_speeds() const {
  std::vector<double> speeds;
  speeds.reserve(servers_.size());
  for (const auto& s : servers_) speeds.push_back(s->is_up() ? s->speed() : 0.0);
  return speeds;
}

void Cluster::submit(ServerId to, FileSetId file_set, double demand,
                     SimTime arrival) {
  server(to).submit(file_set, demand, arrival);
}

std::size_t Cluster::migrate_queued(FileSetId file_set, ServerId from,
                                    ServerId to) {
  Server& source = server(from);
  if (!source.is_up()) return 0;  // failure already flushed its queue
  source.evict(file_set);  // shedding server flushes its cache (§5.3)
  const auto pending = source.extract_queued(file_set);
  for (const auto& request : pending) {
    server(to).submit(file_set, request.demand, request.arrival);
  }
  return pending.size();
}

ServerId Cluster::add_server(double speed) {
  const auto id = ServerId(static_cast<std::uint32_t>(servers_.size()));
  auto s = std::make_unique<Server>(sim_, id, speed, cache_);
  s->on_complete = [this](const Completion& c) {
    if (on_complete) on_complete(c);
  };
  s->on_flush = [this](FileSetId fs, double demand, std::uint64_t job_id) {
    if (on_flush) on_flush(fs, demand, job_id);
  };
  s->on_idle = [this](ServerId idle) {
    if (on_idle) on_idle(idle);
  };
  servers_.push_back(std::move(s));
  // Initial construction also lands here; a t=0 server_add per initial
  // server gives the trace a self-describing cluster roster.
  if (auto* t = sim_.trace()) {
    t->emit(sim_.now(), obs::EventType::kServerAdd, id.value(), 0, 0, speed);
  }
  return id;
}

void Cluster::fail_server(ServerId id) {
  if (auto* t = sim_.trace()) {
    t->emit(sim_.now(), obs::EventType::kServerFail, id.value());
  }
  server(id).fail();
}

void Cluster::recover_server(ServerId id) {
  if (auto* t = sim_.trace()) {
    t->emit(sim_.now(), obs::EventType::kServerRecover, id.value());
  }
  server(id).recover();
}

void Cluster::degrade_server(ServerId id, double factor) {
  if (auto* t = sim_.trace()) {
    t->emit(sim_.now(), obs::EventType::kServerDegrade, id.value(), 0, 0,
            factor);
  }
  server(id).degrade(factor);
}

void Cluster::restore_server(ServerId id) {
  server(id).restore();
  if (auto* t = sim_.trace()) {
    t->emit(sim_.now(), obs::EventType::kServerRestore, id.value(), 0, 0,
            server(id).speed());
  }
}

}  // namespace anu::cluster
