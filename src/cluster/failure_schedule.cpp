#include "cluster/failure_schedule.h"

#include <algorithm>

#include "common/assert.h"

namespace anu::cluster {

const char* action_name(MembershipAction action) {
  switch (action) {
    case MembershipAction::kFail:
      return "fail";
    case MembershipAction::kRecover:
      return "recover";
    case MembershipAction::kAdd:
      return "add";
    case MembershipAction::kRemove:
      return "remove";
    case MembershipAction::kDegrade:
      return "degrade";
    case MembershipAction::kRestore:
      return "restore";
  }
  ANU_ENSURE(false && "unknown membership action");
  return "unknown";
}

FailureSchedule::FailureSchedule(std::vector<MembershipEvent> events)
    : events_(std::move(events)) {
  ANU_REQUIRE(std::is_sorted(events_.begin(), events_.end(),
                             [](const MembershipEvent& a,
                                const MembershipEvent& b) {
                               return a.when < b.when;
                             }));
}

void FailureSchedule::add(MembershipEvent event) {
  ANU_REQUIRE(events_.empty() || event.when >= events_.back().when);
  events_.push_back(event);
}

FailureSchedule FailureSchedule::random_fail_recover(std::uint64_t seed,
                                                     std::size_t server_count,
                                                     std::size_t rounds,
                                                     SimTime horizon,
                                                     SimTime downtime) {
  ANU_REQUIRE(server_count > 1);
  ANU_REQUIRE(rounds > 0);
  const SimTime window = horizon / static_cast<double>(rounds);
  ANU_REQUIRE(window > downtime * 2.0);
  Xoshiro256 rng(seed);
  FailureSchedule schedule;
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto victim =
        ServerId(static_cast<std::uint32_t>(rng.next_below(server_count)));
    const SimTime start = window * static_cast<double>(r) +
                          rng.next_double() * (window - 2.0 * downtime);
    schedule.add({start, MembershipAction::kFail, victim, 0.0});
    schedule.add({start + downtime, MembershipAction::kRecover, victim, 0.0});
  }
  return schedule;
}

FailureSchedule FailureSchedule::random_degrade(std::uint64_t seed,
                                                std::size_t server_count,
                                                std::size_t rounds,
                                                SimTime horizon,
                                                SimTime duration,
                                                double min_factor,
                                                double max_factor) {
  ANU_REQUIRE(server_count > 1);
  ANU_REQUIRE(rounds > 0);
  ANU_REQUIRE(min_factor > 0.0 && min_factor <= max_factor);
  ANU_REQUIRE(max_factor <= 1.0);
  const SimTime window = horizon / static_cast<double>(rounds);
  ANU_REQUIRE(window > duration * 2.0);
  Xoshiro256 rng(seed);
  FailureSchedule schedule;
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto victim =
        ServerId(static_cast<std::uint32_t>(rng.next_below(server_count)));
    const SimTime start = window * static_cast<double>(r) +
                          rng.next_double() * (window - 2.0 * duration);
    const double factor =
        min_factor + rng.next_double() * (max_factor - min_factor);
    MembershipEvent degrade{start, MembershipAction::kDegrade, victim, 0.0};
    degrade.factor = factor;
    schedule.add(degrade);
    schedule.add(
        {start + duration, MembershipAction::kRestore, victim, 0.0});
  }
  return schedule;
}

}  // namespace anu::cluster
