// The heterogeneous shared-disk cluster: a set of Servers plus dynamic
// membership (add / remove / fail / recover).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/server.h"
#include "common/types.h"
#include "sim/simulation.h"

namespace anu::cluster {

struct ClusterConfig {
  /// Speed factor per initial server. Paper's evaluation cluster: 1,3,5,7,9.
  std::vector<double> server_speeds{1.0, 3.0, 5.0, 7.0, 9.0};
  /// Cold-cache model (§5.3); disabled by default to match the paper's
  /// simulator, enabled in the cache ablation.
  CacheConfig cache;
};

/// The paper's evaluation cluster configuration.
[[nodiscard]] ClusterConfig paper_cluster();

class Cluster {
 public:
  Cluster(sim::Simulation& simulation, const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Number of server slots ever created (includes failed ones).
  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }
  /// Number of currently-up servers.
  [[nodiscard]] std::size_t up_count() const;

  [[nodiscard]] Server& server(ServerId id);
  [[nodiscard]] const Server& server(ServerId id) const;
  [[nodiscard]] bool is_up(ServerId id) const { return server(id).is_up(); }

  /// Sum of speed factors of up servers.
  [[nodiscard]] double total_capacity() const;
  [[nodiscard]] std::vector<double> up_speeds() const;

  /// Routes one request to a server. The caller (driver) decides *which*
  /// server using a balancer; the cluster just models service. Non-negative
  /// `arrival` preserves a migrating request's original arrival time.
  void submit(ServerId to, FileSetId file_set, double demand,
              SimTime arrival = -1.0);

  /// Redirects the waiting requests of a moved file set from `from` to
  /// `to`, keeping their original arrival times, and flushes the shedding
  /// server's cache for it (§5.3). Returns how many requests moved.
  std::size_t migrate_queued(FileSetId file_set, ServerId from, ServerId to);

  /// Adds a new server (commissioning); returns its id.
  ServerId add_server(double speed);

  /// Fails / recovers a server. Flushed in-queue requests surface through
  /// on_flush so the driver can re-dispatch them.
  void fail_server(ServerId id);
  void recover_server(ServerId id);

  /// Gray failure: scales the server's service rate to `factor` times
  /// nominal without taking it down — membership still sees it as up, so
  /// only the tuner's latency feedback can route load away from it.
  void degrade_server(ServerId id, double factor);
  void restore_server(ServerId id);

  /// Fired on every request completion (for metrics) and on every request
  /// flushed by a failure (for re-dispatch; job_id is the flushed job's
  /// cancellation id, 0 for plain requests). on_idle fires when an up
  /// server's queue drains — the idle-token feed for JIQ-style dispatch
  /// strategies (docs/strategies.md).
  std::function<void(const Completion&)> on_complete;
  std::function<void(FileSetId, double demand, std::uint64_t job_id)> on_flush;
  std::function<void(ServerId)> on_idle;

 private:
  sim::Simulation& sim_;
  CacheConfig cache_;
  std::vector<std::unique_ptr<Server>> servers_;
};

}  // namespace anu::cluster
