// libanu — umbrella header.
//
// Pulls in the full public API: the ANU balancer and its substrates, the
// baseline systems, the cluster simulator, the realtime runtime, workload
// generators, metrics and the experiment driver. Include the individual
// headers instead when compile time matters; they are all self-contained.
//
//   #include "anu.h"
//   anu::core::AnuBalancer balancer(anu::core::AnuConfig{}, 5);
#pragma once

#include "balance/balancer.h"          // IWYU pragma: export
#include "balance/chord_ring.h"        // IWYU pragma: export
#include "balance/join_idle_queue.h"   // IWYU pragma: export
#include "balance/jsq_d.h"             // IWYU pragma: export
#include "balance/prescient.h"         // IWYU pragma: export
#include "balance/redundancy_d.h"      // IWYU pragma: export
#include "balance/simple_random.h"     // IWYU pragma: export
#include "balance/virtual_processor.h" // IWYU pragma: export
#include "cluster/cluster.h"           // IWYU pragma: export
#include "cluster/failure_schedule.h"  // IWYU pragma: export
#include "common/clock.h"              // IWYU pragma: export
#include "common/stats.h"              // IWYU pragma: export
#include "common/types.h"              // IWYU pragma: export
#include "common/unit_point.h"         // IWYU pragma: export
#include "core/anu_balancer.h"         // IWYU pragma: export
#include "core/delegate.h"             // IWYU pragma: export
#include "core/region_map.h"           // IWYU pragma: export
#include "core/tuner.h"                // IWYU pragma: export
#include "driver/balancer_factory.h"   // IWYU pragma: export
#include "driver/experiment.h"         // IWYU pragma: export
#include "driver/matrix.h"             // IWYU pragma: export
#include "driver/paper.h"              // IWYU pragma: export
#include "hash/hash_family.h"          // IWYU pragma: export
#include "metrics/consistency.h"       // IWYU pragma: export
#include "proto/protocol.h"            // IWYU pragma: export
#include "proto/transport.h"           // IWYU pragma: export
#include "proto/wire.h"                // IWYU pragma: export
#include "runtime/event_loop.h"        // IWYU pragma: export
#include "runtime/realtime_clock.h"    // IWYU pragma: export
#include "runtime/serve_config.h"      // IWYU pragma: export
#include "runtime/time_source.h"       // IWYU pragma: export
#include "runtime/udp_transport.h"     // IWYU pragma: export
#include "sim/sim_clock.h"             // IWYU pragma: export
#include "sim/simulation.h"            // IWYU pragma: export
#include "workload/synthetic.h"        // IWYU pragma: export
#include "workload/trace.h"            // IWYU pragma: export
