#include "hash/hash_family.h"

#include <cstring>

#include "common/rng.h"

namespace anu {

namespace {

inline std::uint64_t load64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline std::uint64_t load_tail(const char* p, std::size_t n) {
  // Little-endian partial load of 1..7 bytes, zero padded.
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

constexpr std::uint64_t kMul1 = 0x9ddfea08eb382d69ULL;
constexpr std::uint64_t kMul2 = 0xc2b2ae3d27d4eb4fULL;

inline std::uint64_t mix_block(std::uint64_t state, std::uint64_t block) {
  state ^= mix64(block * kMul2);
  return state * kMul1 + 0x165667b19e3779f9ULL;
}

}  // namespace

std::uint64_t hash64(std::string_view data, std::uint64_t seed) {
  const char* p = data.data();
  std::size_t n = data.size();
  std::uint64_t state = seed ^ (static_cast<std::uint64_t>(n) * kMul1);
  while (n >= 8) {
    state = mix_block(state, load64(p));
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    state = mix_block(state, load_tail(p, n) | (static_cast<std::uint64_t>(n) << 56));
  }
  return mix64(state);
}

HashFamily::HashFamily(std::uint64_t family_seed) : family_seed_(family_seed) {}

std::uint64_t HashFamily::raw(std::string_view name, std::uint32_t round) const {
  // mix64 on the round index decorrelates adjacent family members: H_r and
  // H_{r+1} see seeds differing in ~32 random bits, not one.
  return hash64(name, family_seed_ ^ mix64(round + 0x0123456789abcdefULL));
}

UnitPoint HashFamily::unit_point(std::string_view name,
                                 std::uint32_t round) const {
  return UnitPoint::from_hash(raw(name, round));
}

}  // namespace anu
