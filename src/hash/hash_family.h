// The agreed-upon family of hash functions used for ANU addressing.
//
// Paper §4: "Re-hashing is performed using the next hash function among an
// agreed upon family of hash functions." Every node in the cluster computes
// the same H_0, H_1, H_2, ... for a file-set name, so a lookup needs no
// shared lookup table — the function family *is* the addressing scheme.
//
// We implement a seeded 64-bit string hash (wyhash-style block mixing with a
// strong finalizer, written from scratch) and derive family member r by
// folding r into the seed. The family must be:
//   * deterministic across processes and platforms (no ASLR-dependent state),
//   * well mixed (uniform on the unit interval; tests check KS-style bounds),
//   * independent across members (probe r and probe r' uncorrelated).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/unit_point.h"

namespace anu {

/// Seeded 64-bit hash of a byte string. Stable across platforms.
[[nodiscard]] std::uint64_t hash64(std::string_view data, std::uint64_t seed);

/// Family of hash functions over file-set names.
class HashFamily {
 public:
  /// `family_seed` distinguishes independent families (e.g. the file-set ->
  /// unit-interval family vs. the file-set -> virtual-processor family).
  explicit HashFamily(std::uint64_t family_seed = 0x616e755f68617368ULL);

  /// H_round(name) as a raw 64-bit value.
  [[nodiscard]] std::uint64_t raw(std::string_view name,
                                  std::uint32_t round) const;

  /// H_round(name) mapped to the unit interval [0, 1).
  [[nodiscard]] UnitPoint unit_point(std::string_view name,
                                     std::uint32_t round) const;

  [[nodiscard]] std::uint64_t family_seed() const { return family_seed_; }

 private:
  std::uint64_t family_seed_;
};

}  // namespace anu
