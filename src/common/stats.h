// Streaming statistics used by the metrics layer and the figure harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace anu {

/// Welford's online mean/variance. Numerically stable; O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (n in the denominator) — what the paper's stddev
  /// error bars use over full request populations.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket linear histogram with overflow bucket; supports quantile
/// estimation good enough for latency reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t count() const { return total_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t bucket(std::size_t i) const { return counts_[i]; }
  /// Linear-interpolated quantile, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;  // last bucket holds >= hi overflow
  std::size_t total_ = 0;
};

/// Logarithmically-bucketed histogram for long-tailed positive values
/// (latencies spanning milliseconds to hours). Relative quantile error is
/// bounded by the per-decade resolution; O(1) add, O(buckets) quantile.
class LogHistogram {
 public:
  /// Buckets span [min_value, max_value] with `buckets_per_decade`
  /// subdivisions per power of ten. Values outside clamp to the ends.
  LogHistogram(double min_value = 1e-4, double max_value = 1e5,
               std::size_t buckets_per_decade = 20);

  void add(double x);
  void merge(const LogHistogram& other);
  [[nodiscard]] std::size_t count() const { return total_; }
  /// Quantile estimate (geometric midpoint of the selected bucket).
  [[nodiscard]] double quantile(double q) const;

  // Bucket introspection (serialized into the telemetry manifest; see
  // docs/observability.md).
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t bucket(std::size_t i) const { return counts_[i]; }
  /// Lower edge of bucket i in value space; bucket i covers
  /// [bucket_lower(i), bucket_lower(i + 1)), with the first and last
  /// buckets absorbing underflow/overflow.
  [[nodiscard]] double bucket_lower(std::size_t i) const;

 private:
  [[nodiscard]] std::size_t bucket_of(double x) const;

  double log_min_;
  double per_decade_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// (time, value) series with windowed-mean reduction — the building block
/// for the latency-over-time curves in Figs. 4 and 5.
class TimeSeries {
 public:
  struct Point {
    double time;
    double value;
  };

  void add(double time, double value);
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<Point>& points() const { return points_; }

  /// Means of values falling in consecutive windows of `window` time units
  /// covering [0, horizon). Windows with no samples repeat NaN-free: they
  /// carry the previous window's mean (or 0 before any sample), matching how
  /// an idle server's latency curve is drawn flat in the paper's figures.
  [[nodiscard]] std::vector<Point> windowed_mean(double window,
                                                 double horizon) const;

 private:
  std::vector<Point> points_;  // in non-decreasing time order (enforced)
};

}  // namespace anu
