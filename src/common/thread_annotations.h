// Clang thread-safety annotations + annotated mutex wrappers.
//
// The annotation macros expand to Clang's capability-analysis attributes
// when the compiler supports them (clang with -Wthread-safety, which the
// clang CI legs enable together with -Werror — docs/static-analysis.md)
// and to nothing elsewhere, so gcc builds are unaffected. Every class with
// cross-thread mutable state must declare which mutex guards which member
// (ANU_GUARDED_BY) and which capabilities its private helpers assume
// (ANU_REQUIRES); CONTRIBUTING.md makes this a review rule.
//
// The Mutex / MutexLock / CondVar wrappers exist because the analysis
// cannot see through std::mutex / std::unique_lock: only types annotated
// with ANU_CAPABILITY / ANU_SCOPED_CAPABILITY participate. They compile to
// exactly the std primitives they wrap.
#pragma once

#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define ANU_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef ANU_THREAD_ANNOTATION
#define ANU_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares that a member is protected by the given capability (mutex).
#define ANU_GUARDED_BY(x) ANU_THREAD_ANNOTATION(guarded_by(x))
/// Declares that the *pointee* of a pointer member is protected.
#define ANU_PT_GUARDED_BY(x) ANU_THREAD_ANNOTATION(pt_guarded_by(x))
/// The function may only be called while holding the capability.
#define ANU_REQUIRES(...) \
  ANU_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// The function may only be called while NOT holding the capability.
#define ANU_EXCLUDES(...) ANU_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// The function acquires the capability and holds it on return.
#define ANU_ACQUIRE(...) \
  ANU_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// The function releases the capability.
#define ANU_RELEASE(...) \
  ANU_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// The function acquires the capability iff it returns `ret`.
#define ANU_TRY_ACQUIRE(ret, ...) \
  ANU_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
/// Marks a type as a capability ("mutex" in diagnostics).
#define ANU_CAPABILITY(name) ANU_THREAD_ANNOTATION(capability(name))
/// Marks an RAII type whose lifetime equals the hold of a capability.
#define ANU_SCOPED_CAPABILITY ANU_THREAD_ANNOTATION(scoped_lockable)
/// Escape hatch: suppresses the analysis for one function. Every use must
/// carry a comment justifying why the analysis cannot see the invariant.
#define ANU_NO_THREAD_SAFETY_ANALYSIS \
  ANU_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace anu {

/// std::mutex with a capability annotation so ANU_GUARDED_BY members and
/// ANU_REQUIRES contracts are checkable. Prefer MutexLock over manual
/// lock()/unlock() pairs.
class ANU_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ANU_ACQUIRE() { mu_.lock(); }
  void unlock() ANU_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() ANU_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

  /// The wrapped std::mutex, for interop (CondVar). Holding it via this
  /// handle is invisible to the analysis — use MutexLock instead.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock on an anu::Mutex, visible to the analysis as holding the
/// capability for its whole scope. Exposes the underlying unique_lock so
/// CondVar::wait can release/reacquire it.
class ANU_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ANU_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() ANU_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable waiting on an anu::Mutex held via MutexLock. The
/// analysis treats the capability as held across wait() (the transient
/// release/reacquire inside is an implementation detail, same convention
/// as absl::CondVar).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.native()); }

  template <class Predicate>
  void wait(MutexLock& lock, Predicate pred) {
    cv_.wait(lock.native(), std::move(pred));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace anu
