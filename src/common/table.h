// Plain-text table and CSV emission for the figure harnesses.
//
// Every bench binary prints the same rows/series the paper's figure shows,
// as an aligned text table for humans plus optional CSV for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace anu {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience for numeric rows: formats each double with `precision`.
  void add_numeric_row(const std::vector<double>& cells, int precision = 4);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Aligned, boxed text rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed: cells never contain commas here).
  void write_csv(std::ostream& os) const;
  /// Writes CSV to a file path; returns false on I/O failure.
  bool write_csv_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for harness code).
[[nodiscard]] std::string format_double(double v, int precision = 4);

}  // namespace anu
