// Strong identifier and time types shared by every libanu module.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace anu {

/// Simulated time in seconds. The DES engine treats time as a continuous
/// double; the workload generators and tuning intervals all speak seconds.
using SimTime = double;

/// Tag-dispatched strong integer id. Prevents accidentally mixing a server
/// index with a file-set index (both are small dense integers).
template <class Tag>
class StrongId {
 public:
  using underlying = std::uint32_t;
  static constexpr underlying kInvalidValue =
      std::numeric_limits<underlying>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying v) : v_(v) {}

  [[nodiscard]] constexpr underlying value() const { return v_; }
  [[nodiscard]] constexpr bool valid() const { return v_ != kInvalidValue; }
  [[nodiscard]] static constexpr StrongId invalid() { return StrongId{}; }

  constexpr auto operator<=>(const StrongId&) const = default;

 private:
  underlying v_ = kInvalidValue;
};

struct ServerTag {};
struct FileSetTag {};
struct VirtualProcessorTag {};

using ServerId = StrongId<ServerTag>;
using FileSetId = StrongId<FileSetTag>;
using VpId = StrongId<VirtualProcessorTag>;

}  // namespace anu

template <class Tag>
struct std::hash<anu::StrongId<Tag>> {
  std::size_t operator()(const anu::StrongId<Tag>& id) const noexcept {
    return std::hash<typename anu::StrongId<Tag>::underlying>{}(id.value());
  }
};
