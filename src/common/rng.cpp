#include "common/rng.h"

#include "common/assert.h"

namespace anu {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  // Seed expansion per the xoshiro authors' recommendation: never feed the
  // raw user seed straight into state (all-zero state is degenerate).
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      next();
    }
  }
  s_ = acc;
}

Xoshiro256 Xoshiro256::substream(std::uint64_t seed, std::uint64_t index) {
  // Mixing the index into the seed gives independent streams without paying
  // `index` jump() calls; the 2^128 jump then separates identical seeds.
  Xoshiro256 rng(seed ^ mix64(index + 0x5851f42d4c957f2dULL));
  rng.jump();
  return rng;
}

double Xoshiro256::next_double() {
  // 53 top bits -> [0, 1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void Xoshiro256::fill_doubles(std::span<double> out) {
  // Same recurrence and output function as next()/next_double(), with the
  // state held in locals so the compiler keeps it in registers for the
  // whole batch instead of loading and spilling `s_` per draw.
  std::uint64_t s0 = s_[0];
  std::uint64_t s1 = s_[1];
  std::uint64_t s2 = s_[2];
  std::uint64_t s3 = s_[3];
  for (double& slot : out) {
    const std::uint64_t result = rotl(s1 * 5, 7) * 9;
    const std::uint64_t t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = rotl(s3, 45);
    slot = static_cast<double>(result >> 11) * 0x1.0p-53;
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  ANU_REQUIRE(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  __extension__ typedef unsigned __int128 u128;
  std::uint64_t x = next();
  u128 m = static_cast<u128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<u128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace anu
