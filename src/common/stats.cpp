#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace anu {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)) {
  ANU_REQUIRE(hi > lo);
  ANU_REQUIRE(buckets > 0);
  counts_.assign(buckets + 1, 0);  // +1 overflow
}

void Histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 2);
  }
  ++counts_[idx];
  ++total_;
}

double Histogram::quantile(double q) const {
  ANU_REQUIRE(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      if (i == counts_.size() - 1) return hi_;  // overflow bucket
      const double frac =
          counts_[i] ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return hi_;
}

LogHistogram::LogHistogram(double min_value, double max_value,
                           std::size_t buckets_per_decade)
    : log_min_(std::log10(min_value)),
      per_decade_(static_cast<double>(buckets_per_decade)) {
  ANU_REQUIRE(min_value > 0.0 && max_value > min_value);
  ANU_REQUIRE(buckets_per_decade > 0);
  const double decades = std::log10(max_value) - log_min_;
  counts_.assign(
      static_cast<std::size_t>(std::ceil(decades * per_decade_)) + 1, 0);
}

std::size_t LogHistogram::bucket_of(double x) const {
  if (!(x > 0.0)) return 0;
  const double pos = (std::log10(x) - log_min_) * per_decade_;
  if (pos <= 0.0) return 0;
  const auto idx = static_cast<std::size_t>(pos);
  return std::min(idx, counts_.size() - 1);
}

void LogHistogram::add(double x) {
  ++counts_[bucket_of(x)];
  ++total_;
}

void LogHistogram::merge(const LogHistogram& other) {
  ANU_REQUIRE(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double LogHistogram::bucket_lower(std::size_t i) const {
  return std::pow(10.0, log_min_ + static_cast<double>(i) / per_decade_);
}

double LogHistogram::quantile(double q) const {
  ANU_REQUIRE(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) {
      // Geometric midpoint of bucket i.
      const double lo = log_min_ + static_cast<double>(i) / per_decade_;
      return std::pow(10.0, lo + 0.5 / per_decade_);
    }
  }
  return std::pow(10.0, log_min_ + static_cast<double>(counts_.size()) /
                                       per_decade_);
}

void TimeSeries::add(double time, double value) {
  ANU_REQUIRE(points_.empty() || time >= points_.back().time);
  points_.push_back({time, value});
}

std::vector<TimeSeries::Point> TimeSeries::windowed_mean(
    double window, double horizon) const {
  ANU_REQUIRE(window > 0.0);
  std::vector<Point> out;
  const auto windows = static_cast<std::size_t>(std::ceil(horizon / window));
  out.reserve(windows);
  std::size_t i = 0;
  double carry = 0.0;  // previous window's mean, for empty windows
  for (std::size_t w = 0; w < windows; ++w) {
    const double end = window * static_cast<double>(w + 1);
    double sum = 0.0;
    std::size_t n = 0;
    while (i < points_.size() && points_[i].time < end) {
      sum += points_[i].value;
      ++n;
      ++i;
    }
    const double mean = n ? sum / static_cast<double>(n) : carry;
    carry = mean;
    out.push_back({end, mean});
  }
  return out;
}

}  // namespace anu
