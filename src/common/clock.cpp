#include "common/clock.h"

#include <utility>

#include "common/assert.h"

namespace anu {

void TimerHandle::cancel() {
  if (clock_ == nullptr) return;
  cancel_requested_ = true;
  clock_->cancel_timer(a_, b_);
}

bool TimerHandle::cancelled() const {
  if (cancel_requested_) return true;
  if (clock_ == nullptr) return false;
  return clock_->timer_cancelled(a_, b_);
}

TimerHandle Clock::schedule_after(SimTime delay, Action action) {
  ANU_REQUIRE(delay >= 0.0);
  return schedule_at(now() + delay, std::move(action));
}

PeriodicTimer::PeriodicTimer(Clock& clock, SimTime interval, Tick tick)
    : clock_(clock), interval_(interval), tick_(std::move(tick)) {
  ANU_REQUIRE(interval > 0.0);
  ANU_REQUIRE(tick_ != nullptr);
  arm();
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::stop() {
  stopped_ = true;
  next_.cancel();
}

void PeriodicTimer::arm() {
  next_ = clock_.schedule_after(interval_, [this] {
    if (stopped_) return;
    ++fired_;
    // Re-arm before the tick so a tick that stops the timer wins.
    arm();
    tick_(clock_.now());
  });
}

}  // namespace anu
