// Fixed-point arithmetic on the unit interval [0, 1].
//
// ANU randomization hashes workload names to offsets in a unit interval and
// assigns servers non-overlapping sub-regions of it (paper §4). Region
// boundaries must be *exact* — the half-occupancy invariant and partition
// boundaries are equality checks, and floating point would drift under the
// repeated scaling the delegate performs. We therefore represent a point in
// [0, 1] as a 63-bit fixed-point fraction: raw value v means v / 2^63.
//
// 2^63 (not 2^64) so that 1.0 itself is representable in a uint64_t, which
// lets half-open segments end exactly at the top of the interval.
#pragma once

#include <cstdint>
#include <compare>
#include <string>

#include "common/assert.h"

namespace anu {

class UnitPoint {
 public:
  using raw_type = std::uint64_t;
  /// Raw representation of 1.0.
  static constexpr raw_type kOneRaw = raw_type{1} << 63;

  constexpr UnitPoint() = default;

  /// Constructs from a raw 63-bit fraction. Must be <= kOneRaw.
  static constexpr UnitPoint from_raw(raw_type raw) {
    ANU_REQUIRE(raw <= kOneRaw);
    return UnitPoint(raw);
  }

  /// Maps a full-width 64-bit hash value to [0, 1). Uses the top 63 bits so
  /// that well-mixed high bits dominate.
  static constexpr UnitPoint from_hash(std::uint64_t h) {
    return UnitPoint(h >> 1);
  }

  /// Converts from a double in [0, 1]; saturates at the ends.
  static UnitPoint from_double(double x);

  static constexpr UnitPoint zero() { return UnitPoint(0); }
  static constexpr UnitPoint one() { return UnitPoint(kOneRaw); }

  [[nodiscard]] constexpr raw_type raw() const { return v_; }
  [[nodiscard]] double to_double() const;

  constexpr auto operator<=>(const UnitPoint&) const = default;

  /// Sum of two points; asserts the result stays inside [0, 1].
  [[nodiscard]] constexpr UnitPoint plus(UnitPoint d) const {
    ANU_REQUIRE(v_ <= kOneRaw - d.v_);
    return UnitPoint(v_ + d.v_);
  }

  /// Difference; asserts *this >= d.
  [[nodiscard]] constexpr UnitPoint minus(UnitPoint d) const {
    ANU_REQUIRE(v_ >= d.v_);
    return UnitPoint(v_ - d.v_);
  }

  /// Exact fraction of this length: (*this) * num / den, rounded to nearest.
  /// Used when the delegate splits a total occupancy among servers.
  [[nodiscard]] UnitPoint scaled(std::uint64_t num, std::uint64_t den) const;

  /// Multiplies this length by a non-negative double factor, saturating at 1.
  [[nodiscard]] UnitPoint scaled_by(double factor) const;

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit UnitPoint(raw_type raw) : v_(raw) {}
  raw_type v_ = 0;
};

/// Half-open segment [begin, end) of the unit interval.
struct UnitSegment {
  UnitPoint begin;
  UnitPoint end;

  constexpr UnitSegment() = default;
  constexpr UnitSegment(UnitPoint b, UnitPoint e) : begin(b), end(e) {
    ANU_REQUIRE(b <= e);
  }

  [[nodiscard]] constexpr bool empty() const { return begin == end; }
  [[nodiscard]] constexpr UnitPoint length() const { return end.minus(begin); }
  [[nodiscard]] constexpr bool contains(UnitPoint p) const {
    return begin <= p && p < end;
  }
  /// True if the two segments share any point.
  [[nodiscard]] constexpr bool overlaps(const UnitSegment& o) const {
    return begin < o.end && o.begin < end;
  }
  /// True if `o` is fully inside this segment.
  [[nodiscard]] constexpr bool covers(const UnitSegment& o) const {
    return begin <= o.begin && o.end <= end;
  }

  constexpr bool operator==(const UnitSegment&) const = default;

  [[nodiscard]] std::string to_string() const;
};

/// Length of intersection of two segments (zero if disjoint).
[[nodiscard]] UnitPoint intersection_length(const UnitSegment& a,
                                            const UnitSegment& b);

}  // namespace anu
