// Random variate distributions used by the workload substrate.
//
// The paper's synthetic workload (§5.1, §5.2.1) needs: uniform file-set
// weights X ~ U[1,10], heavy-tailed Pareto request inter-arrival times, and
// (for the DFSTrace-like synthesizer) skewed popularity, for which we use
// Zipf, plus lognormal service-time jitter. All are implemented by inversion
// or rejection against Xoshiro256 so results are reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace anu {

/// Uniform real on [lo, hi).
class UniformReal {
 public:
  UniformReal(double lo, double hi);
  double sample(Xoshiro256& rng) const;

 private:
  double lo_;
  double width_;
};

/// Exponential with rate lambda (mean 1/lambda). Inversion method.
class Exponential {
 public:
  explicit Exponential(double lambda);
  double sample(Xoshiro256& rng) const;
  [[nodiscard]] double mean() const { return 1.0 / lambda_; }

 private:
  double lambda_;
};

/// Bounded (truncated) Pareto on [lo, hi] with shape alpha.
///
/// The paper drives request arrivals with "a Pareto distribution that is
/// heavy-tailed" (§5.2.1). We bound the tail so a single astronomically
/// large gap cannot silence a file set for the whole simulation; the bound
/// is far enough out (default hi/lo = 1e4) that the tail still dominates
/// variance. Inversion of the truncated CDF.
class BoundedPareto {
 public:
  BoundedPareto(double shape, double lo, double hi);
  double sample(Xoshiro256& rng) const;
  /// The inversion transform behind sample(): maps a uniform u in [0, 1)
  /// to a variate. Exposed so bulk callers can pair it with
  /// Xoshiro256::fill_doubles and keep the stream bit-identical to
  /// repeated sample() calls.
  [[nodiscard]] double from_uniform(double u) const;
  /// Analytic mean of the truncated distribution.
  [[nodiscard]] double mean() const;
  [[nodiscard]] double shape() const { return alpha_; }

 private:
  double alpha_;
  double lo_;
  double hi_;
  double lo_pow_;   // lo^alpha
  double hi_pow_;   // hi^alpha
};

/// Zipf over ranks {0, .., n-1} with exponent s; rank 0 most popular.
/// Sampled by inversion on the precomputed CDF — n is small (tens of file
/// sets) throughout the reproduction so O(log n) per sample is fine.
class Zipf {
 public:
  Zipf(std::size_t n, double s);
  std::size_t sample(Xoshiro256& rng) const;
  /// Probability mass of rank r.
  [[nodiscard]] double pmf(std::size_t rank) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Lognormal: exp(N(mu, sigma^2)). Box-Muller on the underlying normal.
class Lognormal {
 public:
  Lognormal(double mu, double sigma);
  double sample(Xoshiro256& rng) const;
  [[nodiscard]] double mean() const;

 private:
  double mu_;
  double sigma_;
};

/// Standard normal variate (Box–Muller, one value per call; the pair's
/// second value is discarded to keep the stream position deterministic
/// regardless of call interleaving).
double sample_standard_normal(Xoshiro256& rng);

}  // namespace anu
