// Deterministic pseudo-random number generation.
//
// Every stochastic component of the reproduction (workload synthesis,
// hashing variance experiments, failure injection) draws from generators
// seeded explicitly through experiment configs, so every figure harness is
// bit-reproducible. We implement the generators ourselves rather than rely
// on std::mt19937 so the stream is stable across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace anu {

/// SplitMix64 (Steele, Lea, Flood 2014). Used to expand a single user seed
/// into full generator state and as a cheap stateless mixer.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit finalizer (the SplitMix64 output function). Useful when a
/// pure function of an integer is needed, e.g. per-item jitter.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seed for task `index` of a batch keyed by `base`: two SplitMix64
/// finalizer rounds with a golden-ratio offset between them, so adjacent
/// task indices (and adjacent base seeds) land on uncorrelated streams.
/// This is the repo-wide convention for fanned-out work — a multi-seed
/// sweep derives every run's seed from (base_seed, task_index), which is
/// what makes batch results independent of the parallelism level.
[[nodiscard]] constexpr std::uint64_t substream_seed(std::uint64_t base,
                                                     std::uint64_t index) {
  return mix64(mix64(base ^ 0x9e3779b97f4a7c15ULL) +
               0x9e3779b97f4a7c15ULL * (index + 1));
}

/// xoshiro256** 1.0 (Blackman & Vigna). The workhorse generator: fast,
/// 256-bit state, passes BigCrush. Satisfies std::uniform_random_bit_engine.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Advances the stream by 2^128 steps; used to derive independent
  /// sub-streams (one per file set, per server, ...) from one seed.
  void jump();

  /// Convenience: an independent sub-stream for entity `index`.
  [[nodiscard]] static Xoshiro256 substream(std::uint64_t seed,
                                            std::uint64_t index);

  /// Uniform double in [0, 1).
  double next_double();

  /// Fills `out` with uniform doubles in [0, 1): bit-identical to calling
  /// next_double() out.size() times, but the generator state stays in
  /// registers across the whole batch — the fast path for bulk variate
  /// generation (e.g. workload arrival synthesis).
  void fill_doubles(std::span<double> out);

  /// Uniform integer in [0, bound). bound must be > 0. Lemire's method.
  std::uint64_t next_below(std::uint64_t bound);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace anu
