// The clock seam between the decision core and whatever drives it.
//
// Everything above the event kernel — the control protocol (src/proto), the
// tuner pipeline it feeds (src/core) — needs exactly three things from its
// environment: the current time, a way to schedule a callback at an absolute
// time, and an optional trace sink. anu::Clock narrows that dependency to a
// virtual interface so the same protocol code runs against
//
//   * sim::SimClock — the discrete-event simulator (src/sim), where time is
//     simulated and a whole day of protocol traffic executes in microseconds;
//   * runtime::RealtimeClock — a steady-clock + timer-wheel implementation
//     (src/runtime) that fires the same callbacks against wall time, which
//     is what `anu_serve` and any embedding application use.
//
// The contract both implementations honor (and tests/clock_parity_test.cpp
// enforces): timers fire in (deadline, schedule-order) order — FIFO among
// equal deadlines — and a callback may schedule or cancel further timers,
// including at its own firing time. Given that, the protocol's behaviour is
// a pure function of its inputs on either clock; docs/runtime.md states the
// sim-vs-realtime guarantees precisely.
#pragma once

#include <cstdint>
#include <functional>

#include "common/small_function.h"
#include "common/types.h"

namespace anu::obs {
class TraceSink;
}

namespace anu {

class Clock;

/// Cancellable handle to a scheduled timer — the clock-agnostic analogue of
/// sim::EventHandle (same semantics: copyable, cancelling any copy cancels
/// the timer, all operations O(1), safe before or after the timer fires).
/// The two opaque words are interpreted by the issuing Clock; the Clock
/// must outlive any use of cancel()/cancelled().
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Prevents the timer from firing. Idempotent; no-op after it fired.
  void cancel();
  [[nodiscard]] bool cancelled() const;
  [[nodiscard]] bool valid() const { return clock_ != nullptr; }

 private:
  friend class Clock;
  TimerHandle(Clock* clock, std::uint64_t a, std::uint64_t b)
      : clock_(clock), a_(a), b_(b) {}

  Clock* clock_ = nullptr;
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
  /// Remembers a cancel() issued through this handle so cancelled() stays
  /// true after the implementation recycles the timer's storage.
  bool cancel_requested_ = false;
};

/// Time + deferred execution, as the decision core sees it.
class Clock {
 public:
  /// Scheduled callback: same small-buffer-optimized type the simulator's
  /// slab stores, so routing protocol actions through the interface keeps
  /// the allocation profile of direct sim::Simulation use.
  using Action = SmallFunction<void(), 48>;

  Clock() = default;
  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;
  virtual ~Clock() = default;

  /// Current time, seconds. Simulated or wall — callers must not care.
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Schedules `action` at absolute time `when`; `when` earlier than now()
  /// fires as soon as possible (the simulator rejects it, the realtime
  /// clock clamps — schedule non-past deadlines to stay portable).
  virtual TimerHandle schedule_at(SimTime when, Action action) = 0;

  /// Schedules `action` after `delay` (>= 0) seconds.
  TimerHandle schedule_after(SimTime delay, Action action);

  /// Observability conduit (docs/observability.md): null means tracing is
  /// disabled and instrumented sites pay one null-pointer branch.
  [[nodiscard]] virtual obs::TraceSink* trace() const = 0;

 protected:
  /// Wraps implementation words (e.g. {slot, generation}) into a handle.
  TimerHandle make_handle(std::uint64_t a, std::uint64_t b) {
    return TimerHandle(this, a, b);
  }

 private:
  friend class TimerHandle;
  virtual void cancel_timer(std::uint64_t a, std::uint64_t b) = 0;
  [[nodiscard]] virtual bool timer_cancelled(std::uint64_t a,
                                             std::uint64_t b) const = 0;
};

/// Periodic callback on any Clock: fires at interval, 2*interval, ...
/// Clock-agnostic twin of sim::PeriodicMonitor (same first-tick-at-interval
/// and re-arm-before-tick semantics, so a tick that stops the timer wins).
class PeriodicTimer {
 public:
  using Tick = std::function<void(SimTime)>;

  PeriodicTimer(Clock& clock, SimTime interval, Tick tick);

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;
  ~PeriodicTimer();

  /// Stops future ticks.
  void stop();

  [[nodiscard]] std::uint64_t ticks_fired() const { return fired_; }

 private:
  void arm();

  Clock& clock_;
  SimTime interval_;
  Tick tick_;
  TimerHandle next_;
  bool stopped_ = false;
  std::uint64_t fired_ = 0;
};

}  // namespace anu
