#include "common/thread_pool.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <utility>

namespace anu {

// ---------------------------------------------------------------------------
// Pool level: per-worker task deques + steal-half + idle parking.

struct ThreadPool::Worker {
  Mutex mutex;
  std::deque<Task> queue ANU_GUARDED_BY(mutex);
};

namespace {
// Which pool worker (if any) the current thread is; participants use it to
// push nested submissions onto their own deque.
thread_local std::size_t t_worker_index = static_cast<std::size_t>(-1);
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(park_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  park_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::StatsSnapshot ThreadPool::stats() const {
  StatsSnapshot s;
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.steals = steals_.load(std::memory_order_relaxed);
  s.parks = parks_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::submit(Task task) {
  const std::size_t self = t_worker_index;
  std::size_t target;
  if (self < workers_.size() && threads_[self].get_id() ==
                                    std::this_thread::get_id()) {
    target = self;  // a pool worker of *this* pool: keep it local
  } else {
    target = next_worker_.fetch_add(1, std::memory_order_relaxed) %
             workers_.size();
  }
  {
    const MutexLock lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  // The increment must synchronize with the parking predicate, or a worker
  // that just evaluated pending_ == 0 could sleep through this wakeup.
  {
    const MutexLock lock(park_mutex_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  park_cv_.notify_one();
}

bool ThreadPool::take_task(std::size_t self, Task& out) {
  // Own deque first, newest task (back) — the classic owner end.
  {
    Worker& me = *workers_[self];
    const MutexLock lock(me.mutex);
    if (!me.queue.empty()) {
      out = std::move(me.queue.back());
      me.queue.pop_back();
      pending_.fetch_sub(1, std::memory_order_acquire);
      return true;
    }
  }
  // Steal from the richest victim: take the front half of its deque (oldest
  // tasks), executing one and re-queueing the rest locally. One steal lock
  // then pays for several pops.
  std::size_t victim = workers_.size();
  std::size_t best = 0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (w == self) continue;
    const MutexLock lock(workers_[w]->mutex);
    if (workers_[w]->queue.size() > best) {
      best = workers_[w]->queue.size();
      victim = w;
    }
  }
  if (victim == workers_.size()) return false;
  std::deque<Task> haul;
  {
    Worker& v = *workers_[victim];
    const MutexLock lock(v.mutex);
    const std::size_t take = (v.queue.size() + 1) / 2;
    for (std::size_t i = 0; i < take; ++i) {
      haul.push_back(std::move(v.queue.front()));
      v.queue.pop_front();
    }
  }
  if (haul.empty()) return false;  // raced: victim drained meanwhile
  steals_.fetch_add(1, std::memory_order_relaxed);
  out = std::move(haul.front());
  haul.pop_front();
  pending_.fetch_sub(1, std::memory_order_acquire);
  if (!haul.empty()) {
    Worker& me = *workers_[self];
    const MutexLock lock(me.mutex);
    for (Task& t : haul) me.queue.push_back(std::move(t));
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker_index = self;
  for (;;) {
    Task task;
    if (take_task(self, task)) {
      task();
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    parks_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(park_mutex_);
    park_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

// ---------------------------------------------------------------------------
// Batch level: sharded job indices, caller-helps, exception aggregation.

struct ThreadPool::BatchState {
  struct Shard {
    Mutex mutex;
    std::deque<std::size_t> indices ANU_GUARDED_BY(mutex);
  };

  const std::function<void(std::size_t)>* fn = nullptr;
  std::vector<std::unique_ptr<Shard>> shards;
  std::atomic<bool> failed{false};
  Mutex error_mutex;
  std::exception_ptr first_error ANU_GUARDED_BY(error_mutex);
  std::size_t error_count ANU_GUARDED_BY(error_mutex) = 0;

  // Jobs not yet finished or abandoned; the caller blocks until 0.
  std::atomic<std::size_t> remaining{0};
  Mutex done_mutex;
  CondVar done_cv;  // signalled under done_mutex

  /// Pops one index for participant `slot`: own shard back first, then the
  /// front half of the richest sibling shard.
  bool take_index(std::size_t slot, std::size_t& out) {
    {
      Shard& mine = *shards[slot];
      const MutexLock lock(mine.mutex);
      if (!mine.indices.empty()) {
        out = mine.indices.back();
        mine.indices.pop_back();
        return true;
      }
    }
    std::size_t victim = shards.size();
    std::size_t best = 0;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (s == slot) continue;
      const MutexLock lock(shards[s]->mutex);
      if (shards[s]->indices.size() > best) {
        best = shards[s]->indices.size();
        victim = s;
      }
    }
    if (victim == shards.size()) return false;
    std::deque<std::size_t> haul;
    {
      Shard& v = *shards[victim];
      const MutexLock lock(v.mutex);
      const std::size_t take = (v.indices.size() + 1) / 2;
      for (std::size_t i = 0; i < take; ++i) {
        haul.push_back(v.indices.front());
        v.indices.pop_front();
      }
    }
    if (haul.empty()) return false;
    out = haul.front();
    haul.pop_front();
    if (!haul.empty()) {
      Shard& mine = *shards[slot];
      const MutexLock lock(mine.mutex);
      for (const std::size_t i : haul) mine.indices.push_back(i);
    }
    return true;
  }

  void finish_one() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const MutexLock lock(done_mutex);
      done_cv.notify_all();
    }
  }
};

void ThreadPool::participate(const std::shared_ptr<BatchState>& batch,
                             std::size_t slot) {
  std::size_t index;
  while (batch->take_index(slot, index)) {
    if (batch->failed.load(std::memory_order_acquire)) {
      batch->finish_one();  // abandoned, counted but never run
      continue;
    }
    try {
      (*batch->fn)(index);
    } catch (...) {
      const MutexLock lock(batch->error_mutex);
      if (!batch->first_error) batch->first_error = std::current_exception();
      ++batch->error_count;
      batch->failed.store(true, std::memory_order_release);
    }
    batch->finish_one();
  }
}

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& fn,
                             std::size_t parallelism) {
  if (count == 0) return;
  if (parallelism == 0) parallelism = worker_count() + 1;
  parallelism = std::min({parallelism, worker_count() + 1, count});
  if (parallelism <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto batch = std::make_shared<BatchState>();
  batch->fn = &fn;
  batch->remaining.store(count, std::memory_order_relaxed);
  batch->shards.reserve(parallelism);
  for (std::size_t s = 0; s < parallelism; ++s) {
    batch->shards.push_back(std::make_unique<BatchState::Shard>());
  }
  // Round-robin sharding: shard s starts with indices s, s+P, s+2P, ...
  // Runs before the first submit(), so no shard mutex is contended yet;
  // the analysis still wants the capability held for the guarded deque.
  for (std::size_t i = 0; i < count; ++i) {
    BatchState::Shard& shard = *batch->shards[i % parallelism];
    const MutexLock lock(shard.mutex);
    shard.indices.push_back(i);
  }
  // Helpers run on pool workers; stale ones (arriving after the batch
  // drained) find empty shards and return. The shared_ptr keeps the state
  // alive for them.
  for (std::size_t s = 1; s < parallelism; ++s) {
    submit([batch, s] { participate(batch, s); });
  }
  // The caller is participant 0: guaranteed forward progress even when
  // every pool worker is busy (including with the batch that spawned us).
  participate(batch, 0);
  {
    MutexLock lock(batch->done_mutex);
    batch->done_cv.wait(lock, [&] {
      return batch->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  // All participants have finished (remaining == 0) and finish_one()'s
  // release sequence happened-before our acquire, so first_error is
  // quiescent; the lock keeps the analysis and TSan both satisfied.
  //
  // Move (not copy) the exception out: a stale helper can drop the last
  // BatchState reference on a pool worker after we return, and that must
  // not release the exception object a caller's catch block may still be
  // reading (the refcount lives in libstdc++'s uninstrumented runtime, so
  // TSan flags the cross-thread release). After the move the batch holds
  // nothing; the exception dies on the caller thread.
  std::exception_ptr error;
  {
    const MutexLock lock(batch->error_mutex);
    error = std::move(batch->first_error);
    batch->first_error = nullptr;  // moved-from exception_ptr is unspecified
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::run_batch(const std::vector<Task>& jobs,
                           std::size_t parallelism) {
  run_indexed(jobs.size(), [&jobs](std::size_t i) { jobs[i](); },
              parallelism);
}

}  // namespace anu
