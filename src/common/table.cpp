#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/assert.h"

namespace anu {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ANU_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ANU_REQUIRE(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double c : cells) row.push_back(format_double(c, precision));
  add_row(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << headers_[c] << (c + 1 == headers_.size() ? '\n' : ',');
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << (c + 1 == row.size() ? '\n' : ',');
    }
  }
}

bool Table::write_csv_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_csv(f);
  return static_cast<bool>(f);
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace anu
