#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace anu {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[anu %s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace anu
