#include "common/log.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <utility>

#include "common/thread_annotations.h"

namespace anu {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

// One mutex serializes formatting output and sink swaps. A swapped-out sink
// is destroyed only after any in-flight call through it returns (both paths
// hold g_mutex), which is the race the thread-safety annotations pin down:
// g_sink is unreachable without the capability.
Mutex g_mutex;
LogSink g_sink ANU_GUARDED_BY(g_mutex);  // empty => stderr default

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_sink(LogSink sink) {
  // Swap under the lock, destroy the old sink after releasing it: a sink
  // whose destructor logs (or blocks) must not deadlock the logger.
  LogSink old;
  {
    const MutexLock lock(g_mutex);
    old = std::exchange(g_sink, std::move(sink));
  }
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  // Format outside the lock; only the sink call needs serialization.
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n < 0) return;
  const std::size_t len =
      std::min(static_cast<std::size_t>(n), sizeof buf - 1);
  const MutexLock lock(g_mutex);
  if (g_sink) {
    g_sink(level, std::string_view(buf, len));
    return;
  }
  std::fprintf(stderr, "[anu %s] %.*s\n", level_name(level),
               static_cast<int>(len), buf);
}

}  // namespace anu
