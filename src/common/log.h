// Minimal leveled logging for the library.
//
// Simulation code must never log on hot paths; logging exists for the
// delegate/tuning layer (round summaries, incompetent-server notifications,
// paper §5.2.2) and for the harnesses. Global level, off-by-default debug.
#pragma once

#include <cstdarg>
#include <string>

namespace anu {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// printf-style logging. Thread-safe (single global mutex; logging is cold).
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace anu

#define ANU_LOG_DEBUG(...) ::anu::log_message(::anu::LogLevel::kDebug, __VA_ARGS__)
#define ANU_LOG_INFO(...) ::anu::log_message(::anu::LogLevel::kInfo, __VA_ARGS__)
#define ANU_LOG_WARN(...) ::anu::log_message(::anu::LogLevel::kWarn, __VA_ARGS__)
#define ANU_LOG_ERROR(...) ::anu::log_message(::anu::LogLevel::kError, __VA_ARGS__)
