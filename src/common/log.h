// Minimal leveled logging for the library.
//
// Simulation code must never log on hot paths; logging exists for the
// delegate/tuning layer (round summaries, incompetent-server notifications,
// paper §5.2.2) and for the harnesses. Global level, off-by-default debug.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>
#include <string_view>

namespace anu {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Receives one fully formatted message (no trailing newline). Called with
/// the logging mutex held, so a sink swap can never free a sink that is
/// mid-call — but that also means sinks must not log re-entrantly.
using LogSink = std::function<void(LogLevel, std::string_view)>;

/// Swaps the global sink; an empty sink restores the stderr default.
/// Thread-safe against concurrent log_message calls: the swap and every
/// sink invocation serialize on one mutex (see log.cpp annotations).
void set_log_sink(LogSink sink);

/// printf-style logging. Thread-safe (single global mutex; logging is cold).
/// Messages are truncated to an internal buffer (1 KiB) before the sink.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace anu

#define ANU_LOG_DEBUG(...) ::anu::log_message(::anu::LogLevel::kDebug, __VA_ARGS__)
#define ANU_LOG_INFO(...) ::anu::log_message(::anu::LogLevel::kInfo, __VA_ARGS__)
#define ANU_LOG_WARN(...) ::anu::log_message(::anu::LogLevel::kWarn, __VA_ARGS__)
#define ANU_LOG_ERROR(...) ::anu::log_message(::anu::LogLevel::kError, __VA_ARGS__)
