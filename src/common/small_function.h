// Move-only callable with a wide small-buffer optimization.
//
// The discrete-event kernel stores one callback per scheduled event. With
// std::function, any capture beyond the implementation's inline budget
// (16 bytes on the toolchains we target) heap-allocates — at millions of
// events per second that allocation dominates the dispatch cost. The
// simulator's capture sizes are small but not *that* small: `this` plus a
// couple of values, up to ~40 bytes across sim/, proto/ and driver/.
// SmallFunction widens the inline buffer (48 bytes by default) so those
// captures construct in place; larger ones still work through a heap
// fallback. Move-only by design: the kernel never copies an event's
// action, and move-only captures schedule without workarounds.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace anu {

template <class Signature, std::size_t BufferBytes = 48>
class SmallFunction;

template <class R, class... Args, std::size_t BufferBytes>
class SmallFunction<R(Args...), BufferBytes> {
 public:
  SmallFunction() = default;
  /*implicit*/ SmallFunction(std::nullptr_t) {}  // NOLINT

  template <class F, class D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, SmallFunction> &&
                                 std::is_invocable_r_v<R, D&, Args...>,
                             int> = 0>
  /*implicit*/ SmallFunction(F&& f) {  // NOLINT
    if constexpr (kInline<D>) {
      ::new (buffer()) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (buffer()) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { take(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  /// Destroys the held callable, if any; *this becomes empty.
  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buffer());
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buffer(), std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    // Move-constructs into `to` and destroys `from` — one indirect call per
    // relocation instead of separate move + destroy dispatches. Null means
    // "memcpy the buffer": inline trivially-copyable callables (the common
    // `this` + a few values capture) and the heap fallback's stored pointer
    // both relocate bitwise, so their moves cost no indirect call at all.
    // The slab in sim/simulation.h relocates every action twice (into its
    // slot, then out to the dispatch frame) — this is its fast path.
    void (*relocate)(void* from, void* to) noexcept;
    // Null means trivially destructible: reset() just clears ops_.
    void (*destroy)(void*) noexcept;
  };

  template <class D>
  static constexpr bool kInline = sizeof(D) <= BufferBytes &&
                                  alignof(D) <= alignof(std::max_align_t) &&
                                  std::is_nothrow_move_constructible_v<D>;

  template <class D>
  static R inline_invoke(void* s, Args&&... args) {
    return (*static_cast<D*>(s))(std::forward<Args>(args)...);
  }
  template <class D>
  static void inline_relocate(void* from, void* to) noexcept {
    ::new (to) D(std::move(*static_cast<D*>(from)));
    static_cast<D*>(from)->~D();
  }
  template <class D>
  static void inline_destroy(void* s) noexcept {
    static_cast<D*>(s)->~D();
  }

  // Trivially copyable implies trivially destructible, so a null relocate
  // never leaves a source needing destruction.
  template <class D>
  static constexpr Ops kInlineOps = {
      &inline_invoke<D>,
      std::is_trivially_copyable_v<D> ? nullptr : &inline_relocate<D>,
      std::is_trivially_destructible_v<D> ? nullptr : &inline_destroy<D>,
  };

  template <class D>
  static R heap_invoke(void* s, Args&&... args) {
    return (**static_cast<D**>(s))(std::forward<Args>(args)...);
  }
  template <class D>
  static void heap_destroy(void* s) noexcept {
    delete *static_cast<D**>(s);
  }

  // Heap relocation is a bitwise pointer move, hence relocate == nullptr.
  template <class D>
  static constexpr Ops kHeapOps = {
      &heap_invoke<D>,
      nullptr,
      &heap_destroy<D>,
  };

  void take(SmallFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->relocate == nullptr) {
        std::memcpy(storage_, other.storage_, sizeof(storage_));
      } else {
        other.ops_->relocate(other.buffer(), buffer());
      }
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  [[nodiscard]] void* buffer() { return static_cast<void*>(storage_); }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte
      storage_[BufferBytes < sizeof(void*) ? sizeof(void*) : BufferBytes];
};

}  // namespace anu
