// Persistent work-stealing thread pool.
//
// One pool of workers lives for the process (ThreadPool::global()), so a
// 200-seed sweep does not pay thread creation per run_parallel call the way
// the old spawn-per-batch scheme did. Scheduling is two-level:
//
//   * Pool level: each worker owns a deque of submitted tasks. A worker
//     pops from the back of its own deque (newest first, cache-warm),
//     steals the front half of the richest other deque when its own runs
//     dry (steal-half amortizes the steal lock across many tasks), and
//     parks on a condition variable when the whole pool is empty.
//   * Batch level: run_batch shards its jobs round-robin across one
//     index-deque per participant. The calling thread is always
//     participant 0 and executes jobs itself, so a batch completes even if
//     every pool worker is busy with other batches — which is what makes
//     nested run_batch calls (a job that itself fans out) deadlock-free by
//     construction. Idle participants steal half of the richest sibling
//     shard.
//
// Exception handling aggregates: every throwing job is counted, the first
// exception is kept and rethrown on the calling thread after the batch
// drains (remaining jobs are abandoned, never half-run). Determinism is the
// caller's contract: jobs must not share mutable state, so results are a
// pure function of the job list, independent of the parallelism level —
// see driver::run_indexed and the (base_seed, task_index) RNG substream
// convention in common/rng.h.
//
// Locking discipline is machine-checked: guarded members carry
// ANU_GUARDED_BY and the clang CI legs compile with -Wthread-safety
// -Werror (docs/static-analysis.md); the TSan CI leg runs the pool suite
// under ThreadSanitizer.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace anu {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Monotonic scheduling counters, readable while the pool runs. Counters
  /// are advisory (relaxed atomics): totals are exact once the pool is
  /// quiescent, transient reads may lag individual workers. Never feed
  /// them into experiment results — scheduling is timing-dependent by
  /// nature (tools/anu_lint.py bans completion-order dependence).
  struct StatsSnapshot {
    std::uint64_t tasks_executed = 0;  // pool-level tasks run to completion
    std::uint64_t steals = 0;          // successful steal-half raids
    std::uint64_t parks = 0;           // times a worker went to sleep
  };

  /// Spawns `workers` threads (0 = hardware concurrency). Workers park
  /// when idle; an idle pool costs no CPU.
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, created on first use.
  [[nodiscard]] static ThreadPool& global();

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  [[nodiscard]] StatsSnapshot stats() const;

  /// Fire-and-forget: enqueues one task. From a pool worker it lands on
  /// that worker's own deque; from outside, round-robin across workers.
  void submit(Task task);

  /// Runs fn(0..count) across at most `parallelism` threads (the caller
  /// plus parallelism-1 pool workers; 0 = caller + all workers) and blocks
  /// until every index has run or been abandoned. If any call throws, the
  /// first exception is rethrown here after the batch drains; jobs not yet
  /// started by then are abandoned. parallelism == 1 runs inline, in index
  /// order. Safe to call from inside a pool task (nested batches cannot
  /// deadlock: the nested caller executes its own jobs).
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& fn,
                   std::size_t parallelism = 0);

  /// run_indexed over an explicit job list.
  void run_batch(const std::vector<Task>& jobs, std::size_t parallelism = 0);

 private:
  struct Worker;
  struct BatchState;

  void worker_loop(std::size_t self);
  [[nodiscard]] bool take_task(std::size_t self, Task& out);
  static void participate(const std::shared_ptr<BatchState>& batch,
                          std::size_t slot);

  // Immutable after construction (worker threads only read them), so not
  // guarded by any mutex.
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  Mutex park_mutex_;
  CondVar park_cv_;  // signalled under park_mutex_
  // stop_/pending_ are atomics readable without the mutex, but every write
  // that must wake a parked worker happens under park_mutex_ so it cannot
  // slip between a worker's predicate check and its wait.
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> pending_{0};      // submitted, not yet claimed
  std::atomic<std::size_t> next_worker_{0};  // external-submit round robin

  // Stats (advisory, relaxed — see StatsSnapshot).
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> parks_{0};
};

}  // namespace anu
