// Lightweight contract-checking macros used across libanu.
//
// ANU_REQUIRE is always on (it guards invariants the simulator's correctness
// depends on, e.g. the half-occupancy invariant of the unit interval); the
// cost is a predictable branch, negligible next to event processing.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace anu::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "libanu %s failed: %s (%s:%d)\n", kind, expr, file, line);
  std::abort();
}

}  // namespace anu::detail

#define ANU_REQUIRE(expr)                                                  \
  ((expr) ? static_cast<void>(0)                                           \
          : ::anu::detail::contract_failure("precondition", #expr,         \
                                            __FILE__, __LINE__))

#define ANU_ENSURE(expr)                                                   \
  ((expr) ? static_cast<void>(0)                                           \
          : ::anu::detail::contract_failure("invariant", #expr,            \
                                            __FILE__, __LINE__))
