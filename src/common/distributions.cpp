#include "common/distributions.h"

#include <cmath>
#include <numbers>

#include "common/assert.h"

namespace anu {

UniformReal::UniformReal(double lo, double hi) : lo_(lo), width_(hi - lo) {
  ANU_REQUIRE(hi > lo);
}

double UniformReal::sample(Xoshiro256& rng) const {
  return lo_ + width_ * rng.next_double();
}

Exponential::Exponential(double lambda) : lambda_(lambda) {
  ANU_REQUIRE(lambda > 0.0);
}

double Exponential::sample(Xoshiro256& rng) const {
  // -log(1-u) avoids log(0) since next_double() < 1.
  return -std::log1p(-rng.next_double()) / lambda_;
}

BoundedPareto::BoundedPareto(double shape, double lo, double hi)
    : alpha_(shape),
      lo_(lo),
      hi_(hi),
      lo_pow_(std::pow(lo, shape)),
      hi_pow_(std::pow(hi, shape)) {
  ANU_REQUIRE(shape > 0.0);
  ANU_REQUIRE(lo > 0.0 && hi > lo);
}

double BoundedPareto::sample(Xoshiro256& rng) const {
  return from_uniform(rng.next_double());
}

double BoundedPareto::from_uniform(double u) const {
  // Inverse CDF of the truncated Pareto:
  //   F(x) = (1 - (lo/x)^a) / (1 - (lo/hi)^a)
  const double ratio = lo_pow_ / hi_pow_;
  return lo_ / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha_);
}

double BoundedPareto::mean() const {
  if (alpha_ == 1.0) {
    return std::log(hi_ / lo_) * lo_ / (1.0 - lo_ / hi_);
  }
  const double num = lo_pow_ / (alpha_ - 1.0) *
                     (1.0 / std::pow(lo_, alpha_ - 1.0) -
                      1.0 / std::pow(hi_, alpha_ - 1.0));
  const double norm = 1.0 - lo_pow_ / hi_pow_;
  return alpha_ * num / norm;
}

Zipf::Zipf(std::size_t n, double s) {
  ANU_REQUIRE(n > 0);
  ANU_REQUIRE(s >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding shortfall
}

std::size_t Zipf::sample(Xoshiro256& rng) const {
  const double u = rng.next_double();
  // First rank whose CDF value exceeds u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] <= u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double Zipf::pmf(std::size_t rank) const {
  ANU_REQUIRE(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

Lognormal::Lognormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  ANU_REQUIRE(sigma >= 0.0);
}

double Lognormal::sample(Xoshiro256& rng) const {
  return std::exp(mu_ + sigma_ * sample_standard_normal(rng));
}

double Lognormal::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

double sample_standard_normal(Xoshiro256& rng) {
  // Box–Muller; consume exactly two uniforms per call for stream stability.
  const double u1 = rng.next_double();
  const double u2 = rng.next_double();
  const double r = std::sqrt(-2.0 * std::log1p(-u1));
  return r * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace anu
