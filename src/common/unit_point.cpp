#include "common/unit_point.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace anu {

UnitPoint UnitPoint::from_double(double x) {
  if (x <= 0.0) return zero();
  if (x >= 1.0) return one();
  // 2^63 as a double is exact; the product fits raw_type after the bounds
  // check above.
  const double scaled = x * 9223372036854775808.0;  // 2^63
  return UnitPoint(static_cast<raw_type>(scaled));
}

double UnitPoint::to_double() const {
  return static_cast<double>(v_) / 9223372036854775808.0;  // 2^63
}

UnitPoint UnitPoint::scaled(std::uint64_t num, std::uint64_t den) const {
  ANU_REQUIRE(den != 0);
  ANU_REQUIRE(num <= den);
  __extension__ typedef unsigned __int128 u128;
  const u128 prod = static_cast<u128>(v_) * num + den / 2;
  return UnitPoint(static_cast<raw_type>(prod / den));
}

UnitPoint UnitPoint::scaled_by(double factor) const {
  ANU_REQUIRE(factor >= 0.0);
  const double scaled = static_cast<double>(v_) * factor;
  if (scaled >= static_cast<double>(kOneRaw)) return one();
  return UnitPoint(static_cast<raw_type>(scaled));
}

std::string UnitPoint::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9f", to_double());
  return buf;
}

std::string UnitSegment::to_string() const {
  return "[" + begin.to_string() + ", " + end.to_string() + ")";
}

UnitPoint intersection_length(const UnitSegment& a, const UnitSegment& b) {
  const UnitPoint lo = std::max(a.begin, b.begin);
  const UnitPoint hi = std::min(a.end, b.end);
  return lo < hi ? hi.minus(lo) : UnitPoint::zero();
}

}  // namespace anu
