#include "proto/wire.h"

#include <cstring>

namespace anu::proto {

namespace {

// Little-endian writers/readers over a byte vector. memcpy keeps them
// alias-safe; on little-endian hosts the compiler folds them to plain
// loads/stores.

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t b[4];
  b[0] = static_cast<std::uint8_t>(v);
  b[1] = static_cast<std::uint8_t>(v >> 8);
  b[2] = static_cast<std::uint8_t>(v >> 16);
  b[3] = static_cast<std::uint8_t>(v >> 24);
  out.insert(out.end(), b, b + 4);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounds-checked little-endian cursor; any short read marks it bad and
/// every later read returns 0, so decode paths stay branch-light and check
/// ok() once at the end.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint32_t u32() {
    if (!take(4)) return 0;
    const std::uint8_t* b = data_ + pos_ - 4;
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool exhausted() const { return ok_ && pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

 private:
  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::vector<std::uint8_t> encode(const Message& message) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(message.index()));
  if (const auto* report = std::get_if<LatencyReport>(&message)) {
    put_u32(out, report->server);
    put_u64(out, report->round);
    put_u64(out, report->seq);
    put_f64(out, report->report.mean_latency);
    put_u64(out, static_cast<std::uint64_t>(report->report.completed));
  } else if (const auto* update = std::get_if<RegionMapUpdate>(&message)) {
    put_u64(out, update->version);
    put_u64(out, update->round);
    put_u64(out, update->seq);
    put_u32(out, static_cast<std::uint32_t>(update->partitions.size()));
    for (const auto& [owner, prefix] : update->partitions) {
      put_u32(out, owner);
      put_u64(out, prefix);
    }
  } else if (const auto* shed = std::get_if<ShedNotice>(&message)) {
    put_u32(out, shed->file_set);
    put_u32(out, shed->from);
    put_u32(out, shed->to);
  } else if (const auto* beat = std::get_if<Heartbeat>(&message)) {
    put_u32(out, beat->server);
  } else if (const auto* ack = std::get_if<Ack>(&message)) {
    put_u64(out, ack->seq);
  }
  return out;
}

std::optional<Message> decode(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return std::nullopt;
  Reader in(data + 1, size - 1);
  Message message;
  switch (data[0]) {
    case 0: {
      LatencyReport report;
      report.server = in.u32();
      report.round = in.u64();
      report.seq = in.u64();
      report.report.mean_latency = in.f64();
      report.report.completed = static_cast<std::size_t>(in.u64());
      message = report;
      break;
    }
    case 1: {
      RegionMapUpdate update;
      update.version = in.u64();
      update.round = in.u64();
      update.seq = in.u64();
      const std::uint32_t count = in.u32();
      // Each entry is 12 bytes; a count the remaining payload cannot hold
      // is a malformed (or hostile) datagram, not an allocation request.
      if (!in.ok() || in.remaining() != std::size_t{count} * 12) {
        return std::nullopt;
      }
      update.partitions.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t owner = in.u32();
        const std::uint64_t prefix = in.u64();
        update.partitions.emplace_back(owner, prefix);
      }
      message = std::move(update);
      break;
    }
    case 2: {
      ShedNotice shed;
      shed.file_set = in.u32();
      shed.from = in.u32();
      shed.to = in.u32();
      message = shed;
      break;
    }
    case 3: {
      Heartbeat beat;
      beat.server = in.u32();
      message = beat;
      break;
    }
    case 4: {
      Ack ack;
      ack.seq = in.u64();
      message = ack;
      break;
    }
    default:
      return std::nullopt;
  }
  if (!in.exhausted()) return std::nullopt;
  return message;
}

}  // namespace anu::proto
