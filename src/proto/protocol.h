// The ANU control protocol as per-node state machines over a simulated
// network — the message-level realization of §4.
//
// Per tuning interval, each server node computes its latency report and
// sends it to the delegate (the lowest-id up server, per the deterministic
// election every node can evaluate from the shared membership view — in a
// real deployment a heartbeat service provides that view). The delegate
// collects the round's reports, waits out a short grace period for
// stragglers, runs the stateless tuning function, and broadcasts the new
// region table with a bumped version. Each node applies newer versions to
// its local replica, computes which of its file sets it shed, and notifies
// the acquirers (ShedNotice).
//
// Tolerances built in and tested:
//   * lost reports: retransmitted (ack/timeout, capped exponential backoff);
//     a report lost past the retry budget reads as idle (bounded growth
//     nudge), never blocks a round;
//   * lost / reordered / duplicated updates: reliable delivery plus
//     (sender, seq) duplicate suppression gets them through a lossy
//     network; version numbers make application idempotent and monotonic,
//     and a node that missed version v entirely catches up at v+1;
//   * delegate failure mid-round: no update is produced that round; the
//     next round's reports go to the newly elected delegate, which runs
//     the same pure function on its own replica — statelessness in action;
//   * adversarial networks (loss, duplication, partitions, delay spikes —
//     src/faults, docs/chaos.md): the chaos suite asserts convergence
//     invariants after faults cease.
//
// The protocol layer abstracts the data plane: per round, each node's
// observed latency comes from a pluggable LatencyModel (queueing-level
// evaluation lives in driver/). What is being validated here is the
// control plane: agreement, versioning, failover, message cost.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"

#include "core/region_map.h"
#include "core/tuner.h"
#include "hash/hash_family.h"
#include "proto/heartbeat.h"
#include "proto/transport.h"

namespace anu::proto {

/// Ack/retransmit policy for the messages that must arrive (latency
/// reports, region-map distribution). Lost best-effort messages merely
/// degrade one round; under sustained loss (docs/chaos.md) reliability is
/// what keeps every round completing and every replica converging.
struct RetransmitConfig {
  /// Master switch; off restores the seed's fire-and-forget behaviour.
  bool enabled = true;
  /// Initial retransmit timeout (seconds). Doubled per attempt, capped.
  double rto = 0.1;
  double rto_max = 2.0;
  /// Multiplicative jitter amplitude in [0, 1) applied per timeout so
  /// synchronized losses do not retransmit in lockstep.
  double jitter = 0.25;
  /// Total transmissions per message (first send + retries) before the
  /// sender gives up.
  std::uint32_t max_attempts = 8;
  /// Dedicated seed for retransmit jitter — isolated from the network and
  /// fault streams so enabling chaos never shifts retry timing.
  std::uint64_t seed = 0x7265747279ULL;  // "retry"
};

struct ProtocolConfig {
  double tuning_interval = 120.0;
  /// How long the delegate waits after its own report before tuning with
  /// whatever reports arrived.
  double report_grace = 0.5;
  core::TunerConfig tuner;
  std::uint64_t hash_seed = 0x616e755f68617368ULL;
  std::uint32_t max_probe_rounds = 64;
  /// Membership source. false: an oracle membership service (every node
  /// instantly knows who is up — the default, and what the §4 prose
  /// presumes). true: emergent heartbeat detection — nodes beacon every
  /// heartbeat.interval, suspect silent peers, elect the delegate from
  /// their *local* views, and a dead server's region is reclaimed when the
  /// delegate's detector suspects it (no oracle involved).
  bool use_heartbeats = false;
  HeartbeatConfig heartbeat;
  RetransmitConfig retransmit;
};

/// Produces server `s`'s interval report given its current share — the
/// abstracted data plane.
using LatencyModel = std::function<balance::ServerReport(
    std::uint32_t server, UnitPoint share)>;

class ProtocolCluster {
 public:
  /// The cluster is clock- and transport-agnostic: under the simulator pass
  /// a sim::SimClock and a proto::Network; under the realtime runtime pass
  /// a runtime::RealtimeClock and a runtime::UdpTransport. Nothing in this
  /// class (or below it in core/) knows which it got.
  ProtocolCluster(anu::Clock& clock, Transport& network,
                  const ProtocolConfig& config, std::size_t server_count,
                  LatencyModel latency_model);

  /// Replicated cluster configuration: the file sets every node knows.
  void register_file_sets(std::vector<std::string> names);

  /// Membership changes (also flips the node's network link).
  void fail_server(std::uint32_t server);
  void recover_server(std::uint32_t server);

  /// The delegate under oracle membership (ground truth lowest up node).
  [[nodiscard]] std::uint32_t delegate() const;
  /// Who node `self` believes is the delegate (== delegate() unless
  /// heartbeats are on, where it reflects that node's local detector).
  [[nodiscard]] std::uint32_t believed_delegate_of(std::uint32_t self) const;
  /// Does node `self` currently believe `peer` is up?
  [[nodiscard]] bool believed_up(std::uint32_t self, std::uint32_t peer) const;

  /// Node-local state, for tests and diagnostics.
  [[nodiscard]] const core::RegionMap& map_of(std::uint32_t server) const;
  [[nodiscard]] std::uint64_t version_of(std::uint32_t server) const;
  /// True when all up nodes hold identical (version, table) replicas.
  [[nodiscard]] bool replicas_agree() const;
  /// Routing as node `server` would perform it, on its own replica.
  [[nodiscard]] ServerId route_from(std::uint32_t server,
                                    std::string_view name) const;
  [[nodiscard]] std::uint64_t shed_notices_received(
      std::uint32_t server) const;
  [[nodiscard]] std::uint64_t updates_published() const { return published_; }

  /// Reliable-delivery counters, aggregated over all nodes. They reconcile
  /// as: acks_received <= reliable_sent + retransmits (each ack answers one
  /// transmission), and every pending entry ends acked, abandoned, or
  /// cancelled by its sender failing.
  [[nodiscard]] std::uint64_t reliable_sent() const { return reliable_sent_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t acks_received() const { return acks_received_; }
  /// Received reliable messages whose (sender, seq) was already processed —
  /// retransmit echoes and injected duplicates, suppressed before dispatch.
  [[nodiscard]] std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }
  /// Reliable sends abandoned after max_attempts or because the receiver
  /// was believed down.
  [[nodiscard]] std::uint64_t retries_abandoned() const {
    return retries_abandoned_;
  }

  /// Fired when a node sheds a file set on applying a new map (at the
  /// moment it sends the ShedNotice): (file_set, from, to). The data-plane
  /// integration uses this to hand the file set's queued requests over.
  std::function<void(std::uint32_t, std::uint32_t, std::uint32_t)> on_shed;

 private:
  /// One in-flight reliable message awaiting its ack.
  struct PendingSend {
    Message message;
    std::uint32_t to = 0;
    std::uint32_t attempts = 1;  // transmissions so far
    double rto = 0.0;            // next timeout (pre-jitter)
    anu::TimerHandle timer;
  };

  struct Node {
    core::RegionMap map{1};  // placeholder; re-initialized in ctor
    std::uint64_t version = 0;
    bool up = true;
    std::uint64_t shed_notices = 0;
    // Reliable-delivery sender state: per-node monotonically increasing
    // sequence (never reset, so (sender, seq) stays unique across
    // fail/recover cycles) and the unacked sends keyed by seq.
    std::uint64_t next_seq = 1;
    std::unordered_map<std::uint64_t, PendingSend> pending;
    // Receiver state: seqs already processed, per sender — retransmits and
    // injected duplicates are re-acked but not re-dispatched.
    std::vector<std::unordered_set<std::uint64_t>> seen_seqs;
    // Delegate-role state (used only while this node is the delegate).
    std::vector<std::optional<balance::ServerReport>> round_reports;
    std::uint64_t collecting_round = 0;
    std::uint64_t last_tuned_round = 0;  // guards against double-tuning
    anu::TimerHandle grace_deadline;
  };

  void on_message(std::uint32_t self, std::uint32_t from,
                  const Message& message);
  void on_tick(SimTime now);
  void delegate_collect(std::uint32_t self, const LatencyReport& report);
  void delegate_tune(std::uint32_t self);
  void apply_update(std::uint32_t self, const RegionMapUpdate& update);
  [[nodiscard]] ServerId route_on(const core::RegionMap& map,
                                  std::string_view name) const;

  /// Stamps the message with self's next sequence number and sends it with
  /// ack/retransmit tracking (plain send when retransmit.enabled is off).
  void send_reliable(std::uint32_t self, std::uint32_t to, Message message);
  void arm_retransmit(std::uint32_t self, std::uint64_t seq);
  void on_retransmit_timer(std::uint32_t self, std::uint64_t seq);
  void drop_pending(std::uint32_t self);

  anu::Clock& clock_;
  Transport& network_;
  ProtocolConfig config_;
  LatencyModel latency_model_;
  HashFamily family_;
  Xoshiro256 retry_rng_;
  std::vector<Node> nodes_;
  std::vector<HeartbeatView> views_;  // one per node (heartbeat mode)
  std::vector<std::string> file_sets_;
  std::uint64_t published_ = 0;
  std::uint64_t reliable_sent_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t duplicates_suppressed_ = 0;
  std::uint64_t retries_abandoned_ = 0;
  anu::PeriodicTimer ticker_;
  std::unique_ptr<anu::PeriodicTimer> heartbeat_ticker_;
};

}  // namespace anu::proto
