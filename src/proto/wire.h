// Binary codec for protocol Messages — what runtime::UdpTransport puts on
// real sockets.
//
// The simulated Network never serializes (it passes Message values and
// charges wire_size() for cost accounting); the realtime transport has to.
// The format is deliberately simple and explicit:
//
//   byte 0      : kind tag (the Message variant index)
//   bytes 1..   : fields in declaration order, little-endian fixed width;
//                 doubles as IEEE-754 bit patterns; the RegionMapUpdate
//                 partition table as a u32 count then (u32 owner, u64
//                 prefix) pairs.
//
// decode() is total: any malformed datagram (short read, unknown tag,
// trailing bytes, absurd partition count) returns nullopt rather than
// asserting, because the bytes come from a socket, not from this process.
// encode()/decode() round-trip exactly (tests/wire_test.cpp), including
// wire sizes larger than the modelled wire_size() — the model charges the
// paper's idealized cost, the codec pays the real one.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "proto/messages.h"

namespace anu::proto {

/// Serializes `message` to a self-contained datagram payload.
[[nodiscard]] std::vector<std::uint8_t> encode(const Message& message);

/// Parses one datagram payload; nullopt on any malformed input.
[[nodiscard]] std::optional<Message> decode(const std::uint8_t* data,
                                            std::size_t size);

[[nodiscard]] inline std::optional<Message> decode(
    const std::vector<std::uint8_t>& bytes) {
  return decode(bytes.data(), bytes.size());
}

}  // namespace anu::proto
