// Heartbeat failure detector.
//
// §4's protocol presumes every node knows which servers are up — the
// delegate is "elected", failed servers' regions are reassigned. This
// detector makes that knowledge emergent: every node broadcasts a
// Heartbeat each `interval`; a peer not heard from for `suspect_after`
// is locally suspected. Each node holds its own view, so views can
// transiently disagree (the classic eventually-perfect detector in a
// partially synchronous network); the protocol's version-by-round updates
// tolerate that window.
//
// One detector instance per node; the owner feeds it received heartbeats
// and its own clock.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace anu::proto {

struct HeartbeatConfig {
  /// Beacon period.
  double interval = 1.0;
  /// Silence threshold before a peer is suspected. Must comfortably exceed
  /// interval + worst-case network delay or live peers flap.
  double suspect_after = 3.5;
};

class HeartbeatView {
 public:
  HeartbeatView(const HeartbeatConfig& config, std::size_t peer_count,
                std::uint32_t self);

  /// Records a heartbeat (or any message — receipt proves liveness) from
  /// `peer` at local time `now`.
  void heard_from(std::uint32_t peer, double now);

  /// Is `peer` believed up at `now`? Self is always up.
  [[nodiscard]] bool believes_up(std::uint32_t peer, double now) const;

  /// Lowest-id peer believed up — this node's delegate candidate.
  [[nodiscard]] std::uint32_t believed_delegate(double now) const;

  [[nodiscard]] std::size_t believed_up_count(double now) const;
  [[nodiscard]] std::uint32_t self() const { return self_; }

 private:
  HeartbeatConfig config_;
  std::uint32_t self_;
  std::vector<double> last_heard_;
};

}  // namespace anu::proto
