// The transport seam under the control protocol.
//
// ProtocolCluster (protocol.h) speaks to its peers through this narrow
// interface: point-to-point datagram delivery between a fixed set of
// numbered nodes, with per-node admin up/down gating. Two implementations:
//
//   * proto::Network — the simulated network (network.h): modelled latency,
//     deterministic jitter, fault injection, byte accounting;
//   * runtime::UdpTransport — real loopback/UDP sockets (src/runtime), the
//     transport `anu_serve` and embeddings run on.
//
// Delivery is best-effort on both: messages to down nodes vanish, and the
// real transport adds whatever loss the kernel feels like. The protocol is
// built for exactly that (acks, retransmits, version-monotonic updates), so
// nothing above this interface needs to know which transport it is on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "proto/messages.h"

namespace anu::proto {

class Transport {
 public:
  /// Receive callback of one node: (sender, message).
  using Handler = std::function<void(std::uint32_t from, const Message&)>;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  /// Registers the receive handler of one node.
  virtual void attach(std::uint32_t node, Handler handler) = 0;

  /// Marks a node down/up; messages to (and from) down nodes are dropped.
  virtual void set_node_up(std::uint32_t node, bool up) = 0;
  [[nodiscard]] virtual bool node_up(std::uint32_t node) const = 0;

  /// Sends a message; delivery is asynchronous and best-effort.
  virtual void send(std::uint32_t from, std::uint32_t to,
                    Message message) = 0;

  /// Sends to every node except `from` (down receivers drop at send).
  virtual void broadcast(std::uint32_t from, const Message& message);

  [[nodiscard]] virtual std::size_t node_count() const = 0;
};

}  // namespace anu::proto
