// Wire messages of the ANU control protocol (paper §4).
//
// Three flows make up the protocol:
//   * each server reports its interval latency "to an elected delegate
//     server" — LatencyReport;
//   * "the delegate distributes a new mapping of servers to the unit
//     interval to all servers. This is the only replicated state needed by
//     our algorithm" — RegionMapUpdate, carrying the full partition table
//     (it is O(servers) small, which is the point);
//   * a shedding server "hashes each shed file set to locate a new server
//     and notifies the new server that it is gaining workload" — ShedNotice.
//
// Messages carry a wire size so the network model can charge transmission
// cost and the tests can account protocol overhead.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "balance/balancer.h"
#include "common/types.h"
#include "common/unit_point.h"

namespace anu::proto {

struct LatencyReport {
  std::uint32_t server = 0;
  /// Tuning round this report belongs to (delegate ignores stale rounds).
  std::uint64_t round = 0;
  balance::ServerReport report;

  [[nodiscard]] std::size_t wire_size() const { return 4 + 8 + 12; }
};

/// Serialized partition table: one (owner, occupied-prefix) pair per
/// partition — the RegionMap's exact content.
struct RegionMapUpdate {
  /// Monotonic configuration version; receivers apply only newer maps.
  std::uint64_t version = 0;
  std::uint64_t round = 0;
  std::vector<std::pair<std::uint32_t, UnitPoint::raw_type>> partitions;

  [[nodiscard]] std::size_t wire_size() const {
    return 16 + partitions.size() * 12;
  }
};

struct ShedNotice {
  std::uint32_t file_set = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;

  [[nodiscard]] std::size_t wire_size() const { return 12; }
};

/// Liveness beacon for heartbeat-based membership (§4's "elected delegate"
/// needs every node to agree on who is up; with heartbeats that agreement
/// is emergent rather than oracular).
struct Heartbeat {
  std::uint32_t server = 0;

  [[nodiscard]] std::size_t wire_size() const { return 8; }
};

using Message =
    std::variant<LatencyReport, RegionMapUpdate, ShedNotice, Heartbeat>;

[[nodiscard]] inline std::size_t wire_size(const Message& message) {
  return std::visit([](const auto& m) { return m.wire_size(); }, message);
}

}  // namespace anu::proto
