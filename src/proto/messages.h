// Wire messages of the ANU control protocol (paper §4).
//
// Three flows make up the protocol:
//   * each server reports its interval latency "to an elected delegate
//     server" — LatencyReport;
//   * "the delegate distributes a new mapping of servers to the unit
//     interval to all servers. This is the only replicated state needed by
//     our algorithm" — RegionMapUpdate, carrying the full partition table
//     (it is O(servers) small, which is the point);
//   * a shedding server "hashes each shed file set to locate a new server
//     and notifies the new server that it is gaining workload" — ShedNotice.
//
// Messages carry a wire size so the network model can charge transmission
// cost and the tests can account protocol overhead.
//
// Reports and map updates must actually arrive for the protocol to make
// progress under lossy networks, so both carry a per-sender sequence
// number and are acknowledged (Ack) with retransmission on timeout —
// docs/protocol.md describes the state machine. Heartbeats and shed
// notices stay best-effort by design: heartbeats are periodic beacons and
// a lost shed notice only delays a queued-request handoff the region map
// already made correct.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "balance/balancer.h"
#include "common/types.h"
#include "common/unit_point.h"

namespace anu::proto {

struct LatencyReport {
  std::uint32_t server = 0;
  /// Tuning round this report belongs to (delegate ignores stale rounds).
  std::uint64_t round = 0;
  /// Reliable-delivery sequence number, unique per sender; 0 = best-effort
  /// (no ack expected). See the ack/retransmit machinery in protocol.h.
  std::uint64_t seq = 0;
  balance::ServerReport report;

  [[nodiscard]] std::size_t wire_size() const { return 4 + 8 + 8 + 12; }
};

/// Serialized partition table: one (owner, occupied-prefix) pair per
/// partition — the RegionMap's exact content.
struct RegionMapUpdate {
  /// Monotonic configuration version; receivers apply only newer maps.
  std::uint64_t version = 0;
  std::uint64_t round = 0;
  /// Reliable-delivery sequence number (0 = best-effort), as LatencyReport.
  std::uint64_t seq = 0;
  std::vector<std::pair<std::uint32_t, UnitPoint::raw_type>> partitions;

  [[nodiscard]] std::size_t wire_size() const {
    return 24 + partitions.size() * 12;
  }
};

struct ShedNotice {
  std::uint32_t file_set = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;

  [[nodiscard]] std::size_t wire_size() const { return 12; }
};

/// Liveness beacon for heartbeat-based membership (§4's "elected delegate"
/// needs every node to agree on who is up; with heartbeats that agreement
/// is emergent rather than oracular).
struct Heartbeat {
  std::uint32_t server = 0;

  [[nodiscard]] std::size_t wire_size() const { return 8; }
};

/// Acknowledges receipt of the sender's reliable message `seq`. Acks are
/// themselves best-effort: a lost ack just costs one spurious retransmit,
/// which the receiver's (sender, seq) duplicate suppression absorbs.
struct Ack {
  std::uint64_t seq = 0;

  [[nodiscard]] std::size_t wire_size() const { return 12; }
};

using Message =
    std::variant<LatencyReport, RegionMapUpdate, ShedNotice, Heartbeat, Ack>;

[[nodiscard]] inline std::size_t wire_size(const Message& message) {
  return std::visit([](const auto& m) { return m.wire_size(); }, message);
}

/// The reliable-delivery sequence number a message carries (0 for message
/// kinds that are always best-effort).
[[nodiscard]] inline std::uint64_t reliable_seq(const Message& message) {
  if (const auto* report = std::get_if<LatencyReport>(&message)) {
    return report->seq;
  }
  if (const auto* update = std::get_if<RegionMapUpdate>(&message)) {
    return update->seq;
  }
  return 0;
}

}  // namespace anu::proto
