#include "proto/protocol.h"

#include <algorithm>

#include "common/assert.h"
#include "common/log.h"
#include "obs/trace_sink.h"

namespace anu::proto {

ProtocolCluster::ProtocolCluster(anu::Clock& clock, Transport& network,
                                 const ProtocolConfig& config,
                                 std::size_t server_count,
                                 LatencyModel latency_model)
    : clock_(clock),
      network_(network),
      config_(config),
      latency_model_(std::move(latency_model)),
      family_(config.hash_seed),
      retry_rng_(config.retransmit.seed),
      nodes_(server_count),
      ticker_(clock, config.tuning_interval,
              [this](SimTime now) { on_tick(now); }) {
  ANU_REQUIRE(server_count > 0);
  ANU_REQUIRE(network.node_count() == server_count);
  ANU_REQUIRE(latency_model_ != nullptr);
  ANU_REQUIRE(config.retransmit.rto > 0.0);
  ANU_REQUIRE(config.retransmit.rto_max >= config.retransmit.rto);
  ANU_REQUIRE(config.retransmit.jitter >= 0.0 &&
              config.retransmit.jitter < 1.0);
  ANU_REQUIRE(config.retransmit.max_attempts >= 1);
  // Every replica starts from the identical deterministic equal-share map.
  const core::RegionMap initial(server_count);
  for (std::uint32_t s = 0; s < server_count; ++s) {
    nodes_[s].map = initial;
    nodes_[s].round_reports.resize(server_count);
    nodes_[s].seen_seqs.resize(server_count);
    network_.attach(s, [this, s](std::uint32_t from, const Message& message) {
      on_message(s, from, message);
    });
  }
  if (config_.use_heartbeats) {
    views_.reserve(server_count);
    for (std::uint32_t s = 0; s < server_count; ++s) {
      views_.emplace_back(config_.heartbeat, server_count, s);
    }
    heartbeat_ticker_ = std::make_unique<anu::PeriodicTimer>(
        clock, config_.heartbeat.interval, [this](SimTime) {
          for (std::uint32_t s = 0; s < nodes_.size(); ++s) {
            if (nodes_[s].up) network_.broadcast(s, Heartbeat{s});
          }
        });
  }
}

void ProtocolCluster::register_file_sets(std::vector<std::string> names) {
  file_sets_ = std::move(names);
}

void ProtocolCluster::fail_server(std::uint32_t server) {
  ANU_REQUIRE(server < nodes_.size());
  ANU_REQUIRE(nodes_[server].up);
  const std::uint32_t before = delegate();
  nodes_[server].up = false;
  nodes_[server].grace_deadline.cancel();
  drop_pending(server);
  network_.set_node_up(server, false);
  // The server_fail event itself is emitted by the data-plane Cluster
  // sharing this clock; this layer records only the election outcome.
  // Oracle-membership election is instantaneous; under heartbeats each
  // node's believed delegate converges via its local detector instead.
  if (auto* t = clock_.trace()) {
    if (delegate() != before) {
      t->emit(clock_.now(), obs::EventType::kDelegateElected, delegate(),
              before);
    }
  }
}

void ProtocolCluster::recover_server(std::uint32_t server) {
  ANU_REQUIRE(server < nodes_.size());
  ANU_REQUIRE(!nodes_[server].up);
  const std::uint32_t before = delegate();
  nodes_[server].up = true;
  network_.set_node_up(server, true);
  if (auto* t = clock_.trace()) {
    if (delegate() != before) {
      t->emit(clock_.now(), obs::EventType::kDelegateElected, delegate(),
              before);
    }
  }
  // State transfer on rejoin: any up peer sends its current replica so the
  // returning node (who may immediately be re-elected delegate) does not
  // act on an arbitrarily stale map. Version monotonicity keeps this safe
  // even if the transfer races a round's broadcast.
  for (std::uint32_t peer = 0; peer < nodes_.size(); ++peer) {
    if (peer == server || !nodes_[peer].up) continue;
    RegionMapUpdate transfer;
    transfer.version = nodes_[peer].version;
    transfer.round = nodes_[peer].version;
    transfer.partitions = nodes_[peer].map.snapshot();
    send_reliable(peer, server, transfer);
    break;
  }
}

std::uint32_t ProtocolCluster::delegate() const {
  for (std::uint32_t s = 0; s < nodes_.size(); ++s) {
    if (nodes_[s].up) return s;
  }
  ANU_ENSURE(false && "whole cluster down");
  return 0;
}

std::uint32_t ProtocolCluster::believed_delegate_of(std::uint32_t self) const {
  ANU_REQUIRE(self < nodes_.size());
  if (!config_.use_heartbeats) return delegate();
  return views_[self].believed_delegate(clock_.now());
}

bool ProtocolCluster::believed_up(std::uint32_t self,
                                  std::uint32_t peer) const {
  ANU_REQUIRE(self < nodes_.size());
  ANU_REQUIRE(peer < nodes_.size());
  if (!config_.use_heartbeats) return nodes_[peer].up;
  return views_[self].believes_up(peer, clock_.now());
}

const core::RegionMap& ProtocolCluster::map_of(std::uint32_t server) const {
  ANU_REQUIRE(server < nodes_.size());
  return nodes_[server].map;
}

std::uint64_t ProtocolCluster::version_of(std::uint32_t server) const {
  ANU_REQUIRE(server < nodes_.size());
  return nodes_[server].version;
}

bool ProtocolCluster::replicas_agree() const {
  const Node* reference = nullptr;
  for (const Node& node : nodes_) {
    if (!node.up) continue;
    if (!reference) {
      reference = &node;
      continue;
    }
    if (node.version != reference->version ||
        !(node.map == reference->map)) {
      return false;
    }
  }
  return true;
}

ServerId ProtocolCluster::route_on(const core::RegionMap& map,
                                   std::string_view name) const {
  for (std::uint32_t r = 0; r < config_.max_probe_rounds; ++r) {
    if (const auto owner = map.owner_at(family_.unit_point(name, r))) {
      return *owner;
    }
  }
  ANU_ENSURE(false && "lookup exhausted the hash family");
  return {};
}

ServerId ProtocolCluster::route_from(std::uint32_t server,
                                     std::string_view name) const {
  return route_on(map_of(server), name);
}

std::uint64_t ProtocolCluster::shed_notices_received(
    std::uint32_t server) const {
  ANU_REQUIRE(server < nodes_.size());
  return nodes_[server].shed_notices;
}

void ProtocolCluster::send_reliable(std::uint32_t self, std::uint32_t to,
                                    Message message) {
  Node& node = nodes_[self];
  if (!config_.retransmit.enabled) {
    network_.send(self, to, std::move(message));
    return;
  }
  const std::uint64_t seq = node.next_seq++;
  if (auto* report = std::get_if<LatencyReport>(&message)) {
    report->seq = seq;
  } else if (auto* update = std::get_if<RegionMapUpdate>(&message)) {
    update->seq = seq;
  } else {
    ANU_ENSURE(false && "only reports and map updates are sent reliably");
  }
  PendingSend pending;
  pending.message = message;
  pending.to = to;
  pending.attempts = 1;
  pending.rto = config_.retransmit.rto;
  node.pending.emplace(seq, std::move(pending));
  ++reliable_sent_;
  network_.send(self, to, std::move(message));
  arm_retransmit(self, seq);
}

void ProtocolCluster::arm_retransmit(std::uint32_t self, std::uint64_t seq) {
  auto it = nodes_[self].pending.find(seq);
  ANU_REQUIRE(it != nodes_[self].pending.end());
  const double timeout =
      it->second.rto *
      (1.0 + config_.retransmit.jitter * retry_rng_.next_double());
  it->second.timer = clock_.schedule_after(
      timeout, [this, self, seq] { on_retransmit_timer(self, seq); });
}

void ProtocolCluster::on_retransmit_timer(std::uint32_t self,
                                          std::uint64_t seq) {
  Node& node = nodes_[self];
  const auto it = node.pending.find(seq);
  if (it == node.pending.end() || !node.up) return;  // acked or sender died
  PendingSend& pending = it->second;
  // Give up once the receiver is believed down (its region is reclaimed by
  // membership, not by retries) or the retry budget is spent.
  if (!believed_up(self, pending.to) ||
      pending.attempts >= config_.retransmit.max_attempts) {
    ++retries_abandoned_;
    node.pending.erase(it);
    return;
  }
  ++pending.attempts;
  ++retransmits_;
  if (auto* t = clock_.trace()) {
    t->emit(clock_.now(), obs::EventType::kRetransmit, self, pending.to,
            pending.attempts, pending.rto);
  }
  network_.send(self, pending.to, pending.message);
  pending.rto = std::min(pending.rto * 2.0, config_.retransmit.rto_max);
  arm_retransmit(self, seq);
}

void ProtocolCluster::drop_pending(std::uint32_t self) {
  Node& node = nodes_[self];
  for (auto& [seq, pending] : node.pending) pending.timer.cancel();
  node.pending.clear();
}

void ProtocolCluster::on_tick(SimTime now) {
  const auto round = static_cast<std::uint64_t>(
      now / config_.tuning_interval + 0.5);
  for (std::uint32_t s = 0; s < nodes_.size(); ++s) {
    Node& node = nodes_[s];
    if (!node.up) continue;
    // Each node addresses the delegate *it* believes in; with heartbeats
    // that view is local and may transiently disagree across nodes.
    const std::uint32_t target = believed_delegate_of(s);
    LatencyReport report;
    report.server = s;
    report.round = round;
    report.report = latency_model_(s, node.map.share(ServerId(s)));
    if (s == target) {
      // The delegate's own report needs no network trip.
      delegate_collect(s, report);
    } else {
      send_reliable(s, target, report);
    }
  }
}

void ProtocolCluster::on_message(std::uint32_t self, std::uint32_t from,
                                 const Message& message) {
  Node& node = nodes_[self];
  if (!node.up) return;
  // Any received message proves the sender was alive when it sent.
  if (config_.use_heartbeats) views_[self].heard_from(from, clock_.now());
  if (const auto* ack = std::get_if<Ack>(&message)) {
    const auto it = node.pending.find(ack->seq);
    if (it != node.pending.end()) {
      it->second.timer.cancel();
      node.pending.erase(it);
      ++acks_received_;
    }
    return;
  }
  if (const std::uint64_t seq = reliable_seq(message); seq != 0) {
    // Ack first — even for duplicates, whose original ack may have been
    // lost — then suppress anything already processed so retransmit
    // echoes compose with network-injected duplication.
    network_.send(self, from, Ack{seq});
    if (!node.seen_seqs[from].insert(seq).second) {
      ++duplicates_suppressed_;
      return;
    }
  }
  if (const auto* report = std::get_if<LatencyReport>(&message)) {
    // Only the node currently acting as delegate collects reports; a
    // report addressed to a stale delegate is ignored (the sender will
    // address the right one next round).
    if (self == believed_delegate_of(self)) delegate_collect(self, *report);
  } else if (const auto* update = std::get_if<RegionMapUpdate>(&message)) {
    apply_update(self, *update);
  } else if (std::get_if<ShedNotice>(&message)) {
    ++node.shed_notices;
  } else if (std::get_if<Heartbeat>(&message)) {
    // Liveness already recorded above.
  }
}

void ProtocolCluster::delegate_collect(std::uint32_t self,
                                       const LatencyReport& report) {
  Node& node = nodes_[self];
  if (report.round < node.collecting_round) return;  // stale straggler
  if (report.round <= node.last_tuned_round) return;  // round already tuned
  if (report.round > node.collecting_round) {
    // New round begins: reset the collection window and arm the grace
    // deadline; whatever arrived by then is what the round tunes on.
    node.collecting_round = report.round;
    std::fill(node.round_reports.begin(), node.round_reports.end(),
              std::nullopt);
    node.grace_deadline.cancel();
    node.grace_deadline = clock_.schedule_after(
        config_.report_grace, [this, self] { delegate_tune(self); });
  }
  node.round_reports[report.server] = report.report;

  // All expected reports in (judged by the delegate's own membership
  // view): no need to wait out the grace period.
  bool complete = true;
  for (std::uint32_t s = 0; s < nodes_.size(); ++s) {
    if (believed_up(self, s) && !node.round_reports[s].has_value()) {
      complete = false;
      break;
    }
  }
  if (complete) {
    node.grace_deadline.cancel();
    delegate_tune(self);
  }
}

void ProtocolCluster::delegate_tune(std::uint32_t self) {
  Node& node = nodes_[self];
  if (!node.up || self != believed_delegate_of(self)) return;
  if (node.collecting_round <= node.last_tuned_round) return;
  node.last_tuned_round = node.collecting_round;

  std::vector<core::TunerInput> inputs(nodes_.size());
  const auto shares = node.map.shares();
  for (std::uint32_t s = 0; s < nodes_.size(); ++s) {
    inputs[s].current_share = static_cast<double>(shares[s].raw());
    // A server the delegate believes down gets no report — its region is
    // reclaimed this round (with heartbeats, this is how a failure's load
    // is reassigned with no oracle at all). A believed-up server whose
    // report was lost reads as idle — bounded growth, never a stall.
    if (believed_up(self, s)) {
      inputs[s].report = node.round_reports[s].value_or(
          balance::ServerReport{0.0, 0});
    }
  }
  const auto decision =
      core::run_delegate_round(inputs, config_.tuner, clock_.trace(), clock_.now());
  // Tune into a copy: node.map must stay the previous configuration until
  // apply_update runs, so the delegate computes its shed notices from the
  // same (previous, new) pair as every other node.
  core::RegionMap tuned = node.map;
  tuned.rebalance(core::RegionMap::normalize_shares(decision.weights));
  ++published_;

  RegionMapUpdate update;
  // Version = round number: globally monotonic regardless of which node is
  // delegate. A recovered former delegate tuning from a stale replica
  // still publishes a version every node accepts (it is the newest round),
  // so the cluster cannot split-brain on rejected updates; the tuner then
  // re-converges from whatever map that round produced.
  update.version = node.collecting_round;
  update.round = node.collecting_round;
  update.partitions = tuned.snapshot();
  // Reliable per-peer distribution (each peer gets its own seq/ack cycle);
  // peers believed down are skipped — they catch up via the state transfer
  // on rejoin, or simply at the next round's version.
  for (std::uint32_t peer = 0; peer < nodes_.size(); ++peer) {
    if (peer == self || !believed_up(self, peer)) continue;
    send_reliable(self, peer, update);
  }
  apply_update(self, update);
}

void ProtocolCluster::apply_update(std::uint32_t self,
                                   const RegionMapUpdate& update) {
  Node& node = nodes_[self];
  if (update.version < node.version) return;  // stale or duplicate
  const core::RegionMap previous = node.map;
  if (update.version > node.version) {
    node.map = core::RegionMap::from_snapshot(update.partitions,
                                              nodes_.size());
    node.version = update.version;
  }
  // Shed protocol: file sets this node served under the previous map that
  // now belong elsewhere get announced to their acquirers (§4).
  std::uint32_t sheds = 0;
  for (std::uint32_t fs = 0; fs < file_sets_.size(); ++fs) {
    const ServerId before = route_on(previous, file_sets_[fs]);
    if (before != ServerId(self)) continue;
    const ServerId after = route_on(node.map, file_sets_[fs]);
    if (after == before) continue;
    ShedNotice notice;
    notice.file_set = fs;
    notice.from = self;
    notice.to = after.value();
    network_.send(self, after.value(), notice);
    ++sheds;
    if (on_shed) on_shed(fs, self, after.value());
  }
  if (auto* t = clock_.trace()) {
    t->emit(clock_.now(), obs::EventType::kMapApply, self,
            static_cast<std::uint32_t>(update.version), sheds);
  }
}

}  // namespace anu::proto
