#include "proto/transport.h"

namespace anu::proto {

void Transport::broadcast(std::uint32_t from, const Message& message) {
  for (std::uint32_t node = 0; node < node_count(); ++node) {
    if (node != from) send(from, node, message);
  }
}

}  // namespace anu::proto
