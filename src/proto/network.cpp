#include "proto/network.h"

#include <utility>

#include "common/assert.h"
#include "obs/trace_sink.h"

namespace anu::proto {

namespace {

/// Trace payload shared by send and recv events: the message's variant
/// index is its kind (documented in docs/observability.md).
void trace_message(obs::TraceSink* trace, SimTime now, obs::EventType type,
                   std::uint32_t from, std::uint32_t to,
                   const Message& message, std::size_t bytes) {
  trace->emit(now, type, from, to,
              static_cast<std::uint32_t>(message.index()),
              static_cast<double>(bytes));
}

}  // namespace

Network::Network(anu::Clock& clock, const NetworkConfig& config,
                 std::size_t node_count)
    : clock_(clock),
      config_(config),
      rng_(config.seed),
      handlers_(node_count),
      up_(node_count, true) {
  ANU_REQUIRE(node_count > 0);
  ANU_REQUIRE(config.base_delay >= 0.0);
  ANU_REQUIRE(config.per_byte >= 0.0);
  ANU_REQUIRE(config.jitter >= 0.0 && config.jitter < 1.0);
}

void Network::attach(std::uint32_t node, Handler handler) {
  ANU_REQUIRE(node < handlers_.size());
  handlers_[node] = std::move(handler);
}

void Network::set_node_up(std::uint32_t node, bool up) {
  ANU_REQUIRE(node < up_.size());
  up_[node] = up;
}

bool Network::node_up(std::uint32_t node) const {
  ANU_REQUIRE(node < up_.size());
  return up_[node];
}

void Network::transmit(std::uint32_t from, std::uint32_t to,
                       const Message& message, std::size_t size,
                       double extra_delay) {
  ++sent_;
  bytes_ += size;
  if (auto* t = clock_.trace()) {
    trace_message(t, clock_.now(), obs::EventType::kMessageSend, from, to,
                  message, size);
  }
  const double delay =
      (config_.base_delay + config_.per_byte * static_cast<double>(size)) *
          (1.0 + config_.jitter * rng_.next_double()) +
      extra_delay;
  clock_.schedule_after(delay, [this, from, to, size, msg = message] {
    // Deliverability re-checked at delivery time: the receiver may have
    // failed while the message was in flight.
    if (!up_[to] || !handlers_[to]) {
      ++dropped_endpoint_;
      return;
    }
    ++delivered_;
    if (auto* t = clock_.trace()) {
      trace_message(t, clock_.now(), obs::EventType::kMessageRecv, from, to,
                    msg, size);
    }
    handlers_[to](from, msg);
  });
}

void Network::send(std::uint32_t from, std::uint32_t to, Message message) {
  ANU_REQUIRE(from < handlers_.size());
  ANU_REQUIRE(to < handlers_.size());
  if (!up_[from] || !up_[to]) {
    // Dropped before reaching the wire: no bytes are charged.
    ++dropped_endpoint_;
    return;
  }
  const std::size_t size = wire_size(message);
  std::uint32_t copies = 1;
  double extra_delay = 0.0;
  if (faults_ != nullptr) {
    const auto decision = faults_->decide(from, to, clock_.now());
    if (decision.drop) {
      ++dropped_injected_;
      if (decision.partitioned) {
        // A partition cut severs the link outright — nothing transmitted.
        if (auto* t = clock_.trace()) {
          t->emit(clock_.now(), obs::EventType::kFaultInject, from, to,
                  static_cast<std::uint32_t>(obs::FaultCause::kPartition));
        }
        return;
      }
      // Random loss: the message hit the wire and vanished; bandwidth was
      // spent, so the bytes are charged.
      ++sent_;
      bytes_ += size;
      if (auto* t = clock_.trace()) {
        t->emit(clock_.now(), obs::EventType::kFaultInject, from, to,
                static_cast<std::uint32_t>(obs::FaultCause::kLoss));
      }
      return;
    }
    copies = decision.copies;
    extra_delay = decision.extra_delay;
    if (auto* t = clock_.trace()) {
      if (copies > 1) {
        t->emit(clock_.now(), obs::EventType::kFaultInject, from, to,
                static_cast<std::uint32_t>(obs::FaultCause::kDuplicate),
                static_cast<double>(copies));
      }
      if (extra_delay > 0.0) {
        t->emit(clock_.now(), obs::EventType::kFaultInject, from, to,
                static_cast<std::uint32_t>(obs::FaultCause::kDelay),
                extra_delay);
      }
    }
  }
  duplicates_ += copies - 1;
  for (std::uint32_t copy = 0; copy < copies; ++copy) {
    // Each copy draws its own jitter, so duplicates can arrive reordered;
    // the injected extra delay applies to the original only.
    transmit(from, to, message, size, copy == 0 ? extra_delay : 0.0);
  }
}

}  // namespace anu::proto
