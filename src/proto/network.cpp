#include "proto/network.h"

#include <utility>

#include "common/assert.h"
#include "obs/trace_sink.h"

namespace anu::proto {

namespace {

/// Trace payload shared by send and recv events: the message's variant
/// index is its kind (documented in docs/observability.md).
void trace_message(obs::TraceSink* trace, SimTime now, obs::EventType type,
                   std::uint32_t from, std::uint32_t to,
                   const Message& message, std::size_t bytes) {
  trace->emit(now, type, from, to,
              static_cast<std::uint32_t>(message.index()),
              static_cast<double>(bytes));
}

}  // namespace

Network::Network(sim::Simulation& simulation, const NetworkConfig& config,
                 std::size_t node_count)
    : sim_(simulation),
      config_(config),
      rng_(config.seed),
      handlers_(node_count),
      up_(node_count, true) {
  ANU_REQUIRE(node_count > 0);
  ANU_REQUIRE(config.base_delay >= 0.0);
  ANU_REQUIRE(config.per_byte >= 0.0);
  ANU_REQUIRE(config.jitter >= 0.0 && config.jitter < 1.0);
}

void Network::attach(std::uint32_t node, Handler handler) {
  ANU_REQUIRE(node < handlers_.size());
  handlers_[node] = std::move(handler);
}

void Network::set_node_up(std::uint32_t node, bool up) {
  ANU_REQUIRE(node < up_.size());
  up_[node] = up;
}

bool Network::node_up(std::uint32_t node) const {
  ANU_REQUIRE(node < up_.size());
  return up_[node];
}

void Network::send(std::uint32_t from, std::uint32_t to, Message message) {
  ANU_REQUIRE(from < handlers_.size());
  ANU_REQUIRE(to < handlers_.size());
  const std::size_t size = wire_size(message);
  bytes_ += size;
  if (!up_[from] || !up_[to]) {
    ++dropped_;
    return;
  }
  if (auto* t = sim_.trace()) {
    trace_message(t, sim_.now(), obs::EventType::kMessageSend, from, to,
                  message, size);
  }
  const double delay =
      (config_.base_delay + config_.per_byte * static_cast<double>(size)) *
      (1.0 + config_.jitter * rng_.next_double());
  sim_.schedule_after(delay, [this, from, to, size,
                              msg = std::move(message)] {
    // Deliverability re-checked at delivery time: the receiver may have
    // failed while the message was in flight.
    if (!up_[to] || !handlers_[to]) {
      ++dropped_;
      return;
    }
    ++delivered_;
    if (auto* t = sim_.trace()) {
      trace_message(t, sim_.now(), obs::EventType::kMessageRecv, from, to,
                    msg, size);
    }
    handlers_[to](from, msg);
  });
}

void Network::broadcast(std::uint32_t from, const Message& message) {
  for (std::uint32_t node = 0; node < handlers_.size(); ++node) {
    if (node != from) send(from, node, message);
  }
}

}  // namespace anu::proto
