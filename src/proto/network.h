// Simulated message-passing network for the control protocol — the
// sim-side implementation of the Transport interface (transport.h).
//
// Point-to-point delivery with configurable base latency, per-byte cost and
// deterministic jitter. Messages to a down node are dropped silently (the
// failure model the delegate protocol must tolerate). Per-pair FIFO
// ordering holds as long as jitter cannot reorder (jitter is bounded below
// 2x base delay by construction); the protocol is written to tolerate
// reordering anyway via round/version numbers and the ack/retransmit layer.
//
// An optional faults::FaultPlan injects adversarial conditions per message:
// probabilistic loss, duplication, bounded reordering, delay spikes and
// link partitions (docs/chaos.md). The plan owns its own RNG stream, so
// attaching one never perturbs the network's jitter stream.
//
// Byte accounting: bytes_sent() charges only messages actually transmitted.
// A message dropped at send time because an endpoint is down never hits the
// wire and is not charged; a message lost in transit (injected loss, or the
// receiver failing mid-flight) consumed bandwidth and is. Drops are split
// by cause: drops_endpoint_down() vs drops_injected().
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "faults/fault_plan.h"
#include "proto/messages.h"
#include "proto/transport.h"

namespace anu::proto {

struct NetworkConfig {
  /// One-way base delay, seconds (LAN-ish default).
  double base_delay = 0.001;
  /// Seconds per byte of payload (1 Gb/s-ish default).
  double per_byte = 8e-9;
  /// Multiplicative jitter amplitude in [0, 1): delay is scaled by a
  /// deterministic factor in [1, 1 + jitter).
  double jitter = 0.2;
  std::uint64_t seed = 0x6e6574ULL;
};

class Network final : public Transport {
 public:
  /// The clock models delivery delay: any anu::Clock works, so the same
  /// Network runs under the simulator (sim::SimClock — the usual case) or
  /// a realtime clock (tests of the runtime stack reuse it as a faultable
  /// in-process transport).
  Network(anu::Clock& clock, const NetworkConfig& config,
          std::size_t node_count);

  /// Registers the receive handler of one node.
  void attach(std::uint32_t node, Handler handler) override;

  /// Marks a node down/up; messages to (and from) down nodes are dropped.
  void set_node_up(std::uint32_t node, bool up) override;
  [[nodiscard]] bool node_up(std::uint32_t node) const override;

  /// Attaches a fault-injection plan consulted once per send. Null detaches
  /// (the default: a clean network). Caller-owned; must outlive the run.
  void set_fault_plan(faults::FaultPlan* plan) { faults_ = plan; }
  [[nodiscard]] faults::FaultPlan* fault_plan() const { return faults_; }

  /// Sends a message; delivery is scheduled after the modelled delay.
  void send(std::uint32_t from, std::uint32_t to, Message message) override;

  /// Transmissions accepted onto the wire (includes injected duplicates).
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  /// All drops, any cause.
  [[nodiscard]] std::uint64_t messages_dropped() const {
    return dropped_endpoint_ + dropped_injected_;
  }
  /// Drops because a node was down: at send time (never transmitted) or at
  /// delivery time (receiver failed mid-flight).
  [[nodiscard]] std::uint64_t drops_endpoint_down() const {
    return dropped_endpoint_;
  }
  /// Drops injected by the fault plan (loss or partition cut).
  [[nodiscard]] std::uint64_t drops_injected() const {
    return dropped_injected_;
  }
  /// Extra copies delivered through injected duplication.
  [[nodiscard]] std::uint64_t duplicates_injected() const {
    return duplicates_;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }
  [[nodiscard]] std::size_t node_count() const override {
    return handlers_.size();
  }

 private:
  void transmit(std::uint32_t from, std::uint32_t to, const Message& message,
                std::size_t size, double extra_delay);

  anu::Clock& clock_;
  NetworkConfig config_;
  Xoshiro256 rng_;
  faults::FaultPlan* faults_ = nullptr;
  std::vector<Handler> handlers_;
  std::vector<bool> up_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_endpoint_ = 0;
  std::uint64_t dropped_injected_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace anu::proto
