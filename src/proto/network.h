// Simulated message-passing network for the control protocol.
//
// Point-to-point delivery with configurable base latency, per-byte cost and
// deterministic jitter. Messages to a down node are dropped silently (the
// failure model the delegate protocol must tolerate). Per-pair FIFO
// ordering holds as long as jitter cannot reorder (jitter is bounded below
// 2x base delay by construction); the protocol is written to tolerate
// reordering anyway via round/version numbers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "proto/messages.h"
#include "sim/simulation.h"

namespace anu::proto {

struct NetworkConfig {
  /// One-way base delay, seconds (LAN-ish default).
  double base_delay = 0.001;
  /// Seconds per byte of payload (1 Gb/s-ish default).
  double per_byte = 8e-9;
  /// Multiplicative jitter amplitude in [0, 1): delay is scaled by a
  /// deterministic factor in [1, 1 + jitter).
  double jitter = 0.2;
  std::uint64_t seed = 0x6e6574ULL;
};

class Network {
 public:
  using Handler = std::function<void(std::uint32_t from, const Message&)>;

  Network(sim::Simulation& simulation, const NetworkConfig& config,
          std::size_t node_count);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the receive handler of one node.
  void attach(std::uint32_t node, Handler handler);

  /// Marks a node down/up; messages to (and from) down nodes are dropped.
  void set_node_up(std::uint32_t node, bool up);
  [[nodiscard]] bool node_up(std::uint32_t node) const;

  /// Sends a message; delivery is scheduled after the modelled delay.
  void send(std::uint32_t from, std::uint32_t to, Message message);
  /// Sends to every up node except `from`.
  void broadcast(std::uint32_t from, const Message& message);

  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }
  [[nodiscard]] std::size_t node_count() const { return handlers_.size(); }

 private:
  sim::Simulation& sim_;
  NetworkConfig config_;
  Xoshiro256 rng_;
  std::vector<Handler> handlers_;
  std::vector<bool> up_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace anu::proto
