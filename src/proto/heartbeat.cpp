#include "proto/heartbeat.h"

#include "common/assert.h"

namespace anu::proto {

HeartbeatView::HeartbeatView(const HeartbeatConfig& config,
                             std::size_t peer_count, std::uint32_t self)
    : config_(config), self_(self), last_heard_(peer_count, 0.0) {
  ANU_REQUIRE(config.interval > 0.0);
  ANU_REQUIRE(config.suspect_after > config.interval);
  ANU_REQUIRE(self < peer_count);
}

void HeartbeatView::heard_from(std::uint32_t peer, double now) {
  ANU_REQUIRE(peer < last_heard_.size());
  last_heard_[peer] = now;
}

bool HeartbeatView::believes_up(std::uint32_t peer, double now) const {
  ANU_REQUIRE(peer < last_heard_.size());
  if (peer == self_) return true;
  return now - last_heard_[peer] < config_.suspect_after;
}

std::uint32_t HeartbeatView::believed_delegate(double now) const {
  for (std::uint32_t peer = 0; peer < last_heard_.size(); ++peer) {
    if (believes_up(peer, now)) return peer;
  }
  return self_;  // everyone else suspected: act alone
}

std::size_t HeartbeatView::believed_up_count(double now) const {
  std::size_t n = 0;
  for (std::uint32_t peer = 0;
       peer < static_cast<std::uint32_t>(last_heard_.size()); ++peer) {
    n += believes_up(peer, now) ? 1u : 0u;
  }
  return n;
}

}  // namespace anu::proto
