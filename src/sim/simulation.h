// Discrete-event simulation kernel.
//
// A from-scratch replacement for the YACSIM toolkit the paper used (§5.1):
// an event calendar ordered by (time, insertion sequence) — the sequence
// number gives deterministic FIFO semantics for simultaneous events — plus a
// simulation clock and cancellable event handles. Higher layers (FIFO
// queueing resources, periodic monitors, the cluster model) are built on
// exactly this interface.
//
// The calendar is a ladder queue (event_queue.h): O(1) amortized
// schedule/dispatch versus the O(log n) sift of a binary heap, with only
// the bucket nearest the clock ever sorted. Event payloads live in a
// free-listed slab inside the Simulation: scheduling reuses slots instead
// of allocating, an EventHandle is a generation-checked {slot, generation}
// ticket (no shared_ptr control block per event), and Action is a
// small-buffer-optimized callable (common/small_function.h) whose 48-byte
// inline buffer covers every capture in the tree — steady-state dispatch
// touches the heap zero times per event.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/small_function.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace anu::obs {
class TraceSink;
}

namespace anu::sim {

class Simulation;
class SimClock;

/// Cancellable handle to a scheduled event. Copyable; cancelling any copy
/// cancels the event. Safe to destroy before or after the event fires; all
/// operations are O(1) and allocation-free. The owning Simulation must
/// outlive any use of cancel()/cancelled() — which holds throughout the
/// tree, since handles live in objects that hold the Simulation by
/// reference.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Idempotent; no-op after it fired.
  void cancel();
  [[nodiscard]] bool cancelled() const;
  [[nodiscard]] bool valid() const { return sim_ != nullptr; }

 private:
  friend class Simulation;
  // The anu::Clock adapter packs {slot_, generation_} into its opaque
  // handle words and reconstructs EventHandles to cancel through.
  friend class SimClock;
  EventHandle(Simulation* sim, std::uint32_t slot, std::uint32_t generation)
      : sim_(sim), slot_(slot), generation_(generation) {}

  Simulation* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  /// Slab generation at scheduling time. A slot's generation bumps when
  /// the event fires (or is skipped) and the slot is recycled, so a stale
  /// handle can never cancel the slot's next tenant.
  std::uint32_t generation_ = 0;
  /// Remembers a cancel() issued through this handle so cancelled() stays
  /// true after the slot is recycled (the old shared-flag behavior).
  bool cancel_requested_ = false;
};

/// Kernel counters for one run, surfaced as the "sim.queue" block of the
/// run manifest (driver/telemetry). Cheap to maintain — a handful of adds
/// per event — and kept always-on so any manifest can explain kernel
/// behavior after the fact.
struct SimQueueStats {
  std::uint64_t scheduled = 0;
  std::uint64_t executed = 0;
  /// Events popped but skipped because a handle cancelled them.
  std::uint64_t cancelled_skipped = 0;
  /// High-water mark of the calendar (pending events, cancelled included).
  std::uint64_t max_pending = 0;
  /// High-water mark of live slab slots — the kernel's resident footprint.
  std::uint64_t slab_high_water = 0;
  /// Longest run of dispatched events sharing one timestamp: how hard the
  /// FIFO tie-break is actually working.
  std::uint64_t max_simultaneous = 0;
  /// Ladder structure counters (see sim::LadderStats).
  std::uint64_t rung_spills = 0;
  std::uint64_t top_transfers = 0;
  std::uint64_t bottom_sorts = 0;
};

/// The event calendar + clock. Single-threaded by design: one Simulation per
/// experiment; parallel sweeps run many independent Simulations.
class Simulation {
 public:
  /// Scheduled callback. Move-only, with a 48-byte inline buffer — every
  /// capture in sim/, proto/ and driver/ fits, so scheduling never
  /// allocates for the callable; larger captures fall back to the heap.
  using Action = SmallFunction<void(), 48>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time (seconds).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run at absolute time `when` (>= now()).
  EventHandle schedule_at(SimTime when, Action action);

  /// Schedules `action` after `delay` (>= 0) simulated seconds.
  EventHandle schedule_after(SimTime delay, Action action);

  /// Runs events until the calendar empties or the clock passes `until`.
  /// Events at exactly `until` are executed. Returns events executed.
  /// A stop() requested before the call returns immediately (0 events,
  /// clock unchanged) and consumes the stop request.
  std::uint64_t run_until(SimTime until);

  /// Runs until the calendar is empty.
  std::uint64_t run_to_completion();

  /// Requests that the run loop stop after the current event returns. A
  /// request made outside a run halts the next run_until before its first
  /// event (see run_until).
  void stop() { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Kernel counters so far (cumulative across runs on this Simulation).
  [[nodiscard]] SimQueueStats queue_stats() const;

  /// Observability conduit: layers built on the simulation (cluster,
  /// network, protocol) emit trace events through this sink when one is
  /// attached. Null (the default) means tracing is disabled, and every
  /// instrumented site's fast path is a single null-pointer branch:
  ///   if (auto* t = sim.trace()) t->emit(...);
  /// The kernel itself never emits — event dispatch stays untraced.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] obs::TraceSink* trace() const { return trace_; }

 private:
  friend class EventHandle;

  /// One slab slot: the event payload plus free-list and cancellation
  /// bookkeeping. Slots are recycled LIFO through free_head_.
  struct Slot {
    Action action;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNullSlot;
    bool cancelled = false;
  };
  static constexpr std::uint32_t kNullSlot = 0xffffffffu;
  /// Slab chunk size: 1024 slots (64 KiB). Chunked storage keeps slot
  /// addresses stable as the slab grows — no relocation of pending actions
  /// on expansion, unlike a flat vector's doubling copies.
  static constexpr std::uint32_t kSlotChunkBits = 10;
  static constexpr std::uint32_t kSlotChunkSize = 1u << kSlotChunkBits;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  [[nodiscard]] Slot& slot_ref(std::uint32_t slot) {
    return chunks_[slot >> kSlotChunkBits][slot & (kSlotChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot_ref(std::uint32_t slot) const {
    return chunks_[slot >> kSlotChunkBits][slot & (kSlotChunkSize - 1)];
  }

  SimTime now_ = 0.0;
  obs::TraceSink* trace_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  LadderQueue queue_;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  /// Slots handed out at least once. Also the slab's high-water mark of
  /// live slots: the LIFO free list means a fresh slot is carved exactly
  /// when every previously carved slot is live.
  std::uint32_t slot_count_ = 0;
  std::uint32_t slot_cap_ = 0;  ///< chunks_.size() * kSlotChunkSize
  std::uint32_t free_head_ = kNullSlot;

  std::uint64_t cancelled_skipped_ = 0;
  std::uint64_t max_pending_ = 0;
  std::uint64_t max_simultaneous_ = 0;
  std::uint64_t simultaneous_run_ = 0;
  SimTime last_dispatch_time_ = -1.0;  // schedule times are >= 0
};

}  // namespace anu::sim
