// Discrete-event simulation kernel.
//
// A from-scratch replacement for the YACSIM toolkit the paper used (§5.1):
// an event calendar ordered by (time, insertion sequence) — the sequence
// number gives deterministic FIFO semantics for simultaneous events — plus a
// simulation clock and cancellable event handles. Higher layers (FIFO
// queueing resources, periodic monitors, the cluster model) are built on
// exactly this interface.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/types.h"

namespace anu::obs {
class TraceSink;
}

namespace anu::sim {

class Simulation;

/// Cancellable handle to a scheduled event. Copyable; cancelling any copy
/// cancels the event. Safe to destroy before or after the event fires.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Idempotent; no-op after it fired.
  void cancel();
  [[nodiscard]] bool cancelled() const;
  [[nodiscard]] bool valid() const { return static_cast<bool>(state_); }

 private:
  friend class Simulation;
  explicit EventHandle(std::shared_ptr<bool> state) : state_(std::move(state)) {}
  std::shared_ptr<bool> state_;  // *state_ == true -> cancelled
};

/// The event calendar + clock. Single-threaded by design: one Simulation per
/// experiment; parallel sweeps run many independent Simulations.
class Simulation {
 public:
  using Action = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current simulated time (seconds).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run at absolute time `when` (>= now()).
  EventHandle schedule_at(SimTime when, Action action);

  /// Schedules `action` after `delay` (>= 0) simulated seconds.
  EventHandle schedule_after(SimTime delay, Action action);

  /// Runs events until the calendar empties or the clock passes `until`.
  /// Events at exactly `until` are executed. Returns events executed.
  std::uint64_t run_until(SimTime until);

  /// Runs until the calendar is empty.
  std::uint64_t run_to_completion();

  /// Requests that the run loop stop after the current event returns.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Observability conduit: layers built on the simulation (cluster,
  /// network, protocol) emit trace events through this sink when one is
  /// attached. Null (the default) means tracing is disabled, and every
  /// instrumented site's fast path is a single null-pointer branch:
  ///   if (auto* t = sim.trace()) t->emit(...);
  /// The kernel itself never emits — event dispatch stays untraced.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] obs::TraceSink* trace() const { return trace_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Action action;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  obs::TraceSink* trace_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace anu::sim
