// Ladder queue: the event calendar behind sim::Simulation.
//
// A three-tier priority structure in the style of Tang, Goh & Thng's ladder
// queue. Far-future events sit unsorted in "top"; when the clock catches up
// an epoch of top is scattered into a rung of equal-width buckets; a bucket
// that is still too coarse is recursively refined into a finer child rung;
// only the bucket nearest the clock is ever sorted (into "bottom", the
// dequeue staging list). Enqueue and dequeue are O(1) amortized — each
// event is touched a bounded number of times (one scatter per rung level,
// capped, plus one final sort in a bounded-size bucket) instead of the
// O(log n) sift of a binary heap.
//
// Ordering contract (exact, not approximate): events dequeue in strictly
// ascending (time, seq). Bucket indices are computed with IEEE subtraction
// and division, both monotone in `time`, so two events never land in
// buckets that invert their time order; equal times always map to the same
// bucket; and every bucket is fully sorted by (time, seq) before anything
// is dequeued from it. The caller (Simulation) guarantees pushes are never
// earlier than the last pop — the simulator cannot schedule in the past —
// which is what lets consumed buckets be discarded.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace anu::sim {

/// One pending event as the calendar sees it: the (time, seq) ordering key
/// plus the owning slab slot (simulation.h). Keys are 24 bytes and kept
/// separate from their payloads so scattering and sorting a rung never
/// touches a callback.
struct EventKey {
  SimTime time;
  std::uint64_t seq;
  std::uint32_t slot;
};

/// Structural counters, exposed through Simulation::queue_stats() and from
/// there the run manifest's "sim.queue" block.
struct LadderStats {
  std::uint64_t top_transfers = 0;   ///< top -> ladder epoch starts
  std::uint64_t rung_spills = 0;     ///< bucket -> finer child rung
  std::uint64_t bottom_sorts = 0;    ///< bucket/top -> sorted bottom
  std::uint64_t max_rung_depth = 0;  ///< deepest live refinement stack
};

class LadderQueue {
 public:
  /// Inserts an event. `seq` values must be unique; `time` must be
  /// non-negative (simulation clocks start at zero); pushes must not be
  /// earlier than the last pop (see the header comment). Inline fast path:
  /// most pushes are at or beyond the current epoch and append to top.
  void push(SimTime time, std::uint64_t seq, std::uint32_t slot) {
    time += 0.0;  // normalize -0.0: times compare as integer bit patterns
    ++size_;
    if (size_ == 1) {
      // Queue was empty: every structure is drained, so start a fresh
      // epoch and let the next transfer pick new rung geometry.
      top_start_ = -std::numeric_limits<SimTime>::infinity();
    }
    if (time >= top_start_) {
      // Epoch bounds are recovered by a scan at transfer time (cache-
      // sequential, once per epoch) instead of being tracked per push.
      top_.push_back({time, seq, slot});
      return;
    }
    push_ladder({time, seq, slot});
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Key of the earliest pending event, (time, seq)-minimal. Requires
  /// !empty(). May sort the bucket nearest the clock (amortized O(1)).
  [[nodiscard]] const EventKey& min() {
    ANU_REQUIRE(size_ > 0);
    if (bottom_.empty()) fill_bottom();
    return bottom_.back();
  }

  /// Removes and returns the earliest pending event. Requires !empty().
  EventKey pop() {
    ANU_REQUIRE(size_ > 0);
    if (bottom_.empty()) fill_bottom();
    const EventKey key = bottom_.back();
    bottom_.pop_back();
    --size_;
    return key;
  }

  /// Removes the event min() just returned. Only valid immediately after a
  /// min() call with no intervening push — the dispatch loop's peek/pop
  /// pair without re-checking the staging list.
  void drop_min() {
    bottom_.pop_back();
    --size_;
  }

  /// Key that the next min() will return, when it is already staged (no
  /// bucket sort needed to find it). Dispatch uses this to prefetch the
  /// next event's slab slot while the current one runs.
  [[nodiscard]] const EventKey* staged_min() const {
    return bottom_.empty() ? nullptr : &bottom_.back();
  }

  [[nodiscard]] const LadderStats& stats() const { return stats_; }

 private:
  struct Rung {
    SimTime start = 0.0;    ///< left edge of bucket 0
    double width = 0.0;     ///< bucket width, > 0
    std::size_t cur = 0;    ///< next bucket to consume
    std::vector<std::vector<EventKey>> buckets;
  };

  /// Routes a pre-epoch push into the refinement stack or bottom (the
  /// push() slow path).
  void push_ladder(const EventKey& key);

  /// Refills `bottom_` from the nearest rung bucket (refining it if it is
  /// still too coarse) or, when the ladder is empty, from a new top epoch.
  /// Requires size_ > 0.
  void fill_bottom();

  /// Scatters `keys` (all within [start, start + width)) into a new child
  /// rung, or sorts them straight into `bottom_` when they are few enough,
  /// the refinement stack is at its cap, or `width` can no longer be
  /// subdivided in floating point.
  void spill(std::vector<EventKey>& keys, SimTime start, double width);

  void sort_into_bottom(std::vector<EventKey>& keys);
  void insert_bottom(const EventKey& key);

  std::size_t size_ = 0;
  /// Dequeue staging list, sorted descending by (time, seq): back() is the
  /// minimum, so pop is a pop_back.
  std::vector<EventKey> bottom_;
  /// Refinement stack: rungs_[0] is the epoch rung from the last top
  /// transfer, rungs_.back() the finest (nearest-clock) refinement.
  std::vector<Rung> rungs_;
  /// Unsorted far-future events: everything at or beyond top_start_.
  std::vector<EventKey> top_;
  /// Threshold time for routing pushes into top. Reset to -infinity when
  /// the queue drains so a fresh epoch starts from the next push.
  SimTime top_start_ = 0.0;
  /// Spare bucket vectors (with their capacity) recycled across rungs so
  /// steady-state dispatch allocates nothing.
  std::vector<std::vector<EventKey>> bucket_pool_;
  /// Scratch for spill()'s counting pass, reused across spills.
  std::vector<std::uint32_t> scatter_count_;

  LadderStats stats_;
};

}  // namespace anu::sim
