#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "common/assert.h"

namespace anu::sim {
namespace {

/// Buckets at or below this size are sorted straight into bottom instead of
/// being refined into a child rung.
constexpr std::size_t kSortThreshold = 64;
/// Refinement stack cap: a bucket that is still large at this depth is
/// sorted outright. Bounds the work per event to kMaxRungs scatters.
constexpr std::size_t kMaxRungs = 8;
/// Bucket-count cap per rung, so one enormous epoch cannot allocate an
/// unbounded bucket array.
constexpr std::size_t kMaxBuckets = 2048;
/// Retained spare bucket vectors (capacity included), recycled across
/// rungs so steady-state dispatch does not allocate.
constexpr std::size_t kBucketPoolCap = 2 * kMaxBuckets;

/// Descending (time, seq): back() of a sorted range is the minimum.
/// Compares times as integer bit patterns — identical ordering for the
/// non-negative times the queue accepts (push() normalizes -0.0), and
/// branchless, so the sort's data-dependent comparisons never mispredict.
bool later(const EventKey& a, const EventKey& b) {
  const std::uint64_t ta = std::bit_cast<std::uint64_t>(a.time);
  const std::uint64_t tb = std::bit_cast<std::uint64_t>(b.time);
  return static_cast<int>(ta > tb) |
         (static_cast<int>(ta == tb) & static_cast<int>(a.seq > b.seq));
}

/// Bucket index for `time` in a rung anchored at `start` with bucket width
/// `width`, clamped to [0, nbuckets). Subtraction and division are
/// monotone under IEEE rounding and the clamps preserve monotonicity, so
/// for a fixed rung this is a non-decreasing pure function of `time`:
/// bucket order can never invert time order, and equal times always share
/// a bucket. Push and scatter both route through exactly this function,
/// which is what makes the dequeue order exact (see event_queue.h).
std::size_t bucket_index(SimTime time, SimTime start, double width,
                         std::size_t nbuckets) {
  const double offset = (time - start) / width;
  if (!(offset > 0.0)) return 0;
  std::size_t idx = static_cast<std::size_t>(offset);
  if (offset >= static_cast<double>(nbuckets)) idx = nbuckets - 1;
  return idx < nbuckets ? idx : nbuckets - 1;
}

}  // namespace

void LadderQueue::push_ladder(const EventKey& key) {
  // Walk the refinement stack outermost-in. Rung i+1 always refines bucket
  // cur-1 of rung i, so an event that maps to that bucket descends; an
  // event mapping to an earlier (fully dispatched) bucket joins bottom.
  for (std::size_t i = 0; i < rungs_.size(); ++i) {
    Rung& r = rungs_[i];
    const std::size_t idx =
        bucket_index(key.time, r.start, r.width, r.buckets.size());
    if (idx >= r.cur) {
      r.buckets[idx].push_back(key);
      return;
    }
    if (idx + 1 == r.cur && i + 1 < rungs_.size()) continue;
    break;
  }
  insert_bottom(key);
}

void LadderQueue::fill_bottom() {
  while (bottom_.empty()) {
    if (!rungs_.empty()) {
      Rung& r = rungs_.back();
      while (r.cur < r.buckets.size() && r.buckets[r.cur].empty()) ++r.cur;
      if (r.cur == r.buckets.size()) {
        // Exhausted refinement: recycle its bucket storage and resume the
        // parent rung (or the top) on the next iteration.
        for (auto& bucket : r.buckets) {
          if (bucket_pool_.size() < kBucketPoolCap) {
            bucket.clear();
            bucket_pool_.push_back(std::move(bucket));
          }
        }
        rungs_.pop_back();
        continue;
      }
      std::vector<EventKey> bucket = std::move(r.buckets[r.cur]);
      const SimTime bucket_start =
          r.start + static_cast<double>(r.cur) * r.width;
      const double bucket_width = r.width;
      ++r.cur;
      spill(bucket, bucket_start, bucket_width);
      bucket.clear();
      if (bucket_pool_.size() < kBucketPoolCap) {
        bucket_pool_.push_back(std::move(bucket));
      }
      continue;
    }
    // Ladder drained: scatter a new epoch out of top. size_ > 0 and both
    // bottom and rungs are empty, so top must hold everything.
    ANU_REQUIRE(!top_.empty());
    ++stats_.top_transfers;
    SimTime lo = top_.front().time;
    SimTime hi = lo;
    for (const EventKey& key : top_) {
      lo = std::min(lo, key.time);
      hi = std::max(hi, key.time);
    }
    // Pushes from here on at or beyond the epoch maximum wait in top for
    // the next transfer; they carry later seq values than anything now in
    // the ladder, so the split preserves FIFO order at equal times.
    top_start_ = hi;
    spill(top_, lo, hi - lo);
    top_.clear();
  }
}

void LadderQueue::spill(std::vector<EventKey>& keys, SimTime start,
                        double width) {
  // Aim for ~kSortThreshold/2 events per bucket: the next fill then sorts
  // each bucket directly (well under the threshold even with Poisson
  // fluctuation) instead of refining again, and the rung allocates an
  // order of magnitude fewer bucket vectors than one-bucket-per-event.
  if (keys.size() <= kSortThreshold || rungs_.size() >= kMaxRungs) {
    sort_into_bottom(keys);
    return;
  }
  const std::size_t nbuckets =
      std::min(keys.size() / (kSortThreshold / 2), kMaxBuckets);
  const double child_width = width / static_cast<double>(nbuckets);
  if (!(child_width > 0.0)) {
    // Zero or denormal-underflow width: the range cannot be subdivided in
    // floating point (e.g. every key shares one timestamp). Sort outright.
    sort_into_bottom(keys);
    return;
  }
  Rung r;
  r.start = start;
  r.width = child_width;
  r.cur = 0;
  r.buckets.reserve(nbuckets);
  while (!bucket_pool_.empty() && r.buckets.size() < nbuckets) {
    r.buckets.push_back(std::move(bucket_pool_.back()));
    bucket_pool_.pop_back();
  }
  r.buckets.resize(nbuckets);
  // Counting pass + exact reserve: one allocation per non-empty bucket
  // (none at all once the pool is warm) instead of doubling growth.
  scatter_count_.assign(nbuckets, 0);
  for (const EventKey& key : keys) {
    ++scatter_count_[bucket_index(key.time, start, child_width, nbuckets)];
  }
  for (std::size_t i = 0; i < nbuckets; ++i) {
    if (scatter_count_[i] > r.buckets[i].capacity()) {
      r.buckets[i].reserve(scatter_count_[i]);
    }
  }
  for (const EventKey& key : keys) {
    r.buckets[bucket_index(key.time, start, child_width, nbuckets)]
        .push_back(key);
  }
  rungs_.push_back(std::move(r));
  ++stats_.rung_spills;
  stats_.max_rung_depth =
      std::max<std::uint64_t>(stats_.max_rung_depth, rungs_.size());
}

void LadderQueue::sort_into_bottom(std::vector<EventKey>& keys) {
  // Only ever called with an empty bottom (from fill_bottom). Sort in
  // place and swap buffers: zero copies, and the capacities circulate
  // (the old bottom buffer rides back to the caller's pool via `keys`).
  std::sort(keys.begin(), keys.end(), later);
  std::swap(bottom_, keys);
  ++stats_.bottom_sorts;
}

void LadderQueue::insert_bottom(const EventKey& key) {
  bottom_.insert(
      std::upper_bound(bottom_.begin(), bottom_.end(), key, later), key);
}

}  // namespace anu::sim
