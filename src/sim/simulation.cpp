#include "sim/simulation.h"

#include <limits>
#include <utility>

#include "common/assert.h"

namespace anu::sim {

void EventHandle::cancel() {
  if (sim_ == nullptr) return;
  cancel_requested_ = true;
  Simulation::Slot& slot = sim_->slot_ref(slot_);
  // Generation check: only cancel the slot while our event still owns it.
  // After the event fires the slot is recycled under a new generation, so
  // a late cancel can never hit the slot's next tenant.
  if (slot.generation == generation_) slot.cancelled = true;
}

bool EventHandle::cancelled() const {
  if (cancel_requested_) return true;
  if (sim_ == nullptr) return false;
  const Simulation::Slot& slot = sim_->slot_ref(slot_);
  return slot.generation == generation_ && slot.cancelled;
}

EventHandle Simulation::schedule_at(SimTime when, Action action) {
  ANU_REQUIRE(when >= now_);
  ANU_REQUIRE(static_cast<bool>(action));
  const std::uint32_t slot = acquire_slot();
  Slot& s = slot_ref(slot);
  s.action = std::move(action);
  queue_.push(when, next_seq_++, slot);
  if (queue_.size() > max_pending_) max_pending_ = queue_.size();
  return EventHandle(this, slot, s.generation);
}

EventHandle Simulation::schedule_after(SimTime delay, Action action) {
  ANU_REQUIRE(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(action));
}

std::uint64_t Simulation::run_until(SimTime until) {
  if (stop_requested_) {
    // A stop requested before the run starts halts it before the first
    // event: no events fire and the clock stays put. The request is
    // consumed, so the next run proceeds normally.
    stop_requested_ = false;
    return 0;
  }
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    const EventKey key = queue_.min();
    if (key.time > until) break;
    queue_.drop_min();
    // Dispatch order is time order, not slot order, so the slab walk is
    // effectively random once the calendar is large. Start pulling the
    // next event's slot in while this one executes.
    if (const EventKey* next = queue_.staged_min()) {
      __builtin_prefetch(&slot_ref(next->slot));
    }
    Slot& slot = slot_ref(key.slot);
    if (slot.cancelled) {
      ++cancelled_skipped_;
      release_slot(key.slot);
      continue;
    }
    now_ = key.time;
    if (key.time == last_dispatch_time_) {
      ++simultaneous_run_;
    } else {
      last_dispatch_time_ = key.time;
      simultaneous_run_ = 1;
    }
    if (simultaneous_run_ > max_simultaneous_) {
      max_simultaneous_ = simultaneous_run_;
    }
    // Invoke straight from the slab: chunk addresses are stable, so a
    // reentrant schedule_at — even one that grows the slab — cannot move
    // the executing action. The slot is recycled only after it returns
    // (a re-arming action therefore lands in a sibling slot, which the
    // next dispatch frees right back).
    slot.action();
    release_slot(key.slot);
    ++ran;
    if (stop_requested_) break;
  }
  executed_ += ran;  // events_executed() is only read between runs
  const bool stopped = stop_requested_;
  stop_requested_ = false;
  if (queue_.empty() || stopped) {
    // Clock still advances to the horizon so monitors reading now() at the
    // end of a bounded run see the full interval.
    if (until > now_ && until != std::numeric_limits<SimTime>::infinity()) {
      now_ = until;
    }
  } else {
    now_ = until;
  }
  return ran;
}

std::uint64_t Simulation::run_to_completion() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

SimQueueStats Simulation::queue_stats() const {
  SimQueueStats stats;
  stats.scheduled = next_seq_;
  stats.executed = executed_;
  stats.cancelled_skipped = cancelled_skipped_;
  stats.max_pending = max_pending_;
  stats.slab_high_water = slot_count_;
  stats.max_simultaneous = max_simultaneous_;
  const LadderStats& ladder = queue_.stats();
  stats.rung_spills = ladder.rung_spills;
  stats.top_transfers = ladder.top_transfers;
  stats.bottom_sorts = ladder.bottom_sorts;
  return stats;
}

std::uint32_t Simulation::acquire_slot() {
  // No live-count or high-water tracking here: the free list is LIFO, so a
  // fresh slot is carved exactly when every slot handed out so far is live
  // — slot_count_ IS the slab's high-water mark.
  std::uint32_t slot;
  if (free_head_ != kNullSlot) {
    slot = free_head_;
    free_head_ = slot_ref(slot).next_free;
  } else {
    if (slot_count_ == slot_cap_) {
      chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
      slot_cap_ += kSlotChunkSize;
    }
    slot = slot_count_++;
  }
  return slot;
}

void Simulation::release_slot(std::uint32_t slot) {
  Slot& s = slot_ref(slot);
  s.action.reset();
  ++s.generation;  // invalidates every outstanding handle to this tenancy
  // Cleared even on the post-invoke path: an action may cancel its own
  // handle while running, and the flag must not leak to the next tenant.
  s.cancelled = false;
  s.next_free = free_head_;
  free_head_ = slot;
}

}  // namespace anu::sim
