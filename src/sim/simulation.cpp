#include "sim/simulation.h"

#include <limits>

#include "common/assert.h"

namespace anu::sim {

void EventHandle::cancel() {
  if (state_) *state_ = true;
}

bool EventHandle::cancelled() const { return state_ && *state_; }

EventHandle Simulation::schedule_at(SimTime when, Action action) {
  ANU_REQUIRE(when >= now_);
  ANU_REQUIRE(action != nullptr);
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Entry{when, next_seq_++, std::move(action), cancelled});
  return EventHandle(std::move(cancelled));
}

EventHandle Simulation::schedule_after(SimTime delay, Action action) {
  ANU_REQUIRE(delay >= 0.0);
  return schedule_at(now_ + delay, std::move(action));
}

std::uint64_t Simulation::run_until(SimTime until) {
  std::uint64_t ran = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    const Entry& top = queue_.top();
    if (top.time > until) break;
    // Copy out before pop: the action may schedule, which mutates the queue.
    Entry entry{top.time, top.seq, std::move(const_cast<Entry&>(top).action),
                top.cancelled};
    queue_.pop();
    if (*entry.cancelled) continue;
    now_ = entry.time;
    entry.action();
    ++ran;
    ++executed_;
  }
  if (queue_.empty() || stop_requested_) {
    // Clock still advances to the horizon so monitors reading now() at the
    // end of a bounded run see the full interval.
    if (until > now_ && until != std::numeric_limits<SimTime>::infinity()) {
      now_ = until;
    }
  } else {
    now_ = until;
  }
  return ran;
}

std::uint64_t Simulation::run_to_completion() {
  return run_until(std::numeric_limits<SimTime>::infinity());
}

}  // namespace anu::sim
