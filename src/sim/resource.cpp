#include "sim/resource.h"

#include <utility>

#include "common/assert.h"

namespace anu::sim {

FifoResource::FifoResource(Simulation& simulation, double speed,
                           std::string name)
    : sim_(simulation), speed_(speed), name_(std::move(name)) {
  ANU_REQUIRE(speed > 0.0);
}

void FifoResource::submit(Job job) {
  ANU_REQUIRE(up_);
  ANU_REQUIRE(job.demand >= 0.0);
  if (job.arrival < 0.0) job.arrival = sim_.now();
  queue_.push_back(std::move(job));
  if (!busy_) start_next();
}

std::vector<Job> FifoResource::extract_queued(
    const std::function<bool(const Job&)>& predicate) {
  std::vector<Job> taken;
  std::deque<Job> kept;
  for (Job& job : queue_) {
    if (predicate(job)) {
      taken.push_back(std::move(job));
    } else {
      kept.push_back(std::move(job));
    }
  }
  queue_ = std::move(kept);
  return taken;
}

CancelOutcome FifoResource::cancel(std::uint64_t id) {
  if (id == 0) return CancelOutcome::kNotFound;
  if (busy_ && in_flight_.id == id) {
    completion_event_.cancel();
    busy_ = false;
    busy_time_ += sim_.now() - service_start_;  // partial service rendered
    Job dead = std::move(in_flight_);
    (void)dead;  // destroyed here; no on_complete/on_flush for cancellations
    start_next();
    if (!busy_ && on_idle) on_idle();
    return CancelOutcome::kInService;
  }
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id) {
      queue_.erase(it);
      return CancelOutcome::kQueued;
    }
  }
  return CancelOutcome::kNotFound;
}

void FifoResource::set_speed(double speed) {
  ANU_REQUIRE(speed > 0.0);
  speed_ = speed;
}

void FifoResource::fail() {
  up_ = false;
  if (busy_) {
    completion_event_.cancel();
    busy_ = false;
    busy_time_ += sim_.now() - service_start_;  // partial service rendered
    if (on_flush) on_flush(in_flight_);
  }
  while (!queue_.empty()) {
    if (on_flush) on_flush(queue_.front());
    queue_.pop_front();
  }
}

void FifoResource::recover() {
  ANU_REQUIRE(!up_);
  ANU_ENSURE(queue_.empty() && !busy_);
  up_ = true;
}

void FifoResource::start_next() {
  if (queue_.empty()) return;
  busy_ = true;
  in_flight_ = std::move(queue_.front());
  queue_.pop_front();
  const double service = in_flight_.demand / speed_;
  service_start_ = sim_.now();
  completion_event_ = sim_.schedule_after(service, [this] {
    busy_ = false;
    busy_time_ += sim_.now() - service_start_;
    ++completed_;
    // Move out before starting the next job: on_complete may resubmit.
    Job done = std::move(in_flight_);
    start_next();
    if (done.on_complete) done.on_complete(sim_.now(), done);
    if (!busy_ && up_ && on_idle) on_idle();
  });
  if (in_flight_.on_start) in_flight_.on_start(sim_.now(), in_flight_);
}

}  // namespace anu::sim
