// Periodic monitor: fires a callback every `interval` simulated seconds.
//
// The load-placement tuning loop (paper §4: "at the end of each interval,
// each server computes its latency in the past interval and reports it")
// and the figure harnesses' sampling windows both hang off this.
#pragma once

#include <functional>

#include "sim/simulation.h"

namespace anu::sim {

class PeriodicMonitor {
 public:
  using Tick = std::function<void(SimTime)>;

  /// Schedules `tick` at interval, 2*interval, ... while `horizon` (if
  /// finite) has not been passed. The first tick is at `interval`, matching
  /// a tuning delegate that acts on the *first completed* interval.
  PeriodicMonitor(Simulation& simulation, SimTime interval, Tick tick);

  PeriodicMonitor(const PeriodicMonitor&) = delete;
  PeriodicMonitor& operator=(const PeriodicMonitor&) = delete;
  ~PeriodicMonitor();

  /// Stops future ticks.
  void stop();

  [[nodiscard]] std::uint64_t ticks_fired() const { return fired_; }

 private:
  void arm();

  Simulation& sim_;
  SimTime interval_;
  Tick tick_;
  EventHandle next_;
  bool stopped_ = false;
  std::uint64_t fired_ = 0;
};

}  // namespace anu::sim
