// anu::Clock over the discrete-event simulator.
//
// A zero-state adapter: schedule_at forwards straight to
// sim::Simulation::schedule_at (same (time, seq) calendar, same slab), so
// code driven through the Clock interface executes in exactly the event
// order it had when it called the Simulation directly — which is what keeps
// the 64-seed batch artifacts byte-identical across the clock refactor.
// The handle words are the simulator's {slot, generation} ticket.
#pragma once

#include "common/clock.h"
#include "sim/simulation.h"

namespace anu::sim {

class SimClock final : public anu::Clock {
 public:
  explicit SimClock(Simulation& simulation) : sim_(simulation) {}

  [[nodiscard]] SimTime now() const override { return sim_.now(); }

  anu::TimerHandle schedule_at(SimTime when, Action action) override {
    const EventHandle handle = sim_.schedule_at(when, std::move(action));
    return make_handle(handle.slot_, handle.generation_);
  }

  [[nodiscard]] obs::TraceSink* trace() const override { return sim_.trace(); }

  [[nodiscard]] Simulation& simulation() { return sim_; }

 private:
  void cancel_timer(std::uint64_t a, std::uint64_t b) override {
    EventHandle(&sim_, static_cast<std::uint32_t>(a),
                static_cast<std::uint32_t>(b))
        .cancel();
  }

  [[nodiscard]] bool timer_cancelled(std::uint64_t a,
                                     std::uint64_t b) const override {
    return EventHandle(&sim_, static_cast<std::uint32_t>(a),
                       static_cast<std::uint32_t>(b))
        .cancelled();
  }

  Simulation& sim_;
};

}  // namespace anu::sim
