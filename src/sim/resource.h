// FIFO queueing resource — the service-station primitive.
//
// Paper §5.1: "servers use a first-in-first-out queuing discipline for
// workload." A FifoResource serves one job at a time in arrival order. Jobs
// carry a service *demand* in seconds-of-work-at-unit-speed; the resource
// divides by its current speed factor, which is how the evaluation's
// heterogeneous servers (speeds 1, 3, 5, 7, 9) are modelled: the same
// request takes T on speed 1 and T/9 on speed 9.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/simulation.h"

namespace anu::sim {

/// A job submitted to a FifoResource.
struct Job {
  /// Seconds of work at speed 1.0.
  double demand = 0.0;
  /// Opaque tag the submitter uses to identify the job in callbacks.
  std::uint64_t tag = 0;
  /// Called at completion with (completion_time, job). Not called for jobs
  /// flushed by fail() or removed by cancel().
  std::function<void(SimTime, const Job&)> on_complete;
  /// Arrival time. Left negative, the resource stamps it at submit(); a
  /// non-negative value is preserved — used when a queued request migrates
  /// between servers and must keep its original arrival for latency
  /// accounting.
  SimTime arrival = -1.0;
  /// Unique cancellation handle. 0 (the default) means "not cancellable";
  /// a nonzero id can be passed to cancel() to remove the job whether it
  /// is still waiting or already in service. Redundant-dispatch replicas
  /// (docs/strategies.md) are the motivating user.
  std::uint64_t id = 0;
  /// Called when service begins (possibly synchronously inside submit()
  /// when the resource is idle). Must not cancel the job it fires for.
  std::function<void(SimTime, const Job&)> on_start = nullptr;
};

/// What cancel() found (and removed).
enum class CancelOutcome {
  kNotFound,   // no job with that id here
  kQueued,     // removed while still waiting — no service wasted
  kInService,  // aborted mid-service — partial work counts as busy time
};

class FifoResource {
 public:
  /// `speed` is the capacity factor (>0).
  FifoResource(Simulation& simulation, double speed, std::string name = {});

  FifoResource(const FifoResource&) = delete;
  FifoResource& operator=(const FifoResource&) = delete;

  /// Enqueues a job (starts service immediately if idle). No-op precondition:
  /// resource must be up.
  void submit(Job job);

  /// Changes the speed factor. Takes effect at the next service start; the
  /// in-flight job (if any) finishes at its already-scheduled time.
  void set_speed(double speed);
  [[nodiscard]] double speed() const { return speed_; }

  /// Fails the resource: aborts the in-flight job and flushes the queue,
  /// invoking `on_flush` (if set) for every aborted/flushed job. Further
  /// submit() calls are a contract violation until recover().
  void fail();

  /// Brings a failed resource back up (empty queue, idle).
  void recover();

  /// Removes and returns every *waiting* job matching `predicate` (the
  /// in-flight job, if any, keeps running — its service has started).
  /// Models pending requests being redirected when their file set moves.
  std::vector<Job> extract_queued(
      const std::function<bool(const Job&)>& predicate);

  /// Removes the job with nonzero cancellation id `id`. A waiting job is
  /// dropped from the queue; the in-flight job is aborted (its completion
  /// event is cancelled, the partial service rendered counts as busy time,
  /// and the next waiting job starts). Neither invokes on_complete or
  /// on_flush — cancellation is the caller's own bookkeeping.
  CancelOutcome cancel(std::uint64_t id);

  [[nodiscard]] bool is_up() const { return up_; }
  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t queue_length() const {
    return queue_.size() + (busy_ ? 1 : 0);
  }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Total jobs completed and total busy time (for utilization reporting).
  /// Busy time accrues at completion (or failure/observation time for the
  /// in-flight job) so a job straddling the observation instant only
  /// counts the service actually rendered — utilization never exceeds 1.
  [[nodiscard]] std::uint64_t jobs_completed() const { return completed_; }
  [[nodiscard]] double busy_time() const {
    return busy_time_ + (busy_ ? sim_.now() - service_start_ : 0.0);
  }
  [[nodiscard]] double utilization(SimTime horizon) const {
    return horizon > 0.0 ? busy_time() / horizon : 0.0;
  }

  /// Invoked for each job flushed by fail().
  std::function<void(const Job&)> on_flush;

  /// Invoked whenever the resource transitions to idle while up (a
  /// completion or cancellation drained the last job). Not invoked for the
  /// initial idle state or on fail()/recover() — membership changes are
  /// reported through their own channel. JIQ-style dispatchers use this as
  /// their idle-token feed (docs/strategies.md).
  std::function<void()> on_idle;

 private:
  void start_next();

  Simulation& sim_;
  double speed_;
  std::string name_;
  bool up_ = true;
  bool busy_ = false;
  std::deque<Job> queue_;
  Job in_flight_;
  SimTime service_start_ = 0.0;
  EventHandle completion_event_;
  std::uint64_t completed_ = 0;
  double busy_time_ = 0.0;
};

}  // namespace anu::sim
