#include "sim/monitor.h"

#include <utility>

#include "common/assert.h"

namespace anu::sim {

PeriodicMonitor::PeriodicMonitor(Simulation& simulation, SimTime interval,
                                 Tick tick)
    : sim_(simulation), interval_(interval), tick_(std::move(tick)) {
  ANU_REQUIRE(interval > 0.0);
  ANU_REQUIRE(tick_ != nullptr);
  arm();
}

PeriodicMonitor::~PeriodicMonitor() { stop(); }

void PeriodicMonitor::stop() {
  stopped_ = true;
  next_.cancel();
}

void PeriodicMonitor::arm() {
  next_ = sim_.schedule_after(interval_, [this] {
    if (stopped_) return;
    ++fired_;
    // Re-arm before the tick so a tick that stops the monitor wins.
    arm();
    tick_(sim_.now());
  });
}

}  // namespace anu::sim
