// Process-oriented simulation on top of the event kernel.
//
// YACSIM — the toolkit the paper's simulator was built on — is a
// process-oriented DES: model code reads as sequential activity that
// suspends for simulated time. This header provides the same style with
// C++20 coroutines over sim::Simulation:
//
//   sim::Process script(sim::Simulation& sim, Cluster& cluster) {
//     co_await sim::delay(sim, 600.0);
//     cluster.fail_server(ServerId(2));
//     co_await sim::delay(sim, 300.0);
//     cluster.recover_server(ServerId(2));
//   }
//   ...
//   spawn(script(sim, cluster));
//
// Lifetime rules (all enforced, none left to the caller):
//   * a process frame destroys itself when it runs to completion;
//   * a process suspended on a delay whose event never fires (simulation
//     torn down first) is destroyed by the pending-event cleanup — no leak;
//   * processes are detached: spawn() starts them and returns.
#pragma once

#include <coroutine>
#include <cstdlib>
#include <memory>

#include "sim/simulation.h"

namespace anu::sim {

class Process {
 public:
  struct promise_type {
    /// Cleared just before self-destruction so late-armed tokens know the
    /// frame is gone.
    std::shared_ptr<bool> alive = std::make_shared<bool>(true);

    Process get_return_object() {
      return Process(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        *h.promise().alive = false;
        h.destroy();  // self-destroying coroutine: no dangling owner
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::abort(); }  // sims must not throw
  };

  Process(Process&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() = default;  // started processes own themselves

 private:
  friend void spawn(Process process);
  explicit Process(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  std::coroutine_handle<promise_type> handle_;
};

/// Starts a process; it runs until its first suspension point immediately.
inline void spawn(Process process) {
  auto handle = process.handle_;
  process.handle_ = nullptr;
  handle.resume();
}

namespace detail {

/// Shared between a suspended process and the event that resumes it. If
/// the event is dropped unrun (simulation teardown), the token's death
/// destroys the still-suspended frame.
struct ResumeToken {
  std::coroutine_handle<> handle;
  std::shared_ptr<bool> alive;
  bool fired = false;

  ~ResumeToken() {
    if (!fired && alive && *alive) handle.destroy();
  }
};

}  // namespace detail

/// Awaitable: suspends the process for `dt` simulated seconds.
struct DelayAwaiter {
  Simulation& sim;
  SimTime dt;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<Process::promise_type> h) const {
    auto token = std::make_shared<detail::ResumeToken>();
    token->handle = h;
    token->alive = h.promise().alive;
    sim.schedule_after(dt, [token] {
      token->fired = true;
      if (*token->alive) token->handle.resume();
    });
  }
  void await_resume() const noexcept {}
};

[[nodiscard]] inline DelayAwaiter delay(Simulation& sim, SimTime dt) {
  return DelayAwaiter{sim, dt};
}

/// Awaitable: suspends until an absolute simulated time (>= now).
[[nodiscard]] inline DelayAwaiter delay_until(Simulation& sim, SimTime when) {
  return DelayAwaiter{sim, when - sim.now()};
}

}  // namespace anu::sim
