// proto::Transport over real loopback UDP sockets.
//
// One non-blocking datagram socket per node, bound to 127.0.0.1 with a
// kernel-assigned ephemeral port (so parallel test runs never fight over
// port numbers). send() serializes through proto/wire.h, prefixes the
// sender's node id, and sendto()s the receiver's port; pump() drains every
// readable socket and dispatches the attached handlers. Datagrams that are
// short, malformed, mis-addressed, or to/from an admin-down node are
// counted and dropped — exactly the loss model the protocol is built for.
//
// Single-threaded like the rest of the runtime: call pump() from the event
// loop when any fd is readable (fds() feeds the poll set).
#pragma once

#include <cstdint>
#include <vector>

#include "proto/transport.h"

namespace anu::runtime {

class UdpTransport final : public proto::Transport {
 public:
  /// Opens `node_count` loopback sockets. Aborts (ANU_REQUIRE) if sockets
  /// cannot be created — no sensible degraded mode exists.
  explicit UdpTransport(std::size_t node_count);
  ~UdpTransport() override;

  void attach(std::uint32_t node, Handler handler) override;
  void set_node_up(std::uint32_t node, bool up) override;
  [[nodiscard]] bool node_up(std::uint32_t node) const override;
  void send(std::uint32_t from, std::uint32_t to,
            proto::Message message) override;
  [[nodiscard]] std::size_t node_count() const override {
    return fds_.size();
  }

  /// Reads every queued datagram off every socket and dispatches handlers;
  /// returns the number of messages delivered.
  std::size_t pump();

  /// One fd per node, for the event loop's poll set.
  [[nodiscard]] const std::vector<int>& fds() const { return fds_; }
  /// The ephemeral port node `node` is bound to (host byte order).
  [[nodiscard]] std::uint16_t port_of(std::uint32_t node) const;

  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_delivered() const {
    return delivered_;
  }
  /// Admin-down drops plus malformed/short datagrams.
  [[nodiscard]] std::uint64_t datagrams_dropped() const { return dropped_; }

 private:
  std::vector<int> fds_;
  std::vector<std::uint16_t> ports_;  // host byte order
  std::vector<Handler> handlers_;
  std::vector<bool> up_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace anu::runtime
