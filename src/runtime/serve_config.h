// Text configuration for `anu_serve` (the live runtime demo).
//
// Same line-oriented `key value` format as the simulator's config files
// ('#' comments, blank lines ignored), with runtime-specific keys:
//
//   servers 3                 # protocol nodes to host
//   port 9700                 # client-facing ROUTE socket (0 = ephemeral)
//   tuning_interval_s 1.0     # realtime demos want fast rounds
//   report_grace_s 0.05
//   heartbeats on             # on | off (off = oracle membership)
//   heartbeat_interval_s 0.2
//   run_seconds 0             # stop after this long; 0 = until killed
//   slow_factors 1 1 4        # synthetic per-server latency multipliers
//   hash_seed 7011347502584324984
//
// parse/write round-trip exactly (tests/serve_config_test.cpp), so a spec
// printed by `anu_serve --dump-config` re-parses to the same run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace anu::runtime {

struct ServeSpec {
  std::size_t servers = 3;
  std::uint16_t port = 9700;
  double tuning_interval = 1.0;
  double report_grace = 0.05;
  bool use_heartbeats = true;
  double heartbeat_interval = 0.2;
  double run_seconds = 0.0;
  /// Synthetic data-plane: server s's observed latency is proportional to
  /// slow_factors[s]. Sized to `servers` (missing entries default to 1).
  std::vector<double> slow_factors;
  std::uint64_t hash_seed = 0x616e755f68617368ULL;
};

struct ServeConfigError {
  std::size_t line = 0;
  std::string message;
};

/// Parses the format above; nullopt (and `error`, if given) on failure.
std::optional<ServeSpec> parse_serve_config(std::istream& is,
                                            ServeConfigError* error = nullptr);

/// Writes a spec in the exact format parse_serve_config reads.
void write_serve_config(std::ostream& os, const ServeSpec& spec);

}  // namespace anu::runtime
