#include "runtime/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/assert.h"
#include "proto/wire.h"

namespace anu::runtime {

namespace {

/// Datagram frame: 4-byte little-endian sender node id, then the encoded
/// Message (proto/wire.h). The id routes the receive callback; a sender id
/// out of range marks a stray datagram and is dropped.
constexpr std::size_t kFramePrefix = 4;

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(std::size_t node_count)
    : fds_(node_count, -1),
      ports_(node_count, 0),
      handlers_(node_count),
      up_(node_count, true) {
  ANU_REQUIRE(node_count > 0);
  for (std::size_t n = 0; n < node_count; ++n) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    ANU_REQUIRE(fd >= 0);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ANU_REQUIRE(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
    sockaddr_in addr = loopback_addr(0);  // kernel picks the port
    ANU_REQUIRE(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) == 0);
    socklen_t len = sizeof(addr);
    ANU_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr),
                              &len) == 0);
    fds_[n] = fd;
    ports_[n] = ntohs(addr.sin_port);
  }
}

UdpTransport::~UdpTransport() {
  for (const int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void UdpTransport::attach(std::uint32_t node, Handler handler) {
  ANU_REQUIRE(node < handlers_.size());
  handlers_[node] = std::move(handler);
}

void UdpTransport::set_node_up(std::uint32_t node, bool up) {
  ANU_REQUIRE(node < up_.size());
  up_[node] = up;
}

bool UdpTransport::node_up(std::uint32_t node) const {
  ANU_REQUIRE(node < up_.size());
  return up_[node];
}

std::uint16_t UdpTransport::port_of(std::uint32_t node) const {
  ANU_REQUIRE(node < ports_.size());
  return ports_[node];
}

void UdpTransport::send(std::uint32_t from, std::uint32_t to,
                        proto::Message message) {
  ANU_REQUIRE(from < fds_.size());
  ANU_REQUIRE(to < fds_.size());
  if (!up_[from] || !up_[to]) {
    ++dropped_;
    return;
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(kFramePrefix + 64);
  frame.push_back(static_cast<std::uint8_t>(from));
  frame.push_back(static_cast<std::uint8_t>(from >> 8));
  frame.push_back(static_cast<std::uint8_t>(from >> 16));
  frame.push_back(static_cast<std::uint8_t>(from >> 24));
  const auto payload = proto::encode(message);
  frame.insert(frame.end(), payload.begin(), payload.end());
  const sockaddr_in dest = loopback_addr(ports_[to]);
  const auto n = ::sendto(fds_[from], frame.data(), frame.size(), 0,
                          reinterpret_cast<const sockaddr*>(&dest),
                          sizeof(dest));
  // A full socket buffer (EWOULDBLOCK) or any other send failure is plain
  // datagram loss; the protocol's ack/retransmit layer recovers.
  if (n == static_cast<ssize_t>(frame.size())) {
    ++sent_;
  } else {
    ++dropped_;
  }
}

std::size_t UdpTransport::pump() {
  std::uint8_t buffer[65536];
  std::size_t handled = 0;
  for (std::uint32_t node = 0; node < fds_.size(); ++node) {
    for (;;) {
      const auto n = ::recv(fds_[node], buffer, sizeof(buffer), 0);
      if (n < 0) break;  // EAGAIN (drained) or transient error: move on
      if (!up_[node] || !handlers_[node]) {
        ++dropped_;
        continue;
      }
      if (static_cast<std::size_t>(n) < kFramePrefix + 1) {
        ++dropped_;
        continue;
      }
      const std::uint32_t from =
          static_cast<std::uint32_t>(buffer[0]) |
          (static_cast<std::uint32_t>(buffer[1]) << 8) |
          (static_cast<std::uint32_t>(buffer[2]) << 16) |
          (static_cast<std::uint32_t>(buffer[3]) << 24);
      if (from >= fds_.size()) {
        ++dropped_;
        continue;
      }
      auto message = proto::decode(buffer + kFramePrefix,
                                   static_cast<std::size_t>(n) - kFramePrefix);
      if (!message.has_value()) {
        ++dropped_;
        continue;
      }
      ++delivered_;
      ++handled;
      handlers_[node](from, *message);
    }
  }
  return handled;
}

}  // namespace anu::runtime
