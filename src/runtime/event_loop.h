// Minimal poll(2) reactor for the realtime runtime.
//
// One loop owns one RealtimeClock and any number of readable fds (the UDP
// transport's sockets, a client-facing socket, ...). Each iteration:
// compute the poll timeout from the clock's next deadline, sleep in
// poll(), dispatch readable-fd callbacks, then pump the clock so due
// timers fire. Everything runs on the calling thread — the runtime keeps
// the simulator's single-threaded execution model, it just sleeps for real.
#pragma once

#include <functional>
#include <vector>

#include "runtime/realtime_clock.h"

namespace anu::runtime {

class EventLoop {
 public:
  explicit EventLoop(RealtimeClock& clock) : clock_(clock) {}

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers a callback invoked whenever `fd` is readable.
  void add_fd(int fd, std::function<void()> on_readable);

  /// One poll + dispatch + clock pump, waiting at most `max_wait` seconds
  /// (clamped down to the clock's next deadline). Returns the number of
  /// timers fired plus fds dispatched.
  std::size_t run_once(double max_wait);

  /// Runs until `done()` returns true (checked once per iteration).
  void run_until(const std::function<bool()>& done, double max_wait = 0.05);

  [[nodiscard]] RealtimeClock& clock() { return clock_; }

 private:
  RealtimeClock& clock_;
  std::vector<int> fds_;
  std::vector<std::function<void()>> callbacks_;
};

}  // namespace anu::runtime
