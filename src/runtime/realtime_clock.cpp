#include "runtime/realtime_clock.h"

#include <utility>

#include "common/assert.h"

namespace anu::runtime {

namespace {

std::uint64_t tick_of(SimTime t) {
  return static_cast<std::uint64_t>(t / RealtimeClock::kTickSeconds);
}

}  // namespace

SimTime RealtimeClock::now() const {
  if (firing_) return logical_now_;
  const SimTime t = source_.now();
  return t > logical_now_ ? t : logical_now_;
}

anu::TimerHandle RealtimeClock::schedule_at(SimTime when, Action action) {
  const SimTime current = now();
  if (when < current) when = current;  // past deadlines fire at next pump

  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Timer& timer = slab_[slot];
  timer.deadline = when;
  timer.seq = next_seq_++;
  timer.tick = tick_of(when);
  if (timer.tick < cursor_) timer.tick = cursor_;  // float-edge safety
  timer.armed = true;
  timer.action = std::move(action);
  ++armed_;
  place(slot);
  return make_handle(slot, timer.generation);
}

void RealtimeClock::place(std::uint32_t slot) {
  const Timer& timer = slab_[slot];
  const Entry entry{slot, timer.generation};
  if (timer.tick - cursor_ < kSlots) {
    wheel_[timer.tick % kSlots].push_back(entry);
  } else {
    overflow_.push_back(entry);
  }
}

const RealtimeClock::Timer* RealtimeClock::live(const Entry& entry) const {
  const Timer& timer = slab_[entry.slot];
  if (!timer.armed || timer.generation != entry.generation) return nullptr;
  return &timer;
}

void RealtimeClock::free_slot(std::uint32_t slot) {
  Timer& timer = slab_[slot];
  ANU_REQUIRE(timer.armed);
  timer.armed = false;
  timer.action = Action();
  ++timer.generation;  // invalidates the wheel entry and any stale handle
  --armed_;
  free_.push_back(slot);
}

void RealtimeClock::cancel_timer(std::uint64_t a, std::uint64_t b) {
  const auto slot = static_cast<std::uint32_t>(a);
  if (slot >= slab_.size()) return;
  const Timer& timer = slab_[slot];
  if (!timer.armed || timer.generation != static_cast<std::uint32_t>(b)) {
    return;  // already fired, cancelled, or recycled
  }
  free_slot(slot);  // the lingering wheel entry goes stale and is swept
}

bool RealtimeClock::timer_cancelled(std::uint64_t a, std::uint64_t b) const {
  const auto slot = static_cast<std::uint32_t>(a);
  if (slot >= slab_.size()) return true;
  const Timer& timer = slab_[slot];
  return !timer.armed || timer.generation != static_cast<std::uint32_t>(b);
}

void RealtimeClock::migrate_overflow() {
  std::size_t i = 0;
  while (i < overflow_.size()) {
    const Entry entry = overflow_[i];
    const Timer* timer = live(entry);
    if (timer == nullptr) {
      overflow_[i] = overflow_.back();
      overflow_.pop_back();
      continue;
    }
    if (timer->tick - cursor_ < kSlots) {
      wheel_[timer->tick % kSlots].push_back(entry);
      overflow_[i] = overflow_.back();
      overflow_.pop_back();
      continue;
    }
    ++i;
  }
}

std::size_t RealtimeClock::drain_tick(std::uint64_t tick, SimTime horizon) {
  auto& bucket = wheel_[tick % kSlots];
  std::size_t fired = 0;
  for (;;) {
    // Sweep entries whose timer was cancelled or recycled.
    std::size_t i = 0;
    while (i < bucket.size()) {
      if (live(bucket[i]) == nullptr) {
        bucket[i] = bucket.back();
        bucket.pop_back();
      } else {
        ++i;
      }
    }
    // Pick the globally next timer: minimal (deadline, seq) among this
    // tick's due entries. One at a time, because firing may schedule new
    // due timers that must interleave in exactly this order.
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::size_t best = kNone;
    for (i = 0; i < bucket.size(); ++i) {
      const Timer* timer = live(bucket[i]);
      if (timer->tick != tick || timer->deadline > horizon) continue;
      if (best == kNone) {
        best = i;
        continue;
      }
      const Timer* chosen = live(bucket[best]);
      if (timer->deadline < chosen->deadline ||
          (timer->deadline == chosen->deadline && timer->seq < chosen->seq)) {
        best = i;
      }
    }
    if (best == kNone) return fired;

    const Entry entry = bucket[best];
    bucket[best] = bucket.back();
    bucket.pop_back();
    Timer& timer = slab_[entry.slot];
    Action action = std::move(timer.action);
    if (timer.deadline > logical_now_) logical_now_ = timer.deadline;
    free_slot(entry.slot);  // before firing: the callback may re-schedule
    firing_ = true;
    action();
    firing_ = false;
    ++fired;
  }
}

std::size_t RealtimeClock::pump() {
  const SimTime source_now = source_.now();
  const SimTime horizon = source_now > logical_now_ ? source_now : logical_now_;
  const std::uint64_t target = tick_of(horizon);
  std::size_t fired = 0;
  while (cursor_ <= target) {
    if (armed_ == 0) {
      // Nothing scheduled anywhere: jump the cursor and drop stale entries
      // instead of walking (possibly hours of) empty ticks.
      for (auto& bucket : wheel_) bucket.clear();
      overflow_.clear();
      cursor_ = target;
    }
    fired += drain_tick(cursor_, horizon);
    if (cursor_ == target) break;  // keep later-deadline timers in the tick
    ++cursor_;
    if (cursor_ % kSlots == 0) migrate_overflow();
  }
  if (horizon > logical_now_) logical_now_ = horizon;
  return fired;
}

SimTime RealtimeClock::next_deadline() const {
  SimTime best = -1.0;
  std::uint64_t best_seq = 0;
  for (const Timer& timer : slab_) {
    if (!timer.armed) continue;
    if (best < 0.0 || timer.deadline < best ||
        (timer.deadline == best && timer.seq < best_seq)) {
      best = timer.deadline;
      best_seq = timer.seq;
    }
  }
  return best;
}

}  // namespace anu::runtime
