#include "runtime/serve_config.h"

#include <ostream>
#include <sstream>
#include <string>

namespace anu::runtime {

namespace {

bool fail(ServeConfigError* error, std::size_t line, std::string message) {
  if (error != nullptr) {
    error->line = line;
    error->message = std::move(message);
  }
  return false;
}

}  // namespace

std::optional<ServeSpec> parse_serve_config(std::istream& is,
                                            ServeConfigError* error) {
  ServeSpec spec;
  spec.slow_factors.clear();
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string key;
    if (!(line >> key)) continue;  // blank or comment-only

    auto want_double = [&](double& out) {
      if (line >> out) return true;
      fail(error, lineno, "expected a number after '" + key + "'");
      return false;
    };
    if (key == "servers") {
      if (!(line >> spec.servers) || spec.servers == 0) {
        fail(error, lineno, "servers must be a positive integer");
        return std::nullopt;
      }
    } else if (key == "port") {
      unsigned value = 0;
      if (!(line >> value) || value > 65535) {
        fail(error, lineno, "port must be 0..65535");
        return std::nullopt;
      }
      spec.port = static_cast<std::uint16_t>(value);
    } else if (key == "tuning_interval_s") {
      if (!want_double(spec.tuning_interval)) return std::nullopt;
    } else if (key == "report_grace_s") {
      if (!want_double(spec.report_grace)) return std::nullopt;
    } else if (key == "heartbeats") {
      std::string value;
      line >> value;
      if (value == "on") {
        spec.use_heartbeats = true;
      } else if (value == "off") {
        spec.use_heartbeats = false;
      } else {
        fail(error, lineno, "heartbeats must be 'on' or 'off'");
        return std::nullopt;
      }
    } else if (key == "heartbeat_interval_s") {
      if (!want_double(spec.heartbeat_interval)) return std::nullopt;
    } else if (key == "run_seconds") {
      if (!want_double(spec.run_seconds)) return std::nullopt;
    } else if (key == "slow_factors") {
      double factor = 0.0;
      while (line >> factor) spec.slow_factors.push_back(factor);
    } else if (key == "hash_seed") {
      if (!(line >> spec.hash_seed)) {
        fail(error, lineno, "hash_seed must be an unsigned integer");
        return std::nullopt;
      }
    } else {
      fail(error, lineno, "unknown key '" + key + "'");
      return std::nullopt;
    }
  }
  if (spec.tuning_interval <= 0.0 || spec.report_grace <= 0.0 ||
      spec.heartbeat_interval <= 0.0 || spec.run_seconds < 0.0) {
    fail(error, lineno, "intervals must be positive");
    return std::nullopt;
  }
  if (spec.slow_factors.size() > spec.servers) {
    fail(error, lineno, "more slow_factors than servers");
    return std::nullopt;
  }
  spec.slow_factors.resize(spec.servers, 1.0);
  return spec;
}

void write_serve_config(std::ostream& os, const ServeSpec& spec) {
  os << "servers " << spec.servers << "\n";
  os << "port " << spec.port << "\n";
  os << "tuning_interval_s " << spec.tuning_interval << "\n";
  os << "report_grace_s " << spec.report_grace << "\n";
  os << "heartbeats " << (spec.use_heartbeats ? "on" : "off") << "\n";
  os << "heartbeat_interval_s " << spec.heartbeat_interval << "\n";
  os << "run_seconds " << spec.run_seconds << "\n";
  os << "slow_factors";
  for (const double factor : spec.slow_factors) os << " " << factor;
  os << "\n";
  os << "hash_seed " << spec.hash_seed << "\n";
}

}  // namespace anu::runtime
