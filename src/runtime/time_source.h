// Where the realtime clock reads "now" from.
//
// RealtimeClock (realtime_clock.h) does not call std::chrono directly; it
// reads a TimeSource. Production uses SteadyTimeSource (monotonic wall
// time, zeroed at construction so runtime timestamps look like simulation
// timestamps). Tests use ManualTimeSource, which advances only when told —
// that is what lets tests/clock_parity_test.cpp drive the *realtime* clock
// through a deterministic script and compare its decisions bit-for-bit
// against the simulator.
#pragma once

#include <chrono>

#include "common/assert.h"
#include "common/types.h"

namespace anu::runtime {

class TimeSource {
 public:
  TimeSource() = default;
  TimeSource(const TimeSource&) = delete;
  TimeSource& operator=(const TimeSource&) = delete;
  virtual ~TimeSource() = default;

  /// Monotonic seconds. The epoch is implementation-defined (steady source:
  /// its own construction), only differences and ordering matter.
  [[nodiscard]] virtual SimTime now() const = 0;
};

/// Real monotonic time, zeroed at construction.
class SteadyTimeSource final : public TimeSource {
 public:
  SteadyTimeSource() : origin_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] SimTime now() const override {
    const auto elapsed = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration<double>(elapsed).count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// Test time: stands still until advanced, never goes backwards.
class ManualTimeSource final : public TimeSource {
 public:
  [[nodiscard]] SimTime now() const override { return now_; }

  void advance_to(SimTime t) {
    ANU_REQUIRE(t >= now_);
    now_ = t;
  }
  void advance_by(SimTime delta) {
    ANU_REQUIRE(delta >= 0.0);
    now_ += delta;
  }

 private:
  SimTime now_ = 0.0;
};

}  // namespace anu::runtime
