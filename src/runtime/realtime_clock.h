// anu::Clock against real time: a hashed timer wheel over a TimeSource.
//
// The decision core's behaviour must not depend on which clock drives it
// (docs/runtime.md), so this clock reproduces the simulator's dispatch
// semantics exactly:
//
//   * timers fire in strict (deadline, schedule-order) order, one at a
//     time — a callback that schedules a new timer at its own firing time
//     sees it run after every earlier-scheduled due timer, just as the
//     event kernel's (time, seq) calendar guarantees;
//   * now() observed inside a callback is the firing timer's deadline, not
//     the jittery instant the host thread got scheduled — so intervals
//     computed from now() are exact and tuning rounds land on the same
//     boundaries as in simulation;
//   * cancellation is O(1), handle-safe after firing, and generation-
//     checked against slot reuse — sim::EventHandle's contract.
//
// Structure: a slab of timers (free-list reuse, generation counters) plus a
// hashed wheel of kSlots buckets at kTickSeconds granularity. A bucket only
// ever holds entries of a single absolute tick (entries beyond one wheel
// revolution wait in an overflow list and migrate in when the wheel wraps),
// so advancing is: drain bucket, pick due timers in (deadline, seq) order,
// fire. Single-threaded by design — pump() it from the owning event loop.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "runtime/time_source.h"

namespace anu::obs {
class TraceSink;
}

namespace anu::runtime {

class RealtimeClock final : public anu::Clock {
 public:
  /// Wheel geometry: 512 slots of 1 ms cover half a second per revolution;
  /// protocol timers (heartbeats, RTOs, tuning ticks) mostly land within
  /// one or two revolutions, the rest sit in the overflow list.
  static constexpr double kTickSeconds = 1e-3;
  static constexpr std::size_t kSlots = 512;

  explicit RealtimeClock(TimeSource& source) : source_(source) {}

  /// Inside a firing callback: that timer's deadline. Outside: the source's
  /// current time (never earlier than the last fired deadline).
  [[nodiscard]] SimTime now() const override;

  /// Deadlines in the past are clamped to now() and fire at the next pump.
  anu::TimerHandle schedule_at(SimTime when, Action action) override;

  [[nodiscard]] obs::TraceSink* trace() const override { return trace_; }
  void set_trace(obs::TraceSink* trace) { trace_ = trace; }

  /// Fires every timer whose deadline has been reached, in (deadline, seq)
  /// order; returns the number fired. Call from the event loop whenever it
  /// wakes up.
  std::size_t pump();

  /// Earliest pending deadline, or a negative value when no timer is armed
  /// — the event loop turns this into its poll timeout.
  [[nodiscard]] SimTime next_deadline() const;

  [[nodiscard]] std::size_t armed_count() const { return armed_; }

 private:
  struct Timer {
    SimTime deadline = 0.0;
    std::uint64_t seq = 0;        // global schedule order, ties on deadline
    std::uint64_t tick = 0;       // deadline / kTickSeconds, rounded down
    std::uint32_t generation = 0; // bumped on free; stale handles miss
    bool armed = false;
    Action action;
  };

  /// A wheel-bucket (or overflow) entry; generation-checked against reuse.
  struct Entry {
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
  };

  void cancel_timer(std::uint64_t a, std::uint64_t b) override;
  [[nodiscard]] bool timer_cancelled(std::uint64_t a,
                                     std::uint64_t b) const override;

  [[nodiscard]] const Timer* live(const Entry& entry) const;
  void place(std::uint32_t slot);
  void free_slot(std::uint32_t slot);
  /// Moves overflow entries whose tick now fits in [cursor, cursor+kSlots).
  void migrate_overflow();
  /// Fires due timers within one absolute tick's bucket; returns count.
  std::size_t drain_tick(std::uint64_t tick, SimTime horizon);

  TimeSource& source_;
  obs::TraceSink* trace_ = nullptr;

  std::vector<Timer> slab_;
  std::vector<std::uint32_t> free_;
  std::vector<std::vector<Entry>> wheel_{kSlots};
  std::vector<Entry> overflow_;
  std::uint64_t cursor_ = 0;  // next unprocessed absolute tick
  std::uint64_t next_seq_ = 1;
  std::size_t armed_ = 0;

  SimTime logical_now_ = 0.0;  // last fired deadline (or pump horizon)
  bool firing_ = false;
};

}  // namespace anu::runtime
