#include "runtime/event_loop.h"

#include <poll.h>

#include <cmath>
#include <utility>

#include "common/assert.h"

namespace anu::runtime {

void EventLoop::add_fd(int fd, std::function<void()> on_readable) {
  ANU_REQUIRE(fd >= 0);
  ANU_REQUIRE(on_readable != nullptr);
  fds_.push_back(fd);
  callbacks_.push_back(std::move(on_readable));
}

std::size_t EventLoop::run_once(double max_wait) {
  ANU_REQUIRE(max_wait >= 0.0);
  double wait = max_wait;
  const SimTime deadline = clock_.next_deadline();
  if (deadline >= 0.0) {
    const double until = deadline - clock_.now();
    if (until < wait) wait = until;
  }
  if (wait < 0.0) wait = 0.0;

  std::vector<pollfd> pollset(fds_.size());
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    pollset[i].fd = fds_[i];
    pollset[i].events = POLLIN;
  }
  const int timeout_ms = static_cast<int>(std::ceil(wait * 1e3));
  const int ready =
      ::poll(pollset.data(), pollset.size(), timeout_ms);

  std::size_t handled = 0;
  if (ready > 0) {
    for (std::size_t i = 0; i < pollset.size(); ++i) {
      if ((pollset[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        callbacks_[i]();
        ++handled;
      }
    }
  }
  handled += clock_.pump();
  return handled;
}

void EventLoop::run_until(const std::function<bool()>& done, double max_wait) {
  while (!done()) run_once(max_wait);
}

}  // namespace anu::runtime
