// libanu implementation: the public Balancer facade over core/{tuner,
// region_map} and hash/hash_family — the exact components the simulator
// and the protocol drive, so an embedding gets the simulated behaviour.
#include "anu/anu.h"

#include <optional>
#include <utility>

#include "common/assert.h"
#include "core/region_map.h"
#include "core/tuner.h"
#include "hash/hash_family.h"

namespace anu {

struct Balancer::Impl {
  BalancerConfig config;
  core::TunerConfig tuner;
  HashFamily family;
  core::RegionMap map;
  std::uint64_t version = 0;
  std::vector<bool> up;
  std::vector<std::optional<balance::ServerReport>> reports;

  Impl(std::size_t server_count, const BalancerConfig& cfg)
      : config(cfg),
        family(cfg.hash_seed),
        map(server_count),
        up(server_count, true),
        reports(server_count) {
    tuner.alpha = cfg.alpha;
    tuner.growth_cap = cfg.growth_cap;
    tuner.shrink_cap = cfg.shrink_cap;
    tuner.idle_growth = cfg.idle_growth;
    tuner.min_share_fraction = cfg.min_share_fraction;
    tuner.dead_band = cfg.dead_band;
  }
};

Balancer::Balancer(std::size_t server_count, const BalancerConfig& config)
    : impl_(std::make_unique<Impl>(server_count, config)) {
  ANU_REQUIRE(server_count > 0);
  ANU_REQUIRE(config.max_probe_rounds > 0);
}

Balancer::~Balancer() = default;
Balancer::Balancer(Balancer&&) noexcept = default;
Balancer& Balancer::operator=(Balancer&&) noexcept = default;

std::size_t Balancer::server_count() const { return impl_->up.size(); }

void Balancer::set_server_up(std::uint32_t server, bool up) {
  ANU_REQUIRE(server < impl_->up.size());
  impl_->up[server] = up;
  if (!up) impl_->reports[server].reset();
}

bool Balancer::server_up(std::uint32_t server) const {
  ANU_REQUIRE(server < impl_->up.size());
  return impl_->up[server];
}

void Balancer::record_latency(std::uint32_t server, double mean_latency,
                              std::uint64_t completed) {
  ANU_REQUIRE(server < impl_->reports.size());
  ANU_REQUIRE(mean_latency >= 0.0);
  impl_->reports[server] = balance::ServerReport{
      mean_latency, static_cast<std::size_t>(completed)};
}

RetuneResult Balancer::retune() {
  Impl& impl = *impl_;
  const std::size_t k = impl.up.size();
  std::vector<core::TunerInput> inputs(k);
  const auto before = impl.map.shares();
  for (std::uint32_t s = 0; s < k; ++s) {
    inputs[s].current_share = static_cast<double>(before[s].raw());
    if (impl.up[s]) {
      // Same policy as the wire protocol: an up server that reported
      // nothing reads as idle and grows bounded, it never stalls a round.
      inputs[s].report =
          impl.reports[s].value_or(balance::ServerReport{0.0, 0});
    }
  }
  const auto decision =
      core::run_delegate_round(inputs, impl.tuner, nullptr, 0.0);
  impl.map.rebalance(core::RegionMap::normalize_shares(decision.weights));
  ++impl.version;
  std::fill(impl.reports.begin(), impl.reports.end(), std::nullopt);

  RetuneResult result;
  result.version = impl.version;
  result.system_average = decision.system_average;
  result.incompetent = decision.incompetent;
  const auto after = impl.map.shares();
  for (std::uint32_t s = 0; s < k; ++s) {
    if (before[s].raw() != after[s].raw()) {
      result.changed = true;
      break;
    }
  }
  return result;
}

std::uint32_t Balancer::route(std::string_view key) const {
  const Impl& impl = *impl_;
  for (std::uint32_t r = 0; r < impl.config.max_probe_rounds; ++r) {
    if (const auto owner = impl.map.owner_at(impl.family.unit_point(key, r))) {
      return owner->value();
    }
  }
  ANU_ENSURE(false && "lookup exhausted the hash family");
  return 0;
}

std::uint64_t Balancer::version() const { return impl_->version; }

std::vector<double> Balancer::shares() const {
  std::vector<double> out;
  out.reserve(impl_->up.size());
  for (const UnitPoint share : impl_->map.shares()) {
    out.push_back(share.to_double());
  }
  return out;
}

}  // namespace anu
