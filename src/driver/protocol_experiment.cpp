#include "driver/protocol_experiment.h"

#include "common/assert.h"
#include "metrics/latency_tracker.h"
#include "metrics/movement_tracker.h"
#include "sim/sim_clock.h"
#include "sim/simulation.h"

namespace anu::driver {

ExperimentResult run_protocol_experiment(
    const ProtocolExperimentConfig& config,
    const workload::Workload& workload) {
  const SimTime horizon =
      config.horizon > 0.0 ? config.horizon : workload.span() + 1.0;
  const std::size_t servers = config.cluster.server_speeds.size();

  sim::Simulation sim;
  obs::TraceSink* const trace = config.trace;
  sim.set_trace(trace);
  cluster::Cluster cluster(sim, config.cluster);
  sim::SimClock clock(sim);
  proto::Network network(clock, config.network, servers);
  if (config.faults != nullptr) network.set_fault_plan(config.faults);
  metrics::LatencyTracker latency(servers);

  std::vector<double> weights;
  weights.reserve(workload.file_set_count());
  for (const auto& fs : workload.file_sets()) weights.push_back(fs.weight);
  metrics::MovementTracker movement(weights);

  // Latency reports come from the real queueing servers: the protocol tick
  // pulls each server's interval statistics.
  proto::ProtocolCluster protocol(
      clock, network, config.protocol, servers,
      [&cluster](std::uint32_t s, UnitPoint /*share*/) {
        const auto report =
            cluster.server(ServerId(s)).take_interval_report();
        return balance::ServerReport{report.mean_latency, report.completed};
      });
  std::vector<std::string> names;
  names.reserve(workload.file_set_count());
  for (const auto& fs : workload.file_sets()) names.push_back(fs.name);
  protocol.register_file_sets(names);

  // A shed hands the file set's queued requests to the acquirer the moment
  // the shedding node learns of the new map.
  protocol.on_shed = [&](std::uint32_t fs, std::uint32_t from,
                         std::uint32_t to) {
    if (cluster.is_up(ServerId(from)) && cluster.is_up(ServerId(to))) {
      cluster.migrate_queued(FileSetId(fs), ServerId(from), ServerId(to));
    }
    if (trace) {
      trace->emit(sim.now(), obs::EventType::kFileSetMove, fs, from, to);
    }
    balance::RebalanceResult one;
    one.moves.push_back(
        {FileSetId(fs), ServerId(from), ServerId(to)});
    movement.record(sim.now(), one);
  };

  RunningStats steady_state;
  LogHistogram histogram;
  cluster.on_complete = [&](const cluster::Completion& c) {
    latency.observe(c);
    histogram.add(c.latency());
    if (c.completion >= horizon * 0.5) steady_state.add(c.latency());
    if (trace) {
      trace->emit(c.completion, obs::EventType::kRequestComplete,
                  c.file_set.value(), c.server.value(), 0, c.latency());
    }
  };

  // Requests are routed by the replica of a rotating contact node — the
  // client-asks-any-server model. Flushed requests (failures) re-dispatch
  // the same way.
  std::uint64_t issued = 0;
  std::uint32_t contact = 0;
  auto next_contact = [&]() -> std::uint32_t {
    for (std::size_t tries = 0; tries < servers; ++tries) {
      contact = (contact + 1) % static_cast<std::uint32_t>(servers);
      if (cluster.is_up(ServerId(contact))) return contact;
    }
    ANU_ENSURE(false && "whole cluster down");
    return 0;
  };
  auto dispatch = [&](FileSetId fs, double demand) {
    const std::uint32_t contact_node = next_contact();
    const ServerId target =
        protocol.route_from(contact_node, workload.file_set(fs).name);
    // A stale replica can route to a down server for a short window after
    // a failure; the contact node then falls back to its delegate's view —
    // modelled here by routing from the delegate replica.
    ServerId safe = cluster.is_up(target)
                        ? target
                        : protocol.route_from(protocol.delegate(),
                                              workload.file_set(fs).name);
    // The delegate's replica is just as stale until the next round reclaims
    // the dead server's region; the live contact then serves the request
    // itself (any server can — it is simply not cache-preferred).
    if (!cluster.is_up(safe)) safe = ServerId(contact_node);
    if (trace) {
      trace->emit(sim.now(), obs::EventType::kRequestIssue, fs.value(),
                  safe.value(), 0, demand);
    }
    cluster.submit(safe, fs, demand);
  };
  cluster.on_flush = [&](FileSetId fs, double demand, std::uint64_t) {
    dispatch(fs, demand);
  };

  const auto& requests = workload.requests();
  std::size_t cursor = 0;
  std::function<void()> arrive = [&] {
    while (cursor < requests.size() && requests[cursor].arrival <= sim.now()) {
      const workload::Request& r = requests[cursor++];
      ++issued;
      dispatch(r.file_set, r.demand);
    }
    if (cursor < requests.size()) {
      sim.schedule_at(requests[cursor].arrival, arrive);
    }
  };
  if (!requests.empty()) sim.schedule_at(requests.front().arrival, arrive);

  // Membership: cluster and protocol change together; the failed node's
  // flushed requests re-dispatch via the (surviving) replicas.
  for (const cluster::MembershipEvent& event : config.failures.events()) {
    sim.schedule_at(event.when, [&, event] {
      switch (event.action) {
        case cluster::MembershipAction::kFail:
        case cluster::MembershipAction::kRemove:
          protocol.fail_server(event.server.value());
          cluster.fail_server(event.server);
          break;
        case cluster::MembershipAction::kRecover:
          cluster.recover_server(event.server);
          protocol.recover_server(event.server.value());
          break;
        case cluster::MembershipAction::kAdd:
          // The protocol rides a fixed node set; commissioning is exercised
          // through the balancer-level driver (run_experiment).
          ANU_ENSURE(false && "kAdd unsupported in the protocol experiment");
          break;
        case cluster::MembershipAction::kDegrade:
          // Gray failure: the node keeps heartbeating and reporting; only
          // its worsening latency reports steer the tuner away from it.
          cluster.degrade_server(event.server, event.factor);
          break;
        case cluster::MembershipAction::kRestore:
          cluster.restore_server(event.server);
          break;
      }
    });
  }

  sim.run_until(horizon);

  if (config.on_finish) config.on_finish(protocol, network);

  ExperimentResult result;
  result.server_count = servers;
  result.horizon = horizon;
  result.aggregate = latency.aggregate();
  result.steady_state = steady_state;
  result.latency_histogram = histogram;
  for (std::uint32_t s = 0; s < servers; ++s) {
    const auto id = ServerId(s);
    result.per_server.push_back(latency.server_stats(id));
    result.served.push_back(latency.served(id));
    result.latency_over_time.push_back(
        latency.server_series(id).windowed_mean(config.series_window,
                                                horizon));
    result.utilization.push_back(cluster.server(id).utilization(horizon));
  }
  result.movement = movement.rounds();
  result.total_moved = movement.total_moved();
  result.unique_moved = movement.unique_moved();
  result.percent_workload_moved = movement.percent_workload_moved();
  result.percent_unique_workload_moved =
      movement.percent_unique_workload_moved();
  result.shared_state_bytes = protocol.map_of(protocol.delegate())
                                  .shared_state_bytes();
  result.requests_issued = issued;
  result.requests_completed = latency.total_served();
  result.events_executed = sim.events_executed();
  result.queue = sim.queue_stats();
  result.tuning_rounds = protocol.updates_published();
  result.control_plane.messages_sent = network.messages_sent();
  result.control_plane.messages_delivered = network.messages_delivered();
  result.control_plane.drops_endpoint_down = network.drops_endpoint_down();
  result.control_plane.drops_injected = network.drops_injected();
  result.control_plane.duplicates_injected = network.duplicates_injected();
  result.control_plane.bytes_sent = network.bytes_sent();
  result.control_plane.reliable_sent = protocol.reliable_sent();
  result.control_plane.retransmits = protocol.retransmits();
  result.control_plane.acks_received = protocol.acks_received();
  result.control_plane.duplicates_suppressed =
      protocol.duplicates_suppressed();
  result.control_plane.retries_abandoned = protocol.retries_abandoned();
  return result;
}

}  // namespace anu::driver
