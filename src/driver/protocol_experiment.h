// Full-stack experiment: the queueing data plane driven through the
// message-level control protocol (src/proto) instead of an instantaneous
// balancer — the most faithful end-to-end configuration in the repository.
//
// Differences from run_experiment(AnuBalancer):
//   * latency reports travel the simulated network to the elected delegate;
//     the new region table is broadcast and applied per node as messages
//     arrive — nodes transiently disagree;
//   * each request is routed by the replica of an (arbitrary, round-robin)
//     contact node, exactly as clients of a shared-disk cluster consult
//     whatever server they reach — a stale replica routes to a server that
//     no longer "owns" the file set, which that server still serves (any
//     server can; it is simply no longer cache-preferred);
//   * sheds hand queued requests over when the shedding node learns of the
//     new map, not at a global instant.
//
// bench/micro_protocol and tests use this to validate that the cheap
// `ExperimentConfig::control_delay` abstraction in run_experiment matches
// the real protocol's behaviour.
#pragma once

#include <functional>

#include "cluster/cluster.h"
#include "cluster/failure_schedule.h"
#include "driver/experiment.h"
#include "faults/fault_plan.h"
#include "proto/network.h"
#include "proto/protocol.h"
#include "workload/workload.h"

namespace anu::driver {

struct ProtocolExperimentConfig {
  cluster::ClusterConfig cluster;
  proto::ProtocolConfig protocol;
  proto::NetworkConfig network;
  SimTime horizon = 0.0;          // 0 = workload span
  SimTime series_window = 300.0;
  cluster::FailureSchedule failures;
  /// Adversarial network faults (docs/chaos.md) applied to every protocol
  /// message. Null = clean network. Caller-owned; must outlive the run —
  /// the caller can read the plan's injection counters afterwards.
  faults::FaultPlan* faults = nullptr;
  /// Invoked after the horizon with the protocol and network still live,
  /// before teardown — the chaos harness checks convergence invariants
  /// (replica agreement, routing coverage, counter reconciliation) here.
  std::function<void(const proto::ProtocolCluster&, const proto::Network&)>
      on_finish;
  /// Structured event tracing (docs/observability.md); this path also
  /// emits the protocol's message_send/recv, delegate_round, map_apply
  /// and delegate_elected events. Null disables; caller-owned.
  obs::TraceSink* trace = nullptr;
};

/// Runs the workload with ANU managed by the real §4 message protocol.
/// Returns the same result structure as run_experiment (oracle-dependent
/// fields like unique_moved are filled from shed events).
[[nodiscard]] ExperimentResult run_protocol_experiment(
    const ProtocolExperimentConfig& config,
    const workload::Workload& workload);

}  // namespace anu::driver
