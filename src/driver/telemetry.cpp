#include "driver/telemetry.h"

#include <fstream>

#include "cluster/failure_schedule.h"
#include "obs/build_info.h"

namespace anu::driver {

namespace {

using obs::Json;

Json stats_json(const RunningStats& s) {
  Json o = Json::object();
  o.set("count", s.count())
      .set("mean_s", s.mean())
      .set("stddev_s", s.stddev())
      .set("min_s", s.min())
      .set("max_s", s.max());
  return o;
}

Json histogram_json(const LogHistogram& h) {
  Json buckets = Json::array();
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (h.bucket(i) == 0) continue;  // sparse: zero buckets are implicit
    Json b = Json::object();
    b.set("lower_s", h.bucket_lower(i)).set("count", h.bucket(i));
    buckets.push_back(std::move(b));
  }
  Json o = Json::object();
  o.set("count", h.count()).set("buckets", std::move(buckets));
  return o;
}

Json workload_json(const SimSpec& spec) {
  Json o = Json::object();
  if (spec.workload == SimSpec::WorkloadKind::kSynthetic) {
    const workload::SyntheticConfig& c = spec.synthetic;
    o.set("kind", "synthetic")
        .set("seed", c.seed)
        .set("file_sets", c.file_set_count)
        .set("requests", c.request_count)
        .set("duration_s", c.duration)
        .set("target_utilization", c.target_utilization)
        .set("pareto_shape", c.pareto_shape)
        .set("weight_lo", c.weight_lo)
        .set("weight_hi", c.weight_hi)
        .set("demand_jitter_sigma", c.demand_jitter_sigma);
  } else if (!spec.trace_file.empty()) {
    o.set("kind", "trace_file").set("path", spec.trace_file);
  } else {
    const workload::TraceSynthConfig& c = spec.trace;
    o.set("kind", "trace")
        .set("seed", c.seed)
        .set("file_sets", c.file_set_count)
        .set("requests", c.request_count)
        .set("duration_s", c.duration)
        .set("target_utilization", c.target_utilization)
        .set("zipf_exponent", c.zipf_exponent)
        .set("pareto_shape", c.pareto_shape)
        .set("demand_jitter_sigma", c.demand_jitter_sigma);
  }
  return o;
}

Json system_json(const SystemConfig& c) {
  Json o = Json::object();
  o.set("label", system_label(c.kind));
  switch (c.kind) {
    case SystemKind::kAnu:
      o.set("hash_seed", c.anu.hash_seed)
          .set("placement_choices", c.anu.placement_choices);
      break;
    case SystemKind::kVirtualProcessor:
      o.set("vp_per_server", c.vp.vp_per_server)
          .set("hash_seed", c.vp.hash_seed);
      break;
    case SystemKind::kSimpleRandom:
      o.set("hash_seed", c.simple_hash_seed);
      break;
    case SystemKind::kDynPrescient:
      break;
    case SystemKind::kJsqD:
      o.set("d", c.jsq.d)
          .set("speed_aware", c.jsq.speed_aware)
          .set("seed", c.jsq.seed);
      break;
    case SystemKind::kJoinIdleQueue:
      o.set("policy", balance::jiq_policy_name(c.jiq.policy))
          .set("weighted_fallback", c.jiq.weighted_fallback)
          .set("seed", c.jiq.seed);
      break;
    case SystemKind::kRedundancyD:
      o.set("d", c.red.d)
          .set("cancel", balance::cancel_mode_name(c.red.cancel))
          .set("speed_aware", c.red.speed_aware)
          .set("seed", c.red.seed);
      break;
  }
  return o;
}

Json config_json(const SimSpec& spec) {
  const ExperimentConfig& e = spec.experiment;
  Json o = Json::object();
  o.set("workload", workload_json(spec));
  o.set("system", system_json(spec.system));

  Json speeds = Json::array();
  for (const double s : e.cluster.server_speeds) speeds.push_back(s);
  Json cluster = Json::object();
  cluster.set("speeds", std::move(speeds));
  Json cache = Json::object();
  cache.set("enabled", e.cluster.cache.enabled)
      .set("warmup_requests", e.cluster.cache.warmup_requests)
      .set("cold_penalty_factor", e.cluster.cache.cold_penalty_factor);
  cluster.set("cache", std::move(cache));
  o.set("cluster", std::move(cluster));

  o.set("tuning_interval_s", e.tuning_interval)
      .set("control_delay_s", e.control_delay)
      .set("move_penalty_s", e.move_warmup_penalty)
      .set("horizon_s", e.horizon)
      .set("oracle_lookahead", e.oracle_lookahead);

  Json membership = Json::array();
  for (const cluster::MembershipEvent& ev : e.failures.events()) {
    Json m = Json::object();
    m.set("t_s", ev.when).set("action", cluster::action_name(ev.action));
    if (ev.action == cluster::MembershipAction::kAdd) {
      m.set("speed", ev.speed);
    } else {
      m.set("server", ev.server.value());
      if (ev.action == cluster::MembershipAction::kDegrade) {
        m.set("factor", ev.factor);
      }
    }
    membership.push_back(std::move(m));
  }
  o.set("membership", std::move(membership));
  return o;
}

Json result_json(const ExperimentResult& r) {
  Json o = Json::object();
  o.set("server_count", r.server_count)
      .set("horizon_s", r.horizon)
      .set("requests_issued", r.requests_issued)
      .set("requests_completed", r.requests_completed)
      .set("events_executed", r.events_executed)
      .set("tuning_rounds", r.tuning_rounds)
      .set("shared_state_bytes", r.shared_state_bytes);
  Json queue = Json::object();
  queue.set("scheduled", r.queue.scheduled)
      .set("executed", r.queue.executed)
      .set("cancelled_skipped", r.queue.cancelled_skipped)
      .set("max_pending", r.queue.max_pending)
      .set("slab_high_water", r.queue.slab_high_water)
      .set("max_simultaneous", r.queue.max_simultaneous)
      .set("rung_spills", r.queue.rung_spills)
      .set("top_transfers", r.queue.top_transfers)
      .set("bottom_sorts", r.queue.bottom_sorts);
  o.set("sim.queue", std::move(queue));
  // Strategy identity + per-strategy counters (docs/strategies.md lists
  // each strategy's counter set). Absent for drivers that predate the
  // block (protocol/chaos runs leave the strategy name empty).
  if (!r.balance.strategy.empty()) {
    Json balance = Json::object();
    balance.set("strategy", r.balance.strategy)
        .set("per_request", r.balance.per_request);
    Json counters = Json::object();
    for (const auto& [key, value] : r.balance.counters) {
      counters.set(key, value);
    }
    balance.set("counters", std::move(counters));
    o.set("balance", std::move(balance));
  }
  o.set("aggregate", stats_json(r.aggregate));
  o.set("steady_state", stats_json(r.steady_state));
  o.set("latency_histogram", histogram_json(r.latency_histogram));

  Json per_server = Json::array();
  for (std::size_t s = 0; s < r.per_server.size(); ++s) {
    Json p = Json::object();
    p.set("server", s).set("requests", r.served[s]);
    p.set("latency", stats_json(r.per_server[s]));
    if (s < r.utilization.size()) p.set("utilization", r.utilization[s]);
    per_server.push_back(std::move(p));
  }
  o.set("per_server", std::move(per_server));

  Json shares = Json::array();
  for (const ExperimentResult::ShareSample& sample : r.shares_over_time) {
    Json row = Json::object();
    Json share = Json::array();
    for (const double v : sample.share) share.push_back(v);
    row.set("t_s", sample.when).set("share", std::move(share));
    shares.push_back(std::move(row));
  }
  o.set("shares_over_time", std::move(shares));

  Json movement = Json::object();
  Json rounds = Json::array();
  for (const metrics::MovementTracker::Round& round : r.movement) {
    Json row = Json::object();
    row.set("t_s", round.when)
        .set("moved", round.moved)
        .set("moved_weight", round.moved_weight)
        .set("cumulative", round.cumulative)
        .set("cumulative_pct", round.cumulative_pct);
    rounds.push_back(std::move(row));
  }
  movement.set("rounds", std::move(rounds))
      .set("total_moved", r.total_moved)
      .set("unique_moved", r.unique_moved)
      .set("percent_workload_moved", r.percent_workload_moved)
      .set("percent_unique_workload_moved", r.percent_unique_workload_moved);
  o.set("movement", std::move(movement));

  // Message/retry accounting (protocol experiments; all-zero otherwise).
  // docs/chaos.md documents the reconciliation identities over this block.
  const ExperimentResult::ControlPlaneStats& cp = r.control_plane;
  Json control = Json::object();
  control.set("messages_sent", cp.messages_sent)
      .set("messages_delivered", cp.messages_delivered)
      .set("drops_endpoint_down", cp.drops_endpoint_down)
      .set("drops_injected", cp.drops_injected)
      .set("duplicates_injected", cp.duplicates_injected)
      .set("bytes_sent", cp.bytes_sent)
      .set("reliable_sent", cp.reliable_sent)
      .set("retransmits", cp.retransmits)
      .set("acks_received", cp.acks_received)
      .set("duplicates_suppressed", cp.duplicates_suppressed)
      .set("retries_abandoned", cp.retries_abandoned);
  o.set("control_plane", std::move(control));
  return o;
}

}  // namespace

// Reads the TraceSink's counters without locking: the sink is not
// internally synchronized (trace_sink.h documents the exclusive-ownership
// contract), so callers must only pass a sink whose run has completed —
// the experiment barrier, not a mutex, is what makes these reads safe.
Json manifest_json(const SimSpec& spec, const ExperimentResult& result,
                   const obs::TraceSink* trace) {
  Json root = Json::object();
  root.set("schema_version", kManifestSchemaVersion);

  Json generator = Json::object();
  generator.set("tool", "anu_sim").set("git", obs::git_describe());
  root.set("generator", std::move(generator));

  root.set("config", config_json(spec));
  root.set("result", result_json(result));

  Json tr = Json::object();
  tr.set("emitted", trace ? trace->emitted() : std::size_t{0})
      .set("retained", trace ? trace->size() : std::size_t{0})
      .set("dropped", trace ? trace->dropped() : std::size_t{0});
  root.set("trace", std::move(tr));
  return root;
}

bool write_manifest_file(const std::string& path, const SimSpec& spec,
                         const ExperimentResult& result,
                         const obs::TraceSink* trace) {
  std::ofstream f(path);
  if (!f) return false;
  manifest_json(spec, result, trace).write_pretty(f);
  f << '\n';
  return static_cast<bool>(f);
}

}  // namespace anu::driver
