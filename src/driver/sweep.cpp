#include "driver/sweep.h"

#include "common/thread_pool.h"

namespace anu::driver {

void run_parallel(const std::vector<std::function<void()>>& jobs,
                  std::size_t threads) {
  ThreadPool::global().run_batch(jobs, threads);
}

void run_indexed(std::size_t count,
                 const std::function<void(std::size_t)>& fn,
                 std::size_t threads) {
  ThreadPool::global().run_indexed(count, fn, threads);
}

}  // namespace anu::driver
