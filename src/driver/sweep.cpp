#include "driver/sweep.h"

#include <atomic>
#include <thread>

namespace anu::driver {

void run_parallel(const std::vector<std::function<void()>>& jobs,
                  std::size_t threads) {
  if (jobs.empty()) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, jobs.size());
  if (threads == 1) {
    for (const auto& job : jobs) job();
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size()) return;
        jobs[i]();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace anu::driver
