#include "driver/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace anu::driver {

void run_parallel(const std::vector<std::function<void()>>& jobs,
                  std::size_t threads) {
  if (jobs.empty()) return;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, jobs.size());
  if (threads == 1) {
    for (const auto& job : jobs) job();
    return;
  }
  // A throwing job must not escape its worker thread (that would call
  // std::terminate). The first exception is captured, the remaining jobs
  // are abandoned, and the exception is rethrown on the joining thread —
  // the same contract as the single-threaded path, minus the jobs already
  // started on other workers.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        if (failed.load(std::memory_order_acquire)) return;
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size()) return;
        try {
          jobs[i]();
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_release);
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace anu::driver
