// Per-run telemetry manifest (docs/observability.md).
//
// One JSON document per run capturing everything needed to reproduce and
// re-analyze it offline: the full SimSpec (workload generator parameters
// and seed, system, cluster, tuning knobs, membership script), the build's
// git-describe, the complete ExperimentResult (aggregate and steady-state
// stats, histogram buckets, per-server stats, share samples, movement
// rounds), and the trace sink's emit/retain/drop counters. Lives in the
// driver (not obs) because it serializes driver types; obs stays a leaf
// library.
#pragma once

#include <string>

#include "driver/config_file.h"
#include "driver/experiment.h"
#include "obs/json.h"
#include "obs/trace_sink.h"

namespace anu::driver {

/// Current manifest schema version; bumped on any incompatible field change.
inline constexpr int kManifestSchemaVersion = 1;

/// Builds the manifest document. `trace` may be null (the "trace" section
/// then reports zero events). Field-by-field schema: docs/observability.md.
[[nodiscard]] obs::Json manifest_json(const SimSpec& spec,
                                      const ExperimentResult& result,
                                      const obs::TraceSink* trace = nullptr);

/// Writes manifest_json(...) pretty-printed to `path`. Returns false on I/O
/// failure.
bool write_manifest_file(const std::string& path, const SimSpec& spec,
                         const ExperimentResult& result,
                         const obs::TraceSink* trace = nullptr);

}  // namespace anu::driver
