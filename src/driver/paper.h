// The paper's experimental setup (§5.1), in one place.
//
// Every figure harness and example builds on these exact configurations so
// numbers are comparable across binaries:
//   * cluster: five servers with processing power 1, 3, 5, 7, 9;
//   * synthetic workload: 66,401 requests against 50 file sets over 200
//     minutes, heavy-tailed Pareto inter-arrivals, X~U[1,10] weights;
//   * trace workload: DFSTrace shape — 21 file sets, 112,590 requests, one
//     hour (synthesized; see DESIGN.md substitutions);
//   * tuning interval: two minutes.
#pragma once

#include "cluster/cluster.h"
#include "driver/experiment.h"
#include "workload/synthetic.h"
#include "workload/trace.h"

namespace anu::driver {

/// §5.1 synthetic workload. `utilization` is the offered-load fraction of
/// total cluster capacity the scaling factor c is tuned to; the paper says
/// only "tuned to avoid overload", and 0.55 reproduces the reported
/// behaviour (see EXPERIMENTS.md). Figures that need the cluster to run hot
/// (Fig. 8's granularity tradeoff) pass a higher value.
[[nodiscard]] inline workload::Workload paper_synthetic_workload(
    double utilization = 0.55, std::uint64_t seed = 42) {
  workload::SyntheticConfig config;
  config.seed = seed;
  config.target_utilization = utilization;
  return make_synthetic_workload(config);
}

/// §5.1 DFSTrace-shaped trace workload (synthesized).
[[nodiscard]] inline workload::Workload paper_trace_workload(
    double utilization = 0.55, std::uint64_t seed = 7) {
  workload::TraceSynthConfig config;
  config.seed = seed;
  config.target_utilization = utilization;
  return synthesize_trace(config);
}

/// Cluster + two-minute tuning interval of §5.1.
[[nodiscard]] inline ExperimentConfig paper_experiment_config() {
  ExperimentConfig config;
  config.cluster = cluster::paper_cluster();
  config.tuning_interval = 120.0;
  config.series_window = 300.0;  // five-minute resolution for Figs. 4/5
  return config;
}

}  // namespace anu::driver
