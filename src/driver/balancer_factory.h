// Constructs any selectable load-management system by name: the paper's
// four (§5.1) plus the modern randomized-dispatch baselines
// (docs/strategies.md).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "balance/balancer.h"
#include "balance/join_idle_queue.h"
#include "balance/jsq_d.h"
#include "balance/redundancy_d.h"
#include "balance/virtual_processor.h"
#include "core/anu_balancer.h"

namespace anu::driver {

enum class SystemKind {
  kSimpleRandom,
  kDynPrescient,
  kVirtualProcessor,
  kAnu,
  kJsqD,
  kJoinIdleQueue,
  kRedundancyD,
};

/// Every selectable system: the paper's four in presentation order, then
/// the dispatch baselines. --compare and the scenario matrix iterate this.
inline constexpr SystemKind kAllSystems[] = {
    SystemKind::kSimpleRandom,     SystemKind::kDynPrescient,
    SystemKind::kVirtualProcessor, SystemKind::kAnu,
    SystemKind::kJsqD,             SystemKind::kJoinIdleQueue,
    SystemKind::kRedundancyD};

struct SystemConfig {
  SystemKind kind = SystemKind::kAnu;
  core::AnuConfig anu;
  balance::VirtualProcessorConfig vp;
  std::uint64_t simple_hash_seed = 0x73696d706c65ULL;
  balance::JsqDConfig jsq;
  balance::JiqConfig jiq;
  balance::RedundancyDConfig red;
};

[[nodiscard]] std::unique_ptr<balance::LoadBalancer> make_balancer(
    const SystemConfig& config, std::size_t server_count);

[[nodiscard]] std::string system_label(SystemKind kind);

/// Parses a system name as accepted by config files (`system <name>`) and
/// the anu_sim --strategy flag: the config short forms (simple, prescient,
/// vp, anu, jsqd, jiq, redundancy) and the display labels
/// (simple-random, dyn-prescient, virtual-processor, jsq-d, redundancy-d).
[[nodiscard]] std::optional<SystemKind> parse_system_kind(
    std::string_view name);

}  // namespace anu::driver
