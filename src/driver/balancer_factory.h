// Constructs any of the paper's four load-management systems by name.
#pragma once

#include <memory>
#include <string>

#include "balance/balancer.h"
#include "balance/virtual_processor.h"
#include "core/anu_balancer.h"

namespace anu::driver {

enum class SystemKind {
  kSimpleRandom,
  kDynPrescient,
  kVirtualProcessor,
  kAnu,
};

/// All four systems, in the paper's presentation order.
inline constexpr SystemKind kAllSystems[] = {
    SystemKind::kSimpleRandom, SystemKind::kDynPrescient,
    SystemKind::kVirtualProcessor, SystemKind::kAnu};

struct SystemConfig {
  SystemKind kind = SystemKind::kAnu;
  core::AnuConfig anu;
  balance::VirtualProcessorConfig vp;
  std::uint64_t simple_hash_seed = 0x73696d706c65ULL;
};

[[nodiscard]] std::unique_ptr<balance::LoadBalancer> make_balancer(
    const SystemConfig& config, std::size_t server_count);

[[nodiscard]] std::string system_label(SystemKind kind);

}  // namespace anu::driver
