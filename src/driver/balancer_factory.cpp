#include "driver/balancer_factory.h"

#include "balance/prescient.h"
#include "balance/simple_random.h"
#include "common/assert.h"

namespace anu::driver {

std::unique_ptr<balance::LoadBalancer> make_balancer(
    const SystemConfig& config, std::size_t server_count) {
  switch (config.kind) {
    case SystemKind::kSimpleRandom:
      return std::make_unique<balance::SimpleRandomBalancer>(
          server_count, config.simple_hash_seed);
    case SystemKind::kDynPrescient:
      return std::make_unique<balance::PrescientBalancer>(server_count);
    case SystemKind::kVirtualProcessor:
      return std::make_unique<balance::VirtualProcessorBalancer>(config.vp,
                                                                 server_count);
    case SystemKind::kAnu:
      return std::make_unique<core::AnuBalancer>(config.anu, server_count);
  }
  ANU_ENSURE(false && "unknown system kind");
  return nullptr;
}

std::string system_label(SystemKind kind) {
  switch (kind) {
    case SystemKind::kSimpleRandom: return "simple-random";
    case SystemKind::kDynPrescient: return "dyn-prescient";
    case SystemKind::kVirtualProcessor: return "virtual-processor";
    case SystemKind::kAnu: return "anu";
  }
  return "?";
}

}  // namespace anu::driver
