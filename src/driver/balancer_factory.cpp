#include "driver/balancer_factory.h"

#include "balance/prescient.h"
#include "balance/simple_random.h"
#include "common/assert.h"

namespace anu::driver {

std::unique_ptr<balance::LoadBalancer> make_balancer(
    const SystemConfig& config, std::size_t server_count) {
  switch (config.kind) {
    case SystemKind::kSimpleRandom:
      return std::make_unique<balance::SimpleRandomBalancer>(
          server_count, config.simple_hash_seed);
    case SystemKind::kDynPrescient:
      return std::make_unique<balance::PrescientBalancer>(server_count);
    case SystemKind::kVirtualProcessor:
      return std::make_unique<balance::VirtualProcessorBalancer>(config.vp,
                                                                 server_count);
    case SystemKind::kAnu:
      return std::make_unique<core::AnuBalancer>(config.anu, server_count);
    case SystemKind::kJsqD:
      return std::make_unique<balance::JsqDBalancer>(config.jsq,
                                                     server_count);
    case SystemKind::kJoinIdleQueue:
      return std::make_unique<balance::JoinIdleQueueBalancer>(config.jiq,
                                                              server_count);
    case SystemKind::kRedundancyD:
      return std::make_unique<balance::RedundancyDBalancer>(config.red,
                                                            server_count);
  }
  ANU_ENSURE(false && "unknown system kind");
  return nullptr;
}

std::string system_label(SystemKind kind) {
  switch (kind) {
    case SystemKind::kSimpleRandom: return "simple-random";
    case SystemKind::kDynPrescient: return "dyn-prescient";
    case SystemKind::kVirtualProcessor: return "virtual-processor";
    case SystemKind::kAnu: return "anu";
    case SystemKind::kJsqD: return "jsq-d";
    case SystemKind::kJoinIdleQueue: return "jiq";
    case SystemKind::kRedundancyD: return "redundancy-d";
  }
  return "?";
}

std::optional<SystemKind> parse_system_kind(std::string_view name) {
  if (name == "anu") return SystemKind::kAnu;
  if (name == "simple" || name == "simple-random" || name == "random") {
    return SystemKind::kSimpleRandom;
  }
  if (name == "prescient" || name == "dyn-prescient") {
    return SystemKind::kDynPrescient;
  }
  if (name == "vp" || name == "virtual-processor") {
    return SystemKind::kVirtualProcessor;
  }
  if (name == "jsqd" || name == "jsq-d" || name == "jsq") {
    return SystemKind::kJsqD;
  }
  if (name == "jiq") return SystemKind::kJoinIdleQueue;
  if (name == "redundancy" || name == "redundancy-d" || name == "red") {
    return SystemKind::kRedundancyD;
  }
  return std::nullopt;
}

}  // namespace anu::driver
