#include "driver/experiment.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "metrics/latency_tracker.h"
#include "sim/monitor.h"
#include "sim/simulation.h"

namespace anu::driver {

namespace {

/// Per-interval per-file-set offered demand, read ahead from the schedule —
/// the "perfect knowledge of workload properties" of §5.1.
std::vector<std::vector<double>> lookahead_demands(
    const workload::Workload& w, SimTime interval, SimTime horizon) {
  const auto intervals =
      static_cast<std::size_t>(std::ceil(horizon / interval)) + 1;
  std::vector<std::vector<double>> demand(
      intervals, std::vector<double>(w.file_set_count(), 0.0));
  for (const workload::Request& r : w.requests()) {
    auto slot = static_cast<std::size_t>(r.arrival / interval);
    slot = std::min(slot, intervals - 1);
    demand[slot][r.file_set.value()] += r.demand;
  }
  return demand;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const workload::Workload& workload,
                                balance::LoadBalancer& balancer) {
  ANU_REQUIRE(config.tuning_interval > 0.0);
  const SimTime horizon =
      config.horizon > 0.0 ? config.horizon : workload.span() + 1.0;

  sim::Simulation sim;
  // Attach the sink before the cluster constructs so the initial
  // server_add roster lands in the trace.
  obs::TraceSink* const trace = config.trace;
  sim.set_trace(trace);
  cluster::Cluster cluster(sim, config.cluster);
  metrics::LatencyTracker latency(cluster.server_count());

  std::vector<double> weights;
  weights.reserve(workload.file_set_count());
  for (const auto& fs : workload.file_sets()) weights.push_back(fs.weight);
  metrics::MovementTracker movement(weights);

  // Routing table: where requests actually go. With control_delay == 0 it
  // mirrors the balancer's placement instantly; otherwise a tuning round's
  // changes are committed only after the control-plane pipeline latency,
  // and requests ride the previous placement until then.
  std::vector<ServerId> routing;

  // On every committed move: redirect the file set's waiting requests to
  // its new server (the shed protocol of §4 hands pending work to the
  // acquirer) and optionally arm the cold-cache penalty.
  std::vector<double> pending_penalty(workload.file_set_count(), 0.0);
  auto commit_moves = [&](const balance::RebalanceResult& result) {
    for (const balance::FileSetMove& move : result.moves) {
      // The source is whatever the routing table says *now* — an earlier
      // in-flight round may already have moved this file set.
      const ServerId from = routing[move.file_set.value()];
      if (from == move.to) continue;
      // A target that failed while this commit was in flight is skipped;
      // the failure path already rerouted its file sets.
      if (!cluster.is_up(move.to)) continue;
      cluster.migrate_queued(move.file_set, from, move.to);
      // Traced at commit time (not decision time), so with control_delay
      // the trace shows when routing actually changed.
      if (trace) {
        trace->emit(sim.now(), obs::EventType::kFileSetMove,
                    move.file_set.value(), from.value(), move.to.value());
      }
      routing[move.file_set.value()] = move.to;
      if (config.move_warmup_penalty > 0.0) {
        pending_penalty[move.file_set.value()] = config.move_warmup_penalty;
      }
    }
  };
  auto apply_moves = [&](const balance::RebalanceResult& result,
                         bool immediate) {
    if (immediate || config.control_delay <= 0.0) {
      commit_moves(result);
    } else {
      sim.schedule_after(config.control_delay,
                         [&, result] { commit_moves(result); });
    }
  };

  // Oracle views for prescient systems.
  const bool want_oracle = config.oracle_lookahead;
  const auto demand_matrix =
      want_oracle
          ? lookahead_demands(workload, config.tuning_interval, horizon)
          : std::vector<std::vector<double>>{};
  auto oracle_for = [&](std::size_t interval_index) {
    balance::OracleView view;
    if (want_oracle && interval_index < demand_matrix.size()) {
      view.file_set_demand = demand_matrix[interval_index];
    } else {
      view.file_set_demand = weights;
    }
    view.server_speeds = cluster.up_speeds();
    return view;
  };

  std::uint64_t issued = 0;
  auto dispatch = [&](FileSetId fs, double demand) {
    const ServerId target = routing[fs.value()];
    double extra = 0.0;
    std::swap(extra, pending_penalty[fs.value()]);
    if (trace) {
      trace->emit(sim.now(), obs::EventType::kRequestIssue, fs.value(),
                  target.value(), 0, demand + extra);
    }
    cluster.submit(target, fs, demand + extra);
  };

  RunningStats steady_state;
  LogHistogram histogram;
  cluster.on_complete = [&](const cluster::Completion& c) {
    latency.observe(c);
    histogram.add(c.latency());
    if (c.completion >= horizon * 0.5) steady_state.add(c.latency());
    if (trace) {
      trace->emit(c.completion, obs::EventType::kRequestComplete,
                  c.file_set.value(), c.server.value(), 0, c.latency());
    }
  };
  // Requests stranded on a failing server re-dispatch through the (already
  // updated) placement.
  cluster.on_flush = [&](FileSetId fs, double demand) {
    dispatch(fs, demand);
  };

  // Initial placement: prescient systems see interval 0; ANU and simple
  // randomization start blind (§4/§5.1).
  balancer.set_oracle(oracle_for(0));
  balancer.register_file_sets(workload.file_sets());
  routing.resize(workload.file_set_count());
  for (std::uint32_t fs = 0; fs < workload.file_set_count(); ++fs) {
    routing[fs] = balancer.server_for(FileSetId(fs));
  }

  // Arrival cursor: one in-flight event that submits request i and arms
  // request i+1 (keeps the calendar O(servers), not O(requests)).
  const auto& requests = workload.requests();
  std::size_t cursor = 0;
  std::function<void()> arrive = [&] {
    while (cursor < requests.size() &&
           requests[cursor].arrival <= sim.now()) {
      const workload::Request& r = requests[cursor++];
      ++issued;
      dispatch(r.file_set, r.demand);
    }
    if (cursor < requests.size()) {
      sim.schedule_at(requests[cursor].arrival, arrive);
    }
  };
  if (!requests.empty()) {
    sim.schedule_at(requests.front().arrival, arrive);
  }

  // The tuning loop (§4): collect interval reports, delegate round, record
  // movement.
  std::uint64_t rounds = 0;
  std::vector<ExperimentResult::ShareSample> share_samples;
  sim::PeriodicMonitor tuner(sim, config.tuning_interval, [&](SimTime now) {
    if (now > horizon) return;
    ++rounds;
    for (std::uint32_t s = 0; s < cluster.server_count(); ++s) {
      const auto id = ServerId(s);
      if (!cluster.is_up(id)) continue;
      const auto report = cluster.server(id).take_interval_report();
      balancer.report(id,
                      balance::ServerReport{report.mean_latency,
                                            report.completed});
    }
    const auto next_interval =
        static_cast<std::size_t>(std::llround(now / config.tuning_interval));
    balancer.set_oracle(oracle_for(next_interval));
    const balance::RebalanceResult result = balancer.tune();
    movement.record(now, result);
    apply_moves(result, /*immediate=*/false);

    // Sample the assigned-weight share per server (the share trace of
    // ExperimentResult::shares_over_time).
    ExperimentResult::ShareSample sample;
    sample.when = now;
    sample.share.assign(cluster.server_count(), 0.0);
    double total_weight = 0.0;
    for (std::uint32_t fs = 0; fs < workload.file_set_count(); ++fs) {
      const double w = weights[fs];
      sample.share[balancer.server_for(FileSetId(fs)).value()] += w;
      total_weight += w;
    }
    if (total_weight > 0.0) {
      for (double& s : sample.share) s /= total_weight;
    }
    if (trace) {
      const auto& round = movement.rounds().back();
      trace->emit(now, obs::EventType::kTuningRound,
                  static_cast<std::uint32_t>(rounds),
                  static_cast<std::uint32_t>(round.moved), 0,
                  round.moved_weight, round.cumulative_pct);
      for (std::uint32_t s = 0; s < sample.share.size(); ++s) {
        trace->emit(now, obs::EventType::kRegionRetune, s, 0, 0,
                    sample.share[s]);
      }
    }
    share_samples.push_back(std::move(sample));
  });

  // Scripted membership changes. Balancer first (placement must be valid
  // before the cluster flushes queued requests back through dispatch).
  for (const cluster::MembershipEvent& event : config.failures.events()) {
    sim.schedule_at(event.when, [&, event] {
      switch (event.action) {
        case cluster::MembershipAction::kFail:
        case cluster::MembershipAction::kRemove: {
          const auto moves = balancer.on_server_failed(event.server);
          movement.record(sim.now(), moves);
          apply_moves(moves, /*immediate=*/true);
          // With control_delay, routing may lag the balancer and still pin
          // a file set to the failing server the balancer never saw it on;
          // sweep every such entry onto the balancer's current placement.
          for (std::uint32_t fs = 0; fs < routing.size(); ++fs) {
            if (routing[fs] == event.server) {
              routing[fs] = balancer.server_for(FileSetId(fs));
            }
          }
          cluster.fail_server(event.server);
          break;
        }
        case cluster::MembershipAction::kRecover: {
          cluster.recover_server(event.server);
          balancer.set_oracle(oracle_for(static_cast<std::size_t>(
              sim.now() / config.tuning_interval)));
          const auto moves = balancer.on_server_recovered(event.server);
          movement.record(sim.now(), moves);
          apply_moves(moves, /*immediate=*/true);
          break;
        }
        case cluster::MembershipAction::kAdd: {
          const ServerId id = cluster.add_server(event.speed);
          latency.add_server();
          balancer.set_oracle(oracle_for(static_cast<std::size_t>(
              sim.now() / config.tuning_interval)));
          const auto moves = balancer.on_server_added(id);
          movement.record(sim.now(), moves);
          apply_moves(moves, /*immediate=*/true);
          break;
        }
        case cluster::MembershipAction::kDegrade:
          // Gray failure: membership is untouched — only the latency the
          // server reports can tell the tuner something is wrong.
          cluster.degrade_server(event.server, event.factor);
          break;
        case cluster::MembershipAction::kRestore:
          cluster.restore_server(event.server);
          break;
      }
    });
  }

  sim.run_until(horizon);
  tuner.stop();

  ExperimentResult result;
  result.server_count = cluster.server_count();
  result.horizon = horizon;
  result.aggregate = latency.aggregate();
  result.steady_state = steady_state;
  result.latency_histogram = histogram;
  result.per_server.reserve(cluster.server_count());
  result.served.reserve(cluster.server_count());
  result.latency_over_time.reserve(cluster.server_count());
  result.utilization.reserve(cluster.server_count());
  for (std::uint32_t s = 0; s < cluster.server_count(); ++s) {
    const auto id = ServerId(s);
    result.per_server.push_back(latency.server_stats(id));
    result.served.push_back(latency.served(id));
    result.latency_over_time.push_back(
        latency.server_series(id).windowed_mean(config.series_window,
                                                horizon));
    result.utilization.push_back(cluster.server(id).utilization(horizon));
  }
  result.shares_over_time = std::move(share_samples);
  result.movement = movement.rounds();
  result.total_moved = movement.total_moved();
  result.unique_moved = movement.unique_moved();
  result.percent_workload_moved = movement.percent_workload_moved();
  result.percent_unique_workload_moved =
      movement.percent_unique_workload_moved();
  result.shared_state_bytes = balancer.shared_state_bytes();
  result.requests_issued = issued;
  result.requests_completed = latency.total_served();
  result.events_executed = sim.events_executed();
  result.queue = sim.queue_stats();
  result.tuning_rounds = rounds;
  return result;
}

}  // namespace anu::driver
