#include "driver/experiment.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/assert.h"
#include "metrics/latency_tracker.h"
#include "sim/monitor.h"
#include "sim/simulation.h"

namespace anu::driver {

namespace {

/// Per-interval per-file-set offered demand, read ahead from the schedule —
/// the "perfect knowledge of workload properties" of §5.1.
std::vector<std::vector<double>> lookahead_demands(
    const workload::Workload& w, SimTime interval, SimTime horizon) {
  const auto intervals =
      static_cast<std::size_t>(std::ceil(horizon / interval)) + 1;
  std::vector<std::vector<double>> demand(
      intervals, std::vector<double>(w.file_set_count(), 0.0));
  for (const workload::Request& r : w.requests()) {
    auto slot = static_cast<std::size_t>(r.arrival / interval);
    slot = std::min(slot, intervals - 1);
    demand[slot][r.file_set.value()] += r.demand;
  }
  return demand;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const workload::Workload& workload,
                                balance::LoadBalancer& balancer) {
  ANU_REQUIRE(config.tuning_interval > 0.0);
  const SimTime horizon =
      config.horizon > 0.0 ? config.horizon : workload.span() + 1.0;

  sim::Simulation sim;
  // Attach the sink before the cluster constructs so the initial
  // server_add roster lands in the trace.
  obs::TraceSink* const trace = config.trace;
  sim.set_trace(trace);
  cluster::Cluster cluster(sim, config.cluster);
  metrics::LatencyTracker latency(cluster.server_count());

  std::vector<double> weights;
  weights.reserve(workload.file_set_count());
  for (const auto& fs : workload.file_sets()) weights.push_back(fs.weight);
  metrics::MovementTracker movement(weights);

  // Live-state adapter for dispatch strategies (JSQ(d) / JIQ / redundancy):
  // the balance layer sees queue lengths and speeds without depending on
  // src/cluster.
  struct LiveView final : balance::ClusterView {
    explicit LiveView(cluster::Cluster& c) : cluster(c) {}
    std::size_t server_count() const override { return cluster.server_count(); }
    bool is_up(ServerId id) const override { return cluster.is_up(id); }
    std::size_t queue_length(ServerId id) const override {
      return cluster.server(id).queue_length();
    }
    double speed(ServerId id) const override {
      return cluster.is_up(id) ? cluster.server(id).speed() : 0.0;
    }
    cluster::Cluster& cluster;
  } live_view(cluster);
  balancer.bind_cluster(&live_view);
  const bool per_request = balancer.per_request();
  cluster.on_idle = [&](ServerId s) { balancer.on_server_idle(s); };

  // Routing table: where requests actually go. With control_delay == 0 it
  // mirrors the balancer's placement instantly; otherwise a tuning round's
  // changes are committed only after the control-plane pipeline latency,
  // and requests ride the previous placement until then.
  std::vector<ServerId> routing;

  // On every committed move: redirect the file set's waiting requests to
  // its new server (the shed protocol of §4 hands pending work to the
  // acquirer) and optionally arm the cold-cache penalty.
  std::vector<double> pending_penalty(workload.file_set_count(), 0.0);
  auto commit_moves = [&](const balance::RebalanceResult& result) {
    for (const balance::FileSetMove& move : result.moves) {
      // The source is whatever the routing table says *now* — an earlier
      // in-flight round may already have moved this file set.
      const ServerId from = routing[move.file_set.value()];
      if (from == move.to) continue;
      // A target that failed while this commit was in flight is skipped;
      // the failure path already rerouted its file sets.
      if (!cluster.is_up(move.to)) continue;
      cluster.migrate_queued(move.file_set, from, move.to);
      // Traced at commit time (not decision time), so with control_delay
      // the trace shows when routing actually changed.
      if (trace) {
        trace->emit(sim.now(), obs::EventType::kFileSetMove,
                    move.file_set.value(), from.value(), move.to.value());
      }
      routing[move.file_set.value()] = move.to;
      if (config.move_warmup_penalty > 0.0) {
        pending_penalty[move.file_set.value()] = config.move_warmup_penalty;
      }
    }
  };
  auto apply_moves = [&](const balance::RebalanceResult& result,
                         bool immediate) {
    if (immediate || config.control_delay <= 0.0) {
      commit_moves(result);
    } else {
      sim.schedule_after(config.control_delay,
                         [&, result] { commit_moves(result); });
    }
  };

  // Oracle views for prescient systems.
  const bool want_oracle = config.oracle_lookahead;
  const auto demand_matrix =
      want_oracle
          ? lookahead_demands(workload, config.tuning_interval, horizon)
          : std::vector<std::vector<double>>{};
  auto oracle_for = [&](std::size_t interval_index) {
    balance::OracleView view;
    if (want_oracle && interval_index < demand_matrix.size()) {
      view.file_set_demand = demand_matrix[interval_index];
    } else {
      view.file_set_demand = weights;
    }
    view.server_speeds = cluster.up_speeds();
    return view;
  };

  // Replica races for redundancy dispatch. Each multi-target decision forms
  // a group; the first replica to start (cancel-on-start) or complete
  // (cancel-on-complete) cancels its siblings through the cluster's cancel
  // handles, so exactly one completion per group reaches the latency stats.
  // A replica stranded on a failing server is dropped from its group, and a
  // group that loses every live replica re-dispatches the request.
  struct ReplicaManager {
    struct Replica {
      ServerId server;
      std::uint64_t id = 0;
      bool active = false;
    };
    struct Group {
      FileSetId fs;
      double demand = 0.0;
      balance::DispatchDecision::Cancel mode =
          balance::DispatchDecision::Cancel::kOnComplete;
      bool claimed = false;
      std::vector<Replica> replicas;
    };

    cluster::Cluster& cluster;
    std::unordered_map<std::uint64_t, Group> groups = {};
    std::unordered_map<std::uint64_t, std::uint64_t> group_of = {};  // ->gid
    std::uint64_t next_id = 1;  // job ids and group ids share one counter
    std::function<void(FileSetId, double)> redispatch = nullptr;
    std::uint64_t submitted = 0;
    std::uint64_t cancelled_queued = 0;
    std::uint64_t cancelled_in_service = 0;
    std::uint64_t elided = 0;   // never submitted: a sibling already started
    std::uint64_t rescued = 0;  // all replicas lost to failures, re-dispatched

    void cancel_losers(Group& group, std::uint64_t winner) {
      for (Replica& rep : group.replicas) {
        if (!rep.active || rep.id == winner) continue;
        switch (cluster.server(rep.server).cancel(rep.id)) {
          case sim::CancelOutcome::kQueued: ++cancelled_queued; break;
          case sim::CancelOutcome::kInService: ++cancelled_in_service; break;
          case sim::CancelOutcome::kNotFound: break;
        }
        rep.active = false;
        group_of.erase(rep.id);
      }
    }
    void on_start(std::uint64_t id) {
      const auto it = group_of.find(id);
      if (it == group_of.end()) return;
      Group& group = groups.at(it->second);
      if (group.mode != balance::DispatchDecision::Cancel::kOnStart) return;
      group.claimed = true;
      cancel_losers(group, id);
    }
    void on_complete(std::uint64_t id) {
      const auto it = group_of.find(id);
      if (it == group_of.end()) return;
      const std::uint64_t gid = it->second;
      cancel_losers(groups.at(gid), id);
      group_of.erase(id);
      groups.erase(gid);
    }
    void on_lost(std::uint64_t id) {
      const auto it = group_of.find(id);
      if (it == group_of.end()) return;
      const std::uint64_t gid = it->second;
      Group& group = groups.at(gid);
      group_of.erase(id);
      bool any_active = false;
      for (Replica& rep : group.replicas) {
        if (rep.id == id) rep.active = false;
        any_active = any_active || rep.active;
      }
      if (any_active) return;
      const FileSetId fs = group.fs;
      const double demand = group.demand;
      groups.erase(gid);
      ++rescued;
      redispatch(fs, demand);
    }
    void submit(const balance::DispatchDecision& decision, FileSetId fs,
                double demand, obs::TraceSink* trace, SimTime now) {
      const std::uint64_t gid = next_id++;
      Group group;
      group.fs = fs;
      group.demand = demand;
      group.mode = decision.cancel;
      group.replicas.resize(decision.count);
      for (std::uint32_t i = 0; i < decision.count; ++i) {
        group.replicas[i].server = decision.targets[i];
        group.replicas[i].id = next_id++;
      }
      groups.emplace(gid, std::move(group));
      for (std::uint32_t i = 0; i < decision.count; ++i) {
        // Re-fetch each iteration: submit_replica can fire on_start
        // synchronously (idle server), which claims the group.
        Group& g = groups.at(gid);
        if (g.claimed) {
          ++elided;
          continue;
        }
        Replica& rep = g.replicas[i];
        rep.active = true;
        group_of[rep.id] = gid;
        ++submitted;
        if (trace) {
          trace->emit(now, obs::EventType::kRequestIssue, fs.value(),
                      rep.server.value(), 0, demand);
        }
        const std::uint64_t rid = rep.id;
        cluster.server(rep.server)
            .submit_replica(fs, demand, rid,
                            [this, rid](SimTime) { on_start(rid); });
      }
    }
  } replicas{cluster};

  std::uint64_t issued = 0;
  std::function<void(FileSetId, double)> dispatch = [&](FileSetId fs,
                                                        double demand) {
    if (per_request) {
      const balance::DispatchDecision decision = balancer.dispatch(fs, demand);
      ANU_REQUIRE(decision.count >= 1);
      if (decision.count == 1) {
        if (trace) {
          trace->emit(sim.now(), obs::EventType::kRequestIssue, fs.value(),
                      decision.targets[0].value(), 0, demand);
        }
        cluster.submit(decision.targets[0], fs, demand);
      } else {
        replicas.submit(decision, fs, demand, trace, sim.now());
      }
      return;
    }
    const ServerId target = routing[fs.value()];
    double extra = 0.0;
    std::swap(extra, pending_penalty[fs.value()]);
    if (trace) {
      trace->emit(sim.now(), obs::EventType::kRequestIssue, fs.value(),
                  target.value(), 0, demand + extra);
    }
    cluster.submit(target, fs, demand + extra);
  };
  replicas.redispatch = [&dispatch](FileSetId fs, double demand) {
    dispatch(fs, demand);
  };

  RunningStats steady_state;
  LogHistogram histogram;
  cluster.on_complete = [&](const cluster::Completion& c) {
    if (c.job_id != 0) replicas.on_complete(c.job_id);
    latency.observe(c);
    histogram.add(c.latency());
    if (c.completion >= horizon * 0.5) steady_state.add(c.latency());
    if (trace) {
      trace->emit(c.completion, obs::EventType::kRequestComplete,
                  c.file_set.value(), c.server.value(), 0, c.latency());
    }
  };
  // Requests stranded on a failing server re-dispatch: plain requests go
  // back through dispatch (placement is already updated); replicas are
  // dropped from their race and only re-dispatched when none survive.
  cluster.on_flush = [&](FileSetId fs, double demand, std::uint64_t job_id) {
    if (job_id != 0) {
      replicas.on_lost(job_id);
      return;
    }
    dispatch(fs, demand);
  };

  // Initial placement: prescient systems see interval 0; ANU and simple
  // randomization start blind (§4/§5.1). Dispatch strategies route each
  // arrival live and never consult the routing table.
  balancer.set_oracle(oracle_for(0));
  balancer.register_file_sets(workload.file_sets());
  routing.resize(workload.file_set_count());
  if (!per_request) {
    for (std::uint32_t fs = 0; fs < workload.file_set_count(); ++fs) {
      routing[fs] = balancer.server_for(FileSetId(fs));
    }
  }

  // Arrival cursor: one in-flight event that submits request i and arms
  // request i+1 (keeps the calendar O(servers), not O(requests)).
  const auto& requests = workload.requests();
  std::size_t cursor = 0;
  std::function<void()> arrive = [&] {
    while (cursor < requests.size() &&
           requests[cursor].arrival <= sim.now()) {
      const workload::Request& r = requests[cursor++];
      ++issued;
      dispatch(r.file_set, r.demand);
    }
    if (cursor < requests.size()) {
      sim.schedule_at(requests[cursor].arrival, arrive);
    }
  };
  if (!requests.empty()) {
    sim.schedule_at(requests.front().arrival, arrive);
  }

  // The tuning loop (§4): collect interval reports, delegate round, record
  // movement.
  std::uint64_t rounds = 0;
  std::vector<ExperimentResult::ShareSample> share_samples;
  sim::PeriodicMonitor tuner(sim, config.tuning_interval, [&](SimTime now) {
    if (now > horizon) return;
    ++rounds;
    for (std::uint32_t s = 0; s < cluster.server_count(); ++s) {
      const auto id = ServerId(s);
      if (!cluster.is_up(id)) continue;
      const auto report = cluster.server(id).take_interval_report();
      balancer.report(id,
                      balance::ServerReport{report.mean_latency,
                                            report.completed});
    }
    const auto next_interval =
        static_cast<std::size_t>(std::llround(now / config.tuning_interval));
    balancer.set_oracle(oracle_for(next_interval));
    const balance::RebalanceResult result = balancer.tune();
    movement.record(now, result);
    apply_moves(result, /*immediate=*/false);

    if (trace) {
      const auto& round = movement.rounds().back();
      trace->emit(now, obs::EventType::kTuningRound,
                  static_cast<std::uint32_t>(rounds),
                  static_cast<std::uint32_t>(round.moved), 0,
                  round.moved_weight, round.cumulative_pct);
    }
    // Sample the assigned-weight share per server (the share trace of
    // ExperimentResult::shares_over_time). Dispatch strategies have no
    // placement to sample.
    if (per_request) return;
    ExperimentResult::ShareSample sample;
    sample.when = now;
    sample.share.assign(cluster.server_count(), 0.0);
    double total_weight = 0.0;
    for (std::uint32_t fs = 0; fs < workload.file_set_count(); ++fs) {
      const double w = weights[fs];
      sample.share[balancer.server_for(FileSetId(fs)).value()] += w;
      total_weight += w;
    }
    if (total_weight > 0.0) {
      for (double& s : sample.share) s /= total_weight;
    }
    if (trace) {
      for (std::uint32_t s = 0; s < sample.share.size(); ++s) {
        trace->emit(now, obs::EventType::kRegionRetune, s, 0, 0,
                    sample.share[s]);
      }
    }
    share_samples.push_back(std::move(sample));
  });

  // Scripted membership changes. Balancer first (placement must be valid
  // before the cluster flushes queued requests back through dispatch).
  for (const cluster::MembershipEvent& event : config.failures.events()) {
    sim.schedule_at(event.when, [&, event] {
      switch (event.action) {
        case cluster::MembershipAction::kFail:
        case cluster::MembershipAction::kRemove: {
          const auto moves = balancer.on_server_failed(event.server);
          movement.record(sim.now(), moves);
          apply_moves(moves, /*immediate=*/true);
          // With control_delay, routing may lag the balancer and still pin
          // a file set to the failing server the balancer never saw it on;
          // sweep every such entry onto the balancer's current placement.
          if (!per_request) {
            for (std::uint32_t fs = 0; fs < routing.size(); ++fs) {
              if (routing[fs] == event.server) {
                routing[fs] = balancer.server_for(FileSetId(fs));
              }
            }
          }
          cluster.fail_server(event.server);
          break;
        }
        case cluster::MembershipAction::kRecover: {
          cluster.recover_server(event.server);
          balancer.set_oracle(oracle_for(static_cast<std::size_t>(
              sim.now() / config.tuning_interval)));
          const auto moves = balancer.on_server_recovered(event.server);
          movement.record(sim.now(), moves);
          apply_moves(moves, /*immediate=*/true);
          break;
        }
        case cluster::MembershipAction::kAdd: {
          const ServerId id = cluster.add_server(event.speed);
          latency.add_server();
          balancer.set_oracle(oracle_for(static_cast<std::size_t>(
              sim.now() / config.tuning_interval)));
          const auto moves = balancer.on_server_added(id);
          movement.record(sim.now(), moves);
          apply_moves(moves, /*immediate=*/true);
          break;
        }
        case cluster::MembershipAction::kDegrade:
          // Gray failure: membership is untouched — only the latency the
          // server reports can tell the tuner something is wrong.
          cluster.degrade_server(event.server, event.factor);
          break;
        case cluster::MembershipAction::kRestore:
          cluster.restore_server(event.server);
          break;
      }
    });
  }

  sim.run_until(horizon);
  tuner.stop();

  ExperimentResult result;
  result.server_count = cluster.server_count();
  result.horizon = horizon;
  result.aggregate = latency.aggregate();
  result.steady_state = steady_state;
  result.latency_histogram = histogram;
  result.per_server.reserve(cluster.server_count());
  result.served.reserve(cluster.server_count());
  result.latency_over_time.reserve(cluster.server_count());
  result.utilization.reserve(cluster.server_count());
  for (std::uint32_t s = 0; s < cluster.server_count(); ++s) {
    const auto id = ServerId(s);
    result.per_server.push_back(latency.server_stats(id));
    result.served.push_back(latency.served(id));
    result.latency_over_time.push_back(
        latency.server_series(id).windowed_mean(config.series_window,
                                                horizon));
    result.utilization.push_back(cluster.server(id).utilization(horizon));
  }
  result.shares_over_time = std::move(share_samples);
  result.movement = movement.rounds();
  result.total_moved = movement.total_moved();
  result.unique_moved = movement.unique_moved();
  result.percent_workload_moved = movement.percent_workload_moved();
  result.percent_unique_workload_moved =
      movement.percent_unique_workload_moved();
  result.shared_state_bytes = balancer.shared_state_bytes();
  result.requests_issued = issued;
  result.requests_completed = latency.total_served();
  result.events_executed = sim.events_executed();
  result.queue = sim.queue_stats();
  result.tuning_rounds = rounds;
  result.balance.strategy = std::string(balancer.name());
  result.balance.per_request = per_request;
  result.balance.counters = balancer.counters();
  if (replicas.submitted > 0) {
    result.balance.counters.emplace_back("replicas_submitted",
                                         replicas.submitted);
    result.balance.counters.emplace_back("replicas_cancelled_queued",
                                         replicas.cancelled_queued);
    result.balance.counters.emplace_back("replicas_cancelled_in_service",
                                         replicas.cancelled_in_service);
    result.balance.counters.emplace_back("replicas_elided", replicas.elided);
    result.balance.counters.emplace_back("replicas_rescued", replicas.rescued);
  }
  return result;
}

}  // namespace anu::driver
