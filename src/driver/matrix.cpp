#include "driver/matrix.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/build_info.h"

namespace anu::driver {

namespace {

/// Headline metric lookup in a batch result (by frozen schema name).
double metric_mean(const BatchResult& batch, std::string_view name) {
  for (const auto& [metric, aggregate] : batch.metrics) {
    if (metric == name) return aggregate.mean;
  }
  return 0.0;
}

/// File-name-safe cell id: <profile>-k<servers>-u<load%>-<strategy>.
std::string cell_file_name(const std::string& profile, std::size_t servers,
                           double load, const std::string& strategy) {
  std::ostringstream os;
  os << profile << "-k" << servers << "-u"
     << static_cast<int>(std::lround(load * 100.0)) << "-" << strategy
     << ".json";
  return os.str();
}

/// Display label for a strategy token: the system label, with the variant
/// suffix for speed-aware JSQ(d) so both flavours stay distinguishable.
std::string strategy_label(std::string_view token, const SystemConfig& sys) {
  if (sys.kind == SystemKind::kJsqD && sys.jsq.speed_aware) {
    return "jsq-d-het";
  }
  (void)token;
  return system_label(sys.kind);
}

}  // namespace

std::optional<std::vector<double>> heterogeneity_profile(std::string_view name,
                                                         std::size_t servers) {
  std::vector<double> speeds(servers, 0.0);
  if (name == "uniform") {
    for (double& s : speeds) s = 5.0;
  } else if (name == "paper") {
    // The §5.1 evaluation cluster: speeds 1,3,5,7,9, tiled to size.
    static constexpr double kPaper[] = {1.0, 3.0, 5.0, 7.0, 9.0};
    for (std::size_t i = 0; i < servers; ++i) speeds[i] = kPaper[i % 5];
  } else if (name == "bimodal") {
    for (std::size_t i = 0; i < servers; ++i) {
      speeds[i] = i < servers / 2 ? 1.0 : 9.0;
    }
  } else if (name == "extreme") {
    static constexpr double kExtreme[] = {1.0, 2.0, 4.0, 8.0, 16.0};
    for (std::size_t i = 0; i < servers; ++i) speeds[i] = kExtreme[i % 5];
  } else {
    return std::nullopt;
  }
  return speeds;
}

const std::vector<std::string>& heterogeneity_profile_names() {
  static const std::vector<std::string> kNames{"uniform", "paper", "bimodal",
                                              "extreme"};
  return kNames;
}

std::optional<SystemConfig> strategy_config(std::string_view token,
                                            const SystemConfig& base) {
  SystemConfig sys = base;
  if (token == "jsqdw" || token == "jsq-d-het") {
    sys.kind = SystemKind::kJsqD;
    sys.jsq.speed_aware = true;
    return sys;
  }
  const auto kind = parse_system_kind(token);
  if (!kind) return std::nullopt;
  sys.kind = *kind;
  // The plain token always means the uniform-sampling flavour, even if the
  // template config had speed_aware set.
  if (*kind == SystemKind::kJsqD) sys.jsq.speed_aware = false;
  return sys;
}

MatrixResult run_matrix(const MatrixConfig& config) {
  if (config.profiles.empty() || config.server_counts.empty() ||
      config.loads.empty() || config.strategies.empty()) {
    throw std::runtime_error("matrix: empty dimension");
  }
  for (const double load : config.loads) {
    if (load <= 0.0 || load >= 1.0) {
      throw std::runtime_error("matrix: load must be in (0, 1)");
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(config.out_dir, ec);
  if (ec) {
    throw std::runtime_error("matrix: cannot create " + config.out_dir + ": " +
                             ec.message());
  }

  // Cells run sequentially on the caller thread; all parallelism lives
  // inside run_experiment_batch's seed fan-out. MatrixResult is therefore
  // single-threaded state — no locking or ANU_GUARDED_BY applies (see
  // docs/static-analysis.md on the disjoint-slot/sequential-aggregation
  // pattern), and cell order is the deterministic loop-nest order.
  MatrixResult out;
  for (const std::string& profile : config.profiles) {
    for (const std::size_t servers : config.server_counts) {
      const auto speeds = heterogeneity_profile(profile, servers);
      if (!speeds) {
        throw std::runtime_error("matrix: unknown profile: " + profile);
      }
      double capacity = 0.0;
      for (const double s : *speeds) capacity += s;
      for (const double load : config.loads) {
        for (const std::string& strategy : config.strategies) {
          const auto sys = strategy_config(strategy, config.base.system);
          if (!sys) {
            throw std::runtime_error("matrix: unknown strategy: " + strategy);
          }

          BatchConfig batch;
          batch.seeds = config.seeds;
          batch.jobs = config.jobs;
          batch.base_seed = config.base_seed;
          batch.spec = config.base;
          batch.spec.workload = SimSpec::WorkloadKind::kSynthetic;
          batch.spec.trace_file.clear();
          batch.spec.system = *sys;
          batch.spec.experiment.cluster.server_speeds = *speeds;
          workload::SyntheticConfig& w = batch.spec.synthetic;
          w.file_set_count = servers * config.file_sets_per_server;
          w.request_count = servers * config.requests_per_server;
          w.duration = config.duration;
          w.target_utilization = load;
          w.cluster_capacity = capacity;

          const BatchResult result = run_experiment_batch(batch);

          MatrixCell cell;
          cell.profile = profile;
          cell.servers = servers;
          cell.load = load;
          cell.strategy = strategy_label(strategy, *sys);
          cell.file = cell_file_name(profile, servers, load, cell.strategy);
          cell.mean_latency_s = metric_mean(result, "mean_latency_s");
          cell.latency_cv = metric_mean(result, "latency_cv");
          cell.p99_s = metric_mean(result, "p99_s");
          cell.requests_completed = metric_mean(result, "requests_completed");

          const std::string path =
              (std::filesystem::path(config.out_dir) / cell.file).string();
          if (!write_batch_results_file(path, batch, result)) {
            throw std::runtime_error("matrix: cannot write " + path);
          }
          out.cells.push_back(std::move(cell));
        }
      }
    }
  }
  return out;
}

obs::Json matrix_summary_json(const MatrixConfig& config,
                              const MatrixResult& result) {
  obs::Json doc = obs::Json::object();
  doc.set("schema", "anu.matrix_summary");
  doc.set("schema_version", kMatrixSchemaVersion);
  doc.set("git", obs::git_describe());

  obs::Json cfg = obs::Json::object();
  obs::Json profiles = obs::Json::array();
  for (const std::string& p : config.profiles) profiles.push_back(p);
  cfg.set("profiles", std::move(profiles));
  obs::Json servers = obs::Json::array();
  for (const std::size_t k : config.server_counts) servers.push_back(k);
  cfg.set("server_counts", std::move(servers));
  obs::Json loads = obs::Json::array();
  for (const double u : config.loads) loads.push_back(u);
  cfg.set("loads", std::move(loads));
  obs::Json strategies = obs::Json::array();
  for (const std::string& s : config.strategies) strategies.push_back(s);
  cfg.set("strategies", std::move(strategies));
  cfg.set("seeds", config.seeds)
      .set("base_seed", config.base_seed)
      .set("requests_per_server", config.requests_per_server)
      .set("file_sets_per_server", config.file_sets_per_server)
      .set("duration_s", config.duration);
  doc.set("config", std::move(cfg));

  obs::Json cells = obs::Json::array();
  for (const MatrixCell& cell : result.cells) {
    obs::Json row = obs::Json::object();
    row.set("profile", cell.profile)
        .set("servers", cell.servers)
        .set("load", cell.load)
        .set("strategy", cell.strategy)
        .set("file", cell.file)
        .set("mean_latency_s", cell.mean_latency_s)
        .set("latency_cv", cell.latency_cv)
        .set("p99_s", cell.p99_s)
        .set("requests_completed", cell.requests_completed);
    cells.push_back(std::move(row));
  }
  doc.set("cells", std::move(cells));
  return doc;
}

bool write_matrix_summary_file(const std::string& path,
                               const MatrixConfig& config,
                               const MatrixResult& result) {
  std::ofstream os(path);
  if (!os) return false;
  matrix_summary_json(config, result).write_pretty(os);
  os << '\n';
  return static_cast<bool>(os);
}

void print_matrix_summary(std::ostream& os, const MatrixResult& result) {
  std::string scenario;
  for (const MatrixCell& cell : result.cells) {
    std::ostringstream key;
    key << cell.profile << "  k=" << cell.servers << "  load=" << cell.load;
    if (key.str() != scenario) {
      scenario = key.str();
      os << "\n== " << scenario << " ==\n";
      os << "  strategy            mean_s     cv       p99_s\n";
    }
    os << "  ";
    os.width(18);
    os.setf(std::ios::left, std::ios::adjustfield);
    os << cell.strategy;
    os.unsetf(std::ios::adjustfield);
    std::ostringstream row;
    row.setf(std::ios::fixed, std::ios::floatfield);
    row.precision(4);
    row << "  " << cell.mean_latency_s << "   " << cell.latency_cv << "   "
        << cell.p99_s;
    os << row.str() << "\n";
  }
}

}  // namespace anu::driver
