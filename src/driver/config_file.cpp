#include "driver/config_file.h"

#include <fstream>
#include <sstream>

namespace anu::driver {

namespace {

std::optional<SimSpec> fail(ConfigError* error, std::size_t line,
                            std::string message) {
  if (error) *error = ConfigError{line, std::move(message)};
  return std::nullopt;
}

}  // namespace

std::optional<SimSpec> parse_sim_config(std::istream& is, ConfigError* error) {
  SimSpec spec;
  std::string line;
  std::size_t lineno = 0;
  SimTime last_event = 0.0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;

    auto want = [&](auto& value, const char* what) {
      if (!(ls >> value)) {
        fail(error, lineno, std::string("expected ") + what + " after " + key);
        return false;
      }
      return true;
    };

    if (key == "workload") {
      std::string kind;
      if (!want(kind, "workload kind")) return std::nullopt;
      if (kind == "synthetic") {
        spec.workload = SimSpec::WorkloadKind::kSynthetic;
      } else if (kind == "trace") {
        spec.workload = SimSpec::WorkloadKind::kTrace;
      } else {
        return fail(error, lineno, "unknown workload kind: " + kind);
      }
    } else if (key == "seed") {
      std::uint64_t seed;
      if (!want(seed, "integer seed")) return std::nullopt;
      spec.synthetic.seed = seed;
      spec.trace.seed = seed;
    } else if (key == "file_sets") {
      std::size_t n;
      if (!want(n, "count")) return std::nullopt;
      if (n == 0) return fail(error, lineno, "file_sets must be positive");
      spec.synthetic.file_set_count = n;
      spec.trace.file_set_count = n;
    } else if (key == "requests") {
      std::size_t n;
      if (!want(n, "count")) return std::nullopt;
      if (n == 0) return fail(error, lineno, "requests must be positive");
      spec.synthetic.request_count = n;
      spec.trace.request_count = n;
    } else if (key == "duration_min") {
      double minutes;
      if (!want(minutes, "minutes")) return std::nullopt;
      if (minutes <= 0.0) return fail(error, lineno, "duration must be > 0");
      spec.synthetic.duration = minutes * 60.0;
      spec.trace.duration = minutes * 60.0;
    } else if (key == "utilization") {
      double u;
      if (!want(u, "fraction")) return std::nullopt;
      if (u <= 0.0 || u >= 1.0) {
        return fail(error, lineno, "utilization must be in (0, 1)");
      }
      spec.synthetic.target_utilization = u;
      spec.trace.target_utilization = u;
    } else if (key == "speeds") {
      std::vector<double> speeds;
      double s;
      while (ls >> s) {
        if (s <= 0.0) return fail(error, lineno, "speeds must be positive");
        speeds.push_back(s);
      }
      if (speeds.empty()) return fail(error, lineno, "speeds needs values");
      spec.experiment.cluster.server_speeds = std::move(speeds);
    } else if (key == "system") {
      std::string name;
      if (!want(name, "system name")) return std::nullopt;
      const auto kind = parse_system_kind(name);
      if (!kind) return fail(error, lineno, "unknown system: " + name);
      spec.system.kind = *kind;
    } else if (key == "jsq_d") {
      std::uint32_t d;
      if (!want(d, "1..8")) return std::nullopt;
      if (d < 1 || d > balance::DispatchDecision::kMaxTargets) {
        return fail(error, lineno, "jsq_d must be 1..8");
      }
      spec.system.jsq.d = d;
    } else if (key == "jsq_speed_aware") {
      std::uint32_t v;
      if (!want(v, "0|1")) return std::nullopt;
      spec.system.jsq.speed_aware = v != 0;
    } else if (key == "jiq_policy") {
      std::string policy;
      if (!want(policy, "fifo|lifo|fastest")) return std::nullopt;
      if (policy == "fifo") {
        spec.system.jiq.policy = balance::JiqConfig::TokenPolicy::kFifo;
      } else if (policy == "lifo") {
        spec.system.jiq.policy = balance::JiqConfig::TokenPolicy::kLifo;
      } else if (policy == "fastest") {
        spec.system.jiq.policy = balance::JiqConfig::TokenPolicy::kFastest;
      } else {
        return fail(error, lineno, "unknown jiq_policy: " + policy);
      }
    } else if (key == "jiq_weighted_fallback") {
      std::uint32_t v;
      if (!want(v, "0|1")) return std::nullopt;
      spec.system.jiq.weighted_fallback = v != 0;
    } else if (key == "red_d") {
      std::uint32_t d;
      if (!want(d, "1..8")) return std::nullopt;
      if (d < 1 || d > balance::DispatchDecision::kMaxTargets) {
        return fail(error, lineno, "red_d must be 1..8");
      }
      spec.system.red.d = d;
    } else if (key == "red_cancel") {
      std::string mode;
      if (!want(mode, "start|complete")) return std::nullopt;
      if (mode == "start") {
        spec.system.red.cancel = balance::RedundancyDConfig::CancelMode::kOnStart;
      } else if (mode == "complete") {
        spec.system.red.cancel =
            balance::RedundancyDConfig::CancelMode::kOnComplete;
      } else {
        return fail(error, lineno, "unknown red_cancel: " + mode);
      }
    } else if (key == "red_speed_aware") {
      std::uint32_t v;
      if (!want(v, "0|1")) return std::nullopt;
      spec.system.red.speed_aware = v != 0;
    } else if (key == "strategy_seed") {
      std::uint64_t seed;
      if (!want(seed, "integer seed")) return std::nullopt;
      spec.system.jsq.seed = seed;
      spec.system.jiq.seed = seed;
      spec.system.red.seed = seed;
    } else if (key == "vp_per_server") {
      std::size_t v;
      if (!want(v, "count")) return std::nullopt;
      if (v == 0) return fail(error, lineno, "vp_per_server must be positive");
      spec.system.vp.vp_per_server = v;
    } else if (key == "placement_choices") {
      std::uint32_t c;
      if (!want(c, "1..8")) return std::nullopt;
      if (c < 1 || c > 8) {
        return fail(error, lineno, "placement_choices must be 1..8");
      }
      spec.system.anu.placement_choices = c;
    } else if (key == "tuning_interval_s") {
      double seconds;
      if (!want(seconds, "seconds")) return std::nullopt;
      if (seconds <= 0.0) return fail(error, lineno, "interval must be > 0");
      spec.experiment.tuning_interval = seconds;
    } else if (key == "control_delay_s") {
      double seconds;
      if (!want(seconds, "seconds")) return std::nullopt;
      if (seconds < 0.0) return fail(error, lineno, "delay must be >= 0");
      spec.experiment.control_delay = seconds;
    } else if (key == "cache_penalty_x") {
      double factor;
      if (!want(factor, "factor >= 1")) return std::nullopt;
      if (factor < 1.0) return fail(error, lineno, "factor must be >= 1");
      spec.experiment.cluster.cache.enabled = factor > 1.0;
      spec.experiment.cluster.cache.cold_penalty_factor = factor;
    } else if (key == "cache_warmup_requests") {
      std::uint32_t n;
      if (!want(n, "count")) return std::nullopt;
      if (n == 0) return fail(error, lineno, "warmup must be positive");
      spec.experiment.cluster.cache.warmup_requests = n;
    } else if (key == "move_penalty_s") {
      double seconds;
      if (!want(seconds, "seconds")) return std::nullopt;
      if (seconds < 0.0) return fail(error, lineno, "penalty must be >= 0");
      spec.experiment.move_warmup_penalty = seconds;
    } else if (key == "fail" || key == "recover" || key == "remove") {
      double minute;
      std::uint32_t server;
      if (!want(minute, "minute")) return std::nullopt;
      if (!want(server, "server id")) return std::nullopt;
      const SimTime when = minute * 60.0;
      if (when < last_event) {
        return fail(error, lineno, "membership events out of time order");
      }
      last_event = when;
      const auto action = key == "recover"
                              ? cluster::MembershipAction::kRecover
                              : key == "remove"
                                    ? cluster::MembershipAction::kRemove
                                    : cluster::MembershipAction::kFail;
      spec.experiment.failures.add({when, action, ServerId(server), 0.0});
    } else if (key == "degrade") {
      double minute, factor;
      std::uint32_t server;
      if (!want(minute, "minute")) return std::nullopt;
      if (!want(server, "server id")) return std::nullopt;
      if (!want(factor, "factor")) return std::nullopt;
      if (factor <= 0.0 || factor > 1.0) {
        return fail(error, lineno, "degrade factor must be in (0, 1]");
      }
      const SimTime when = minute * 60.0;
      if (when < last_event) {
        return fail(error, lineno, "membership events out of time order");
      }
      last_event = when;
      cluster::MembershipEvent event{
          when, cluster::MembershipAction::kDegrade, ServerId(server), 0.0};
      event.factor = factor;
      spec.experiment.failures.add(event);
    } else if (key == "restore") {
      double minute;
      std::uint32_t server;
      if (!want(minute, "minute")) return std::nullopt;
      if (!want(server, "server id")) return std::nullopt;
      const SimTime when = minute * 60.0;
      if (when < last_event) {
        return fail(error, lineno, "membership events out of time order");
      }
      last_event = when;
      spec.experiment.failures.add(
          {when, cluster::MembershipAction::kRestore, ServerId(server), 0.0});
    } else if (key == "add") {
      double minute, speed;
      if (!want(minute, "minute")) return std::nullopt;
      if (!want(speed, "speed")) return std::nullopt;
      if (speed <= 0.0) return fail(error, lineno, "speed must be positive");
      const SimTime when = minute * 60.0;
      if (when < last_event) {
        return fail(error, lineno, "membership events out of time order");
      }
      last_event = when;
      spec.experiment.failures.add(
          {when, cluster::MembershipAction::kAdd, ServerId(), speed});
    } else if (key == "trace_file") {
      if (!want(spec.trace_file, "path")) return std::nullopt;
      spec.workload = SimSpec::WorkloadKind::kTrace;
    } else if (key == "csv_out") {
      if (!want(spec.csv_out, "path")) return std::nullopt;
    } else if (key == "trace_out") {
      if (!want(spec.trace_out, "path")) return std::nullopt;
    } else if (key == "manifest_out") {
      if (!want(spec.manifest_out, "path")) return std::nullopt;
    } else {
      return fail(error, lineno, "unknown key: " + key);
    }
  }
  // Keep workload capacity assumptions in sync with the cluster.
  double capacity = 0.0;
  for (double s : spec.experiment.cluster.server_speeds) capacity += s;
  spec.synthetic.cluster_capacity = capacity;
  spec.trace.cluster_capacity = capacity;
  return spec;
}

std::optional<SimSpec> parse_sim_config_file(const std::string& path,
                                             ConfigError* error) {
  std::ifstream f(path);
  if (!f) {
    return fail(error, 0, "cannot open " + path);
  }
  return parse_sim_config(f, error);
}

std::optional<workload::Workload> build_workload(const SimSpec& spec,
                                                 ConfigError* error) {
  if (!spec.trace_file.empty()) {
    workload::TraceParseError trace_error;
    auto parsed = workload::read_trace_file(spec.trace_file, &trace_error);
    if (!parsed) {
      if (error) {
        *error = ConfigError{trace_error.line,
                             spec.trace_file + ": " + trace_error.message};
      }
      return std::nullopt;
    }
    return parsed;
  }
  if (spec.workload == SimSpec::WorkloadKind::kTrace) {
    return workload::synthesize_trace(spec.trace);
  }
  return workload::make_synthetic_workload(spec.synthetic);
}

}  // namespace anu::driver
