// Text experiment configuration for the anu_sim command-line tool.
//
// Line-oriented `key value...` format ('#' comments, blank lines ignored):
//
//   workload synthetic            # or: trace
//   seed 42
//   file_sets 50
//   requests 66401
//   duration_min 200
//   utilization 0.55
//   speeds 1 3 5 7 9              # one per server
//   system anu                    # anu | simple | prescient | vp
//   vp_per_server 5               # vp system only
//   placement_choices 1           # anu: 1 or 2 (SIEVE multiple choice)
//   tuning_interval_s 120
//   move_penalty_s 0
//   cache_penalty_x 1             # cold-cache model: demand multiplier
//   cache_warmup_requests 20
//   control_delay_s 0             # control-plane pipeline latency
//   fail 30 1                     # minute, server
//   recover 50 1
//   add 80 9.0                    # minute, speed
//   remove 120 0
//   degrade 140 2 0.25            # minute, server, speed factor (gray)
//   restore 160 2                 # minute, server
//   trace_file path.trace         # workload trace: replay this file
//   csv_out series.csv            # optional latency-series CSV
//   trace_out run.json            # event trace (.jsonl -> JSONL, else
//                                 # Chrome trace_event; docs/observability.md)
//   manifest_out run.manifest.json  # per-run telemetry manifest
//
// Membership events must appear in time order.
#pragma once

#include <optional>
#include <string>

#include "driver/balancer_factory.h"
#include "driver/experiment.h"
#include "workload/synthetic.h"
#include "workload/trace.h"

namespace anu::driver {

struct SimSpec {
  enum class WorkloadKind { kSynthetic, kTrace };
  WorkloadKind workload = WorkloadKind::kSynthetic;
  workload::SyntheticConfig synthetic;
  workload::TraceSynthConfig trace;
  /// Non-empty: replay this trace file instead of synthesizing.
  std::string trace_file;

  SystemConfig system;
  ExperimentConfig experiment;
  std::string csv_out;
  /// Event-trace output path ("" = tracing off). Extension picks the
  /// format: .jsonl -> JSONL, anything else -> Chrome trace_event.
  std::string trace_out;
  /// Telemetry-manifest output path ("" = off). See docs/observability.md.
  std::string manifest_out;
};

struct ConfigError {
  std::size_t line = 0;
  std::string message;
};

/// Parses the format above. Returns nullopt and fills `error` on failure.
std::optional<SimSpec> parse_sim_config(std::istream& is,
                                        ConfigError* error = nullptr);
std::optional<SimSpec> parse_sim_config_file(const std::string& path,
                                             ConfigError* error = nullptr);

/// Builds the workload a spec describes (synthesizes or loads the trace).
/// Returns nullopt with `error` if a trace file fails to parse.
std::optional<workload::Workload> build_workload(const SimSpec& spec,
                                                 ConfigError* error = nullptr);

}  // namespace anu::driver
