// Chaos harness: deterministic randomized fault scenarios against the
// full protocol experiment (docs/chaos.md).
//
// One chaos run expands a (seed, profile) pair into a fault scenario —
// message loss, duplication, reordering, delay spikes, a partition window,
// gray-degraded servers, fail/recover cycles — generated so that every
// fault ceases by kFaultPhaseFraction of the horizon. The scenario drives
// a synthetic workload through run_protocol_experiment and then, while the
// protocol and network objects are still live, asserts the post-fault
// convergence invariants:
//
//   * every live node holds the same region-map version and table;
//   * every node actually tuned (version > 0);
//   * every file set routes, on every live replica, to a live server
//     within the probing budget (the map covers the unit interval — the
//     RegionMap's own invariants guarantee no overlap — and no file set is
//     left unowned);
//   * message / retransmit / duplicate-suppression counters reconcile with
//     the fault plan's injection counters.
//
// Violations are reported, not aborted on, so a chaos failure produces a
// diagnosable report (docs/operators-guide.md shows the workflow). The
// whole run is a pure function of ChaosConfig: the fault, workload,
// network-jitter, and retransmit-jitter RNG streams are all separately
// seeded, so one seed reproduces one scenario bit-for-bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "driver/protocol_experiment.h"
#include "faults/fault_plan.h"

namespace anu::driver {

/// Fault-mix presets: what kind of bad day the cluster is having.
enum class ChaosProfile {
  kLight,      // low loss, small delay spikes
  kHeavy,      // heavy loss + duplication + reordering
  kPartition,  // a partition window splitting the cluster in two
  kDegrade,    // gray-degraded servers (slow, not down)
  kMixed,      // all of the above, plus a fail/recover cycle
};

[[nodiscard]] const char* chaos_profile_name(ChaosProfile profile);
[[nodiscard]] std::optional<ChaosProfile> parse_chaos_profile(
    std::string_view name);

/// Fraction of the horizon by which every generated fault has ceased; the
/// remaining tail is the convergence phase the invariants are judged on.
inline constexpr double kFaultPhaseFraction = 0.6;

struct ChaosConfig {
  std::uint64_t seed = 1;
  ChaosProfile profile = ChaosProfile::kMixed;
  /// Cluster size; speeds cycle through the paper cluster's 1,3,5,7,9.
  std::size_t servers = 5;
  /// Run length (seconds). Must leave several tuning intervals after the
  /// fault phase ends, or convergence cannot be judged.
  SimTime horizon = 1200.0;
  /// Synthetic workload size driven through the run.
  std::size_t requests = 4000;
  std::size_t file_sets = 20;
  /// Control-plane knobs (tuning interval, retransmit policy, link model).
  proto::ProtocolConfig protocol;
  proto::NetworkConfig network;
  /// Structured event tracing; null disables. Caller-owned.
  obs::TraceSink* trace = nullptr;
};

struct ChaosReport {
  ExperimentResult result;
  /// The generated scenario, for reproduction and for the manifest.
  faults::FaultPlanConfig faults;
  cluster::FailureSchedule failures;
  /// Fault-plan injection counters at end of run.
  std::uint64_t injected_losses = 0;
  std::uint64_t partition_drops = 0;
  std::uint64_t duplications = 0;
  std::uint64_t delay_injections = 0;
  /// Human-readable invariant violations; empty = the run converged and
  /// every counter reconciled.
  std::vector<std::string> violations;
  [[nodiscard]] bool passed() const { return violations.empty(); }
};

/// Expands the scenario, runs it, checks the invariants. Deterministic in
/// `config`: equal configs produce equal reports, field for field.
[[nodiscard]] ChaosReport run_chaos(const ChaosConfig& config);

}  // namespace anu::driver
