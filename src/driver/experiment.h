// The experiment driver: wires workload -> balancer -> cluster -> simulator
// and produces everything the paper's figures report.
//
// One run replays a workload against one load-management system on one
// cluster, with the two-minute tuning loop of §5.1 ("we use two minutes as
// the load placement tuning interval ... in order to avoid over-tuning
// while still providing responsiveness") and optional scripted membership
// changes. Prescient systems receive their oracle (true upcoming-interval
// demand + true speeds) before every round; ANU and simple randomization
// ignore it.
#pragma once

#include <cstdint>
#include <vector>

#include "balance/balancer.h"
#include "cluster/cluster.h"
#include "cluster/failure_schedule.h"
#include "common/stats.h"
#include "metrics/movement_tracker.h"
#include "obs/trace_sink.h"
#include "sim/simulation.h"
#include "workload/workload.h"

namespace anu::driver {

struct ExperimentConfig {
  cluster::ClusterConfig cluster;
  /// Tuning interval (paper: two minutes).
  SimTime tuning_interval = 120.0;
  /// Simulated horizon; 0 = workload span.
  SimTime horizon = 0.0;
  /// Window width for the latency-over-time series (Figs. 4/5 resolution).
  SimTime series_window = 300.0;
  /// Extra unit-speed seconds added to a file set's first request after it
  /// moves — models the cold-cache penalty of §5.3. 0 disables.
  double move_warmup_penalty = 0.0;
  /// Feed prescient systems the true next-interval demands (read ahead from
  /// the schedule). When false they fall back to whole-run weights.
  bool oracle_lookahead = true;
  /// Control-plane pipeline latency: a tuning round's placement changes
  /// take effect this many seconds after the round runs (report collection
  /// + region-table broadcast + shed handoff — see src/proto for the
  /// message-level model). Requests keep routing on the previous placement
  /// until then. 0 = instantaneous (the paper simulator's behaviour).
  SimTime control_delay = 0.0;
  /// Scripted membership changes.
  cluster::FailureSchedule failures;
  /// Structured event tracing (docs/observability.md). Null disables; the
  /// sink is caller-owned and must outlive the run. Also installed as the
  /// Simulation's trace conduit, so cluster membership and (in protocol
  /// experiments) message events share the same timeline.
  obs::TraceSink* trace = nullptr;
};

struct ExperimentResult {
  std::size_t server_count = 0;
  SimTime horizon = 0.0;

  /// Whole-run latency over all requests (Fig. 6(a)).
  RunningStats aggregate;
  /// Latency over requests completing in the second half of the run —
  /// the post-convergence regime (ANU starts blind; Fig. 5 shows it
  /// "quickly adapts ... after several rounds of load placement tuning").
  RunningStats steady_state;
  /// Whole-run latency quantiles (log-bucketed; ~1% relative resolution).
  LogHistogram latency_histogram;
  /// Whole-run latency per server (Fig. 6(b)).
  std::vector<RunningStats> per_server;
  /// Requests served per server.
  std::vector<std::uint64_t> served;
  /// Windowed mean latency per server over time (Figs. 4/5); one entry per
  /// series_window, carrying the last value through idle windows.
  std::vector<std::vector<TimeSeries::Point>> latency_over_time;

  /// Assigned workload-weight share per server, sampled after every tuning
  /// round: row r holds (time, share_0..share_{k-1}) — the visible trace of
  /// the delegate adapting shares to capacities.
  struct ShareSample {
    SimTime when = 0.0;
    std::vector<double> share;  // fraction of total weight, sums to ~1
  };
  std::vector<ShareSample> shares_over_time;

  /// Per-tuning-round movement (Fig. 7).
  std::vector<metrics::MovementTracker::Round> movement;
  std::size_t total_moved = 0;
  std::size_t unique_moved = 0;
  double percent_workload_moved = 0.0;
  double percent_unique_workload_moved = 0.0;

  /// Replicated addressing state at end of run (§5.4).
  std::size_t shared_state_bytes = 0;

  std::vector<double> utilization;  // busy fraction per server
  std::uint64_t requests_issued = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t tuning_rounds = 0;

  /// Event-kernel counters (calendar + slab), emitted as the manifest's
  /// "sim.queue" block so a run's kernel behavior is auditable post hoc.
  sim::SimQueueStats queue;

  /// Strategy identity + per-strategy counters, emitted as the manifest's
  /// "balance" block (driver/telemetry; tables in docs/strategies.md).
  /// For redundancy dispatch the driver appends its replica-race counters
  /// (replicas_submitted / _cancelled_queued / _cancelled_in_service /
  /// _elided / _rescued) to the strategy's own.
  struct BalanceStats {
    std::string strategy;
    /// True when requests were routed per-request (dispatch strategies)
    /// rather than through a tuned placement; such runs have no
    /// shares_over_time samples and never move file sets.
    bool per_request = false;
    balance::BalanceCounters counters;
  };
  BalanceStats balance;

  /// Control-plane message accounting — populated by protocol experiments,
  /// all-zero under the instantaneous balancer drivers. The counters
  /// reconcile (docs/chaos.md): delivered + dropped + in-flight-at-horizon
  /// = sent, and acks_received <= reliable_sent + retransmits.
  struct ControlPlaneStats {
    std::uint64_t messages_sent = 0;       // transmissions put on the wire
    std::uint64_t messages_delivered = 0;
    std::uint64_t drops_endpoint_down = 0;  // sender/receiver was down
    std::uint64_t drops_injected = 0;       // chaos loss + partitions
    std::uint64_t duplicates_injected = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t reliable_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t acks_received = 0;
    std::uint64_t duplicates_suppressed = 0;
    std::uint64_t retries_abandoned = 0;
  };
  ControlPlaneStats control_plane;
};

/// Runs one experiment. The balancer is owned by the caller so callers can
/// inspect system-specific state (e.g. AnuBalancer::region_map) afterwards.
[[nodiscard]] ExperimentResult run_experiment(
    const ExperimentConfig& config, const workload::Workload& workload,
    balance::LoadBalancer& balancer);

}  // namespace anu::driver
