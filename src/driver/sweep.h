// Parallel parameter sweeps.
//
// Multi-configuration figures (Fig. 8's VP-count sweep, the tuner ablation)
// and multi-seed batches run many *independent* simulations; each owns its
// Simulation, Cluster and balancer, so the only shared state is the result
// slot each job writes — pre-sized so no synchronization beyond the batch
// completion is needed (C++ Core Guidelines CP.20-ish: no naked sharing).
//
// Execution rides the persistent work-stealing pool in common/thread_pool.h
// rather than spawning threads per call: `threads` caps the parallelism of
// one batch, not the number of threads created. Results must not depend on
// `threads`; derive any per-job randomness from substream_seed(base, index)
// (common/rng.h) so a sweep is bit-identical at any parallelism level.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace anu::driver {

/// Runs jobs[0..n) with at most `threads`-way parallelism (0 = all cores);
/// blocks until all finish. Each job must be independent (no shared mutable
/// state between jobs). If a job throws, unstarted jobs are abandoned and
/// the first exception is rethrown on the calling thread after the batch
/// drains. threads == 1 runs inline, in index order.
void run_parallel(const std::vector<std::function<void()>>& jobs,
                  std::size_t threads = 0);

/// Runs fn(0..count) under the same contract, without materializing a job
/// list. `fn` must be safe to call concurrently on distinct indices.
void run_indexed(std::size_t count, const std::function<void(std::size_t)>& fn,
                 std::size_t threads = 0);

/// Maps `count` indices through `fn` in parallel and collects results in
/// index order.
template <class Result>
std::vector<Result> parallel_map(std::size_t count,
                                 const std::function<Result(std::size_t)>& fn,
                                 std::size_t threads = 0) {
  std::vector<Result> results(count);
  run_indexed(
      count, [&results, &fn](std::size_t i) { results[i] = fn(i); }, threads);
  return results;
}

}  // namespace anu::driver
