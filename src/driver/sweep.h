// Parallel parameter sweeps.
//
// Multi-configuration figures (Fig. 8's VP-count sweep, the tuner ablation)
// run many *independent* simulations; each owns its Simulation, Cluster and
// balancer, so the only shared state is the result slot each job writes —
// pre-sized so no synchronization beyond the completion join is needed
// (C++ Core Guidelines CP.20-ish: no naked sharing). Thread count defaults
// to the hardware concurrency.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace anu::driver {

/// Runs jobs[0..n) across up to `threads` workers; blocks until all finish.
/// Each job must be independent (no shared mutable state between jobs).
/// If a job throws, unstarted jobs are abandoned and the first exception is
/// rethrown on the calling thread after all workers join.
void run_parallel(const std::vector<std::function<void()>>& jobs,
                  std::size_t threads = 0);

/// Maps `count` indices through `fn` in parallel and collects results in
/// index order. `fn` must be safe to call concurrently on distinct indices.
template <class Result>
std::vector<Result> parallel_map(std::size_t count,
                                 const std::function<Result(std::size_t)>& fn,
                                 std::size_t threads = 0) {
  std::vector<Result> results(count);
  std::vector<std::function<void()>> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    jobs.push_back([&results, &fn, i] { results[i] = fn(i); });
  }
  run_parallel(jobs, threads);
  return results;
}

}  // namespace anu::driver
