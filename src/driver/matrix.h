// The heterogeneity scenario matrix: speed profiles x cluster sizes x load
// levels x strategies, each cell a full multi-seed batch.
//
// The paper evaluates on one 5-server cluster shape (§5.1); the matrix
// generalizes that into a paired sweep so every strategy — the paper's four
// systems plus the randomized-dispatch baselines (docs/strategies.md) —
// faces the exact same workloads in every cell:
//
//   * every cell derives its per-run seeds from the same base_seed, so
//     strategy A vs strategy B in one scenario is a paired comparison on
//     identical arrival sequences;
//   * workload size scales with the cluster (requests_per_server,
//     file_sets_per_server), so a 20-server cell is not just a 5-server
//     workload spread thin;
//   * cluster capacity feeds the generator's utilization target, so "load
//     0.75" means the same thing on every speed profile.
//
// Determinism contract: like the batch runner underneath, the matrix
// result — every per-cell results file and the summary document — is a
// pure function of the MatrixConfig. `jobs` only changes wall time. Cells
// run sequentially; parallelism lives inside each cell's batch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "driver/batch.h"

namespace anu::driver {

/// Bumped on any incompatible matrix-summary-JSON change.
inline constexpr int kMatrixSchemaVersion = 1;

struct MatrixConfig {
  /// Template for every cell. The matrix overrides the synthetic-workload
  /// shape, cluster speeds, and system; everything else (tuning interval,
  /// cache model, ...) is inherited.
  SimSpec base;

  /// Speed-profile names (heterogeneity_profile below).
  std::vector<std::string> profiles{"uniform", "paper", "bimodal"};
  std::vector<std::size_t> server_counts{5, 10, 20};
  /// Target utilizations in (0, 1).
  std::vector<double> loads{0.45, 0.75};
  /// Strategy tokens (strategy_config below). Default: every selectable
  /// system, with both JSQ(d) flavours.
  std::vector<std::string> strategies{"simple", "prescient", "vp",  "anu",
                                      "jsqd",   "jsqdw",     "jiq", "red"};

  /// Per-cell batch shape. Every cell uses the same base_seed (paired
  /// comparisons across strategies and scenarios).
  std::size_t seeds = 3;
  std::size_t jobs = 0;
  std::uint64_t base_seed = 42;

  /// Workload scaling: cell workload size follows the cluster size.
  std::size_t requests_per_server = 300;
  std::size_t file_sets_per_server = 5;
  SimTime duration = 1800.0;

  /// Per-cell batch-results files and matrix-summary.json land here.
  std::string out_dir = "matrix-out";
};

/// One completed cell: its coordinates, the results file it wrote
/// (relative to out_dir), and headline batch means for the summary table.
struct MatrixCell {
  std::string profile;
  std::size_t servers = 0;
  double load = 0.0;
  std::string strategy;  // display label (system_label + variant suffix)
  std::string file;
  double mean_latency_s = 0.0;
  double latency_cv = 0.0;
  double p99_s = 0.0;
  double requests_completed = 0.0;
};

struct MatrixResult {
  std::vector<MatrixCell> cells;
};

/// Server speeds for a named heterogeneity profile, nullopt if unknown:
///   uniform — every server speed 5 (homogeneous control)
///   paper   — cycle 1,3,5,7,9 (the §5.1 cluster shape, tiled)
///   bimodal — slow half speed 1, fast half speed 9
///   extreme — powers of two: 1,2,4,8,16 cycled (16x spread)
[[nodiscard]] std::optional<std::vector<double>> heterogeneity_profile(
    std::string_view name, std::size_t servers);

/// All profile names heterogeneity_profile accepts, in display order.
[[nodiscard]] const std::vector<std::string>& heterogeneity_profile_names();

/// Applies a strategy token to a system config: any name
/// parse_system_kind accepts, plus the variant token "jsqdw" (JSQ(d) with
/// speed-aware sampling). Returns nullopt for unknown tokens.
[[nodiscard]] std::optional<SystemConfig> strategy_config(
    std::string_view token, const SystemConfig& base);

/// Runs every cell sequentially, writing one batch-results file per cell
/// into config.out_dir (created if missing). Throws std::runtime_error on
/// unknown profile/strategy tokens, invalid loads, or I/O failure.
[[nodiscard]] MatrixResult run_matrix(const MatrixConfig& config);

/// The versioned summary document ("anu.matrix_summary").
[[nodiscard]] obs::Json matrix_summary_json(const MatrixConfig& config,
                                            const MatrixResult& result);

/// Writes matrix_summary_json(...) pretty-printed; false on I/O failure.
bool write_matrix_summary_file(const std::string& path,
                               const MatrixConfig& config,
                               const MatrixResult& result);

/// Human-readable per-scenario table (what anu_sim --matrix prints).
void print_matrix_summary(std::ostream& os, const MatrixResult& result);

}  // namespace anu::driver
