// Multi-seed experiment batches with machine-readable results.
//
// The paper's evaluation (§6) reports distributions over many runs, not
// single-seed anecdotes, so the batch runner fans one experiment template
// out across N seeds on the work-stealing pool (common/thread_pool.h),
// derives run i's seed as substream_seed(base_seed, i) (common/rng.h), and
// aggregates the scalar metrics of every run into mean / sample stddev /
// 95% confidence interval / min / max.
//
// Determinism contract: the BatchResult — and the serialized results JSON —
// is a pure function of (template config, seeds, base_seed). The `jobs`
// parallelism cap only changes wall time, never a byte of output, which is
// why it is deliberately absent from the JSON artifact. Per-seed rows are
// collected into pre-sized slots in task-index order and aggregated
// sequentially afterwards, so no floating-point reduction depends on
// scheduling.
//
// Schema (docs/ci.md has the field-by-field version):
//   { "schema": "anu.batch_results", "schema_version": 1, "git": ...,
//     "config": {...}, "metrics": {"<name>": {n, mean, stddev, ci95, min,
//     max}, ...}, "per_seed": [{"seed": ..., "<name>": ...}, ...] }
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "driver/chaos.h"
#include "driver/config_file.h"
#include "obs/json.h"

namespace anu::driver {

/// Bumped on any incompatible results-JSON change.
inline constexpr int kBatchSchemaVersion = 1;

struct BatchConfig {
  /// Number of independent runs; run i uses substream_seed(base_seed, i).
  std::size_t seeds = 16;
  /// Parallelism cap for execution (0 = all cores). Never affects results.
  std::size_t jobs = 0;
  std::uint64_t base_seed = 42;

  enum class Mode { kWorkload, kChaos };
  Mode mode = Mode::kWorkload;
  /// Workload mode: the experiment template; the per-run seed overrides the
  /// workload generator seed.
  SimSpec spec;
  /// Chaos mode: the scenario template; the per-run seed overrides the
  /// scenario seed, so every run is a distinct fault schedule.
  ChaosConfig chaos;
};

/// Scalar metrics extracted from one run. Fields double as the aggregation
/// and serialization order (see kBatchMetricNames in batch.cpp).
struct SeedMetrics {
  double mean_latency_s = 0.0;
  double steady_latency_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double latency_cv = 0.0;
  double total_moved = 0.0;
  double percent_workload_moved = 0.0;
  double requests_completed = 0.0;
  double tuning_rounds = 0.0;
  /// Chaos mode: convergence-invariant violations (0 = converged). Always
  /// 0 in workload mode, kept so both modes share one schema.
  double violations = 0.0;
};

/// Distribution summary of one metric across the batch. ci95 is the
/// half-width of the normal-approximation 95% confidence interval of the
/// mean (1.96 * stddev / sqrt(n)); stddev is the sample (n-1) estimate,
/// both 0 when n < 2.
struct MetricAggregate {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct BatchResult {
  /// Derived seed of each run, in task-index order.
  std::vector<std::uint64_t> seeds;
  std::vector<SeedMetrics> per_seed;
  /// (metric name, aggregate) in SeedMetrics field order.
  std::vector<std::pair<std::string, MetricAggregate>> metrics;
};

/// Aggregates one sample vector (exposed for tests).
[[nodiscard]] MetricAggregate aggregate_metric(const std::vector<double>& xs);

/// Runs the batch. Throws (std::runtime_error) if the template is invalid,
/// e.g. a trace file that fails to load.
[[nodiscard]] BatchResult run_experiment_batch(const BatchConfig& config);

/// Serializes config + result into the versioned results document.
[[nodiscard]] obs::Json batch_results_json(const BatchConfig& config,
                                           const BatchResult& result);

/// Writes batch_results_json(...) pretty-printed; false on I/O failure.
bool write_batch_results_file(const std::string& path,
                              const BatchConfig& config,
                              const BatchResult& result);

}  // namespace anu::driver
