#include "driver/batch.h"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "common/rng.h"
#include "driver/balancer_factory.h"
#include "driver/sweep.h"
#include "metrics/consistency.h"
#include "obs/build_info.h"

namespace anu::driver {

namespace {

struct Field {
  const char* name;
  double SeedMetrics::*member;
};

/// The schema's metric list: names, units and order are frozen under
/// kBatchSchemaVersion.
constexpr Field kFields[] = {
    {"mean_latency_s", &SeedMetrics::mean_latency_s},
    {"steady_latency_s", &SeedMetrics::steady_latency_s},
    {"p50_s", &SeedMetrics::p50_s},
    {"p95_s", &SeedMetrics::p95_s},
    {"p99_s", &SeedMetrics::p99_s},
    {"latency_cv", &SeedMetrics::latency_cv},
    {"total_moved", &SeedMetrics::total_moved},
    {"percent_workload_moved", &SeedMetrics::percent_workload_moved},
    {"requests_completed", &SeedMetrics::requests_completed},
    {"tuning_rounds", &SeedMetrics::tuning_rounds},
    {"violations", &SeedMetrics::violations},
};

SeedMetrics extract_metrics(const ExperimentResult& result,
                            std::size_t violations) {
  SeedMetrics m;
  m.mean_latency_s = result.aggregate.mean();
  m.steady_latency_s = result.steady_state.mean();
  m.p50_s = result.latency_histogram.quantile(0.50);
  m.p95_s = result.latency_histogram.quantile(0.95);
  m.p99_s = result.latency_histogram.quantile(0.99);
  m.latency_cv = metrics::performance_consistency(result.per_server).latency_cv;
  m.total_moved = static_cast<double>(result.total_moved);
  m.percent_workload_moved = result.percent_workload_moved;
  m.requests_completed = static_cast<double>(result.requests_completed);
  m.tuning_rounds = static_cast<double>(result.tuning_rounds);
  m.violations = static_cast<double>(violations);
  return m;
}

SeedMetrics run_one(const BatchConfig& config, std::uint64_t seed) {
  if (config.mode == BatchConfig::Mode::kChaos) {
    ChaosConfig chaos = config.chaos;
    chaos.seed = seed;
    chaos.trace = nullptr;  // per-run tracing is a single-run concern
    const ChaosReport report = run_chaos(chaos);
    return extract_metrics(report.result, report.violations.size());
  }
  SimSpec spec = config.spec;
  spec.synthetic.seed = seed;
  spec.trace.seed = seed;
  // Dispatch strategies draw their own random numbers; give each run an
  // independent stream decorrelated from the workload seed (distinct salts
  // per strategy so jsqd/jiq/redundancy never share draws).
  spec.system.jsq.seed = mix64(seed ^ 0x6a737164ULL);
  spec.system.jiq.seed = mix64(seed ^ 0x6a6971ULL);
  spec.system.red.seed = mix64(seed ^ 0x726564ULL);
  spec.experiment.trace = nullptr;
  ConfigError error;
  const auto workload = build_workload(spec, &error);
  if (!workload) {
    throw std::runtime_error("batch: cannot build workload: " + error.message);
  }
  auto balancer = make_balancer(spec.system,
                                spec.experiment.cluster.server_speeds.size());
  const auto result = run_experiment(spec.experiment, *workload, *balancer);
  return extract_metrics(result, 0);
}

}  // namespace

MetricAggregate aggregate_metric(const std::vector<double>& xs) {
  MetricAggregate a;
  a.n = xs.size();
  if (xs.empty()) return a;
  a.min = xs.front();
  a.max = xs.front();
  double sum = 0.0;
  for (const double x : xs) {
    sum += x;
    if (x < a.min) a.min = x;
    if (x > a.max) a.max = x;
  }
  a.mean = sum / static_cast<double>(a.n);
  if (a.n < 2) return a;
  double ss = 0.0;
  for (const double x : xs) ss += (x - a.mean) * (x - a.mean);
  a.stddev = std::sqrt(ss / static_cast<double>(a.n - 1));
  a.ci95 = 1.96 * a.stddev / std::sqrt(static_cast<double>(a.n));
  return a;
}

BatchResult run_experiment_batch(const BatchConfig& config) {
  BatchResult out;
  out.seeds.resize(config.seeds);
  out.per_seed.resize(config.seeds);
  for (std::size_t i = 0; i < config.seeds; ++i) {
    out.seeds[i] = substream_seed(config.base_seed, i);
  }
  // Each task writes only its own pre-sized slot; aggregation below is
  // sequential in index order, so results cannot depend on `jobs`. This is
  // the disjoint-slot pattern (docs/static-analysis.md): no cross-task
  // shared mutable state exists, so there is nothing to ANU_GUARDED_BY —
  // the batch barrier inside run_indexed is the only synchronization, and
  // it is what makes the slots readable here.
  run_indexed(
      config.seeds,
      [&](std::size_t i) { out.per_seed[i] = run_one(config, out.seeds[i]); },
      config.jobs);
  out.metrics.reserve(std::size(kFields));
  std::vector<double> samples(config.seeds);
  for (const Field& field : kFields) {
    for (std::size_t i = 0; i < config.seeds; ++i) {
      samples[i] = out.per_seed[i].*field.member;
    }
    out.metrics.emplace_back(field.name, aggregate_metric(samples));
  }
  return out;
}

obs::Json batch_results_json(const BatchConfig& config,
                             const BatchResult& result) {
  obs::Json doc = obs::Json::object();
  doc.set("schema", "anu.batch_results");
  doc.set("schema_version", kBatchSchemaVersion);
  doc.set("git", obs::git_describe());

  obs::Json cfg = obs::Json::object();
  cfg.set("mode", config.mode == BatchConfig::Mode::kChaos ? "chaos"
                                                           : "workload");
  cfg.set("seeds", config.seeds);
  cfg.set("base_seed", config.base_seed);
  if (config.mode == BatchConfig::Mode::kChaos) {
    cfg.set("profile", chaos_profile_name(config.chaos.profile));
    cfg.set("servers", config.chaos.servers);
    cfg.set("requests", config.chaos.requests);
    cfg.set("horizon_s", config.chaos.horizon);
  } else {
    cfg.set("system", system_label(config.spec.system.kind));
    cfg.set("servers", config.spec.experiment.cluster.server_speeds.size());
    cfg.set("workload", config.spec.workload == SimSpec::WorkloadKind::kTrace
                            ? "trace"
                            : "synthetic");
    cfg.set("requests", config.spec.workload == SimSpec::WorkloadKind::kTrace
                            ? config.spec.trace.request_count
                            : config.spec.synthetic.request_count);
    cfg.set("tuning_interval_s", config.spec.experiment.tuning_interval);
  }
  doc.set("config", std::move(cfg));

  obs::Json metrics = obs::Json::object();
  for (const auto& [name, a] : result.metrics) {
    obs::Json entry = obs::Json::object();
    entry.set("n", a.n);
    entry.set("mean", a.mean);
    entry.set("stddev", a.stddev);
    entry.set("ci95", a.ci95);
    entry.set("min", a.min);
    entry.set("max", a.max);
    metrics.set(name, std::move(entry));
  }
  doc.set("metrics", std::move(metrics));

  obs::Json per_seed = obs::Json::array();
  for (std::size_t i = 0; i < result.per_seed.size(); ++i) {
    obs::Json row = obs::Json::object();
    // Decimal string: the derived seeds use all 64 bits, which a JSON
    // double would silently round.
    row.set("seed", std::to_string(result.seeds[i]));
    for (const Field& field : kFields) {
      row.set(field.name, result.per_seed[i].*field.member);
    }
    per_seed.push_back(std::move(row));
  }
  doc.set("per_seed", std::move(per_seed));
  return doc;
}

bool write_batch_results_file(const std::string& path,
                              const BatchConfig& config,
                              const BatchResult& result) {
  std::ofstream os(path);
  if (!os) return false;
  batch_results_json(config, result).write_pretty(os);
  os << '\n';
  return static_cast<bool>(os);
}

}  // namespace anu::driver
