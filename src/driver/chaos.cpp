#include "driver/chaos.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/assert.h"
#include "common/rng.h"
#include "hash/hash_family.h"
#include "workload/synthetic.h"

namespace anu::driver {

const char* chaos_profile_name(ChaosProfile profile) {
  switch (profile) {
    case ChaosProfile::kLight:
      return "light";
    case ChaosProfile::kHeavy:
      return "heavy";
    case ChaosProfile::kPartition:
      return "partition";
    case ChaosProfile::kDegrade:
      return "degrade";
    case ChaosProfile::kMixed:
      return "mixed";
  }
  ANU_ENSURE(false && "unknown chaos profile");
  return "unknown";
}

std::optional<ChaosProfile> parse_chaos_profile(std::string_view name) {
  if (name == "light") return ChaosProfile::kLight;
  if (name == "heavy") return ChaosProfile::kHeavy;
  if (name == "partition") return ChaosProfile::kPartition;
  if (name == "degrade") return ChaosProfile::kDegrade;
  if (name == "mixed") return ChaosProfile::kMixed;
  return std::nullopt;
}

namespace {

double uniform(Xoshiro256& rng, double lo, double hi) {
  return lo + rng.next_double() * (hi - lo);
}

/// A random two-group split of the cluster, cut for a random window well
/// inside the fault phase.
faults::PartitionWindow random_partition(Xoshiro256& rng, std::size_t servers,
                                         SimTime fault_end) {
  faults::PartitionWindow window;
  const SimTime duration =
      uniform(rng, 20.0, std::min(60.0, fault_end * 0.25));
  window.start = uniform(rng, fault_end * 0.05, fault_end - duration);
  window.end = window.start + duration;
  for (std::uint32_t node = 0; node < servers; ++node) {
    (rng.next_below(2) == 0 ? window.group_a : window.group_b)
        .push_back(node);
  }
  // A one-sided coin toss is no partition at all; force a proper split.
  if (window.group_a.empty()) {
    window.group_a.push_back(window.group_b.back());
    window.group_b.pop_back();
  }
  if (window.group_b.empty()) {
    window.group_b.push_back(window.group_a.back());
    window.group_a.pop_back();
  }
  return window;
}

struct Scenario {
  faults::FaultPlanConfig faults;
  cluster::FailureSchedule failures;
};

Scenario generate_scenario(const ChaosConfig& config, Xoshiro256& rng) {
  const SimTime fault_end = config.horizon * kFaultPhaseFraction;
  Scenario scenario;
  scenario.faults.seed = rng.next();
  scenario.faults.start = 0.0;
  scenario.faults.end = fault_end;

  std::vector<cluster::MembershipEvent> events;
  const auto append = [&events](const cluster::FailureSchedule& sub) {
    for (const cluster::MembershipEvent& e : sub.events()) {
      events.push_back(e);
    }
  };
  const auto degrade_round = [&] {
    append(cluster::FailureSchedule::random_degrade(
        rng.next(), config.servers, 1, fault_end,
        uniform(rng, 40.0, fault_end * 0.3), 0.2, 0.6));
  };

  switch (config.profile) {
    case ChaosProfile::kLight:
      scenario.faults.loss = uniform(rng, 0.01, 0.05);
      scenario.faults.delay_spike = uniform(rng, 0.05, 0.15);
      scenario.faults.reorder = uniform(rng, 0.02, 0.08);
      break;
    case ChaosProfile::kHeavy:
      scenario.faults.loss = uniform(rng, 0.10, 0.25);
      scenario.faults.duplicate = uniform(rng, 0.03, 0.10);
      scenario.faults.delay_spike = uniform(rng, 0.10, 0.30);
      scenario.faults.spike_max = uniform(rng, 0.05, 0.25);
      scenario.faults.reorder = uniform(rng, 0.05, 0.15);
      break;
    case ChaosProfile::kPartition:
      scenario.faults.loss = uniform(rng, 0.01, 0.05);
      scenario.faults.partitions.push_back(
          random_partition(rng, config.servers, fault_end));
      break;
    case ChaosProfile::kDegrade:
      scenario.faults.loss = uniform(rng, 0.0, 0.02);
      degrade_round();
      break;
    case ChaosProfile::kMixed:
      scenario.faults.loss = uniform(rng, 0.05, 0.15);
      scenario.faults.duplicate = uniform(rng, 0.01, 0.05);
      scenario.faults.delay_spike = uniform(rng, 0.05, 0.20);
      scenario.faults.reorder = uniform(rng, 0.02, 0.10);
      scenario.faults.partitions.push_back(
          random_partition(rng, config.servers, fault_end));
      degrade_round();
      append(cluster::FailureSchedule::random_fail_recover(
          rng.next(), config.servers, 1, fault_end,
          uniform(rng, 30.0, fault_end * 0.25)));
      break;
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const cluster::MembershipEvent& a,
                      const cluster::MembershipEvent& b) {
                     return a.when < b.when;
                   });
  scenario.failures = cluster::FailureSchedule(std::move(events));
  return scenario;
}

/// Post-fault convergence invariants, evaluated while the protocol and
/// network are still live (see chaos.h for the list).
void check_invariants(const proto::ProtocolCluster& protocol,
                      const proto::Network& network,
                      const workload::Workload& workload,
                      const ChaosConfig& config,
                      std::vector<std::string>* out) {
  const std::size_t servers = network.node_count();
  std::uint32_t live_node = 0;
  bool any_live = false;
  for (std::uint32_t s = 0; s < servers; ++s) {
    if (!network.node_up(s)) continue;
    if (!any_live) {
      live_node = s;
      any_live = true;
    }
    if (protocol.version_of(s) == 0) {
      out->push_back("node " + std::to_string(s) +
                     " never applied a tuned map (version 0)");
    }
  }
  if (!any_live) {
    out->push_back("no live node at end of run");
    return;
  }
  if (!protocol.replicas_agree()) {
    out->push_back(
        "live replicas disagree on (version, map) after faults ceased");
    return;  // routing below assumes one agreed-on map
  }
  // Coverage: every file set must resolve, within the probing budget, to a
  // live server on the (agreed) replica. RegionMap's own invariants
  // guarantee the partitions tile [0, 1) without overlap; this closes the
  // loop from file-set name to live owner.
  const HashFamily family(config.protocol.hash_seed);
  const core::RegionMap& map = protocol.map_of(live_node);
  for (const workload::FileSet& fs : workload.file_sets()) {
    bool resolved = false;
    for (std::uint32_t r = 0; r < config.protocol.max_probe_rounds; ++r) {
      const auto owner = map.owner_at(family.unit_point(fs.name, r));
      if (!owner) continue;
      resolved = true;
      if (!network.node_up(owner->value())) {
        out->push_back("file set " + fs.name + " routes to down server " +
                       std::to_string(owner->value()));
      }
      break;
    }
    if (!resolved) {
      out->push_back("file set " + fs.name +
                     " unowned: probing exhausted the hash family");
    }
  }
}

}  // namespace

ChaosReport run_chaos(const ChaosConfig& config) {
  ANU_REQUIRE(config.servers >= 2);
  ANU_REQUIRE(config.horizon >= 300.0);
  // The tail after the fault phase must fit enough tuning rounds to
  // re-converge, or the invariants would test the faults, not the protocol.
  ANU_REQUIRE(config.horizon * (1.0 - kFaultPhaseFraction) >=
              2.0 * config.protocol.tuning_interval);

  Xoshiro256 rng(config.seed);
  ChaosReport report;
  Scenario scenario = generate_scenario(config, rng);
  report.faults = scenario.faults;
  report.failures = scenario.failures;

  static constexpr double kPaperSpeeds[] = {1.0, 3.0, 5.0, 7.0, 9.0};
  ProtocolExperimentConfig experiment;
  experiment.cluster.server_speeds.clear();
  double capacity = 0.0;
  for (std::size_t s = 0; s < config.servers; ++s) {
    const double speed = kPaperSpeeds[s % 5];
    experiment.cluster.server_speeds.push_back(speed);
    capacity += speed;
  }
  experiment.protocol = config.protocol;
  experiment.network = config.network;
  experiment.horizon = config.horizon;
  experiment.failures = scenario.failures;
  experiment.trace = config.trace;

  faults::FaultPlan plan(scenario.faults);
  experiment.faults = &plan;

  workload::SyntheticConfig synthetic;
  synthetic.seed = rng.next();
  synthetic.file_set_count = config.file_sets;
  synthetic.request_count = config.requests;
  synthetic.duration = config.horizon * 0.95;
  synthetic.cluster_capacity = capacity;
  synthetic.target_utilization = 0.5;
  const workload::Workload workload =
      workload::make_synthetic_workload(synthetic);

  experiment.on_finish = [&](const proto::ProtocolCluster& protocol,
                             const proto::Network& network) {
    check_invariants(protocol, network, workload, config,
                     &report.violations);
  };
  report.result = run_protocol_experiment(experiment, workload);

  report.injected_losses = plan.injected_losses();
  report.partition_drops = plan.partition_drops();
  report.duplications = plan.duplications();
  report.delay_injections = plan.delay_injections();

  // Counter reconciliation across the three layers (plan, network,
  // protocol). Each identity ties an injection to its observation.
  const ExperimentResult::ControlPlaneStats& cp = report.result.control_plane;
  const auto reconcile = [&](bool ok, const std::string& what) {
    if (!ok) report.violations.push_back("counter mismatch: " + what);
  };
  reconcile(cp.drops_injected ==
                plan.injected_losses() + plan.partition_drops(),
            "network injected drops != plan losses + partition drops");
  reconcile(cp.duplicates_injected == plan.duplications(),
            "network duplicates != plan duplications");
  reconcile(cp.messages_delivered <= cp.messages_sent,
            "delivered more messages than were sent");
  reconcile(cp.acks_received <= cp.reliable_sent + cp.retransmits,
            "more acks than reliable transmissions");
  reconcile(cp.duplicates_suppressed <=
                cp.duplicates_injected + cp.retransmits,
            "more duplicates suppressed than could exist");
  return report;
}

}  // namespace anu::driver
