// Synthetic workload generator — the paper's primary workload (§5.1–5.2).
//
// "The synthetic workload consists of 66,401 requests against 50 file sets
// in a period of two hundred minutes. The request inter-arrival times in
// each file set are governed by a Pareto distribution that is heavy-tailed."
// "The total amount of workload in each file set is defined as Xc where X is
// randomly chosen from interval [1,10] and c is a scaling factor tuned to
// avoid overload of the whole system."
//
// Construction: each file set i draws X_i ~ U[1,10]; its share of the total
// request budget is X_i / sum(X). Arrivals within a file set are a renewal
// process with bounded-Pareto inter-arrivals, rescaled so the stream spans
// the run. Per-request demand carries mild lognormal jitter; the scaling
// factor c is solved from the target cluster utilization (offered load /
// total capacity), which is how "tuned to avoid overload" is realized.
#pragma once

#include <cstdint>

#include "workload/workload.h"

namespace anu::workload {

struct SyntheticConfig {
  std::uint64_t seed = 42;
  std::size_t file_set_count = 50;
  std::size_t request_count = 66'401;
  /// Run length, seconds. Paper: 200 minutes.
  SimTime duration = 200.0 * 60.0;
  /// Pareto shape for inter-arrival times; 1 < alpha < 2 is the classic
  /// heavy-tailed regime (finite mean, infinite variance before bounding).
  double pareto_shape = 1.3;
  /// Tail bound ratio hi/lo for the bounded Pareto.
  double pareto_bound_ratio = 1e4;
  /// File-set weight factor X range (paper: [1, 10]).
  double weight_lo = 1.0;
  double weight_hi = 10.0;
  /// Target offered-load / total-cluster-capacity; determines c.
  /// Must leave headroom or the weakest placement diverges unboundedly.
  double target_utilization = 0.55;
  /// Total cluster capacity in unit-speed units (paper cluster: 1+3+5+7+9).
  double cluster_capacity = 25.0;
  /// Lognormal sigma for per-request demand jitter (0 = constant demand).
  double demand_jitter_sigma = 0.25;
};

/// Generates the full replayable workload. Deterministic in the config.
[[nodiscard]] Workload make_synthetic_workload(const SyntheticConfig& config);

/// The mean per-request service demand implied by a config (unit-speed
/// seconds); exposed for tests and for capacity planning in examples.
[[nodiscard]] double synthetic_mean_demand(const SyntheticConfig& config);

}  // namespace anu::workload
