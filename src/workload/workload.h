// Workload model: file sets and request streams.
//
// Paper §3: the file set — a subtree of the global namespace — is "the
// indivisible unit of workload assignment and movement". A workload is a set
// of file sets plus a time-ordered stream of metadata requests, each
// belonging to one file set and carrying a service demand (seconds of work
// at unit server speed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace anu::workload {

struct FileSet {
  FileSetId id;
  /// Unique name; the hash family addresses file sets by this (paper §4:
  /// "such as a pathname or content fingerprint").
  std::string name;
  /// Total offered work of this file set over the run, in unit-speed
  /// seconds. §5.1: "the total amount of workload in each file set is
  /// defined as Xc where X is randomly chosen from interval [1,10]".
  double weight = 0.0;
};

struct Request {
  SimTime arrival = 0.0;
  FileSetId file_set;
  /// Service demand in unit-speed seconds.
  double demand = 0.0;
};

/// A complete, replayable workload: requests are sorted by arrival time.
class Workload {
 public:
  Workload() = default;
  Workload(std::vector<FileSet> file_sets, std::vector<Request> requests);

  [[nodiscard]] const std::vector<FileSet>& file_sets() const {
    return file_sets_;
  }
  [[nodiscard]] const std::vector<Request>& requests() const {
    return requests_;
  }
  [[nodiscard]] const FileSet& file_set(FileSetId id) const;

  [[nodiscard]] std::size_t file_set_count() const { return file_sets_.size(); }
  [[nodiscard]] std::size_t request_count() const { return requests_.size(); }

  /// Sum of all file-set weights.
  [[nodiscard]] double total_weight() const;
  /// Sum of all request demands (should approximate total_weight()).
  [[nodiscard]] double total_demand() const;
  /// Latest request arrival (0 when empty).
  [[nodiscard]] SimTime span() const;
  /// Requests per file set.
  [[nodiscard]] std::vector<std::size_t> requests_per_file_set() const;
  /// Offered demand per file set (unit-speed seconds).
  [[nodiscard]] std::vector<double> demand_per_file_set() const;

 private:
  std::vector<FileSet> file_sets_;
  std::vector<Request> requests_;
};

}  // namespace anu::workload
