#include "workload/workload.h"

#include <algorithm>

#include "common/assert.h"

namespace anu::workload {

Workload::Workload(std::vector<FileSet> file_sets,
                   std::vector<Request> requests)
    : file_sets_(std::move(file_sets)), requests_(std::move(requests)) {
  for (std::size_t i = 0; i < file_sets_.size(); ++i) {
    ANU_REQUIRE(file_sets_[i].id == FileSetId(static_cast<std::uint32_t>(i)));
  }
  ANU_REQUIRE(std::is_sorted(
      requests_.begin(), requests_.end(),
      [](const Request& a, const Request& b) { return a.arrival < b.arrival; }));
  for (const Request& r : requests_) {
    ANU_REQUIRE(r.file_set.value() < file_sets_.size());
  }
}

const FileSet& Workload::file_set(FileSetId id) const {
  ANU_REQUIRE(id.value() < file_sets_.size());
  return file_sets_[id.value()];
}

double Workload::total_weight() const {
  double sum = 0.0;
  for (const FileSet& fs : file_sets_) sum += fs.weight;
  return sum;
}

double Workload::total_demand() const {
  double sum = 0.0;
  for (const Request& r : requests_) sum += r.demand;
  return sum;
}

SimTime Workload::span() const {
  return requests_.empty() ? 0.0 : requests_.back().arrival;
}

std::vector<std::size_t> Workload::requests_per_file_set() const {
  std::vector<std::size_t> counts(file_sets_.size(), 0);
  for (const Request& r : requests_) ++counts[r.file_set.value()];
  return counts;
}

std::vector<double> Workload::demand_per_file_set() const {
  std::vector<double> demand(file_sets_.size(), 0.0);
  for (const Request& r : requests_) demand[r.file_set.value()] += r.demand;
  return demand;
}

}  // namespace anu::workload
