#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numbers>
#include <sstream>

#include "common/assert.h"
#include "common/distributions.h"
#include "common/rng.h"

namespace anu::workload {

void write_trace(std::ostream& os, const Workload& workload) {
  os << "# libanu trace v1\n";
  os << "# filesets=" << workload.file_set_count()
     << " requests=" << workload.request_count() << "\n";
  os.precision(17);  // round-trip exact for IEEE doubles
  for (const FileSet& fs : workload.file_sets()) {
    os << "fileset " << fs.id.value() << ' ' << fs.name << ' ' << fs.weight
       << '\n';
  }
  for (const Request& r : workload.requests()) {
    os << "req " << r.arrival << ' ' << r.file_set.value() << ' ' << r.demand
       << '\n';
  }
}

bool write_trace_file(const std::string& path, const Workload& workload) {
  std::ofstream f(path);
  if (!f) return false;
  write_trace(f, workload);
  return static_cast<bool>(f);
}

namespace {

std::optional<Workload> fail(TraceParseError* error, std::size_t line,
                             std::string message) {
  if (error) *error = TraceParseError{line, std::move(message)};
  return std::nullopt;
}

}  // namespace

std::optional<Workload> read_trace(std::istream& is, TraceParseError* error) {
  std::vector<FileSet> file_sets;
  std::vector<Request> requests;
  std::string line;
  std::size_t lineno = 0;
  SimTime last_arrival = 0.0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "fileset") {
      std::uint32_t id;
      std::string name;
      double weight;
      if (!(ls >> id >> name >> weight)) {
        return fail(error, lineno, "malformed fileset line");
      }
      if (id != file_sets.size()) {
        return fail(error, lineno, "fileset ids must be dense and in order");
      }
      if (weight < 0.0) {
        return fail(error, lineno, "negative fileset weight");
      }
      file_sets.push_back(FileSet{FileSetId(id), std::move(name), weight});
    } else if (kind == "req") {
      double arrival, demand;
      std::uint32_t fs;
      if (!(ls >> arrival >> fs >> demand)) {
        return fail(error, lineno, "malformed req line");
      }
      if (fs >= file_sets.size()) {
        return fail(error, lineno, "req references undeclared fileset");
      }
      if (arrival < last_arrival) {
        return fail(error, lineno, "requests out of time order");
      }
      if (demand < 0.0) {
        return fail(error, lineno, "negative demand");
      }
      last_arrival = arrival;
      requests.push_back(Request{arrival, FileSetId(fs), demand});
    } else {
      return fail(error, lineno, "unknown record kind: " + kind);
    }
  }
  return Workload(std::move(file_sets), std::move(requests));
}

std::optional<Workload> read_trace_file(const std::string& path,
                                        TraceParseError* error) {
  std::ifstream f(path);
  if (!f) {
    return fail(error, 0, "cannot open " + path);
  }
  return read_trace(f, error);
}

Workload synthesize_trace(const TraceSynthConfig& config) {
  ANU_REQUIRE(config.file_set_count > 0);
  ANU_REQUIRE(config.request_count >= config.file_set_count);
  ANU_REQUIRE(config.intensity_modulation >= 0.0 &&
              config.intensity_modulation < 1.0);

  // Per-file-set request counts: Zipf popularity over file sets.
  const Zipf popularity(config.file_set_count, config.zipf_exponent);
  std::vector<std::size_t> counts(config.file_set_count, 1);
  std::size_t assigned = config.file_set_count;
  const auto budget =
      static_cast<double>(config.request_count - config.file_set_count);
  std::vector<std::pair<double, std::size_t>> remainders;
  for (std::size_t i = 0; i < config.file_set_count; ++i) {
    const double exact = budget * popularity.pmf(i);
    const auto whole = static_cast<std::size_t>(exact);
    counts[i] += whole;
    assigned += whole;
    remainders.emplace_back(exact - static_cast<double>(whole), i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; assigned < config.request_count; ++k, ++assigned) {
    ++counts[remainders[k % remainders.size()].second];
  }

  const double mean_demand = config.target_utilization * config.duration *
                             config.cluster_capacity /
                             static_cast<double>(config.request_count);
  const double sigma = config.demand_jitter_sigma;
  const Lognormal jitter(-0.5 * sigma * sigma, sigma);
  const double gap_lo = 1.0;
  const BoundedPareto gap(config.pareto_shape, gap_lo,
                          gap_lo * config.pareto_bound_ratio);

  // Non-stationary intensity: arrivals generated on a "virtual clock" and
  // mapped through the inverse of the cumulative intensity
  //   Lambda(t) = t - m/(2*pi*f) * ... (we apply forward warping instead:
  // a virtual time v in [0,1] maps to real time with higher density where
  // intensity is high). Forward warp: t(v) = v - (m/(2*pi*k)) * sin(2*pi*k*v)
  // normalized to the duration; its derivative 1 - m*cos(2*pi*k*v) > 0.
  const double m = config.intensity_modulation;
  const auto k = static_cast<double>(config.intensity_periods);
  auto warp = [&](double v) {
    const double two_pi_k = 2.0 * std::numbers::pi * k;
    return (v - (m / two_pi_k) * std::sin(two_pi_k * v)) * config.duration;
  };

  std::vector<FileSet> file_sets;
  std::vector<Request> requests;
  requests.reserve(config.request_count);
  double total_weight_factor = 0.0;
  for (std::size_t i = 0; i < config.file_set_count; ++i) {
    total_weight_factor += static_cast<double>(counts[i]);
  }
  const double total_demand =
      mean_demand * static_cast<double>(config.request_count);
  for (std::size_t i = 0; i < config.file_set_count; ++i) {
    const auto id = FileSetId(static_cast<std::uint32_t>(i));
    const double weight =
        total_demand * static_cast<double>(counts[i]) / total_weight_factor;
    file_sets.push_back(FileSet{id, "trace/fs" + std::to_string(i), weight});
    Xoshiro256 rng = Xoshiro256::substream(config.seed, 2000 + i);
    // Renewal process on virtual time, rescaled into [0, 1), then warped.
    double v = 0.0;
    std::vector<double> virtuals(counts[i]);
    for (std::size_t j = 0; j < counts[i]; ++j) {
      v += gap.sample(rng);
      virtuals[j] = v;
    }
    const double scale = 0.999 / v;
    for (std::size_t j = 0; j < counts[i]; ++j) {
      const double demand =
          sigma > 0.0 ? mean_demand * jitter.sample(rng) : mean_demand;
      requests.push_back(Request{warp(virtuals[j] * scale), id, demand});
    }
  }

  std::sort(requests.begin(), requests.end(),
            [](const Request& a, const Request& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.file_set < b.file_set;
            });
  return Workload(std::move(file_sets), std::move(requests));
}

}  // namespace anu::workload
