// Trace workloads: a portable on-disk format plus a DFSTrace-like
// synthesizer.
//
// The paper's Fig. 4 uses "a one-hour DFSTrace workload that contains 21
// file sets and 112,590 requests" (§5.1). The original CMU DFSTrace data is
// not redistributable/available offline, so (per DESIGN.md substitutions) we
// provide:
//   * a plain-text trace format with reader/writer, so users can replay
//     real traces of their own, and
//   * TraceSynthesizer: generates a trace with DFSTrace's published shape —
//     21 file sets, 112,590 requests, one hour, heavily skewed per-file-set
//     popularity (Zipf) and bursty arrivals — which is what exercises the
//     tuner; Fig. 4 is a sanity check of scaling/tuning behaviour, not a
//     byte-exact replay.
//
// Trace file format (text, line oriented):
//   # comment lines start with '#'
//   fileset <id> <name> <weight>
//   req <arrival-seconds> <fileset-id> <demand-seconds>
// File sets must be declared before use; requests must be time-ordered.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "workload/workload.h"

namespace anu::workload {

/// Serializes a workload to the trace text format.
void write_trace(std::ostream& os, const Workload& workload);
bool write_trace_file(const std::string& path, const Workload& workload);

/// Parse result: either a workload or a diagnostic (1-based line number).
struct TraceParseError {
  std::size_t line;
  std::string message;
};

/// Parses the trace text format. Returns nullopt and fills `error` (if
/// non-null) on malformed input.
std::optional<Workload> read_trace(std::istream& is,
                                   TraceParseError* error = nullptr);
std::optional<Workload> read_trace_file(const std::string& path,
                                        TraceParseError* error = nullptr);

/// DFSTrace-shaped synthetic trace.
struct TraceSynthConfig {
  std::uint64_t seed = 7;
  std::size_t file_set_count = 21;       // DFSTrace: 21 file sets
  std::size_t request_count = 112'590;   // DFSTrace: 112,590 requests
  SimTime duration = 3600.0;             // one hour
  /// Zipf exponent of per-file-set popularity (file-system namespaces are
  /// strongly skewed; s near 1 is the classic observation).
  double zipf_exponent = 0.9;
  /// Pareto shape for in-file-set inter-arrival burstiness.
  double pareto_shape = 1.2;
  double pareto_bound_ratio = 1e4;
  /// Diurnal-ish modulation depth in [0,1): 0 = stationary arrivals. Real
  /// traces have non-stationary intensity over the hour.
  double intensity_modulation = 0.4;
  std::size_t intensity_periods = 3;
  /// Load scaling, as for the synthetic workload.
  double target_utilization = 0.55;
  double cluster_capacity = 25.0;
  double demand_jitter_sigma = 0.35;
};

[[nodiscard]] Workload synthesize_trace(const TraceSynthConfig& config);

}  // namespace anu::workload
